# Shared helpers for the smoke scripts (serve_smoke.sh, load_smoke.sh).
# Source this file; it defines functions and sets no options itself.
#
# shellcheck shell=bash

# boot_serve BIN LOG ARGS...
#
# Starts BIN with ARGS in the background, stdout to LOG, and waits (10s)
# for the "dynex-serve listening on 127.0.0.1:PORT" line. Sets $serve_pid
# and $serve_port. Fails fast — within one poll tick, not the whole wait
# budget — when the process dies before it ever listens, echoing its log
# so the failure names the actual boot error instead of a timeout.
boot_serve() {
    local bin=$1 log=$2
    shift 2
    "$bin" "$@" >"$log" 2>/dev/null &
    serve_pid=$!
    serve_port=""
    for _ in $(seq 1 100); do
        serve_port=$(sed -n 's/^dynex-serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")
        [ -n "$serve_port" ] && break
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "smoke: server exited before listening; log: $(cat "$log")" >&2
            serve_pid=""
            return 1
        fi
        sleep 0.1
    done
    [ -n "$serve_port" ] || {
        echo "smoke: no listening line within 10s; log: $(cat "$log")" >&2
        return 1
    }
}

# roundtrip METHOD PATH BODY
#
# One Connection: close HTTP exchange against 127.0.0.1:$serve_port over
# raw /dev/tcp (no curl dependency); prints the full response.
roundtrip() {
    local method=$1 path=$2 body=$3
    exec 3<>"/dev/tcp/127.0.0.1/$serve_port"
    printf '%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %s\r\n\r\n%s' \
        "$method" "$path" "${#body}" "$body" >&3
    cat <&3
    exec 3<&- 3>&-
}

# await_exit PID [SECONDS]
#
# Polls until PID exits (default budget 10s). Non-zero when still alive.
await_exit() {
    local pid=$1 ticks=$(( ${2:-10} * 10 ))
    for _ in $(seq 1 "$ticks"); do
        kill -0 "$pid" 2>/dev/null || return 0
        sleep 0.1
    done
    return 1
}
