#!/usr/bin/env bash
# Serve smoke: boot the release dynex-serve on an ephemeral port, round-trip
# a simulation over raw /dev/tcp (no curl dependency), check the repeat is a
# cache hit, drain gracefully, and require the process to actually exit —
# a leaked handler or dispatcher thread would wedge the drain join and trip
# the exit timeout. A does-it-serve gate, not a performance gate.
#
# Also exercises the PR 6 tracing surfaces: /metrics must report a non-empty
# simulate latency histogram, and the --trace-out span stream must contain
# the request and kernel stages. Set SMOKE_TRACE_OUT to keep the span JSONL
# (CI uploads it as an artifact); default is a temp file.
#
# Boot/HTTP plumbing lives in smoke_lib.sh (shared with load_smoke.sh);
# boot_serve fails fast if the server process dies before it listens.
#
#   scripts/serve_smoke.sh [path-to-dynex-serve]
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/smoke_lib.sh
. scripts/smoke_lib.sh

bin="${1:-target/release/dynex-serve}"
[ -x "$bin" ] || { echo "serve smoke: $bin not built" >&2; exit 1; }

log=$(mktemp)
trace_out="${SMOKE_TRACE_OUT:-$(mktemp)}"
cleanup() {
    rm -f "$log"
    [ -z "${SMOKE_TRACE_OUT:-}" ] && rm -f "$trace_out"
    [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

boot_serve "$bin" "$log" --port 0 --batch-window-ms 0 --trace-out "$trace_out" \
    || { echo "serve smoke: boot failed" >&2; exit 1; }

request='{"org":"de","size":"8K","line":4,"trace":{"source":"profile","profile":"espresso"},"refs":100000}'

first=$(roundtrip POST /simulate "$request")
echo "$first" | grep -q '"cached":false' \
    || { echo "serve smoke: first response not a fresh simulation: $first" >&2; exit 1; }

second=$(roundtrip POST /simulate "$request")
echo "$second" | grep -q '"cached":true' \
    || { echo "serve smoke: repeat was not a cache hit: $second" >&2; exit 1; }

metrics=$(roundtrip GET /metrics "")
echo "$metrics" | grep -q '"sims-executed":1' \
    || { echo "serve smoke: expected exactly one simulation: $metrics" >&2; exit 1; }
# PR 6: per-stage latency histograms and percentile summaries. The simulate
# stage must have recorded at least one sample by now.
echo "$metrics" | grep -q '"latency-us/simulate"' \
    || { echo "serve smoke: /metrics has no simulate latency histogram: $metrics" >&2; exit 1; }
echo "$metrics" | grep -q '"latency_summary"' \
    || { echo "serve smoke: /metrics has no latency_summary block: $metrics" >&2; exit 1; }
echo "$metrics" | sed -n 's/.*"latency_summary":{\(.*\)/\1/p' | grep -q '"simulate":{"count":[1-9]' \
    || { echo "serve smoke: latency_summary has no simulate samples: $metrics" >&2; exit 1; }
# Every routed response must echo its trace id.
header_check=$(roundtrip GET /healthz "")
echo "$header_check" | grep -qi 'X-Dynex-Trace: [0-9a-f]\{16\}' \
    || { echo "serve smoke: response is missing the X-Dynex-Trace header" >&2; exit 1; }

drain=$(roundtrip POST /shutdown "")
echo "$drain" | grep -q '"status":"draining"' \
    || { echo "serve smoke: shutdown did not drain: $drain" >&2; exit 1; }

# Graceful exit within 10s; a leaked thread would hang the drain join.
await_exit "$serve_pid" 10 \
    || { echo "serve smoke: server did not exit after drain" >&2; exit 1; }
serve_pid=""

# The span stream must contain the request root and reach the kernel.
[ -s "$trace_out" ] || { echo "serve smoke: --trace-out wrote no spans" >&2; exit 1; }
grep -q '"stage":"request"' "$trace_out" \
    || { echo "serve smoke: span stream has no request spans" >&2; exit 1; }
grep -q '"stage":"kernel.simulate"' "$trace_out" \
    || { echo "serve smoke: span stream has no kernel.simulate spans" >&2; exit 1; }

echo "serve smoke: OK"
