#!/usr/bin/env bash
# Local verification gate: exactly what CI runs.
#
#   scripts/verify.sh          # fmt + clippy + release build + tests
#   scripts/verify.sh --quick  # skip the release build
#
# The workspace is hermetic (no registry access needed); property tests and
# the Criterion benches are opt-in and NOT covered here.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release --workspace
fi

echo "==> cargo test"
cargo test --workspace -q

# The fault-injection suite is part of the workspace run above; name it
# explicitly so a resilience regression is impossible to miss in the log.
echo "==> cargo test --test resilience (fault isolation, resume, lenient ingest)"
cargo test -q -p dynex-experiments --test resilience

# Bench smoke: scripts/bench.sh at tiny budgets into a throwaway directory.
# This is a does-it-run gate, not a performance gate — it fails on a panic,
# a kernel-output divergence, or a broken JSON pipeline, never on timing.
# (Skipped under --quick: it needs the release binaries.)
# Serve smoke: boot dynex-serve, round-trip a request twice (fresh + cache
# hit) over /dev/tcp, drain gracefully, and require a clean process exit.
# (Skipped under --quick: it needs the release binary.)
if [ "$quick" -eq 0 ]; then
    echo "==> serve smoke (round-trip + graceful drain)"
    scripts/serve_smoke.sh
fi

# Load smoke: boot a 2-shard fleet (router + worker processes), drive 5s of
# open-loop traffic through dynex-load, and gate on zero errors plus a
# passing client/server cross-check. A does-the-tier-serve-under-load gate,
# not a performance gate. (Skipped under --quick: needs release binaries.)
if [ "$quick" -eq 0 ]; then
    echo "==> load smoke (2-shard fleet, open-loop traffic, cross-check)"
    scripts/load_smoke.sh
fi

# Chaos smoke: same fleet and traffic shape as the load smoke, but shard
# 0's worker is SIGKILLed 2 seconds in. Gates on the self-healing story:
# a respawn, a recorded recovery, zero divergences, zero survivor errors.
# (Skipped under --quick: needs release binaries.)
if [ "$quick" -eq 0 ]; then
    echo "==> chaos smoke (kill a shard mid-run, gate on warm recovery)"
    scripts/chaos_smoke.sh
fi

if [ "$quick" -eq 0 ]; then
    echo "==> bench smoke (tiny budgets)"
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    DYNEX_BENCH_SWEEP_REFS=20000 DYNEX_BENCH_TRACE_REFS=100000 \
        DYNEX_BENCH_OUT_DIR="$smoke_dir" scripts/bench.sh all >/dev/null
    for f in BENCH_PR2.json BENCH_PR4.json BENCH_PR6.json BENCH_PR9.json; do
        [ -s "$smoke_dir/$f" ] || { echo "verify: bench smoke produced no $f" >&2; exit 1; }
    done
fi

echo "verify: OK"
