#!/usr/bin/env bash
# Local verification gate: exactly what CI runs.
#
#   scripts/verify.sh          # fmt + clippy + release build + tests
#   scripts/verify.sh --quick  # skip the release build
#
# The workspace is hermetic (no registry access needed); property tests and
# the Criterion benches are opt-in and NOT covered here.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release --workspace
fi

echo "==> cargo test"
cargo test --workspace -q

# The fault-injection suite is part of the workspace run above; name it
# explicitly so a resilience regression is impossible to miss in the log.
echo "==> cargo test --test resilience (fault isolation, resume, lenient ingest)"
cargo test -q -p dynex-experiments --test resilience

echo "verify: OK"
