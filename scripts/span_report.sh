#!/usr/bin/env bash
# span_report.sh — self-profile table from a --trace-out span stream.
#
#   scripts/span_report.sh spans.jsonl           # human-readable table
#   scripts/span_report.sh --json spans.jsonl    # JSON object for embedding
#
# Reads the JSONL span lines dynex-serve / simcache / experiments write via
# --trace-out ({"trace":…,"span":…,"parent":…,"stage":…,"start_us":…,
# "dur_us":…}) and aggregates per stage: count, total time, and p99
# (nearest-rank over the recorded durations). Pure sed/sort/awk — no
# dependencies beyond POSIX userland, matching the repo's hermetic rule.
set -euo pipefail

mode=table
if [ "${1:-}" = "--json" ]; then
  mode=json
  shift
fi
file="${1:-}"
if [ -z "$file" ] || [ ! -f "$file" ]; then
  echo "usage: $0 [--json] <spans.jsonl>" >&2
  exit 2
fi

# One "stage dur_us" pair per span line; lines without both fields are
# skipped (defensive: the stream may be mid-write on a live service).
sed -n 's/.*"stage":"\([^"]*\)".*"dur_us":\([0-9][0-9]*\).*/\1 \2/p' "$file" |
  sort -k1,1 -k2,2n |
  awk -v mode="$mode" '
    function flush() {
      if (count == 0) return
      p99 = durs[int((count * 99 + 99) / 100)]  # nearest-rank ceil(0.99 n)
      if (mode == "json") {
        printf "%s\"%s\":{\"count\":%d,\"total_us\":%d,\"p99_us\":%d}", \
               sep, stage, count, total, p99
        sep = ","
      } else {
        printf "%-24s %10d %14d %10d\n", stage, count, total, p99
      }
    }
    BEGIN {
      if (mode == "json") printf "{"
      else printf "%-24s %10s %14s %10s\n", "stage", "count", "total_us", "p99_us"
      sep = ""
    }
    {
      if ($1 != stage) { flush(); stage = $1; count = 0; total = 0 }
      durs[++count] = $2
      total += $2
    }
    END { flush(); if (mode == "json") printf "}\n" }
  '
