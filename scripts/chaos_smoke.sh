#!/usr/bin/env bash
# Chaos smoke: boot the release dynex-serve as a 2-shard fleet with warm
# journals, drive 5 seconds of open-loop traffic through dynex-load, and
# SIGKILL shard 0's worker 2 seconds in. The gate is the self-healing
# story, machine-checked end to end:
#
#   * the report is a well-formed dynex-load/v1 document with a chaos block,
#   * the kill was delivered and the shard recovered (recovery_us recorded),
#   * the supervisor respawned the worker (respawns >= 1 at /healthz),
#   * zero divergences — every repeated request got byte-identical results
#     across the kill (modulo the cached flag; warm recovery is the point),
#   * zero survivor errors — the never-killed shard served flawlessly,
#   * no 500s, no 504s, no client-side transport errors (the router itself
#     must never drop a connection; mid-recovery requests for the dead
#     shard fail fast as router 503s, which are expected and allowed),
#   * both the chaos audit and the client/server cross-check come back
#     consistent (dynex-load exits non-zero otherwise),
#   * the fleet drains and every process exits after POST /shutdown.
#
# A does-the-fleet-heal gate, not a performance gate: recovery *time* is
# recorded in the artifact but never asserted — CI boxes are too noisy.
#
# Set CHAOS_SMOKE_OUT to keep the JSON report (CI uploads it as an
# artifact); default is a temp file.
#
#   scripts/chaos_smoke.sh [path-to-dynex-serve] [path-to-dynex-load]
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/smoke_lib.sh
. scripts/smoke_lib.sh

serve_bin="${1:-target/release/dynex-serve}"
load_bin="${2:-target/release/dynex-load}"
[ -x "$serve_bin" ] || { echo "chaos smoke: $serve_bin not built" >&2; exit 1; }
[ -x "$load_bin" ] || { echo "chaos smoke: $load_bin not built" >&2; exit 1; }

log=$(mktemp)
out="${CHAOS_SMOKE_OUT:-$(mktemp)}"
journal_dir=$(mktemp -d)
cleanup() {
    rm -f "$log"
    rm -rf "$journal_dir"
    [ -z "${CHAOS_SMOKE_OUT:-}" ] && rm -f "$out"
    [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

# Warm journals are what make the respawned worker answer with the exact
# bytes its predecessor served — without them this gate could not demand
# zero divergences.
boot_serve "$serve_bin" "$log" --port 0 --shards 2 --batch-window-ms 0 \
    --warm-journal "$journal_dir/journal" \
    || { echo "chaos smoke: fleet boot failed" >&2; exit 1; }

# Same open-loop shape as the load smoke (40 req/s x 5s, duplicate-heavy,
# trivial simulations, no deadlines), plus the kill: shard 0's worker dies
# 2 seconds into the schedule and must be respawned with 3 seconds of
# traffic still to serve.
"$load_bin" --target "127.0.0.1:$serve_port" \
    --rate 40 --duration-s 5 --senders 4 \
    --refs 20000 --duplicate-ratio 0.6 --deadline-fraction 0 \
    --chaos "kill:0@2" \
    --out "$out" \
    || { echo "chaos smoke: dynex-load failed (see summary above)" >&2; exit 1; }

grep -q '"schema":"dynex-load/v1"' "$out" \
    || { echo "chaos smoke: report is not a dynex-load/v1 document: $(head -c 300 "$out")" >&2; exit 1; }
if grep -q '"ok":0,' "$out"; then
    echo "chaos smoke: zero requests succeeded" >&2; exit 1
fi
# The kill must have been delivered and the shard must have recovered.
grep -q '"killed":true' "$out" \
    || { echo "chaos smoke: the scheduled kill was never delivered" >&2; exit 1; }
if grep -q '"recovery_us":null' "$out"; then
    echo "chaos smoke: the killed shard never recovered" >&2; exit 1
fi
# The supervisor respawned the worker on its slot.
respawns=$(grep -o '"respawns":{"0":[0-9]*' "$out" | grep -o '[0-9]*$' || echo 0)
[ "${respawns:-0}" -ge 1 ] \
    || { echo "chaos smoke: shard 0 was never respawned: $(grep -o '"respawns":{[^}]*}' "$out")" >&2; exit 1; }
# Warm recovery gave byte-identical answers; the survivor never erred.
grep -q '"divergences":0' "$out" \
    || { echo "chaos smoke: responses diverged across the kill: $(grep -o '"divergences":[0-9]*' "$out")" >&2; exit 1; }
grep -q '"survivor_errors":0' "$out" \
    || { echo "chaos smoke: the surviving shard returned errors: $(grep -o '"survivor_errors":[0-9]*' "$out")" >&2; exit 1; }
# No wrong failures: router 503s during recovery are expected, anything
# else in the taxonomy is a bug surfaced by the chaos.
for bad in '"http-500"' '"http-504"' '"transport-connect"' '"transport-timeout"' '"transport-other"'; do
    if grep -q "$bad" "$out"; then
        echo "chaos smoke: forbidden error kind $bad: $(grep -o '"errors":{[^}]*}' "$out")" >&2
        exit 1
    fi
done
# Both verdicts — the chaos audit and the client/server cross-check — are
# pinned in the document (the zero exit above already enforced them).
consistent=$(grep -o '"consistent":true' "$out" | wc -l)
[ "$consistent" -eq 2 ] \
    || { echo "chaos smoke: expected 2 consistent:true verdicts, found $consistent" >&2; exit 1; }

drain=$(roundtrip POST /shutdown "")
echo "$drain" | grep -q '"status":"draining"' \
    || { echo "chaos smoke: shutdown did not drain: $drain" >&2; exit 1; }
await_exit "$serve_pid" 15 \
    || { echo "chaos smoke: fleet did not exit after drain" >&2; exit 1; }
serve_pid=""

echo "chaos smoke: OK ($(grep -o '"recovery_us":[0-9]*' "$out" | head -1), respawns=$respawns)"
