#!/usr/bin/env bash
# Shard-scaling sweep: run the same open-loop load against 1-, 2-, and
# 4-shard fleets (each boot is router + N worker processes, so the 1-shard
# run includes router overhead and the comparison is topology-to-topology)
# and record every per-run dynex-load/v1 document in one
# dynex-load-sweep/v1 file under results/.
#
# This is a *measurement* script, not a gate: it records whatever the box
# produces. On a single-core host, N workers share one core, so do not
# expect shard scaling — the point of recording the run is to say so with
# numbers. Knobs via environment:
#
#   SHARDS_LIST  shard counts to sweep        (default "1 2 4")
#   RATE         open-loop req/s              (default 40)
#   DURATION_S   seconds per run              (default 8)
#   REFS         references per request      (default 50000)
#   DUP_RATIO    duplicate ratio              (default 0.5)
#   SWEEP_OUT    output path                  (default results/LOAD_sweep.json)
#
#   scripts/load_sweep.sh [path-to-dynex-serve] [path-to-dynex-load]
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/smoke_lib.sh
. scripts/smoke_lib.sh

serve_bin="${1:-target/release/dynex-serve}"
load_bin="${2:-target/release/dynex-load}"
[ -x "$serve_bin" ] || { echo "load sweep: $serve_bin not built" >&2; exit 1; }
[ -x "$load_bin" ] || { echo "load sweep: $load_bin not built" >&2; exit 1; }

shards_list="${SHARDS_LIST:-1 2 4}"
rate="${RATE:-40}"
duration_s="${DURATION_S:-8}"
refs="${REFS:-50000}"
dup_ratio="${DUP_RATIO:-0.5}"
sweep_out="${SWEEP_OUT:-results/LOAD_sweep.json}"
mkdir -p "$(dirname "$sweep_out")"

log=$(mktemp)
run_out=$(mktemp)
cleanup() {
    rm -f "$log" "$run_out"
    [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

cores=$(nproc 2>/dev/null || echo "?")
runs=""
for shards in $shards_list; do
    echo "load sweep: $shards shard(s), $rate req/s for ${duration_s}s..." >&2
    boot_serve "$serve_bin" "$log" --port 0 --shards "$shards" --batch-window-ms 0 \
        || { echo "load sweep: $shards-shard fleet boot failed" >&2; exit 1; }
    "$load_bin" --target "127.0.0.1:$serve_port" \
        --rate "$rate" --duration-s "$duration_s" --senders 4 \
        --refs "$refs" --duplicate-ratio "$dup_ratio" --deadline-fraction 0 \
        --out "$run_out" \
        || { echo "load sweep: $shards-shard run failed" >&2; exit 1; }
    roundtrip POST /shutdown "" >/dev/null
    await_exit "$serve_pid" 15 \
        || { echo "load sweep: $shards-shard fleet did not exit" >&2; exit 1; }
    serve_pid=""
    [ -n "$runs" ] && runs="$runs,"
    runs="$runs{\"shards\":$shards,\"run\":$(cat "$run_out")}"
    : >"$log"
done

printf '{"schema":"dynex-load-sweep/v1","cores":"%s","rate":%s,"duration_s":%s,"refs":%s,"duplicate_ratio":%s,"runs":[%s]}\n' \
    "$cores" "$rate" "$duration_s" "$refs" "$dup_ratio" "$runs" >"$sweep_out"
echo "load sweep: recorded $(echo "$shards_list" | wc -w) run(s) in $sweep_out"
