#!/usr/bin/env bash
# Load smoke: boot the release dynex-serve as a 2-shard fleet (router + two
# worker processes), drive 5 seconds of open-loop traffic through the
# release dynex-load harness, and gate on the run being *healthy*:
#
#   * the report is a well-formed dynex-load/v1 document,
#   * throughput is non-zero (requests completed and references simulated),
#   * zero 5xx responses and zero transport errors,
#   * the client/server cross-check passed (dynex-load exits non-zero
#     otherwise — a zero exit already vouches for it),
#   * the fleet drains and every process exits after POST /shutdown.
#
# A does-the-tier-serve-under-load gate, not a performance gate: the box
# this runs on (CI) may have a single core, so numbers are not asserted
# beyond "greater than zero".
#
# Set LOAD_SMOKE_OUT to keep the JSON report (CI uploads it as an
# artifact); default is a temp file.
#
#   scripts/load_smoke.sh [path-to-dynex-serve] [path-to-dynex-load]
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/smoke_lib.sh
. scripts/smoke_lib.sh

serve_bin="${1:-target/release/dynex-serve}"
load_bin="${2:-target/release/dynex-load}"
[ -x "$serve_bin" ] || { echo "load smoke: $serve_bin not built" >&2; exit 1; }
[ -x "$load_bin" ] || { echo "load smoke: $load_bin not built" >&2; exit 1; }

log=$(mktemp)
out="${LOAD_SMOKE_OUT:-$(mktemp)}"
cleanup() {
    rm -f "$log"
    [ -z "${LOAD_SMOKE_OUT:-}" ] && rm -f "$out"
    [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

boot_serve "$serve_bin" "$log" --port 0 --shards 2 --batch-window-ms 0 \
    || { echo "load smoke: fleet boot failed" >&2; exit 1; }

# Open loop: 40 req/s for 5s (200 requests), trivial simulations so a
# 1-core box stays ahead of the schedule, duplicate-heavy so the result
# caches see hits, no deadlines so nothing can legitimately 504. The mix
# spreads over the full policy zoo: the paper's dm/de/opt plus the PR-10
# ehc and bwcost members, so the smoke exercises the capability-checked
# dispatch path for every policy the serve tier accepts.
"$load_bin" --target "127.0.0.1:$serve_port" \
    --rate 40 --duration-s 5 --senders 4 \
    --refs 20000 --duplicate-ratio 0.6 --deadline-fraction 0 \
    --policies dm,de,opt,ehc,bwcost \
    --out "$out" \
    || { echo "load smoke: dynex-load failed (see summary above)" >&2; exit 1; }

grep -q '"schema":"dynex-load/v1"' "$out" \
    || { echo "load smoke: report is not a dynex-load/v1 document: $(head -c 300 "$out")" >&2; exit 1; }
# Non-zero throughput: some requests succeeded and simulated references.
if grep -q '"ok":0,' "$out"; then
    echo "load smoke: zero requests succeeded" >&2; exit 1
fi
if grep -q '"refs_total":0,' "$out"; then
    echo "load smoke: zero references simulated" >&2; exit 1
fi
# Zero 5xx and zero transport errors: the error taxonomy must be empty.
grep -q '"errors":{}' "$out" \
    || { echo "load smoke: run had errors: $(grep -o '"errors":{[^}]*}' "$out")" >&2; exit 1; }
# The cross-check verdict is recorded in the document too (the zero exit
# above already enforced it; this pins the field for artifact consumers).
grep -q '"consistent":true' "$out" \
    || { echo "load smoke: cross-check not recorded as consistent" >&2; exit 1; }
# The merged fleet view made it into the report: per-shard breakdown plus
# router counters prove the traffic went through the sharded tier.
grep -q '"shards":\[' "$out" \
    || { echo "load smoke: report carries no per-shard metrics breakdown" >&2; exit 1; }
grep -q '"router-routed":' "$out" \
    || { echo "load smoke: report carries no router counters" >&2; exit 1; }

drain=$(roundtrip POST /shutdown "")
echo "$drain" | grep -q '"status":"draining"' \
    || { echo "load smoke: shutdown did not drain: $drain" >&2; exit 1; }
# Router + 2 shard processes: give the fleet drain a little longer.
await_exit "$serve_pid" 15 \
    || { echo "load smoke: fleet did not exit after drain" >&2; exit 1; }
serve_pid=""

echo "load smoke: OK ($(grep -o '"reqs_per_s":[0-9.]*' "$out"), $(grep -o '"refs_per_s":[0-9.]*' "$out"))"
