#!/usr/bin/env bash
# Engine scaling benchmark: times the two parallel paths dynex-engine adds
# (sweep-level fan-out and set-sharded single-trace simulation) at jobs=1 vs
# jobs=N and writes accesses/second to results/BENCH_PR2.json.
#
#   scripts/bench.sh            # N = all cores (or 4 on a 1-core machine,
#                               #     to still exercise the parallel path)
#   DYNEX_BENCH_JOBS=8 scripts/bench.sh
#
# Both paths are exact — results are bit-identical at any worker count — so
# this script measures wall clock only. Numbers are recorded honestly: on a
# single-core machine expect ~1x (threading overhead included), not a
# speedup. See EXPERIMENTS.md "Engine scaling".
set -euo pipefail
cd "$(dirname "$0")/.."

CORES=$(nproc 2>/dev/null || echo 1)
JOBS_N=${DYNEX_BENCH_JOBS:-$CORES}
# On a 1-core machine jobs=N would equal jobs=1; use 4 workers so the
# parallel machinery (queue, shard merge) is actually on the measured path.
[ "$JOBS_N" -le 1 ] && JOBS_N=4

SWEEP_REFS=${DYNEX_BENCH_SWEEP_REFS:-2000000}
TRACE_REFS=${DYNEX_BENCH_TRACE_REFS:-10000000}
OUT=results/BENCH_PR2.json
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "==> cargo build --release"
cargo build --release --workspace -q

EXPERIMENTS=target/release/experiments
TRACEGEN=target/release/tracegen
SIMCACHE=target/release/simcache

now() { date +%s.%N; }
elapsed() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", b - a }'; }

# --- 1. figure sweep (fig5: size sweep x 10 benchmarks x 3 policies) -------
echo "==> figure sweep (fig5, $SWEEP_REFS refs) at jobs=1 vs jobs=$JOBS_N"
t0=$(now); "$EXPERIMENTS" --jobs 1 --refs "$SWEEP_REFS" fig5 >"$TMP/sweep1.txt"; t1=$(now)
SWEEP_S1=$(elapsed "$t0" "$t1")
t0=$(now); "$EXPERIMENTS" --jobs "$JOBS_N" --refs "$SWEEP_REFS" fig5 >"$TMP/sweepN.txt"; t1=$(now)
SWEEP_SN=$(elapsed "$t0" "$t1")
# Determinism spot check: the table must be identical at any worker count.
diff "$TMP/sweep1.txt" "$TMP/sweepN.txt" >/dev/null \
    || { echo "bench: sweep output differs between jobs=1 and jobs=$JOBS_N" >&2; exit 1; }

# --- 2. single trace, set-sharded (10M-access gcc trace, 32KB DE) ----------
echo "==> single trace ($TRACE_REFS refs, 32K de) serial vs --shard-sets --jobs $JOBS_N"
"$TRACEGEN" gcc --refs "$TRACE_REFS" "$TMP/gcc.dxt" >/dev/null
t0=$(now); "$SIMCACHE" "$TMP/gcc.dxt" --size 32K --org de --jobs 1 >"$TMP/trace1.txt"; t1=$(now)
TRACE_S1=$(elapsed "$t0" "$t1")
t0=$(now); "$SIMCACHE" "$TMP/gcc.dxt" --size 32K --org de --shard-sets --jobs "$JOBS_N" >"$TMP/traceN.txt"; t1=$(now)
TRACE_SN=$(elapsed "$t0" "$t1")

rate() { awk -v refs="$1" -v s="$2" 'BEGIN { printf "%.0f", refs / s }'; }
ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

mkdir -p results
cat >"$OUT" <<EOF
{
  "bench": "dynex-engine scaling (PR 2)",
  "machine": { "cores": $CORES, "jobs_n": $JOBS_N },
  "figure_sweep": {
    "experiment": "fig5",
    "refs_per_benchmark": $SWEEP_REFS,
    "seconds_jobs_1": $SWEEP_S1,
    "seconds_jobs_n": $SWEEP_SN,
    "speedup": $(ratio "$SWEEP_S1" "$SWEEP_SN")
  },
  "single_trace_set_sharded": {
    "trace": "gcc",
    "accesses": $TRACE_REFS,
    "config": "32K de",
    "seconds_serial": $TRACE_S1,
    "seconds_sharded_jobs_n": $TRACE_SN,
    "accesses_per_second_serial": $(rate "$TRACE_REFS" "$TRACE_S1"),
    "accesses_per_second_sharded": $(rate "$TRACE_REFS" "$TRACE_SN"),
    "speedup": $(ratio "$TRACE_S1" "$TRACE_SN")
  }
}
EOF

echo "bench: wrote $OUT"
cat "$OUT"
