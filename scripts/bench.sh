#!/usr/bin/env bash
# Repository benchmarks, one JSON artifact per PR's performance claim:
#
#   scripts/bench.sh            # all sections
#   scripts/bench.sh pr2        # engine scaling only  -> results/BENCH_PR2.json
#   scripts/bench.sh pr4        # batch kernel only    -> results/BENCH_PR4.json
#   scripts/bench.sh pr6        # tracing overhead     -> results/BENCH_PR6.json
#   scripts/bench.sh pr9        # sweep kernel         -> results/BENCH_PR9.json
#   scripts/bench.sh pr10       # policy zoo           -> results/BENCH_PR10.json
#
# Environment knobs:
#   DYNEX_BENCH_JOBS=8          worker count for the parallel runs
#   DYNEX_BENCH_SWEEP_REFS=N    per-benchmark budget for the figure sweeps
#   DYNEX_BENCH_TRACE_REFS=N    single-trace length
#   DYNEX_BENCH_OUT_DIR=DIR     where the JSON lands (default results/)
#
# Sections:
#   pr2  engine scaling: sweep fan-out and set-sharded single-trace runs at
#        jobs=1 vs jobs=N (see EXPERIMENTS.md "Engine scaling")
#   pr4  batch kernel: reference vs batch refs-per-second on dm/de/opt single
#        traces and on a full figure sweep (fused triple), both at jobs=1 so
#        the kernel, not the pool, is the measured variable
#   pr6  tracing overhead: the fused batch kernel with tracing off vs a full
#        --trace-out span stream on the same trace (outputs diffed for
#        bit-identity), plus the span_report.sh self-profile of the stream
#   pr9  sweep kernel: the one-pass multi-configuration sweep vs per-point
#        batch kernels on fig5 and the full figure set, plus refs/s scaling
#        at N = 1/4/16/64 simultaneous configs via `simcache --sweep`
#   pr10 policy zoo: reference vs batch refs-per-second for every policy the
#        capability matrix specializes on both kernels (dm/de/opt plus the
#        ehc and bwcost zoo members), outputs diffed for bit-identity
#
# Every timed pair also diffs its outputs: the benchmarks double as
# determinism/bit-identity checks, so a silent divergence fails the script.
# Numbers are recorded honestly: on a single-core machine the pr2 speedups
# are ~1x (threading overhead included).
set -euo pipefail
cd "$(dirname "$0")/.."

SECTION=${1:-all}
case "$SECTION" in
    pr2|pr4|pr6|pr9|pr10|all) ;;
    *) echo "usage: scripts/bench.sh [pr2|pr4|pr6|pr9|pr10|all]" >&2; exit 2 ;;
esac

CORES=$(nproc 2>/dev/null || echo 1)
JOBS_N=${DYNEX_BENCH_JOBS:-$CORES}
# On a 1-core machine jobs=N would equal jobs=1; use 4 workers so the
# parallel machinery (queue, shard merge) is actually on the measured path.
[ "$JOBS_N" -le 1 ] && JOBS_N=4

SWEEP_REFS=${DYNEX_BENCH_SWEEP_REFS:-2000000}
TRACE_REFS=${DYNEX_BENCH_TRACE_REFS:-10000000}
OUT_DIR=${DYNEX_BENCH_OUT_DIR:-results}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "==> cargo build --release"
cargo build --release --workspace -q

EXPERIMENTS=target/release/experiments
TRACEGEN=target/release/tracegen
SIMCACHE=target/release/simcache

now() { date +%s.%N; }
elapsed() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", b - a }'; }
rate() { awk -v refs="$1" -v s="$2" 'BEGIN { printf "%.0f", refs / s }'; }
ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

mkdir -p "$OUT_DIR"

# The gcc trace is shared by both sections; generated once on demand.
GCC_TRACE=""
gcc_trace() {
    if [ -z "$GCC_TRACE" ]; then
        GCC_TRACE="$TMP/gcc.dxt"
        "$TRACEGEN" gcc --refs "$TRACE_REFS" "$GCC_TRACE" >/dev/null
    fi
}

# ---------------------------------------------------------------------------
# pr2: engine scaling (sweep fan-out, set-sharded single trace)
# ---------------------------------------------------------------------------
bench_pr2() {
    local out="$OUT_DIR/BENCH_PR2.json"

    echo "==> [pr2] figure sweep (fig5, $SWEEP_REFS refs) at jobs=1 vs jobs=$JOBS_N"
    t0=$(now); "$EXPERIMENTS" --jobs 1 --refs "$SWEEP_REFS" fig5 >"$TMP/sweep1.txt"; t1=$(now)
    local sweep_s1; sweep_s1=$(elapsed "$t0" "$t1")
    t0=$(now); "$EXPERIMENTS" --jobs "$JOBS_N" --refs "$SWEEP_REFS" fig5 >"$TMP/sweepN.txt"; t1=$(now)
    local sweep_sn; sweep_sn=$(elapsed "$t0" "$t1")
    # Determinism spot check: the table must be identical at any worker count.
    diff "$TMP/sweep1.txt" "$TMP/sweepN.txt" >/dev/null \
        || { echo "bench: sweep output differs between jobs=1 and jobs=$JOBS_N" >&2; exit 1; }

    echo "==> [pr2] single trace ($TRACE_REFS refs, 32K de) serial vs --shard-sets --jobs $JOBS_N"
    gcc_trace
    t0=$(now); "$SIMCACHE" "$GCC_TRACE" --size 32K --org de --jobs 1 >"$TMP/trace1.txt"; t1=$(now)
    local trace_s1; trace_s1=$(elapsed "$t0" "$t1")
    t0=$(now); "$SIMCACHE" "$GCC_TRACE" --size 32K --org de --shard-sets --jobs "$JOBS_N" >"$TMP/traceN.txt"; t1=$(now)
    local trace_sn; trace_sn=$(elapsed "$t0" "$t1")

    cat >"$out" <<EOF
{
  "bench": "dynex-engine scaling (PR 2)",
  "machine": { "cores": $CORES, "jobs_n": $JOBS_N },
  "figure_sweep": {
    "experiment": "fig5",
    "refs_per_benchmark": $SWEEP_REFS,
    "seconds_jobs_1": $sweep_s1,
    "seconds_jobs_n": $sweep_sn,
    "speedup": $(ratio "$sweep_s1" "$sweep_sn")
  },
  "single_trace_set_sharded": {
    "trace": "gcc",
    "accesses": $TRACE_REFS,
    "config": "32K de",
    "seconds_serial": $trace_s1,
    "seconds_sharded_jobs_n": $trace_sn,
    "accesses_per_second_serial": $(rate "$TRACE_REFS" "$trace_s1"),
    "accesses_per_second_sharded": $(rate "$TRACE_REFS" "$trace_sn"),
    "speedup": $(ratio "$trace_s1" "$trace_sn")
  }
}
EOF
    echo "bench: wrote $out"
    cat "$out"
}

# ---------------------------------------------------------------------------
# pr4: batch kernel vs reference simulators (refs per second)
# ---------------------------------------------------------------------------

# run_kernel ORG KERNEL TAG: one simcache run at jobs=1 (the kernel swap is
# the only variable on the measured path). Sets KERNEL_SECS to the total
# wall seconds and KERNEL_RATE to the simulation-only refs/s that simcache
# reports on stderr ("sim: N references in S (R refs/s)") — the rate is the
# kernel comparison, the wall seconds record the end-to-end cost honestly
# (trace load/decode included, identical for both kernels).
run_kernel() {
    local org="$1" kernel="$2" tag="$3" t0 t1
    t0=$(now)
    "$SIMCACHE" "$GCC_TRACE" --size 32K --org "$org" --kernel "$kernel" --jobs 1 \
        >"$TMP/$tag.txt" 2>"$TMP/$tag.err"
    t1=$(now)
    KERNEL_SECS=$(elapsed "$t0" "$t1")
    KERNEL_RATE=$(awk '/^sim:/ { gsub(/[()]/, ""); print $(NF-1) }' "$TMP/$tag.err")
    [ -n "$KERNEL_RATE" ] || { echo "bench: no sim: line in $tag stderr" >&2; exit 1; }
}

bench_pr4() {
    local out="$OUT_DIR/BENCH_PR4.json"
    gcc_trace

    local orgs_json=""
    local org sr sb rr rb
    for org in dm de opt; do
        echo "==> [pr4] single trace ($TRACE_REFS refs, 32K $org): reference vs batch kernel"
        run_kernel "$org" reference "$org-ref"; sr=$KERNEL_SECS; rr=$KERNEL_RATE
        run_kernel "$org" batch "$org-batch"; sb=$KERNEL_SECS; rb=$KERNEL_RATE
        # Bit-identity check: the kernels must print the same statistics.
        diff "$TMP/$org-ref.txt" "$TMP/$org-batch.txt" >/dev/null \
            || { echo "bench: $org output differs between kernels" >&2; exit 1; }
        [ -n "$orgs_json" ] && orgs_json="$orgs_json,"
        orgs_json="$orgs_json
    \"$org\": {
      \"seconds_total_reference\": $sr,
      \"seconds_total_batch\": $sb,
      \"refs_per_second_reference\": $rr,
      \"refs_per_second_batch\": $rb,
      \"speedup\": $(ratio "$rb" "$rr")
    }"
    done

    echo "==> [pr4] figure sweep (fig5, $SWEEP_REFS refs, jobs=1): reference vs fused batch triple"
    t0=$(now); "$EXPERIMENTS" --jobs 1 --kernel reference --refs "$SWEEP_REFS" fig5 >"$TMP/fig5-ref.txt"; t1=$(now)
    local sweep_sr; sweep_sr=$(elapsed "$t0" "$t1")
    t0=$(now); "$EXPERIMENTS" --jobs 1 --kernel batch --refs "$SWEEP_REFS" fig5 >"$TMP/fig5-batch.txt"; t1=$(now)
    local sweep_sb; sweep_sb=$(elapsed "$t0" "$t1")
    diff "$TMP/fig5-ref.txt" "$TMP/fig5-batch.txt" >/dev/null \
        || { echo "bench: fig5 output differs between kernels" >&2; exit 1; }

    cat >"$out" <<EOF
{
  "bench": "dynex batch kernel (PR 4)",
  "machine": { "cores": $CORES },
  "single_trace": {
    "trace": "gcc",
    "accesses": $TRACE_REFS,
    "config": "32K, jobs=1",
    "orgs": {$orgs_json
    }
  },
  "figure_sweep_fused_triple": {
    "experiment": "fig5",
    "refs_per_benchmark": $SWEEP_REFS,
    "seconds_reference": $sweep_sr,
    "seconds_batch": $sweep_sb,
    "speedup": $(ratio "$sweep_sr" "$sweep_sb")
  }
}
EOF
    echo "bench: wrote $out"
    cat "$out"
}

# ---------------------------------------------------------------------------
# pr6: tracing overhead (fused batch kernel, tracing off vs --trace-out)
# ---------------------------------------------------------------------------
bench_pr6() {
    local out="$OUT_DIR/BENCH_PR6.json"
    gcc_trace

    echo "==> [pr6] single trace ($TRACE_REFS refs, 32K de batch): untraced vs --trace-out"
    # Untimed warmup: the first reader of the freshly written trace pays the
    # page-cache fill (~seconds for the 10M-ref file), which would otherwise
    # land entirely on the untraced side of the timed pair.
    "$SIMCACHE" "$GCC_TRACE" --size 32K --org de --kernel batch --jobs 1 >/dev/null 2>&1
    run_kernel de batch "de-untraced"
    local s_off=$KERNEL_SECS r_off=$KERNEL_RATE

    local spans="$TMP/pr6-spans.jsonl" t0 t1
    t0=$(now)
    "$SIMCACHE" "$GCC_TRACE" --size 32K --org de --kernel batch --jobs 1 \
        --trace-out "$spans" >"$TMP/de-traced.txt" 2>"$TMP/de-traced.err"
    t1=$(now)
    local s_on; s_on=$(elapsed "$t0" "$t1")
    local r_on; r_on=$(awk '/^sim:/ { gsub(/[()]/, ""); print $(NF-1) }' "$TMP/de-traced.err")
    [ -n "$r_on" ] || { echo "bench: no sim: line in traced stderr" >&2; exit 1; }

    # Bit-identity: tracing must not change a single output byte.
    diff "$TMP/de-untraced.txt" "$TMP/de-traced.txt" >/dev/null \
        || { echo "bench: output differs between untraced and traced runs" >&2; exit 1; }
    [ -s "$spans" ] || { echo "bench: --trace-out produced no spans" >&2; exit 1; }
    grep -q '"stage":"kernel.simulate"' "$spans" \
        || { echo "bench: span stream has no kernel.simulate spans" >&2; exit 1; }

    # Overhead of the *fully traced* run in percent (negative = traced run
    # measured faster; noise on short runs). The <2% acceptance bound applies
    # to the untraced path vs PR 4, which this same r_off number records.
    local overhead_pct
    overhead_pct=$(awk -v off="$r_off" -v on="$r_on" \
        'BEGIN { printf "%.2f", (off - on) * 100.0 / off }')

    echo "==> [pr6] span_report.sh self-profile"
    scripts/span_report.sh "$spans"
    local profile_json
    profile_json=$(scripts/span_report.sh --json "$spans")

    cat >"$out" <<EOF
{
  "bench": "dynex tracing overhead (PR 6)",
  "machine": { "cores": $CORES },
  "single_trace": {
    "trace": "gcc",
    "accesses": $TRACE_REFS,
    "config": "32K de, batch kernel, jobs=1",
    "seconds_untraced": $s_off,
    "seconds_traced": $s_on,
    "refs_per_second_untraced": $r_off,
    "refs_per_second_traced": $r_on,
    "traced_overhead_percent": $overhead_pct
  },
  "span_profile": $profile_json
}
EOF
    echo "bench: wrote $out"
    cat "$out"
}

# ---------------------------------------------------------------------------
# pr9: one-pass sweep kernel vs per-point kernels (fig5, figure set, N scaling)
# ---------------------------------------------------------------------------

# run_figures KERNEL IDS TAG: one experiments run at jobs=1 under KERNEL.
# Sets FIG_SECS to the wall seconds; output lands in $TMP/$tag.txt for the
# bit-identity diffs below.
run_figures() {
    local kernel="$1" ids="$2" tag="$3" t0 t1
    t0=$(now)
    # shellcheck disable=SC2086 # ids is an intentional word list
    "$EXPERIMENTS" --jobs 1 --kernel "$kernel" --refs "$SWEEP_REFS" $ids >"$TMP/$tag.txt"
    t1=$(now)
    FIG_SECS=$(elapsed "$t0" "$t1")
}

# run_sweep KERNEL SIZES TAG: one `simcache --sweep` run at jobs=1 — N
# dm/de/opt triples over SIZES in whatever pass structure KERNEL uses (the
# sweep kernel rides one traversal; the batch kernel runs per point). Sets
# SWEEP_SECS and SWEEP_RATE like run_kernel, from the same stderr `sim:` line
# (refs there = trace length x N configs, so the rate is cross-N comparable).
run_sweep() {
    local kernel="$1" sizes="$2" tag="$3" t0 t1
    t0=$(now)
    "$SIMCACHE" "$GCC_TRACE" --size 32K --sweep "$sizes" --kernel "$kernel" --jobs 1 \
        >"$TMP/$tag.txt" 2>"$TMP/$tag.err"
    t1=$(now)
    SWEEP_SECS=$(elapsed "$t0" "$t1")
    SWEEP_RATE=$(awk '/^sim:/ { gsub(/[()]/, ""); print $(NF-1) }' "$TMP/$tag.err")
    [ -n "$SWEEP_RATE" ] || { echo "bench: no sim: line in $tag stderr" >&2; exit 1; }
}

bench_pr9() {
    local out="$OUT_DIR/BENCH_PR9.json"
    gcc_trace

    echo "==> [pr9] figure sweep (fig5, $SWEEP_REFS refs, jobs=1): reference vs batch triple vs one-pass sweep"
    run_figures reference fig5 "pr9-fig5-ref";   local fig5_sr=$FIG_SECS
    run_figures batch     fig5 "pr9-fig5-batch"; local fig5_sb=$FIG_SECS
    run_figures sweep     fig5 "pr9-fig5-sweep"; local fig5_ss=$FIG_SECS
    # Bit-identity: all three kernels must render the same table bytes.
    diff "$TMP/pr9-fig5-ref.txt" "$TMP/pr9-fig5-batch.txt" >/dev/null \
        || { echo "bench: fig5 output differs between reference and batch kernels" >&2; exit 1; }
    diff "$TMP/pr9-fig5-batch.txt" "$TMP/pr9-fig5-sweep.txt" >/dev/null \
        || { echo "bench: fig5 output differs between batch and sweep kernels" >&2; exit 1; }

    echo "==> [pr9] full figure set ($SWEEP_REFS refs, jobs=1): batch triple vs one-pass sweep"
    run_figures batch all "pr9-all-batch"; local all_sb=$FIG_SECS
    run_figures sweep all "pr9-all-sweep"; local all_ss=$FIG_SECS
    diff "$TMP/pr9-all-batch.txt" "$TMP/pr9-all-sweep.txt" >/dev/null \
        || { echo "bench: figure set output differs between batch and sweep kernels" >&2; exit 1; }

    # Untimed warmup: the first reader of the freshly written trace pays the
    # page-cache fill (see pr6), which would otherwise land on the N=1 batch
    # row below and flatter the sweep kernel.
    "$SIMCACHE" "$GCC_TRACE" --size 32K --org de --kernel batch --jobs 1 >/dev/null 2>&1

    # N-config scaling: dm/de/opt triples at N cache sizes through one trace.
    # The size list cycles an 8-point ladder; repeats are legitimate sweep
    # points (independent state) and keep the footprint-per-config constant.
    local ladder="1K,2K,4K,8K,16K,32K,64K,128K"
    local scaling_json="" n sizes sb rb ss rs
    for n in 1 4 16 64; do
        case "$n" in
            1)  sizes="32K" ;;
            4)  sizes="8K,16K,32K,64K" ;;
            16) sizes="$ladder,$ladder" ;;
            64) sizes="$ladder,$ladder,$ladder,$ladder,$ladder,$ladder,$ladder,$ladder" ;;
        esac
        echo "==> [pr9] N=$n config sweep ($TRACE_REFS refs, jobs=1): batch vs sweep kernel"
        run_sweep batch "$sizes" "pr9-n$n-batch"; sb=$SWEEP_SECS; rb=$SWEEP_RATE
        run_sweep sweep "$sizes" "pr9-n$n-sweep"; ss=$SWEEP_SECS; rs=$SWEEP_RATE
        diff "$TMP/pr9-n$n-batch.txt" "$TMP/pr9-n$n-sweep.txt" >/dev/null \
            || { echo "bench: N=$n sweep output differs between kernels" >&2; exit 1; }
        [ -n "$scaling_json" ] && scaling_json="$scaling_json,"
        scaling_json="$scaling_json
    {
      \"configs\": $n,
      \"sizes\": \"$sizes\",
      \"seconds_batch\": $sb,
      \"seconds_sweep\": $ss,
      \"refs_per_second_batch\": $rb,
      \"refs_per_second_sweep\": $rs,
      \"speedup\": $(ratio "$rs" "$rb")
    }"
    done

    cat >"$out" <<EOF
{
  "bench": "dynex sweep kernel (PR 9)",
  "machine": { "cores": $CORES },
  "figure_sweep": {
    "experiment": "fig5",
    "refs_per_benchmark": $SWEEP_REFS,
    "seconds_reference": $fig5_sr,
    "seconds_batch_triple": $fig5_sb,
    "seconds_sweep": $fig5_ss,
    "speedup_vs_reference": $(ratio "$fig5_sr" "$fig5_ss"),
    "speedup_vs_batch_triple": $(ratio "$fig5_sb" "$fig5_ss")
  },
  "figure_set": {
    "experiment": "all",
    "refs_per_benchmark": $SWEEP_REFS,
    "seconds_batch_triple": $all_sb,
    "seconds_sweep": $all_ss,
    "speedup_vs_batch_triple": $(ratio "$all_sb" "$all_ss")
  },
  "n_config_scaling": {
    "trace": "gcc",
    "accesses": $TRACE_REFS,
    "points": [$scaling_json
    ]
  }
}
EOF
    echo "bench: wrote $out"
    cat "$out"
}

# ---------------------------------------------------------------------------
# pr10: policy zoo (reference vs batch refs/s for every batch-specialized
# policy, bit-identity enforced per policy)
# ---------------------------------------------------------------------------
bench_pr10() {
    local out="$OUT_DIR/BENCH_PR10.json"
    gcc_trace

    # Untimed warmup (see pr6): the first reader of the freshly written
    # trace pays the page-cache fill.
    "$SIMCACHE" "$GCC_TRACE" --size 32K --policy dm --kernel batch --jobs 1 >/dev/null 2>&1

    # Every policy with a batch specialization in the capability matrix; the
    # sweep kernel deliberately has no ehc/bwcost support, so the zoo rows
    # compare the two kernels that do.
    local policies_json=""
    local policy sr sb rr rb
    for policy in dm de opt ehc bwcost; do
        echo "==> [pr10] single trace ($TRACE_REFS refs, 32K $policy): reference vs batch kernel"
        run_kernel "$policy" reference "pr10-$policy-ref"; sr=$KERNEL_SECS; rr=$KERNEL_RATE
        run_kernel "$policy" batch "pr10-$policy-batch"; sb=$KERNEL_SECS; rb=$KERNEL_RATE
        # Bit-identity check: the kernels must print the same statistics
        # (for ehc/bwcost that includes the fills/writebacks/probes traffic
        # counters the zoo driver accounts).
        diff "$TMP/pr10-$policy-ref.txt" "$TMP/pr10-$policy-batch.txt" >/dev/null \
            || { echo "bench: $policy output differs between kernels" >&2; exit 1; }
        [ -n "$policies_json" ] && policies_json="$policies_json,"
        policies_json="$policies_json
    \"$policy\": {
      \"seconds_total_reference\": $sr,
      \"seconds_total_batch\": $sb,
      \"refs_per_second_reference\": $rr,
      \"refs_per_second_batch\": $rb,
      \"speedup\": $(ratio "$rb" "$rr")
    }"
    done

    # The declared-unsupported combination must fail loudly, not fall back:
    # a capability error naming the supported kernels, and a non-zero exit.
    echo "==> [pr10] capability wall: ehc on the sweep kernel must refuse"
    if "$SIMCACHE" "$GCC_TRACE" --size 32K --policy ehc --kernel sweep --jobs 1 \
        >/dev/null 2>"$TMP/pr10-ehc-sweep.err"; then
        echo "bench: ehc on the sweep kernel should have failed" >&2; exit 1
    fi
    grep -q "supported kernels" "$TMP/pr10-ehc-sweep.err" \
        || { echo "bench: ehc sweep refusal is not the capability error: $(cat "$TMP/pr10-ehc-sweep.err")" >&2; exit 1; }

    cat >"$out" <<JSONEOF
{
  "bench": "dynex policy zoo (PR 10)",
  "machine": { "cores": $CORES },
  "single_trace": {
    "trace": "gcc",
    "accesses": $TRACE_REFS,
    "config": "32K, jobs=1",
    "policies": {$policies_json
    }
  },
  "capability_wall": {
    "combo": "ehc x sweep kernel",
    "refused_with_capability_error": true
  }
}
JSONEOF
    echo "bench: wrote $out"
    cat "$out"
}

case "$SECTION" in
    pr2) bench_pr2 ;;
    pr4) bench_pr4 ;;
    pr6) bench_pr6 ;;
    pr9) bench_pr9 ;;
    pr10) bench_pr10 ;;
    all) bench_pr2; bench_pr4; bench_pr6; bench_pr9; bench_pr10 ;;
esac
