//! The open-loop runner: a fixed arrival schedule, K sender threads, and
//! per-request accounting (crate docs explain why open-loop).

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use dynex_experiments::api::mix::{MixConfig, RequestMix};
use dynex_obs::span::LATENCY_BUCKETS_MAX_EXP;
use dynex_obs::{json, Histogram};
use dynex_serve::{client, shard_for_key};

use crate::chaos::{self, ChaosConfig, ChaosMonitor};
use crate::report::LoadReport;

/// Configuration for one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The server (or router) to drive.
    pub target: SocketAddr,
    /// Open-loop arrival rate in requests per second; request `i` is due
    /// at `i / rate` seconds after the run starts, regardless of how the
    /// server is coping.
    pub rate: f64,
    /// How long the arrival schedule runs (`ceil(rate × duration)`
    /// requests total).
    pub duration: Duration,
    /// Sender threads draining the schedule (request `i` belongs to
    /// thread `i % senders`).
    pub senders: usize,
    /// Per-request connect/read/write timeout.
    pub timeout: Duration,
    /// Fetch the target's `/metrics` after the run for the cross-check.
    pub fetch_server_metrics: bool,
    /// The seeded request mix to draw the stream from.
    pub mix: MixConfig,
    /// Kill shard workers mid-run and audit the recovery (requires a
    /// sharded target — see [`crate::chaos`]).
    pub chaos: Option<ChaosConfig>,
}

impl LoadConfig {
    /// A short default run against `target`: 50 req/s for 5 seconds from
    /// 4 senders, the default duplicate-heavy mix, metrics cross-check on.
    pub fn new(target: SocketAddr) -> LoadConfig {
        LoadConfig {
            target,
            rate: 50.0,
            duration: Duration::from_secs(5),
            senders: 4,
            timeout: Duration::from_secs(30),
            fetch_server_metrics: true,
            mix: MixConfig::default(),
            chaos: None,
        }
    }
}

/// What one sender thread accumulates; merged across threads afterwards.
struct SenderStats {
    sent: u64,
    completed: u64,
    ok: u64,
    cached_hits: u64,
    refs_total: u64,
    max_send_lag_us: u64,
    errors: BTreeMap<String, u64>,
    e2e: Histogram,
    e2e_total_us: u64,
    service: Histogram,
    service_total_us: u64,
}

impl SenderStats {
    fn new() -> SenderStats {
        SenderStats {
            sent: 0,
            completed: 0,
            ok: 0,
            cached_hits: 0,
            refs_total: 0,
            max_send_lag_us: 0,
            errors: BTreeMap::new(),
            e2e: Histogram::pow2(LATENCY_BUCKETS_MAX_EXP),
            e2e_total_us: 0,
            service: Histogram::pow2(LATENCY_BUCKETS_MAX_EXP),
            service_total_us: 0,
        }
    }

    fn merge(&mut self, other: &SenderStats) {
        self.sent += other.sent;
        self.completed += other.completed;
        self.ok += other.ok;
        self.cached_hits += other.cached_hits;
        self.refs_total += other.refs_total;
        self.max_send_lag_us = self.max_send_lag_us.max(other.max_send_lag_us);
        for (kind, count) in &other.errors {
            *self.errors.entry(kind.clone()).or_insert(0) += count;
        }
        self.e2e.merge(&other.e2e);
        self.e2e_total_us += other.e2e_total_us;
        self.service.merge(&other.service);
        self.service_total_us += other.service_total_us;
    }
}

/// Buckets a transport-layer error string for the taxonomy. The client's
/// errors are human-readable prose; three coarse kinds are enough to tell
/// "server gone" from "server wedged" from everything else.
fn transport_kind(error: &str) -> &'static str {
    if error.starts_with("connect") {
        "transport-connect"
    } else if error.contains("timed out") || error.contains("unavailable") {
        // Unix read/write timeouts surface as WouldBlock ("Resource
        // temporarily unavailable"); connect timeouts as "timed out".
        "transport-timeout"
    } else {
        "transport-other"
    }
}

/// Extracts the `"accesses":N` field from a `/simulate` response body —
/// the number of simulated cache references this response represents.
fn parse_accesses(body: &str) -> Option<u64> {
    let start = body.find("\"accesses\":")? + "\"accesses\":".len();
    let digits: String = body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Converts a duration to whole microseconds, saturating (the histograms
/// cap out at ~18 minutes anyway).
fn as_us(duration: Duration) -> u64 {
    duration.as_micros().min(u64::MAX as u128) as u64
}

/// Drives one open-loop run and returns the measured [`LoadReport`].
///
/// The whole request stream is generated up front on the calling thread —
/// mix determinism is independent of sender interleaving — then the
/// schedule is split across `senders` threads. A sender sleeps until a
/// request's scheduled arrival but **never** waits for the previous
/// response: when the server is slower than the schedule, requests go out
/// late and the lateness lands in the e2e histogram (that is the point of
/// an open loop). Latencies are recorded for every completed HTTP
/// exchange, any status; transport failures are counted in the error
/// taxonomy but contribute no latency sample (a timeout's "latency" is
/// the timeout setting, which would only restate configuration).
pub fn run(config: &LoadConfig) -> Result<LoadReport, String> {
    if !(config.rate.is_finite() && config.rate > 0.0) {
        return Err(format!(
            "rate must be a positive number, got {}",
            config.rate
        ));
    }
    if config.duration.is_zero() {
        return Err("duration must be positive".to_owned());
    }
    if config.senders == 0 {
        return Err("need at least one sender thread".to_owned());
    }

    let scheduled = (config.rate * config.duration.as_secs_f64())
        .ceil()
        .max(1.0) as usize;

    // Chaos pre-flight: learn the fleet shape (and that there *is* a
    // fleet), validate the schedule against it, and stand up the monitor.
    let chaos_setup = match &config.chaos {
        Some(chaos_config) => {
            let shards = chaos::fetch_shards(config.target, config.timeout)
                .map_err(|e| format!("chaos pre-flight: {e}"))?;
            for kill in &chaos_config.kills {
                if kill.shard >= shards.len() {
                    return Err(format!(
                        "chaos kills shard {} but the fleet has {} shard(s)",
                        kill.shard,
                        shards.len()
                    ));
                }
            }
            Some((chaos_config, shards.len(), ChaosMonitor::new(chaos_config)))
        }
        None => None,
    };
    let n_shards = chaos_setup.as_ref().map(|(_, n, _)| *n);

    let mut mix = RequestMix::new(config.mix.clone()).map_err(|e| format!("request mix: {e}"))?;
    // Each entry is (serialized body, owning shard slot); the owner is
    // the router's own placement function over the request's routing key,
    // so chaos accounting attributes every response to the worker that
    // computed it. 0 when no chaos (unused).
    let bodies: Vec<(String, usize)> = (0..scheduled)
        .map(|_| {
            let request = mix.next_request();
            let owner = match n_shards {
                Some(n) => {
                    let key = request
                        .routing_key()
                        .map_err(|e| format!("routing key: {e}"))?;
                    shard_for_key(&key, n)
                }
                None => 0,
            };
            Ok((request.to_json(), owner))
        })
        .collect::<Result<_, String>>()?;

    // A small grace offset so request 0 is not already late before the
    // sender threads have even spawned.
    let start = Instant::now() + Duration::from_millis(50);
    let mut totals = SenderStats::new();
    std::thread::scope(|scope| {
        // The killer thread shares the senders' schedule clock: a kill at
        // `@2` lands 2 seconds into the arrival schedule. The victim's pid
        // is re-read from /healthz right before each kill, so a second
        // kill of the same slot hits the respawned worker.
        if let Some((chaos_config, _, monitor)) = &chaos_setup {
            scope.spawn(move || {
                let mut order: Vec<usize> = (0..chaos_config.kills.len()).collect();
                order.sort_by_key(|&i| chaos_config.kills[i].at);
                for index in order {
                    let kill = chaos_config.kills[index];
                    let due = start + kill.at;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    match chaos::fetch_shards(config.target, config.timeout) {
                        Ok(rows) => match rows.iter().find(|r| r.id == kill.shard) {
                            Some(row) if row.pid != 0 => match chaos::kill_pid(row.pid) {
                                Ok(()) => {
                                    monitor.record_kill(index, row.pid);
                                    eprintln!(
                                        "chaos: killed shard {} worker (pid {})",
                                        kill.shard, row.pid
                                    );
                                }
                                Err(e) => eprintln!("chaos: {e}"),
                            },
                            _ => eprintln!("chaos: shard {} has no live pid to kill", kill.shard),
                        },
                        Err(e) => eprintln!("chaos: healthz before kill: {e}"),
                    }
                }
            });
        }
        let monitor = chaos_setup.as_ref().map(|(_, _, monitor)| monitor);
        let handles: Vec<_> = (0..config.senders)
            .map(|sender| {
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut stats = SenderStats::new();
                    let mut index = sender;
                    while index < bodies.len() {
                        let due = start + Duration::from_secs_f64(index as f64 / config.rate);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let send_at = Instant::now();
                        stats.max_send_lag_us = stats
                            .max_send_lag_us
                            .max(as_us(send_at.duration_since(due)));
                        let (body, owner) = &bodies[index];
                        let outcome =
                            client::call(config.target, "POST", "/simulate", body, config.timeout);
                        let done = Instant::now();
                        stats.sent += 1;
                        match outcome {
                            Ok(response) => {
                                stats.completed += 1;
                                let e2e_us = as_us(done.duration_since(due));
                                let service_us = as_us(done.duration_since(send_at));
                                stats.e2e.record(e2e_us);
                                stats.e2e_total_us += e2e_us;
                                // A router-origin 503 (breaker open / relay
                                // failure — the body names the shard) never
                                // reached a worker, so it contributes no
                                // *service* sample: the service histogram is
                                // cross-checked against server-side request
                                // latencies, which these never had.
                                let router_503 =
                                    response.status == 503 && response.body.contains("\"shard\":");
                                if !router_503 {
                                    stats.service.record(service_us);
                                    stats.service_total_us += service_us;
                                }
                                if let Some(monitor) = monitor {
                                    monitor.observe(
                                        *owner,
                                        response.status,
                                        &response.body,
                                        chaos::body_hash(body),
                                        done,
                                    );
                                }
                                if response.status == 200 {
                                    stats.ok += 1;
                                    if response.body.contains("\"cached\":true") {
                                        stats.cached_hits += 1;
                                    }
                                    stats.refs_total += parse_accesses(&response.body).unwrap_or(0);
                                } else {
                                    *stats
                                        .errors
                                        .entry(format!("http-{}", response.status))
                                        .or_insert(0) += 1;
                                }
                            }
                            Err(e) => {
                                *stats
                                    .errors
                                    .entry(transport_kind(&e).to_owned())
                                    .or_insert(0) += 1;
                            }
                        }
                        index += config.senders;
                    }
                    stats
                })
            })
            .collect();
        for handle in handles {
            // A sender panicking is a harness bug; propagate it loudly.
            totals.merge(&handle.join().expect("sender thread panicked"));
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let server_metrics = if config.fetch_server_metrics {
        let response = client::call(config.target, "GET", "/metrics", "", config.timeout)
            .map_err(|e| format!("post-run /metrics fetch: {e}"))?;
        if response.status != 200 {
            return Err(format!(
                "post-run /metrics fetch returned {}",
                response.status
            ));
        }
        let parsed = json::parse(&response.body)
            .map_err(|e| format!("post-run /metrics is not valid JSON: {e}"))?;
        Some((response.body, parsed))
    } else {
        None
    };

    // Close the chaos books with the post-run fleet view: respawn counts
    // and breaker states land in the report next to what the monitor saw.
    let chaos_report = match chaos_setup {
        Some((chaos_config, _, monitor)) => {
            let rows = chaos::fetch_shards(config.target, config.timeout)
                .map_err(|e| format!("chaos post-run: {e}"))?;
            Some(monitor.finish(chaos_config, &rows))
        }
        None => None,
    };

    Ok(LoadReport {
        target: config.target.to_string(),
        rate: config.rate,
        duration_s: config.duration.as_secs_f64(),
        senders: config.senders,
        timeout_s: config.timeout.as_secs_f64(),
        mix: config.mix.clone(),
        scheduled,
        sent: totals.sent,
        completed: totals.completed,
        ok: totals.ok,
        cached_hits: totals.cached_hits,
        errors: totals.errors,
        max_send_lag_us: totals.max_send_lag_us,
        wall_s,
        refs_total: totals.refs_total,
        e2e: totals.e2e,
        e2e_total_us: totals.e2e_total_us,
        service: totals.service,
        service_total_us: totals.service_total_us,
        server_metrics,
        chaos: chaos_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_configs_fail_loudly() {
        let target: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut config = LoadConfig::new(target);
        config.rate = 0.0;
        assert!(run(&config).unwrap_err().contains("rate"));
        config.rate = f64::NAN;
        assert!(run(&config).unwrap_err().contains("rate"));
        let mut config = LoadConfig::new(target);
        config.duration = Duration::ZERO;
        assert!(run(&config).unwrap_err().contains("duration"));
        let mut config = LoadConfig::new(target);
        config.senders = 0;
        assert!(run(&config).unwrap_err().contains("sender"));
        let mut config = LoadConfig::new(target);
        config.mix.duplicate_ratio = 7.0;
        assert!(run(&config).unwrap_err().contains("request mix"));
    }

    #[test]
    fn accesses_extraction() {
        assert_eq!(
            parse_accesses(r#"{"label":"x","accesses":100000,"misses":42}"#),
            Some(100_000)
        );
        assert_eq!(parse_accesses(r#"{"error":"nope"}"#), None);
        assert_eq!(parse_accesses(r#"{"accesses":"ten"}"#), None);
    }

    #[test]
    fn transport_taxonomy_buckets() {
        assert_eq!(
            transport_kind("connect to 127.0.0.1:1: Connection refused"),
            "transport-connect"
        );
        assert_eq!(
            transport_kind("read error: Resource temporarily unavailable (os error 11)"),
            "transport-timeout"
        );
        assert_eq!(
            transport_kind("write to 127.0.0.1:9: connection timed out"),
            "transport-timeout"
        );
        assert_eq!(
            transport_kind("response body is not UTF-8"),
            "transport-other"
        );
    }

    #[test]
    fn unreachable_target_yields_connect_errors_not_latency_samples() {
        // Bind-then-drop: a port that refuses connections immediately.
        let addr = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut config = LoadConfig::new(addr);
        config.rate = 200.0;
        config.duration = Duration::from_millis(50);
        config.senders = 2;
        config.timeout = Duration::from_millis(500);
        config.fetch_server_metrics = false;
        config.mix.refs = 100; // keep pool construction cheap
        let report = run(&config).unwrap();
        assert_eq!(report.scheduled, 10);
        assert_eq!(report.sent, 10);
        assert_eq!(report.completed, 0);
        assert_eq!(report.errors.get("transport-connect"), Some(&10));
        assert_eq!(report.e2e_stats().count, 0);
        assert!(report.cross_check().is_none());
    }
}
