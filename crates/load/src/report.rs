//! Load-run reporting: percentile summaries, the versioned
//! `dynex-load/v1` JSON document, and the client-vs-server cross-check.
//!
//! The cross-check is the harness auditing itself: a load generator that
//! mis-measures (dropped responses, a latency clock started in the wrong
//! place) produces numbers that *cannot* be reconciled with what the
//! server recorded about the same run. Two invariants are machine-checked
//! against the server's `/metrics` document (single-process or the
//! router's merged fleet view — same format either way):
//!
//! 1. **Percentile ordering** — the client's *service* latency for a
//!    request is a superset of the server's `request` stage (it adds
//!    connect, kernel queues, and response read). Client and server bucket
//!    microseconds identically (`pow2(30)`), so sorted-order domination
//!    survives bucketing: the client's service p50 can never sit *below*
//!    the server's request p50.
//! 2. **Conservation** — the server cannot have executed more simulations
//!    than the client sent requests (caching and coalescing only ever
//!    reduce the count).
//!
//! Both checks assume the server was dedicated to the run (fresh counters,
//! no other traffic), which the driver scripts guarantee. Router health
//! probes do land in the server-side histograms, but probes are cheap:
//! extra fast samples can only *lower* the server percentile, which
//! tightens check 1 rather than masking a violation.

use std::collections::BTreeMap;

use dynex_obs::json::Json;
use dynex_obs::Histogram;

/// Percentiles and mean for one client-side latency histogram.
///
/// Percentile values are inclusive bucket upper bounds (exact to the log2
/// bucket resolution, i.e. within 2x — same convention as the server's
/// `latency_summary`); a percentile landing in the overflow bucket reports
/// `u64::MAX`. The mean is exact: it is computed from the running sum of
/// raw microsecond samples, not from the buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Median, as a bucket upper bound in microseconds.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Exact arithmetic mean in microseconds (0.0 when empty).
    pub mean_us: f64,
}

impl LatencyStats {
    /// Summarizes a histogram plus the exact sample sum backing it.
    pub fn from_histogram(histogram: &Histogram, total_us: u64) -> LatencyStats {
        let count = histogram.total();
        let q = |p: f64| histogram.quantile(p).unwrap_or(0);
        LatencyStats {
            count,
            p50_us: q(0.50),
            p90_us: q(0.90),
            p99_us: q(0.99),
            p999_us: q(0.999),
            mean_us: if count == 0 {
                0.0
            } else {
                total_us as f64 / count as f64
            },
        }
    }

    fn to_json(&self) -> String {
        format!(
            r#"{{"count":{},"p50_us":{},"p90_us":{},"p99_us":{},"p999_us":{},"mean_us":{}}}"#,
            self.count,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
            fmt_f64(self.mean_us),
        )
    }
}

/// The client-vs-server reconciliation (module docs explain the checks).
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCheck {
    /// Client-side service-latency p50 (bucket upper bound, µs).
    pub client_service_p50_us: u64,
    /// The server's `request`-stage p50 from `latency_summary`, when the
    /// server reported one.
    pub server_request_p50_us: Option<u64>,
    /// The server's `sims-executed` counter, when present.
    pub server_sims_executed: Option<u64>,
    /// Requests the client actually sent.
    pub client_sent: u64,
    /// Human-readable reasons for any failed or unevaluable check.
    pub notes: Vec<String>,
    /// True only when every check was evaluable and passed.
    pub consistent: bool,
}

impl CrossCheck {
    /// Reconciles client-side measurements against a parsed server
    /// `/metrics` document. Missing expected fields make the result
    /// inconsistent (loudly, via `notes`) rather than silently passing —
    /// a server that stopped reporting is itself a finding.
    pub fn evaluate(service: &Histogram, sent: u64, server_metrics: &Json) -> CrossCheck {
        let mut notes = Vec::new();
        let client_service_p50_us = service.quantile(0.50).unwrap_or(0);

        let server_request_p50_us = server_metrics
            .get("latency_summary")
            .and_then(|summary| summary.get("request"))
            .and_then(|stage| stage.get("p50_us"))
            .and_then(Json::as_u64);
        match server_request_p50_us {
            Some(server_p50) => {
                if client_service_p50_us < server_p50 {
                    notes.push(format!(
                        "client service p50 {client_service_p50_us}us sits below the \
                         server's request-stage p50 {server_p50}us — the client \
                         cannot be faster than the server it waited on"
                    ));
                }
            }
            None => notes.push(
                "server /metrics has no latency_summary.request.p50_us to check against".to_owned(),
            ),
        }

        let server_sims_executed = server_metrics
            .get("counters")
            .and_then(|counters| counters.get("sims-executed"))
            .and_then(Json::as_u64);
        match server_sims_executed {
            Some(sims) => {
                if sims > sent {
                    notes.push(format!(
                        "server executed {sims} simulations but the client only \
                         sent {sent} requests"
                    ));
                }
            }
            None => notes
                .push("server /metrics has no counters.sims-executed to check against".to_owned()),
        }

        CrossCheck {
            client_service_p50_us,
            server_request_p50_us,
            server_sims_executed,
            client_sent: sent,
            consistent: notes.is_empty(),
            notes,
        }
    }

    fn to_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |v| v.to_string());
        let mut notes = String::from("[");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                notes.push(',');
            }
            notes.push('"');
            notes.push_str(&dynex_obs::json::escape(note));
            notes.push('"');
        }
        notes.push(']');
        format!(
            r#"{{"client_service_p50_us":{},"server_request_p50_us":{},"server_sims_executed":{},"client_sent":{},"consistent":{},"notes":{}}}"#,
            self.client_service_p50_us,
            opt(self.server_request_p50_us),
            opt(self.server_sims_executed),
            self.client_sent,
            self.consistent,
            notes,
        )
    }
}

/// Everything one load run measured, serializable as `dynex-load/v1`.
///
/// Built by [`crate::runner::run`]; the field groups mirror the JSON
/// document (see [`LoadReport::to_json`]).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The `host:port` the load was aimed at.
    pub target: String,
    /// Configured open-loop arrival rate, requests per second.
    pub rate: f64,
    /// Configured run duration, seconds.
    pub duration_s: f64,
    /// Sender thread count.
    pub senders: usize,
    /// Per-request timeout, seconds.
    pub timeout_s: f64,
    /// The seeded mix the request stream was drawn from.
    pub mix: dynex_experiments::api::mix::MixConfig,
    /// Requests on the arrival schedule (`ceil(rate × duration)`).
    pub scheduled: usize,
    /// Requests actually sent (== scheduled unless the run was cut short).
    pub sent: u64,
    /// Requests that got *any* HTTP response.
    pub completed: u64,
    /// Responses with status 200.
    pub ok: u64,
    /// 200s served from the result cache (`"cached":true` in the body).
    pub cached_hits: u64,
    /// Non-200 and transport outcomes, bucketed by kind (`http-429`,
    /// `transport-timeout`, …).
    pub errors: BTreeMap<String, u64>,
    /// Worst sender-side lag between a request's scheduled arrival and the
    /// moment a sender thread actually started it, in microseconds. Large
    /// values mean the harness itself (not the server) was the bottleneck
    /// and the e2e numbers include generator backlog — an honesty signal,
    /// reported rather than hidden.
    pub max_send_lag_us: u64,
    /// Wall-clock from the first scheduled arrival to the last completion.
    pub wall_s: f64,
    /// Simulated cache references summed over all 200 responses (the
    /// response's `accesses` field — work the service delivered, whether
    /// freshly simulated or served from cache).
    pub refs_total: u64,
    /// End-to-end latency: scheduled arrival → response read (log2 µs).
    pub e2e: Histogram,
    /// Exact sum behind [`LoadReport::e2e`], microseconds.
    pub e2e_total_us: u64,
    /// Service latency: request written → response read (log2 µs).
    pub service: Histogram,
    /// Exact sum behind [`LoadReport::service`], microseconds.
    pub service_total_us: u64,
    /// The server's `/metrics` document fetched after the run — raw body
    /// plus its parsed form — when the runner was asked to collect it.
    pub server_metrics: Option<(String, Json)>,
    /// The chaos audit, when the run injected kills (see [`crate::chaos`]).
    pub chaos: Option<crate::chaos::ChaosReport>,
}

impl LoadReport {
    /// Completed responses per wall-clock second.
    pub fn reqs_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.completed as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Simulated references delivered per wall-clock second.
    pub fn refs_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.refs_total as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Percentile summary of the end-to-end (open-loop) latency.
    pub fn e2e_stats(&self) -> LatencyStats {
        LatencyStats::from_histogram(&self.e2e, self.e2e_total_us)
    }

    /// Percentile summary of the service latency.
    pub fn service_stats(&self) -> LatencyStats {
        LatencyStats::from_histogram(&self.service, self.service_total_us)
    }

    /// Runs the client-vs-server reconciliation; `None` when the runner
    /// did not fetch server metrics.
    pub fn cross_check(&self) -> Option<CrossCheck> {
        self.server_metrics
            .as_ref()
            .map(|(_, parsed)| CrossCheck::evaluate(&self.service, self.sent, parsed))
    }

    /// Serializes the full run as one `dynex-load/v1` JSON document:
    ///
    /// ```json
    /// {"schema":"dynex-load/v1",
    ///  "config":{"target":…,"rate":…,"duration_s":…,"senders":…,"timeout_s":…,
    ///            "mix":{"seed":…,"duplicate_ratio":…,"pool":…,"refs":…,
    ///                   "deadline_fraction":…,"deadline_ms":…}},
    ///  "outcome":{"scheduled":…,"sent":…,"completed":…,"ok":…,"cached_hits":…,
    ///             "errors":{…},"max_send_lag_us":…},
    ///  "throughput":{"wall_s":…,"reqs_per_s":…,"refs_total":…,"refs_per_s":…},
    ///  "latency_us":{"e2e":{…},"service":{…}},
    ///  "histograms_us":{"e2e":{"bounds":…,"counts":…},"service":{…}},
    ///  "server":{…}|null,
    ///  "crosscheck":{…}|null,
    ///  "chaos":{"spec":…,"shards":…,"kills":[{"shard":…,"at_s":…,"pid":…,
    ///           "killed":…,"recovery_us":…}],"respawns":{…},"breakers":{…},
    ///           "divergences":…,"survivor_errors":…,"consistent":…,
    ///           "notes":[…]}|null}
    /// ```
    ///
    /// `server` embeds the fetched `/metrics` body verbatim (it is already
    /// one JSON object), so a recorded run carries the server's view of
    /// itself alongside the client's.
    pub fn to_json(&self) -> String {
        let mut errors = String::from("{");
        for (i, (kind, count)) in self.errors.iter().enumerate() {
            if i > 0 {
                errors.push(',');
            }
            errors.push_str(&format!(r#""{}":{}"#, dynex_obs::json::escape(kind), count));
        }
        errors.push('}');

        let mut out = format!(
            concat!(
                r#"{{"schema":"dynex-load/v1","#,
                r#""config":{{"target":"{target}","rate":{rate},"duration_s":{duration},"#,
                r#""senders":{senders},"timeout_s":{timeout},"#,
                r#""mix":{{"seed":{seed},"duplicate_ratio":{dup},"pool":{pool},"refs":{refs},"#,
                r#""deadline_fraction":{dfrac},"deadline_ms":{dms}}}}},"#,
                r#""outcome":{{"scheduled":{scheduled},"sent":{sent},"completed":{completed},"#,
                r#""ok":{ok},"cached_hits":{cached},"errors":{errors},"#,
                r#""max_send_lag_us":{lag}}},"#,
                r#""throughput":{{"wall_s":{wall},"reqs_per_s":{rps},"#,
                r#""refs_total":{refs_total},"refs_per_s":{refps}}},"#,
                r#""latency_us":{{"e2e":{e2e},"service":{service}}},"#,
                r#""histograms_us":{{"e2e":{e2e_h},"service":{service_h}}}"#,
            ),
            target = dynex_obs::json::escape(&self.target),
            rate = fmt_f64(self.rate),
            duration = fmt_f64(self.duration_s),
            senders = self.senders,
            timeout = fmt_f64(self.timeout_s),
            seed = self.mix.seed,
            dup = fmt_f64(self.mix.duplicate_ratio),
            pool = self.mix.pool,
            refs = self.mix.refs,
            dfrac = fmt_f64(self.mix.deadline_fraction),
            dms = self.mix.deadline_ms,
            scheduled = self.scheduled,
            sent = self.sent,
            completed = self.completed,
            ok = self.ok,
            cached = self.cached_hits,
            errors = errors,
            lag = self.max_send_lag_us,
            wall = fmt_f64(self.wall_s),
            rps = fmt_f64(self.reqs_per_s()),
            refs_total = self.refs_total,
            refps = fmt_f64(self.refs_per_s()),
            e2e = self.e2e_stats().to_json(),
            service = self.service_stats().to_json(),
            e2e_h = self.e2e.to_json(),
            service_h = self.service.to_json(),
        );
        out.push_str(",\"server\":");
        match &self.server_metrics {
            Some((raw, _)) => out.push_str(raw),
            None => out.push_str("null"),
        }
        out.push_str(",\"crosscheck\":");
        match self.cross_check() {
            Some(check) => out.push_str(&check.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"chaos\":");
        match &self.chaos {
            Some(chaos) => out.push_str(&chaos.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// A short human-readable summary (one run, a few lines) for CLI
    /// output. All percentiles are bucket upper bounds.
    pub fn render_text(&self) -> String {
        let e2e = self.e2e_stats();
        let service = self.service_stats();
        let mut out = format!(
            "load: {} scheduled @ {}/s x {} sender(s) against {}\n\
             outcome: {} sent, {} ok, {} cached hit(s), {} error(s)\n\
             throughput: {:.1} req/s, {:.0} refs/s ({} refs total) over {:.2}s\n\
             e2e latency (us): p50<={} p90<={} p99<={} p999<={} mean {:.0}\n\
             service latency (us): p50<={} p90<={} p99<={} p999<={} mean {:.0}\n",
            self.scheduled,
            self.rate,
            self.senders,
            self.target,
            self.sent,
            self.ok,
            self.cached_hits,
            self.errors.values().sum::<u64>(),
            self.reqs_per_s(),
            self.refs_per_s(),
            self.refs_total,
            self.wall_s,
            e2e.p50_us,
            e2e.p90_us,
            e2e.p99_us,
            e2e.p999_us,
            e2e.mean_us,
            service.p50_us,
            service.p90_us,
            service.p99_us,
            service.p999_us,
            service.mean_us,
        );
        for (kind, count) in &self.errors {
            out.push_str(&format!("  error {kind}: {count}\n"));
        }
        match self.cross_check() {
            Some(check) if check.consistent => {
                out.push_str("crosscheck: consistent with server latency_summary\n");
            }
            Some(check) => {
                out.push_str("crosscheck: INCONSISTENT\n");
                for note in &check.notes {
                    out.push_str(&format!("  {note}\n"));
                }
            }
            None => out.push_str("crosscheck: skipped (no server metrics)\n"),
        }
        if let Some(chaos) = &self.chaos {
            let delivered = chaos.kills.iter().filter(|k| k.killed).count();
            out.push_str(&format!(
                "chaos: {} — {} of {} kill(s) delivered, {} divergence(s), \
                 {} survivor error(s)\n",
                if chaos.consistent {
                    "consistent"
                } else {
                    "INCONSISTENT"
                },
                delivered,
                chaos.kills.len(),
                chaos.divergences,
                chaos.survivor_errors,
            ));
            for kill in &chaos.kills {
                match kill.recovery_us {
                    Some(us) => out.push_str(&format!(
                        "  shard {} (pid {}): recovered in {:.3}s\n",
                        kill.spec.shard,
                        kill.pid,
                        us as f64 / 1e6
                    )),
                    None if kill.killed => out.push_str(&format!(
                        "  shard {} (pid {}): NEVER RECOVERED\n",
                        kill.spec.shard, kill.pid
                    )),
                    None => out.push_str(&format!(
                        "  shard {}: kill was not delivered\n",
                        kill.spec.shard
                    )),
                }
            }
            for note in &chaos.notes {
                out.push_str(&format!("  {note}\n"));
            }
        }
        out
    }
}

/// Renders an `f64` as a JSON number: finite values with enough precision
/// to round-trip run parameters, non-finite values (which would be invalid
/// JSON) as 0 — they can only arise from a degenerate zero-length run.
pub(crate) fn fmt_f64(value: f64) -> String {
    if !value.is_finite() {
        return "0".to_owned();
    }
    let formatted = format!("{value:.3}");
    // Trim trailing zeros but keep at least one decimal ("5.0", not "5."
    // and not "5" — a stable marker that the field is a float).
    let trimmed = formatted.trim_end_matches('0');
    if trimmed.ends_with('.') {
        format!("{trimmed}0")
    } else {
        trimmed.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_experiments::api::mix::MixConfig;
    use dynex_obs::json;
    use dynex_obs::span::LATENCY_BUCKETS_MAX_EXP;

    fn sample_report(server: Option<&str>) -> LoadReport {
        let mut e2e = Histogram::pow2(LATENCY_BUCKETS_MAX_EXP);
        let mut service = Histogram::pow2(LATENCY_BUCKETS_MAX_EXP);
        let mut e2e_total = 0u64;
        let mut service_total = 0u64;
        for us in [100u64, 200, 400, 800, 10_000] {
            e2e.record(us * 2);
            e2e_total += us * 2;
            service.record(us);
            service_total += us;
        }
        let mut errors = BTreeMap::new();
        errors.insert("http-429".to_owned(), 2);
        LoadReport {
            target: "127.0.0.1:9999".to_owned(),
            rate: 50.0,
            duration_s: 5.0,
            senders: 4,
            timeout_s: 30.0,
            mix: MixConfig::default(),
            scheduled: 250,
            sent: 250,
            completed: 248,
            ok: 246,
            cached_hits: 120,
            errors,
            max_send_lag_us: 1234,
            wall_s: 5.2,
            refs_total: 24_600_000,
            e2e,
            e2e_total_us: e2e_total,
            service,
            service_total_us: service_total,
            server_metrics: server.map(|raw| (raw.to_owned(), json::parse(raw).unwrap())),
            chaos: None,
        }
    }

    #[test]
    fn latency_stats_quantiles_and_exact_mean() {
        let mut h = Histogram::pow2(LATENCY_BUCKETS_MAX_EXP);
        let mut total = 0u64;
        for us in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 9_000] {
            h.record(us);
            total += us;
        }
        let stats = LatencyStats::from_histogram(&h, total);
        assert_eq!(stats.count, 10);
        assert_eq!(stats.p50_us, 128); // bucket bound covering 100
        assert_eq!(stats.p90_us, 128);
        assert_eq!(stats.p99_us, 16_384); // the 9ms outlier's bucket
        assert_eq!(stats.p999_us, 16_384);
        assert!((stats.mean_us - 990.0).abs() < 1e-9); // exact, not bucketed
        let empty = LatencyStats::from_histogram(&Histogram::pow2(4), 0);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean_us, 0.0);
    }

    #[test]
    fn report_json_is_valid_and_carries_the_schema() {
        let report = sample_report(None);
        let doc = json::parse(&report.to_json()).expect("report must be valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("dynex-load/v1")
        );
        let outcome = doc.get("outcome").unwrap();
        assert_eq!(outcome.get("ok").and_then(Json::as_u64), Some(246));
        assert_eq!(
            outcome
                .get("errors")
                .and_then(|e| e.get("http-429"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            doc.get("throughput")
                .and_then(|t| t.get("refs_total"))
                .and_then(Json::as_u64),
            Some(24_600_000)
        );
        // Latency stats survive the round trip.
        assert_eq!(
            doc.get("latency_us")
                .and_then(|l| l.get("service"))
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(5)
        );
        // No server metrics: server and crosscheck are null.
        assert!(matches!(doc.get("server"), Some(Json::Null)));
        assert!(matches!(doc.get("crosscheck"), Some(Json::Null)));
    }

    #[test]
    fn crosscheck_passes_when_server_view_is_reconcilable() {
        // Server request p50 (256us) below client service p50 (512-bucket
        // holds the 400us median sample... client p50 here is 512), and
        // sims-executed below sent.
        let server = r#"{"counters":{"sims-executed":126},
            "histograms":{},
            "latency_summary":{"request":{"count":250,"total_us":100000,
                "p50_us":256,"p90_us":512,"p99_us":1024,"p999_us":2048}}}"#;
        let report = sample_report(Some(server));
        let check = report.cross_check().expect("server metrics present");
        assert!(check.consistent, "{:?}", check.notes);
        assert_eq!(check.server_request_p50_us, Some(256));
        assert_eq!(check.server_sims_executed, Some(126));
        let doc = json::parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("crosscheck")
                .and_then(|c| c.get("consistent"))
                .and_then(Json::as_bool),
            Some(true)
        );
        // The server document is embedded verbatim.
        assert_eq!(
            doc.get("server")
                .and_then(|s| s.get("counters"))
                .and_then(|c| c.get("sims-executed"))
                .and_then(Json::as_u64),
            Some(126)
        );
    }

    #[test]
    fn crosscheck_fails_on_impossible_server_views() {
        // Client faster than the server it waited on: impossible.
        let faster_than_server = r#"{"counters":{"sims-executed":10},
            "latency_summary":{"request":{"count":5,"total_us":1,
                "p50_us":1048576,"p90_us":1048576,"p99_us":1048576,"p999_us":1048576}}}"#;
        let check = sample_report(Some(faster_than_server))
            .cross_check()
            .unwrap();
        assert!(!check.consistent);
        assert!(
            check.notes[0].contains("cannot be faster"),
            "{:?}",
            check.notes
        );

        // More simulations executed than requests sent: impossible.
        let over_executed = r#"{"counters":{"sims-executed":9999},
            "latency_summary":{"request":{"count":5,"total_us":1,
                "p50_us":1,"p90_us":1,"p99_us":1,"p999_us":1}}}"#;
        let check = sample_report(Some(over_executed)).cross_check().unwrap();
        assert!(!check.consistent);
        assert!(check.notes[0].contains("only"), "{:?}", check.notes);

        // A server that stopped reporting is a loud finding, not a pass.
        let check = sample_report(Some("{}")).cross_check().unwrap();
        assert!(!check.consistent);
        assert_eq!(check.notes.len(), 2, "{:?}", check.notes);
    }

    #[test]
    fn f64_rendering_is_json_safe() {
        assert_eq!(fmt_f64(50.0), "50.0");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(49.987654), "49.988");
        assert_eq!(fmt_f64(0.0), "0.0");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }

    #[test]
    fn text_summary_names_errors_and_crosscheck_state() {
        let text = sample_report(None).render_text();
        assert!(text.contains("error http-429: 2"), "{text}");
        assert!(text.contains("crosscheck: skipped"), "{text}");
    }
}
