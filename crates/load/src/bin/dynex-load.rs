//! `dynex-load` — drive open-loop load at a dynex-serve target.
//!
//! ```text
//! dynex-load --target ADDR [--rate R] [--duration-s S] [--senders K]
//!            [--timeout-s T] [--seed N] [--duplicate-ratio F] [--pool N]
//!            [--refs N] [--deadline-ms N] [--deadline-fraction F]
//!            [--no-server-metrics] [--chaos SPEC] [--out FILE]
//! ```
//!
//! Generates a seeded request mix, fires it at the target on a fixed
//! open-loop schedule, prints a human summary on stderr, and writes the
//! full `dynex-load/v1` JSON report to `--out` (stdout when omitted).
//! Exits non-zero when the run could not execute, when no request
//! completed, when the client-vs-server cross-check fails, or when a
//! `--chaos` audit comes back inconsistent — so scripts can trust a zero
//! exit as "the numbers are real".
//!
//! `--chaos "kill:<shard>@<sec>[,…]"` turns the run into a fault drill
//! against a sharded target: the named shard workers are `SIGKILL`ed at
//! the given offsets (pids learned from the router's `/healthz`), and the
//! report gains a `"chaos"` block recording recovery time per kill,
//! per-shard respawn counts, and whether any response diverged or any
//! never-killed shard erred.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use dynex_load::{run, ChaosConfig, LoadConfig};

fn usage() {
    eprintln!(
        "usage: dynex-load --target ADDR [--rate R] [--duration-s S] [--senders K] \
         [--timeout-s T] [--seed N] [--duplicate-ratio F] [--pool N] [--refs N] \
         [--policies P1,P2,...] [--deadline-ms N] [--deadline-fraction F] \
         [--no-server-metrics] [--chaos SPEC] [--out FILE]"
    );
    eprintln!();
    eprintln!("  --target ADDR         host:port of the dynex-serve server or router (required)");
    eprintln!("  --rate R              open-loop arrival rate, req/s (default 50)");
    eprintln!("  --duration-s S        schedule length in seconds (default 5)");
    eprintln!("  --senders K           sender threads (default 4)");
    eprintln!("  --timeout-s T         per-request timeout in seconds (default 30)");
    eprintln!("  --seed N              request-mix seed (default 42)");
    eprintln!(
        "  --duplicate-ratio F   fraction of requests repeating an earlier one (default 0.5)"
    );
    eprintln!("  --pool N              distinct configurations in the mix (default 64)");
    eprintln!("  --refs N              simulated references per request (default 100000)");
    eprintln!(
        "  --policies P1,P2,...  comma-separated replacement policies to spread the mix \
         over (default dm,de,opt; zoo members ehc and bwcost welcome)"
    );
    eprintln!("  --deadline-ms N       deadline carried by the deadline fraction (default 2000)");
    eprintln!("  --deadline-fraction F fraction of requests carrying a deadline (default 0)");
    eprintln!("  --no-server-metrics   skip the post-run /metrics fetch and cross-check");
    eprintln!(
        "  --chaos SPEC          kill shard workers mid-run and audit recovery; SPEC is \
         kill:<shard>@<sec>[,kill:<shard>@<sec>...] (sharded target required)"
    );
    eprintln!("  --out FILE            write the JSON report here (default: stdout)");
}

fn parse_args() -> Result<Option<(LoadConfig, Option<String>)>, String> {
    let mut target: Option<SocketAddr> = None;
    let mut out = None;
    // Placeholder target; replaced below once --target is parsed.
    let mut config = LoadConfig::new("127.0.0.1:0".parse().expect("literal addr"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        // One parser shape per value kind, each naming the flag on failure.
        let parse_f64 = |flag: &str, value: String| -> Result<f64, String> {
            value
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or(format!("bad {flag} value {value:?}"))
        };
        match arg.as_str() {
            "--target" => {
                let value = value_of("--target")?;
                target = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --target value {value:?} (want host:port)"))?,
                );
            }
            "--rate" => config.rate = parse_f64("--rate", value_of("--rate")?)?,
            "--duration-s" => {
                let secs = parse_f64("--duration-s", value_of("--duration-s")?)?;
                if secs <= 0.0 {
                    return Err(format!("bad --duration-s value {secs} (must be positive)"));
                }
                config.duration = Duration::from_secs_f64(secs);
            }
            "--senders" => {
                let value = value_of("--senders")?;
                config.senders = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --senders value {value:?}"))?;
            }
            "--timeout-s" => {
                let secs = parse_f64("--timeout-s", value_of("--timeout-s")?)?;
                if secs <= 0.0 {
                    return Err(format!("bad --timeout-s value {secs} (must be positive)"));
                }
                config.timeout = Duration::from_secs_f64(secs);
            }
            "--seed" => {
                let value = value_of("--seed")?;
                config.mix.seed = value
                    .parse()
                    .map_err(|_| format!("bad --seed value {value:?}"))?;
            }
            "--duplicate-ratio" => {
                config.mix.duplicate_ratio =
                    parse_f64("--duplicate-ratio", value_of("--duplicate-ratio")?)?;
            }
            "--pool" => {
                let value = value_of("--pool")?;
                config.mix.pool = value
                    .parse()
                    .map_err(|_| format!("bad --pool value {value:?}"))?;
            }
            "--refs" => {
                let value = value_of("--refs")?;
                config.mix.refs = value
                    .parse()
                    .map_err(|_| format!("bad --refs value {value:?}"))?;
            }
            "--policies" | "--orgs" => {
                let value = value_of("--policies")?;
                let policies: Vec<String> = value
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_owned)
                    .collect();
                if policies.is_empty() {
                    return Err(format!("bad --policies value {value:?} (want P1,P2,...)"));
                }
                config.mix.orgs = policies;
            }
            "--deadline-ms" => {
                let value = value_of("--deadline-ms")?;
                config.mix.deadline_ms = value
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms value {value:?}"))?;
            }
            "--deadline-fraction" => {
                config.mix.deadline_fraction =
                    parse_f64("--deadline-fraction", value_of("--deadline-fraction")?)?;
            }
            "--no-server-metrics" => config.fetch_server_metrics = false,
            "--chaos" => {
                config.chaos = Some(ChaosConfig::parse(&value_of("--chaos")?)?);
            }
            "--out" => out = Some(value_of("--out")?),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let target = target.ok_or("--target is required".to_owned())?;
    config.target = target;
    Ok(Some((config, out)))
}

fn main() -> ExitCode {
    let (config, out) = match parse_args() {
        Ok(Some(parsed)) => parsed,
        Ok(None) => {
            usage();
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let report = match run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprint!("{}", report.render_text());

    let document = report.to_json();
    match &out {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    if let Err(e) = std::fs::create_dir_all(parent) {
                        eprintln!("error: cannot create {}: {e}", parent.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Err(e) = std::fs::write(path, format!("{document}\n")) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("report written to {path}");
        }
        None => println!("{document}"),
    }

    // A zero exit means the numbers are real: something completed, and the
    // client's view reconciles with the server's (when it was fetched).
    if report.completed == 0 {
        eprintln!("error: no request completed");
        return ExitCode::FAILURE;
    }
    if let Some(check) = report.cross_check() {
        if !check.consistent {
            eprintln!("error: client/server cross-check failed (see notes above)");
            return ExitCode::FAILURE;
        }
    }
    if let Some(chaos) = &report.chaos {
        if !chaos.consistent {
            eprintln!("error: chaos audit failed (see notes above)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
