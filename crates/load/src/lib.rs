//! `dynex-load` — an open-loop load harness for the `dynex-serve` tier.
//!
//! The harness models "heavy traffic from many users", which a closed loop
//! (send, wait, send again) cannot: a closed loop slows its own arrival
//! rate down exactly when the server struggles, hiding the queueing delay
//! real users would see (coordinated omission). Here the arrival schedule
//! is fixed up front — request `i` is *due* at `i / rate` seconds — and
//! split across K sender threads; when the server falls behind, requests
//! go out late and the lateness is *charged to the measurement*, because
//! the end-to-end latency clock for request `i` starts at its scheduled
//! arrival time, not at the moment a sender thread got around to it.
//!
//! Two latency distributions are recorded per run:
//!
//! * **e2e** — from scheduled arrival to response read. The open-loop
//!   number; includes sender-side backlog. What a user would feel.
//! * **service** — from the moment the request was written to the socket.
//!   What the server alone did. The cross-check compares this against the
//!   server's own PR 6 `latency_summary` stages.
//!
//! The request stream comes from the seeded
//! [`dynex_experiments::api::mix::RequestMix`], so a run is reproducible:
//! same seed, same duplicate ratio, same geometry spread, same requests in
//! the same order. Results serialize as a versioned `dynex-load/v1` JSON
//! document (see [`report::LoadReport::to_json`]) written under
//! `results/LOAD_*.json` by the driver scripts.
//!
//! Against a sharded fleet the harness can also play executioner: a
//! `--chaos "kill:<shard>@<sec>"` schedule `SIGKILL`s shard workers
//! mid-run and audits the self-healing story — recovery time, respawn
//! counts, response consistency across the respawn (see [`chaos`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod report;
pub mod runner;

pub use chaos::{ChaosConfig, ChaosReport};
pub use report::{CrossCheck, LatencyStats, LoadReport};
pub use runner::{run, LoadConfig};
