//! Chaos injection for load runs against a sharded `dynex-serve` fleet:
//! a `--chaos "kill:<shard>@<sec>[,…]"` schedule that `SIGKILL`s shard
//! worker processes mid-run and audits the recovery.
//!
//! The harness learns worker pids from the router's `/healthz` shard table
//! (re-fetched immediately before each kill, so a second kill of the same
//! slot hits the *respawned* worker), kills with the system `kill` binary
//! (hermetic workspace: no libc crate to call `kill(2)` through), and then
//! watches its own request stream for the three properties a self-healing
//! fleet must keep:
//!
//! 1. **Recovery** — after a kill, the killed shard's keys start answering
//!    `200` again; time from the kill to that first success is the
//!    per-kill `recovery_us`.
//! 2. **Consistency** — repeated requests (the mix's duplicate stream)
//!    always get byte-identical `200` bodies, modulo the `"cached"` flag
//!    (a respawned worker answers from its warm journal, so `cached:true`
//!    where the first answer was `cached:false` — same result, different
//!    provenance). A divergence means a respawn came back with *wrong*
//!    state: the one failure chaos testing exists to catch.
//! 3. **Containment** — shards that were never killed keep serving: any
//!    non-`200` owned by a survivor counts against the run.
//!
//! The audit lands in the `dynex-load/v1` report as the `"chaos"` block,
//! with `consistent:true` only when every kill executed, every killed
//! shard recovered, and nothing diverged or spilled over.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dynex_obs::json::{self, Json};
use dynex_serve::client;

/// One scheduled kill: which shard slot, and when (offset from the first
/// scheduled request arrival).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillSpec {
    /// The shard slot whose current worker dies.
    pub shard: usize,
    /// Offset from the start of the arrival schedule.
    pub at: Duration,
}

/// A parsed `--chaos` schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosConfig {
    /// The kills, in the order given (executed in time order).
    pub kills: Vec<KillSpec>,
    /// The original spec string, echoed into the report.
    pub spec: String,
}

impl ChaosConfig {
    /// Parses `kill:<shard>@<sec>[,kill:<shard>@<sec>…]`.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut kills = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let body = part
                .strip_prefix("kill:")
                .ok_or_else(|| format!("bad chaos action {part:?} (want kill:<shard>@<sec>)"))?;
            let (shard, at) = body
                .split_once('@')
                .ok_or_else(|| format!("bad chaos action {part:?} (missing @<sec>)"))?;
            let shard = shard
                .parse::<usize>()
                .map_err(|_| format!("bad chaos shard {shard:?} in {part:?}"))?;
            let secs = at
                .parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s >= 0.0)
                .ok_or_else(|| format!("bad chaos time {at:?} in {part:?}"))?;
            kills.push(KillSpec {
                shard,
                at: Duration::from_secs_f64(secs),
            });
        }
        if kills.is_empty() {
            return Err("empty chaos spec".to_owned());
        }
        Ok(ChaosConfig {
            kills,
            spec: spec.to_owned(),
        })
    }
}

/// One row of the router's `/healthz` shard table.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// Shard slot id.
    pub id: usize,
    /// Current worker pid (0 when the target is not a supervised fleet).
    pub pid: u32,
    /// Completed respawns for the slot.
    pub respawns: u64,
    /// Breaker state string (`closed` / `open` / `half-open`).
    pub breaker: String,
}

/// Fetches and parses the router's `/healthz` shard table. Errors when the
/// target has no shard table — chaos needs a sharded fleet to maim.
pub fn fetch_shards(target: SocketAddr, timeout: Duration) -> Result<Vec<ShardRow>, String> {
    let response = client::call(target, "GET", "/healthz", "", timeout)
        .map_err(|e| format!("healthz fetch: {e}"))?;
    let doc = json::parse(&response.body).map_err(|e| format!("healthz is not JSON: {e}"))?;
    let rows = doc
        .get("shards")
        .and_then(Json::as_array)
        .ok_or("target /healthz has no shard table — chaos needs a sharded fleet")?;
    let mut shards = Vec::with_capacity(rows.len());
    for row in rows {
        shards.push(ShardRow {
            id: row
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("healthz shard row has no id")? as usize,
            pid: row.get("pid").and_then(Json::as_u64).unwrap_or(0) as u32,
            respawns: row.get("respawns").and_then(Json::as_u64).unwrap_or(0),
            breaker: row
                .get("breaker")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_owned(),
        });
    }
    if shards.is_empty() {
        return Err("target /healthz shard table is empty".to_owned());
    }
    Ok(shards)
}

/// What actually happened to one scheduled kill.
#[derive(Debug, Clone)]
pub struct KillOutcome {
    /// The schedule entry.
    pub spec: KillSpec,
    /// The pid that was killed (0 when the kill could not run).
    pub pid: u32,
    /// Whether the `SIGKILL` was delivered.
    pub killed: bool,
    /// Time from the kill to the shard's first `200` afterwards; `None`
    /// when the shard never came back within the run.
    pub recovery_us: Option<u64>,
}

/// FNV-1a over a byte string — local copy (the load crate does not depend
/// on `dynex-engine`), used for body/response identity only.
fn hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A `200` body with its cache-provenance flag normalized away, hashed:
/// two responses to the same request must agree on everything else.
fn normalized_response_hash(body: &str) -> u64 {
    hash(
        body.replace("\"cached\":true", "\"cached\":false")
            .as_bytes(),
    )
}

/// Divergence bookkeeping plus kill/recovery state, shared across sender
/// threads and the killer thread behind one mutex (the critical sections
/// are a map probe and a few field writes — far cheaper than the network
/// round-trip each sample rides in on).
#[derive(Debug)]
struct MonitorState {
    kills: Vec<KillOutcome>,
    /// When each kill was delivered (indexes `kills`).
    killed_at: Vec<Option<Instant>>,
    /// First-seen normalized response hash per request-body hash.
    expected: BTreeMap<u64, u64>,
    divergences: u64,
    /// Example divergence notes (bounded).
    notes: Vec<String>,
    survivor_errors: u64,
}

/// The shared chaos monitor: sender threads feed it every completed
/// response, the killer thread feeds it delivered kills.
#[derive(Debug)]
pub struct ChaosMonitor {
    state: Mutex<MonitorState>,
    /// Shard slots scheduled to die at least once (everything else is a
    /// survivor and must never error).
    victims: Vec<usize>,
}

impl ChaosMonitor {
    /// A monitor for `config`'s schedule.
    pub fn new(config: &ChaosConfig) -> ChaosMonitor {
        let mut victims: Vec<usize> = config.kills.iter().map(|k| k.shard).collect();
        victims.sort_unstable();
        victims.dedup();
        ChaosMonitor {
            state: Mutex::new(MonitorState {
                kills: config
                    .kills
                    .iter()
                    .map(|&spec| KillOutcome {
                        spec,
                        pid: 0,
                        killed: false,
                        recovery_us: None,
                    })
                    .collect(),
                killed_at: vec![None; config.kills.len()],
                expected: BTreeMap::new(),
                divergences: 0,
                notes: Vec::new(),
                survivor_errors: 0,
            }),
            victims,
        }
    }

    /// Records a delivered kill (killer thread).
    pub fn record_kill(&self, index: usize, pid: u32) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.kills[index].pid = pid;
        state.kills[index].killed = true;
        state.killed_at[index] = Some(Instant::now());
    }

    /// Feeds one completed HTTP exchange (sender thread): the owning shard
    /// slot, the response status and body, and when the response was read.
    pub fn observe(&self, owner: usize, status: u16, body: &str, body_hash: u64, done: Instant) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if status != 200 {
            if !self.victims.contains(&owner) {
                state.survivor_errors += 1;
                if state.notes.len() < 8 {
                    state
                        .notes
                        .push(format!("survivor shard {owner} answered {status}: {body}"));
                }
            }
            return;
        }
        // Recovery: the first 200 owned by a killed shard resolves the
        // earliest unresolved kill of that shard.
        for index in 0..state.kills.len() {
            let resolved = state.kills[index].recovery_us.is_some();
            if state.kills[index].spec.shard == owner && !resolved {
                if let Some(at) = state.killed_at[index] {
                    if done > at {
                        state.kills[index].recovery_us =
                            Some(done.duration_since(at).as_micros().min(u64::MAX as u128) as u64);
                        break;
                    }
                }
            }
        }
        // Consistency: same request body, same normalized response bytes.
        let response_hash = normalized_response_hash(body);
        match state.expected.get(&body_hash) {
            Some(&first) if first != response_hash => {
                state.divergences += 1;
                if state.notes.len() < 8 {
                    state.notes.push(format!(
                        "shard {owner} answered a repeated request with different bytes: {body}"
                    ));
                }
            }
            Some(_) => {}
            None => {
                state.expected.insert(body_hash, response_hash);
            }
        }
    }

    /// Closes the books: merges the post-run `/healthz` view and returns
    /// the report block.
    pub fn finish(self, config: &ChaosConfig, shards_after: &[ShardRow]) -> ChaosReport {
        let state = self.state.into_inner().unwrap_or_else(|e| e.into_inner());
        let respawns: BTreeMap<usize, u64> = shards_after
            .iter()
            .map(|row| (row.id, row.respawns))
            .collect();
        let breakers: BTreeMap<usize, String> = shards_after
            .iter()
            .map(|row| (row.id, row.breaker.clone()))
            .collect();
        let all_killed = state.kills.iter().all(|k| k.killed);
        let all_recovered = state.kills.iter().all(|k| k.recovery_us.is_some());
        let mut notes = state.notes;
        if !all_killed {
            notes.push("not every scheduled kill was delivered".to_owned());
        }
        if !all_recovered {
            notes.push("a killed shard never served a 200 again within the run".to_owned());
        }
        ChaosReport {
            spec: config.spec.clone(),
            shards: shards_after.len(),
            kills: state.kills,
            respawns,
            breakers,
            divergences: state.divergences,
            survivor_errors: state.survivor_errors,
            consistent: all_killed
                && all_recovered
                && state.divergences == 0
                && state.survivor_errors == 0,
            notes,
        }
    }
}

/// The `"chaos"` block of a `dynex-load/v1` report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The schedule as given on the command line.
    pub spec: String,
    /// Fleet size seen at `/healthz`.
    pub shards: usize,
    /// Per-kill outcome, in schedule order.
    pub kills: Vec<KillOutcome>,
    /// Post-run respawn count per shard slot.
    pub respawns: BTreeMap<usize, u64>,
    /// Post-run breaker state per shard slot.
    pub breakers: BTreeMap<usize, String>,
    /// Repeated requests that got different (normalized) bytes.
    pub divergences: u64,
    /// Non-`200` responses owned by never-killed shards.
    pub survivor_errors: u64,
    /// True when every kill landed, every victim recovered, and nothing
    /// diverged or spilled over.
    pub consistent: bool,
    /// Human-readable details behind any failure.
    pub notes: Vec<String>,
}

impl ChaosReport {
    /// Serializes the block as one JSON object.
    pub fn to_json(&self) -> String {
        let mut kills = String::from("[");
        for (i, kill) in self.kills.iter().enumerate() {
            if i > 0 {
                kills.push(',');
            }
            kills.push_str(&format!(
                r#"{{"shard":{},"at_s":{},"pid":{},"killed":{},"recovery_us":{}}}"#,
                kill.spec.shard,
                crate::report::fmt_f64(kill.spec.at.as_secs_f64()),
                kill.pid,
                kill.killed,
                kill.recovery_us
                    .map_or_else(|| "null".to_owned(), |us| us.to_string()),
            ));
        }
        kills.push(']');
        let map_json = |pairs: &BTreeMap<usize, u64>| {
            let mut out = String::from("{");
            for (i, (id, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(r#""{id}":{v}"#));
            }
            out.push('}');
            out
        };
        let mut breakers = String::from("{");
        for (i, (id, state)) in self.breakers.iter().enumerate() {
            if i > 0 {
                breakers.push(',');
            }
            breakers.push_str(&format!(r#""{id}":"{}""#, json::escape(state)));
        }
        breakers.push('}');
        let mut notes = String::from("[");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                notes.push(',');
            }
            notes.push_str(&format!("\"{}\"", json::escape(note)));
        }
        notes.push(']');
        format!(
            concat!(
                r#"{{"spec":"{spec}","shards":{shards},"kills":{kills},"#,
                r#""respawns":{respawns},"breakers":{breakers},"#,
                r#""divergences":{div},"survivor_errors":{surv},"#,
                r#""consistent":{consistent},"notes":{notes}}}"#,
            ),
            spec = json::escape(&self.spec),
            shards = self.shards,
            kills = kills,
            respawns = map_json(&self.respawns),
            breakers = breakers,
            div = self.divergences,
            surv = self.survivor_errors,
            consistent = self.consistent,
            notes = notes,
        )
    }
}

/// Delivers `SIGKILL` to `pid` via the system `kill` binary (see module
/// docs for why not a syscall).
pub fn kill_pid(pid: u32) -> Result<(), String> {
    let status = std::process::Command::new("kill")
        .args(["-KILL", &pid.to_string()])
        .status()
        .map_err(|e| format!("cannot run kill: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("kill -KILL {pid} exited with {status}"))
    }
}

/// Hash of a request body — the identity under which repeated requests
/// are compared for divergence.
pub fn body_hash(body: &str) -> u64 {
    hash(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_accepts_schedules_and_rejects_garbage() {
        let config = ChaosConfig::parse("kill:0@2").unwrap();
        assert_eq!(
            config.kills,
            vec![KillSpec {
                shard: 0,
                at: Duration::from_secs(2)
            }]
        );
        let config = ChaosConfig::parse("kill:1@0.5, kill:0@3").unwrap();
        assert_eq!(config.kills.len(), 2);
        assert_eq!(config.kills[0].shard, 1);
        assert_eq!(config.kills[0].at, Duration::from_millis(500));

        assert!(ChaosConfig::parse("").unwrap_err().contains("bad chaos"));
        assert!(ChaosConfig::parse("stab:0@2")
            .unwrap_err()
            .contains("kill:<shard>@<sec>"));
        assert!(ChaosConfig::parse("kill:0").unwrap_err().contains("@<sec>"));
        assert!(ChaosConfig::parse("kill:x@2")
            .unwrap_err()
            .contains("shard"));
        assert!(ChaosConfig::parse("kill:0@-1")
            .unwrap_err()
            .contains("time"));
    }

    #[test]
    fn cached_flag_is_normalized_out_of_response_identity() {
        let fresh = r#"{"label":"x","misses":42,"cached":false}"#;
        let warm = r#"{"label":"x","misses":42,"cached":true}"#;
        let wrong = r#"{"label":"x","misses":43,"cached":true}"#;
        assert_eq!(
            normalized_response_hash(fresh),
            normalized_response_hash(warm)
        );
        assert_ne!(
            normalized_response_hash(fresh),
            normalized_response_hash(wrong)
        );
    }

    #[test]
    fn monitor_tracks_recovery_and_divergence() {
        let config = ChaosConfig::parse("kill:1@0").unwrap();
        let monitor = ChaosMonitor::new(&config);
        let body = r#"{"label":"a","misses":7,"cached":false}"#;
        let key = body_hash("request-a");

        // Before the kill: a 200 from shard 1 resolves nothing.
        monitor.observe(1, 200, body, key, Instant::now());
        monitor.record_kill(0, 4242);
        std::thread::sleep(Duration::from_millis(5));
        // Survivor error: shard 0 was never scheduled to die.
        monitor.observe(0, 503, r#"{"error":"x"}"#, body_hash("b"), Instant::now());
        // Recovery: first 200 after the kill; warm (cached:true) bytes do
        // not count as divergence.
        let warm = r#"{"label":"a","misses":7,"cached":true}"#;
        monitor.observe(1, 200, warm, key, Instant::now());
        // Divergence: same request, different result.
        monitor.observe(
            1,
            200,
            r#"{"label":"a","misses":9,"cached":true}"#,
            key,
            Instant::now(),
        );

        let after = vec![
            ShardRow {
                id: 0,
                pid: 10,
                respawns: 0,
                breaker: "closed".to_owned(),
            },
            ShardRow {
                id: 1,
                pid: 99,
                respawns: 1,
                breaker: "closed".to_owned(),
            },
        ];
        let report = monitor.finish(&config, &after);
        assert!(report.kills[0].killed);
        assert_eq!(report.kills[0].pid, 4242);
        let recovery = report.kills[0].recovery_us.expect("recovered");
        assert!(recovery >= 5_000, "{recovery}");
        assert_eq!(report.divergences, 1);
        assert_eq!(report.survivor_errors, 1);
        assert_eq!(report.respawns[&1], 1);
        assert!(!report.consistent);
        let doc = json::parse(&report.to_json()).expect("chaos block is JSON");
        assert_eq!(doc.get("consistent").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("divergences").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn monitor_is_consistent_when_everything_heals() {
        let config = ChaosConfig::parse("kill:0@1").unwrap();
        let monitor = ChaosMonitor::new(&config);
        monitor.record_kill(0, 7);
        monitor.observe(
            0,
            200,
            r#"{"v":1,"cached":false}"#,
            body_hash("a"),
            Instant::now(),
        );
        let after = vec![ShardRow {
            id: 0,
            pid: 8,
            respawns: 1,
            breaker: "closed".to_owned(),
        }];
        let report = monitor.finish(&config, &after);
        assert!(report.consistent, "{:?}", report.notes);
        assert!(report.notes.is_empty());
    }
}
