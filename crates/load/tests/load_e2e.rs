//! End-to-end: the open-loop harness against a live in-process serve tier.
//!
//! Boots real [`dynex_serve::Server`]s (and, for the sharded case, a real
//! [`dynex_serve::Router`] in front of them), drives a short seeded load
//! through the actual TCP stack, and checks the whole measurement chain:
//! non-zero throughput, zero 5xx, duplicate-driven cache hits, a valid
//! `dynex-load/v1` document, and a passing client-vs-server cross-check.
//!
//! Rates and reference counts are sized for a single-core CI box: the
//! simulations are trivial (a few thousand references) so the schedule
//! stays comfortably ahead of the server.

use std::time::Duration;

use dynex_load::{run, LoadConfig};
use dynex_obs::json::{self, Json};
use dynex_serve::{client, Router, RouterConfig, ServeConfig, Server};

/// A small single-process server suitable for a 1-core test box.
fn test_server() -> Server {
    Server::start(ServeConfig {
        jobs: 1,
        ..ServeConfig::default()
    })
    .expect("server boots")
}

/// A quick load config: ~1.2 seconds, trivial simulations, duplicate-heavy.
fn quick_load(target: std::net::SocketAddr) -> LoadConfig {
    let mut config = LoadConfig::new(target);
    config.rate = 50.0;
    config.duration = Duration::from_millis(1_200);
    config.senders = 4;
    config.timeout = Duration::from_secs(30);
    config.mix.refs = 2_000;
    config.mix.pool = 8;
    config.mix.duplicate_ratio = 0.8;
    config
}

/// Asserts the invariants every healthy run must satisfy and returns the
/// parsed `dynex-load/v1` document.
fn assert_healthy_report(report: &dynex_load::LoadReport) -> Json {
    assert_eq!(report.sent, report.scheduled as u64);
    assert_eq!(report.completed, report.sent, "errors: {:?}", report.errors);
    assert_eq!(report.ok, report.completed);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // A 0.8 duplicate ratio over an 8-entry pool must hit the cache.
    assert!(
        report.cached_hits > 0,
        "no cache hits from a duplicate-heavy mix"
    );
    assert!(report.refs_total >= report.ok * 2_000);
    assert!(report.reqs_per_s() > 0.0);
    assert_eq!(report.e2e_stats().count, report.completed);
    assert_eq!(report.service_stats().count, report.completed);
    // Open loop: e2e includes scheduling lag, so it can never undercut the
    // service-only view.
    assert!(report.e2e_total_us >= report.service_total_us);

    let check = report.cross_check().expect("metrics were fetched");
    assert!(
        check.consistent,
        "client/server cross-check failed: {:?}",
        check.notes
    );

    let doc = json::parse(&report.to_json()).expect("report is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("dynex-load/v1")
    );
    assert_eq!(
        doc.get("crosscheck")
            .and_then(|c| c.get("consistent"))
            .and_then(Json::as_bool),
        Some(true)
    );
    doc
}

#[test]
fn load_against_a_single_server_measures_and_reconciles() {
    let server = test_server();
    let report = run(&quick_load(server.addr())).expect("load run");
    let doc = assert_healthy_report(&report);
    // The embedded server document is the server's own registry: the
    // request count it saw covers everything the client completed.
    let served = doc
        .get("server")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get("requests-total"))
        .and_then(Json::as_u64)
        .expect("server counters embedded");
    assert!(served >= report.completed);

    client::call(
        server.addr(),
        "POST",
        "/shutdown",
        "",
        Duration::from_secs(10),
    )
    .expect("shutdown");
    server.join();
}

#[test]
fn load_against_a_two_shard_router_measures_and_reconciles() {
    let shard_a = test_server();
    let shard_b = test_server();
    let router = Router::start(RouterConfig {
        shards: vec![shard_a.addr(), shard_b.addr()],
        ..RouterConfig::default()
    })
    .expect("router boots");

    let report = run(&quick_load(router.addr())).expect("load run");
    let doc = assert_healthy_report(&report);
    // The router's merged /metrics carries the per-shard breakdown; an
    // 8-configuration pool must land work on both shards for this seed.
    let shards = doc
        .get("server")
        .and_then(|s| s.get("shards"))
        .and_then(Json::as_array)
        .expect("merged metrics lists shards");
    assert_eq!(shards.len(), 2);
    let routed_total: u64 = (0..2)
        .map(|i| router.counter(&format!("router-routed-shard-{i}")))
        .sum();
    assert_eq!(routed_total, report.completed);
    assert!(
        (0..2).all(|i| router.counter(&format!("router-routed-shard-{i}")) > 0),
        "an 8-entry pool spread over rendezvous hashing left a shard idle"
    );

    // POST /shutdown at the router relays the drain to both shards.
    client::call(
        router.addr(),
        "POST",
        "/shutdown",
        "",
        Duration::from_secs(10),
    )
    .expect("shutdown");
    router.join();
    shard_a.join();
    shard_b.join();
}
