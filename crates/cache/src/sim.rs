//! The simulator interface shared by every cache model in the workspace.

use dynex_trace::Access;

use crate::CacheStats;

/// Result of presenting one address to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The block was found in the cache (or an attached buffer).
    Hit,
    /// The block was not present and had to be fetched.
    Miss,
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Miss`].
    pub fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss)
    }

    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

impl From<AccessOutcome> for dynex_obs::Outcome {
    fn from(outcome: AccessOutcome) -> dynex_obs::Outcome {
        match outcome {
            AccessOutcome::Hit => dynex_obs::Outcome::Hit,
            AccessOutcome::Miss => dynex_obs::Outcome::Miss,
        }
    }
}

/// A trace-driven cache simulator.
///
/// Simulators are presented raw byte addresses; callers choose which
/// reference kinds reach which simulator (instruction cache, data cache,
/// combined) using the filters in [`dynex_trace::filter`].
///
/// Implementations must update their own [`CacheStats`] on every
/// [`CacheSim::access`] call so that [`run`] and manual driving agree.
pub trait CacheSim {
    /// Presents one byte address; returns whether it hit.
    fn access(&mut self, addr: u32) -> AccessOutcome;

    /// Accumulated statistics.
    fn stats(&self) -> CacheStats;

    /// A short human-readable description (used in experiment tables).
    fn label(&self) -> String;
}

/// Drives `sim` over a stream of accesses and returns the final statistics.
///
/// # Examples
///
/// ```
/// use dynex_cache::{run, CacheConfig, DirectMapped};
/// use dynex_trace::Access;
///
/// let mut dm = DirectMapped::new(CacheConfig::direct_mapped(64, 4)?);
/// let stats = run(&mut dm, [Access::fetch(0), Access::fetch(0)]);
/// assert_eq!(stats.misses(), 1);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
pub fn run<S, I>(sim: &mut S, accesses: I) -> CacheStats
where
    S: CacheSim + ?Sized,
    I: IntoIterator<Item = Access>,
{
    for access in accesses {
        sim.access(access.addr());
    }
    sim.stats()
}

/// Drives `sim` over raw byte addresses.
pub fn run_addrs<S, I>(sim: &mut S, addrs: I) -> CacheStats
where
    S: CacheSim + ?Sized,
    I: IntoIterator<Item = u32>,
{
    for addr in addrs {
        sim.access(addr);
    }
    sim.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(AccessOutcome::Miss.is_miss());
        assert!(!AccessOutcome::Miss.is_hit());
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Hit.is_miss());
    }

    /// A trivial simulator: hits iff the address was seen before (infinite cache).
    struct Infinite {
        seen: std::collections::HashSet<u32>,
        stats: CacheStats,
    }

    impl CacheSim for Infinite {
        fn access(&mut self, addr: u32) -> AccessOutcome {
            let outcome = if self.seen.insert(addr) {
                AccessOutcome::Miss
            } else {
                AccessOutcome::Hit
            };
            self.stats.record(outcome);
            outcome
        }

        fn stats(&self) -> CacheStats {
            self.stats
        }

        fn label(&self) -> String {
            "infinite".to_owned()
        }
    }

    #[test]
    fn run_drives_all_accesses() {
        let mut sim = Infinite {
            seen: Default::default(),
            stats: CacheStats::new(),
        };
        let stats = run(
            &mut sim,
            [
                Access::fetch(0),
                Access::fetch(4),
                Access::fetch(0),
                Access::read(4),
            ],
        );
        assert_eq!(stats.accesses(), 4);
        assert_eq!(stats.misses(), 2); // cold misses only
    }

    #[test]
    fn run_addrs_equivalent() {
        let mut a = Infinite {
            seen: Default::default(),
            stats: CacheStats::new(),
        };
        let mut b = Infinite {
            seen: Default::default(),
            stats: CacheStats::new(),
        };
        let addrs = [0u32, 4, 0, 8, 4];
        run(&mut a, addrs.iter().map(|&x| Access::fetch(x)));
        run_addrs(&mut b, addrs);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn trait_object_usable() {
        let mut sim = Infinite {
            seen: Default::default(),
            stats: CacheStats::new(),
        };
        let dyn_sim: &mut dyn CacheSim = &mut sim;
        let stats = run_addrs(dyn_sim, [0, 0]);
        assert_eq!(stats.hits(), 1);
        assert_eq!(dyn_sim.label(), "infinite");
    }
}
