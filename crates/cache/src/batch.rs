//! Kernel selection and chunked trace decode.
//!
//! The simulators in this workspace consume traces in two shapes: the
//! reference path pulls one [`Access`] at a time through an iterator, while
//! the batch kernels in [`crate::kernel`] want flat `&[u32]` address slices.
//! This module provides the bridge — [`ChunkedDecoder`] turns a packed trace
//! into reusable chunks of byte addresses without a per-reference virtual
//! call, and [`decode_addrs`] materializes a whole stream when a kernel
//! needs it resident (the optimal oracle always does).
//!
//! It also defines [`Kernel`], the `--kernel {reference,batch,sweep}`
//! selector the CLIs and the engine share.

use std::fmt;

use dynex_trace::{AccessKind, PackedAccess};

/// Number of references decoded per chunk. 4096 words (16 KiB of addresses)
/// comfortably fits in L1/L2 alongside the per-set state while amortizing
/// loop overhead.
pub const CHUNK_LEN: usize = 4096;

/// Which simulation implementation to run.
///
/// Every kernel produces bit-identical statistics, event streams, and CSV
/// output (`tests/kernel_differential.rs` enforces the three-way matrix);
/// the choice is purely a performance one. `Reference` remains available as
/// the differential oracle and for policies the fast paths do not
/// specialize; `Batch` fuses one geometry's dm/de/opt triple into one
/// traversal; `Sweep` carries a whole multi-geometry plan through a single
/// traversal (see [`crate::sweep`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Per-reference `access()` simulators (the spec implementations).
    Reference,
    /// Table-driven chunked kernels from [`crate::kernel`] (the default).
    #[default]
    Batch,
    /// One-pass multi-configuration kernel from [`crate::sweep`]: shares the
    /// decode, the next-use oracle, and the trace walk across every point of
    /// a sweep.
    Sweep,
}

impl Kernel {
    /// Stable lowercase name, as accepted by [`Kernel::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Batch => "batch",
            Kernel::Sweep => "sweep",
        }
    }

    /// Parses a `--kernel` argument.
    ///
    /// # Examples
    ///
    /// ```
    /// use dynex_cache::Kernel;
    ///
    /// assert_eq!(Kernel::parse("batch"), Some(Kernel::Batch));
    /// assert_eq!(Kernel::parse("reference"), Some(Kernel::Reference));
    /// assert_eq!(Kernel::parse("sweep"), Some(Kernel::Sweep));
    /// assert_eq!(Kernel::parse("fast"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Kernel> {
        match s {
            "reference" => Some(Kernel::Reference),
            "batch" => Some(Kernel::Batch),
            "sweep" => Some(Kernel::Sweep),
            _ => None,
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which reference kinds a decode keeps, mirroring the instruction/data
/// split the paper's figures use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KindFilter {
    /// Every reference (unified cache).
    #[default]
    All,
    /// Instruction fetches only.
    Instructions,
    /// Data reads and writes only.
    Data,
}

impl KindFilter {
    /// Whether a reference of `kind` passes the filter.
    #[inline]
    pub fn keeps(self, kind: AccessKind) -> bool {
        match self {
            KindFilter::All => true,
            KindFilter::Instructions => kind == AccessKind::Fetch,
            KindFilter::Data => kind != AccessKind::Fetch,
        }
    }
}

/// Streaming decoder: packed words → chunks of word-aligned byte addresses
/// in a reusable internal buffer.
///
/// Each [`next_chunk`](ChunkedDecoder::next_chunk) call refills the buffer
/// from the packed slice (applying the [`KindFilter`]) and returns a view of
/// it, so decoding a trace of any length allocates one `CHUNK_LEN` buffer
/// total. The decode itself is two shifts per word — no `Access` struct is
/// materialized.
///
/// # Examples
///
/// ```
/// use dynex_cache::{ChunkedDecoder, KindFilter};
/// use dynex_trace::{Access, PackedAccess};
///
/// let packed: Vec<PackedAccess> =
///     [Access::fetch(0x40), Access::read(0x80)].map(PackedAccess::pack).into();
/// let mut decoder = ChunkedDecoder::new(&packed, KindFilter::Instructions);
/// assert_eq!(decoder.next_chunk(), Some(&[0x40u32][..]));
/// assert_eq!(decoder.next_chunk(), None);
/// ```
#[derive(Debug)]
pub struct ChunkedDecoder<'a> {
    packed: &'a [PackedAccess],
    pos: usize,
    filter: KindFilter,
    buf: Vec<u32>,
}

impl<'a> ChunkedDecoder<'a> {
    /// Creates a decoder over a packed trace.
    pub fn new(packed: &'a [PackedAccess], filter: KindFilter) -> ChunkedDecoder<'a> {
        ChunkedDecoder {
            packed,
            pos: 0,
            filter,
            buf: Vec::with_capacity(CHUNK_LEN),
        }
    }

    /// Decodes the next chunk of up to [`CHUNK_LEN`] byte addresses into the
    /// internal buffer and returns it, or `None` when the trace is drained.
    ///
    /// With a filter other than [`KindFilter::All`], consecutive filtered-out
    /// references are skipped; a returned chunk is non-empty.
    pub fn next_chunk(&mut self) -> Option<&[u32]> {
        self.buf.clear();
        while self.buf.len() < CHUNK_LEN && self.pos < self.packed.len() {
            let p = self.packed[self.pos];
            self.pos += 1;
            if self.filter.keeps(p.kind()) {
                self.buf.push(p.word_addr() << 2);
            }
        }
        if self.buf.is_empty() {
            None
        } else {
            Some(&self.buf)
        }
    }
}

/// Materializes a whole packed trace as word-aligned byte addresses,
/// applying `filter`. Built on [`ChunkedDecoder`]; this is the shape the
/// batch kernels and the sharded engine paths consume.
///
/// # Examples
///
/// ```
/// use dynex_cache::{decode_addrs, KindFilter};
/// use dynex_trace::{Access, PackedAccess};
///
/// let packed: Vec<PackedAccess> =
///     [Access::fetch(0x40), Access::write(0x83)].map(PackedAccess::pack).into();
/// assert_eq!(decode_addrs(&packed, KindFilter::All), vec![0x40, 0x80]);
/// assert_eq!(decode_addrs(&packed, KindFilter::Data), vec![0x80]);
/// ```
pub fn decode_addrs(packed: &[PackedAccess], filter: KindFilter) -> Vec<u32> {
    let mut addrs = Vec::with_capacity(if filter == KindFilter::All {
        packed.len()
    } else {
        0
    });
    let mut decoder = ChunkedDecoder::new(packed, filter);
    while let Some(chunk) = decoder.next_chunk() {
        addrs.extend_from_slice(chunk);
    }
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_trace::Access;

    fn packed(accesses: &[Access]) -> Vec<PackedAccess> {
        accesses.iter().map(|&a| PackedAccess::pack(a)).collect()
    }

    #[test]
    fn kernel_parse_roundtrips_names() {
        for kernel in [Kernel::Reference, Kernel::Batch, Kernel::Sweep] {
            assert_eq!(Kernel::parse(kernel.name()), Some(kernel));
            assert_eq!(kernel.to_string(), kernel.name());
        }
        assert_eq!(Kernel::parse("Batch"), None, "case-sensitive like --jobs");
        assert_eq!(Kernel::default(), Kernel::Batch);
    }

    #[test]
    fn filter_splits_instruction_and_data() {
        assert!(KindFilter::All.keeps(AccessKind::Fetch));
        assert!(KindFilter::All.keeps(AccessKind::Write));
        assert!(KindFilter::Instructions.keeps(AccessKind::Fetch));
        assert!(!KindFilter::Instructions.keeps(AccessKind::Read));
        assert!(KindFilter::Data.keeps(AccessKind::Read));
        assert!(KindFilter::Data.keeps(AccessKind::Write));
        assert!(!KindFilter::Data.keeps(AccessKind::Fetch));
    }

    #[test]
    fn decoder_chunks_long_traces() {
        let n = CHUNK_LEN * 2 + 17;
        let accesses: Vec<Access> = (0..n).map(|i| Access::fetch((i as u32) * 4)).collect();
        let packed = packed(&accesses);
        let mut decoder = ChunkedDecoder::new(&packed, KindFilter::All);
        let mut total = 0usize;
        let mut chunks = 0usize;
        while let Some(chunk) = decoder.next_chunk() {
            assert!(chunk.len() <= CHUNK_LEN);
            for (j, &addr) in chunk.iter().enumerate() {
                assert_eq!(addr, ((total + j) as u32) * 4);
            }
            total += chunk.len();
            chunks += 1;
        }
        assert_eq!(total, n);
        assert_eq!(chunks, 3);
    }

    #[test]
    fn decoder_skips_filtered_runs() {
        // A long run of data refs between two fetches must not yield an
        // empty chunk.
        let mut accesses = vec![Access::fetch(0x0)];
        accesses.extend((0..CHUNK_LEN * 2).map(|i| Access::read((i as u32) * 4)));
        accesses.push(Access::fetch(0x100));
        let packed = packed(&accesses);
        let mut decoder = ChunkedDecoder::new(&packed, KindFilter::Instructions);
        let mut got = Vec::new();
        while let Some(chunk) = decoder.next_chunk() {
            assert!(!chunk.is_empty());
            got.extend_from_slice(chunk);
        }
        assert_eq!(got, vec![0x0, 0x100]);
    }

    #[test]
    fn decode_addrs_matches_unpack_loop() {
        let accesses: Vec<Access> = (0..1000)
            .map(|i| {
                let addr = (i as u32) * 12 + 3; // unaligned on purpose
                match i % 3 {
                    0 => Access::fetch(addr),
                    1 => Access::read(addr),
                    _ => Access::write(addr),
                }
            })
            .collect();
        let packed = packed(&accesses);
        let expected: Vec<u32> = packed.iter().map(|p| p.unpack().addr()).collect();
        assert_eq!(decode_addrs(&packed, KindFilter::All), expected);
        let data: Vec<u32> = packed
            .iter()
            .filter(|p| p.kind() != AccessKind::Fetch)
            .map(|p| p.unpack().addr())
            .collect();
        assert_eq!(decode_addrs(&packed, KindFilter::Data), data);
    }

    #[test]
    fn empty_trace_decodes_to_nothing() {
        assert_eq!(decode_addrs(&[], KindFilter::All), Vec::<u32>::new());
        let mut decoder = ChunkedDecoder::new(&[], KindFilter::All);
        assert_eq!(decoder.next_chunk(), None);
    }
}
