//! A generic two-level cache hierarchy.
//!
//! The dynamic-exclusion-specific hierarchy (hit-last bits stored in L2,
//! inclusive/exclusive content management) lives in `dynex-core`; this type
//! provides the conventional L1+L2 baseline those experiments compare
//! against.

use crate::{AccessOutcome, CacheSim, CacheStats};

/// Combined statistics of a two-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyStats {
    /// First-level statistics (all references).
    pub l1: CacheStats,
    /// Second-level statistics (references that missed in L1).
    pub l2: CacheStats,
}

impl HierarchyStats {
    /// L2 misses divided by *all* references (the "global" L2 miss rate).
    pub fn global_l2_miss_rate(&self) -> f64 {
        if self.l1.accesses() == 0 {
            0.0
        } else {
            self.l2.misses() as f64 / self.l1.accesses() as f64
        }
    }
}

/// Two stacked simulators: every L1 miss is presented to L2.
///
/// The overall [`AccessOutcome`] is the L1 outcome (an L1 miss counts as a
/// miss whether or not L2 holds the block), matching the paper's L1
/// miss-rate accounting; L2 behaviour is read from [`TwoLevel::hierarchy_stats`].
///
/// # Examples
///
/// ```
/// use dynex_cache::{CacheConfig, CacheSim, DirectMapped, TwoLevel};
///
/// let l1 = DirectMapped::new(CacheConfig::direct_mapped(64, 4)?);
/// let l2 = DirectMapped::new(CacheConfig::direct_mapped(256, 4)?);
/// let mut h = TwoLevel::new(l1, l2);
/// h.access(0x0);
/// let stats = h.hierarchy_stats();
/// assert_eq!(stats.l1.misses(), 1);
/// assert_eq!(stats.l2.accesses(), 1);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevel<L1, L2> {
    l1: L1,
    l2: L2,
}

impl<L1: CacheSim, L2: CacheSim> TwoLevel<L1, L2> {
    /// Stacks `l1` over `l2`.
    pub fn new(l1: L1, l2: L2) -> TwoLevel<L1, L2> {
        TwoLevel { l1, l2 }
    }

    /// The first-level simulator.
    pub fn l1(&self) -> &L1 {
        &self.l1
    }

    /// The second-level simulator.
    pub fn l2(&self) -> &L2 {
        &self.l2
    }

    /// Statistics for both levels.
    pub fn hierarchy_stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
        }
    }
}

impl<L1: CacheSim, L2: CacheSim> CacheSim for TwoLevel<L1, L2> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let outcome = self.l1.access(addr);
        if outcome.is_miss() {
            self.l2.access(addr);
        }
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.l1.stats()
    }

    fn label(&self) -> String {
        format!("L1[{}] + L2[{}]", self.l1.label(), self.l2.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_addrs, CacheConfig, DirectMapped};

    fn hierarchy(l1_size: u32, l2_size: u32) -> TwoLevel<DirectMapped, DirectMapped> {
        TwoLevel::new(
            DirectMapped::new(CacheConfig::direct_mapped(l1_size, 4).unwrap()),
            DirectMapped::new(CacheConfig::direct_mapped(l2_size, 4).unwrap()),
        )
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = hierarchy(64, 256);
        run_addrs(&mut h, [0u32, 0, 0, 4, 4]);
        let s = h.hierarchy_stats();
        assert_eq!(s.l1.accesses(), 5);
        assert_eq!(s.l1.misses(), 2);
        assert_eq!(s.l2.accesses(), 2);
    }

    #[test]
    fn larger_l2_absorbs_l1_conflicts() {
        // a/b conflict in a 64B L1 but coexist in a 256B L2.
        let mut h = hierarchy(64, 256);
        let stats = run_addrs(&mut h, (0..20).map(|i| if i % 2 == 0 { 0u32 } else { 64 }));
        assert_eq!(stats.misses(), 20); // L1 thrashes
        let s = h.hierarchy_stats();
        assert_eq!(s.l2.misses(), 2); // but L2 holds both
        assert!((s.global_l2_miss_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn overall_outcome_is_l1_outcome() {
        let mut h = hierarchy(64, 256);
        h.access(0x0);
        h.access(0x40); // L1 conflict
        assert!(h.access(0x0).is_miss()); // L2 hit, still an L1 miss
    }

    #[test]
    fn empty_hierarchy_global_rate_zero() {
        let h = hierarchy(64, 256);
        assert_eq!(h.hierarchy_stats().global_l2_miss_rate(), 0.0);
    }

    #[test]
    fn label_names_both_levels() {
        let h = hierarchy(64, 256);
        assert!(h.label().contains("L1["));
        assert!(h.label().contains("L2["));
    }
}
