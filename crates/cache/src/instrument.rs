//! [`Instrumented`]: observe any [`CacheSim`] from the outside.
//!
//! The simulators in this workspace emit rich internal events when built
//! `with_probe`, but that requires choosing the probe at construction time.
//! `Instrumented` instead wraps an *already built* simulator — including ones
//! whose internals are not probe-aware — and derives [`Event::Access`] events
//! from the [`CacheSim::access`] return value. Internal events (evictions,
//! sticky flips, …) are not visible from outside, so the access cause is
//! always [`Cause::Unattributed`]; when you need causes, construct the
//! simulator with its own probe instead.

use dynex_obs::{Cause, Event, Probe};

use crate::{AccessOutcome, CacheSim, CacheStats, Geometry};

/// A [`CacheSim`] adapter that emits an [`Event::Access`] per access.
///
/// The wrapper is transparent: it forwards every access to the inner
/// simulator and returns its outcome unchanged, so statistics are
/// byte-identical to an unwrapped run (the differential tests in
/// `dynex-experiments` assert exactly this).
///
/// A [`Geometry`] maps each address to its cache set so probes downstream
/// (e.g. [`dynex_obs::Collector`]) can aggregate per-set behaviour.
///
/// # Examples
///
/// ```
/// use dynex_cache::{CacheConfig, CacheSim, DirectMapped, Instrumented};
/// use dynex_obs::CountingProbe;
///
/// let config = CacheConfig::direct_mapped(256, 4)?;
/// let inner = DirectMapped::new(config);
/// let mut sim = Instrumented::new(inner, config.geometry(), CountingProbe::new());
/// sim.access(0x0);
/// sim.access(0x0);
/// assert_eq!(sim.probe().counts().hits, 1);
/// assert_eq!(sim.probe().counts().misses, 1);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Instrumented<S: CacheSim, P: Probe> {
    inner: S,
    geometry: Geometry,
    probe: P,
}

impl<S: CacheSim, P: Probe> Instrumented<S, P> {
    /// Wraps `inner`, attributing each address to a set via `geometry`.
    ///
    /// `geometry` should come from the same [`crate::CacheConfig`] the inner
    /// simulator was built with, so the emitted `set` matches the set the
    /// simulator actually indexed.
    pub fn new(inner: S, geometry: Geometry, probe: P) -> Instrumented<S, P> {
        Instrumented {
            inner,
            geometry,
            probe,
        }
    }

    /// The wrapped simulator.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the wrapper, returning the simulator and the probe.
    pub fn into_parts(self) -> (S, P) {
        (self.inner, self.probe)
    }
}

impl<S: CacheSim, P: Probe> CacheSim for Instrumented<S, P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let outcome = self.inner.access(addr);
        self.probe.emit(Event::Access {
            addr,
            set: self.geometry.set_of_addr(addr),
            outcome: outcome.into(),
            cause: Cause::Unattributed,
        });
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    fn label(&self) -> String {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_addrs, CacheConfig, DirectMapped, Replacement, SetAssociative, SplitMix64};
    use dynex_obs::{CountingProbe, EventLog, Outcome};

    #[test]
    fn wrapper_is_transparent() {
        let config = CacheConfig::new(512, 4, 2).unwrap();
        let mut bare = SetAssociative::new(config, Replacement::Lru);
        let mut wrapped = Instrumented::new(
            SetAssociative::new(config, Replacement::Lru),
            config.geometry(),
            CountingProbe::new(),
        );
        let mut rng = SplitMix64::new(3);
        for _ in 0..2000 {
            let a = (rng.below(4096) as u32) & !3;
            assert_eq!(bare.access(a), wrapped.access(a));
        }
        assert_eq!(bare.stats(), wrapped.stats());
        assert_eq!(bare.label(), wrapped.label());
        let counts = wrapped.probe().counts();
        assert_eq!(counts.accesses, wrapped.stats().accesses());
        assert_eq!(counts.misses, wrapped.stats().misses());
    }

    #[test]
    fn emitted_sets_match_geometry() {
        let config = CacheConfig::direct_mapped(256, 4).unwrap();
        let geometry = config.geometry();
        let mut sim = Instrumented::new(DirectMapped::new(config), geometry, EventLog::new());
        run_addrs(&mut sim, [0u32, 4, 64, 260]);
        let (_, log) = sim.into_parts();
        for event in log.events() {
            match *event {
                Event::Access { addr, set, .. } => {
                    assert_eq!(set, geometry.set_of_addr(addr));
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn outcomes_convert_faithfully() {
        assert_eq!(Outcome::from(AccessOutcome::Hit), Outcome::Hit);
        assert_eq!(Outcome::from(AccessOutcome::Miss), Outcome::Miss);
    }
}
