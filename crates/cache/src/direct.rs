//! The conventional direct-mapped cache — the paper's baseline.

use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::{AccessOutcome, CacheConfig, CacheSim, CacheStats, Geometry};

/// Sentinel line-address value meaning "invalid line". Real line addresses
/// occupy at most 30 bits, so this cannot collide.
pub(crate) const INVALID_LINE: u32 = u32::MAX;

/// A conventional direct-mapped cache: every miss loads the referenced block,
/// replacing whatever occupied its line.
///
/// This is the baseline of every figure in the paper ("direct mapped").
///
/// The cache is generic over an observability [`Probe`]; the default
/// [`NoopProbe`] is a zero-sized type whose emissions compile away, so an
/// uninstrumented `DirectMapped` behaves and performs exactly as before.
/// Build an instrumented one with [`DirectMapped::with_probe`].
///
/// # Examples
///
/// ```
/// use dynex_cache::{CacheConfig, CacheSim, DirectMapped};
///
/// let mut cache = DirectMapped::new(CacheConfig::direct_mapped(64, 4)?);
/// assert!(cache.access(0x0).is_miss());
/// assert!(cache.access(0x0).is_hit());
/// assert!(cache.access(0x40).is_miss()); // conflicts with 0x0 in a 64B cache
/// assert!(cache.access(0x0).is_miss());  // knocked out
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DirectMapped<P: Probe = NoopProbe> {
    config: CacheConfig,
    geometry: Geometry,
    lines: Vec<u32>,
    stats: CacheStats,
    probe: P,
}

impl DirectMapped {
    /// Creates an empty, unobserved cache.
    ///
    /// A direct-mapped cache is requested by convention with
    /// `associativity == 1`, but any [`CacheConfig`] whose associativity is 1
    /// is accepted.
    ///
    /// # Panics
    ///
    /// Panics if `config.associativity() != 1`; use [`crate::SetAssociative`]
    /// for wider organizations.
    pub fn new(config: CacheConfig) -> DirectMapped {
        DirectMapped::with_probe(config, NoopProbe)
    }
}

impl<P: Probe> DirectMapped<P> {
    /// Creates an empty cache emitting events into `probe`.
    ///
    /// # Panics
    ///
    /// Same as [`DirectMapped::new`].
    pub fn with_probe(config: CacheConfig, probe: P) -> DirectMapped<P> {
        assert_eq!(
            config.associativity(),
            1,
            "DirectMapped requires associativity 1"
        );
        DirectMapped {
            config,
            geometry: config.geometry(),
            lines: vec![INVALID_LINE; config.n_sets() as usize],
            stats: CacheStats::new(),
            probe,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the cache, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Whether the block containing `addr` is currently resident (no state
    /// change, no statistics).
    pub fn contains(&self, addr: u32) -> bool {
        let line = self.geometry.line_addr(addr);
        self.lines[self.geometry.set_of_line(line) as usize] == line
    }

    fn access_inner(&mut self, line: u32, addr: u32) -> AccessOutcome {
        let set = self.geometry.set_of_line(line) as usize;
        let resident = self.lines[set];
        let outcome = if resident == line {
            self.probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Hit,
                cause: Cause::Resident,
            });
            AccessOutcome::Hit
        } else {
            let cause = if resident == INVALID_LINE {
                Cause::Cold
            } else {
                self.probe.emit(Event::Eviction {
                    set: set as u32,
                    victim: resident,
                    replacement: line,
                });
                Cause::Replace
            };
            self.lines[set] = line;
            self.probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Miss,
                cause,
            });
            AccessOutcome::Miss
        };
        self.stats.record(outcome);
        outcome
    }
}

impl<P: Probe> CacheSim for DirectMapped<P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.geometry.line_addr(addr);
        self.access_inner(line, addr)
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!("{} (conventional)", self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_addrs;
    use dynex_obs::CountingProbe;

    fn cache(size: u32, line: u32) -> DirectMapped {
        DirectMapped::new(CacheConfig::direct_mapped(size, line).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(1024, 4);
        assert!(c.access(0x100).is_miss());
        assert!(c.access(0x100).is_hit());
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = cache(1024, 16);
        assert!(c.access(0x200).is_miss());
        for offset in [4, 8, 12] {
            assert!(c.access(0x200 + offset).is_hit());
        }
        assert!(c.access(0x210).is_miss());
    }

    #[test]
    fn conflicting_blocks_thrash() {
        // Two addresses one cache-size apart alternate: 100% misses.
        let mut c = cache(256, 4);
        let stats = run_addrs(&mut c, (0..20).map(|i| if i % 2 == 0 { 0u32 } else { 256 }));
        assert_eq!(stats.misses(), 20);
    }

    #[test]
    fn non_conflicting_blocks_coexist() {
        let mut c = cache(256, 4);
        let stats = run_addrs(&mut c, (0..20).map(|i| if i % 2 == 0 { 0u32 } else { 4 }));
        assert_eq!(stats.misses(), 2); // cold only
    }

    #[test]
    fn contains_reflects_state_without_counting() {
        let mut c = cache(256, 4);
        assert!(!c.contains(0x10));
        c.access(0x10);
        assert!(c.contains(0x10));
        assert!(!c.contains(0x10 + 256));
        assert_eq!(c.stats().accesses(), 1, "contains() must not count");
    }

    #[test]
    fn working_set_equal_to_capacity_fits() {
        let mut c = cache(128, 4); // 32 lines
        let addrs: Vec<u32> = (0..32).map(|i| i * 4).collect();
        // Two sweeps: first is all cold misses, second all hits.
        let stats = run_addrs(&mut c, addrs.iter().copied().chain(addrs.iter().copied()));
        assert_eq!(stats.misses(), 32);
        assert_eq!(stats.hits(), 32);
    }

    #[test]
    #[should_panic(expected = "associativity 1")]
    fn rejects_associative_config() {
        DirectMapped::new(CacheConfig::new(1024, 4, 2).unwrap());
    }

    #[test]
    fn label_mentions_organization() {
        assert!(cache(32 * 1024, 16).label().contains("32KB direct-mapped"));
    }

    #[test]
    fn probe_sees_cold_conflict_and_eviction_events() {
        let config = CacheConfig::direct_mapped(256, 4).unwrap();
        let mut c = DirectMapped::with_probe(config, CountingProbe::new());
        run_addrs(&mut c, [0u32, 0, 256, 0]); // cold, hit, conflict, conflict
        let counts = c.probe().counts();
        assert_eq!(counts.accesses, 4);
        assert_eq!(counts.hits, 1);
        assert_eq!(counts.misses, 3);
        assert_eq!(counts.evictions, 2, "cold fill is not an eviction");
        let counts2 = c.into_probe().counts();
        assert_eq!(counts, counts2);
    }

    #[test]
    fn probed_and_bare_stats_agree() {
        let config = CacheConfig::direct_mapped(128, 4).unwrap();
        let mut bare = DirectMapped::new(config);
        let mut probed = DirectMapped::with_probe(config, CountingProbe::new());
        let mut rng = crate::SplitMix64::new(11);
        for _ in 0..2000 {
            let a = (rng.below(1024) as u32) & !3;
            assert_eq!(bare.access(a), probed.access(a));
        }
        assert_eq!(bare.stats(), probed.stats());
        assert_eq!(probed.stats().accesses(), probed.probe().counts().accesses);
    }

    #[test]
    fn noop_probe_is_free_of_size_overhead() {
        assert_eq!(
            std::mem::size_of::<DirectMapped<NoopProbe>>(),
            std::mem::size_of::<DirectMapped>(),
        );
        assert_eq!(std::mem::size_of::<NoopProbe>(), 0);
    }
}
