//! Trace-driven cache simulation substrate for the `dynex` workspace.
//!
//! This crate provides everything McFarling's ISCA '92 dynamic-exclusion
//! study needs *underneath* the contribution itself:
//!
//! * [`CacheConfig`] / [`Geometry`] — size/line/associativity parameters and
//!   the derived index/tag arithmetic,
//! * [`DirectMapped`] — the baseline cache of the paper,
//! * [`SetAssociative`] and [`FullyAssociative`] — comparison organizations
//!   with pluggable [`Replacement`] policies,
//! * [`VictimCache`] and [`StreamBuffer`] — the related-work hardware from
//!   Jouppi \[Jou90\] that Section 2 compares against,
//! * [`TwoLevel`] — a generic two-level hierarchy,
//! * [`Instrumented`] — wraps any [`CacheSim`] to emit `dynex-obs` access
//!   events; the simulators above also accept a probe directly (see each
//!   type's `with_probe` constructor) for cause-attributed events,
//! * the [`CacheSim`] trait and [`run`] driver shared by every simulator in
//!   the workspace (including the dynamic-exclusion caches in `dynex-core`),
//! * batch kernels ([`batch_dm`], [`batch_de`], [`batch_opt`], fused
//!   [`batch_triple`]) and the [`Kernel`]/[`ChunkedDecoder`] selection and
//!   decode machinery — a bit-identical fast path behind `--kernel batch`,
//! * the one-pass multi-configuration sweep kernel ([`batch_sweep`]) behind
//!   `--kernel sweep` — N geometries through a single trace traversal,
//! * the replacement-policy zoo ([`ReplacementPolicy`] + [`simulate_policy`])
//!   — first-class stateful policies with per-set lookup/victim/fill hooks,
//!   shipping Expected-Hit-Count ([`EhcPolicy`] / [`batch_ehc`]) and
//!   bandwidth-aware selective fill ([`BwCostPolicy`] / [`batch_bwcost`])
//!   next to trait re-expressions of the paper's dm/de/opt.
//!
//! All simulators are miss-rate models: they track contents and replacement
//! state, not timing, exactly like the paper's trace-driven evaluation.
//!
//! # Examples
//!
//! ```
//! use dynex_cache::{run, CacheConfig, CacheSim, DirectMapped};
//! use dynex_trace::Access;
//!
//! let config = CacheConfig::direct_mapped(1024, 4)?;
//! let mut cache = DirectMapped::new(config);
//! let stats = run(&mut cache, [Access::fetch(0x0), Access::fetch(0x0), Access::fetch(0x400)]);
//! assert_eq!(stats.hits(), 1);
//! assert_eq!(stats.misses(), 2);
//! # Ok::<(), dynex_cache::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod classify;
mod config;
mod direct;
mod fully;
mod hierarchy;
mod instrument;
mod kernel;
mod min;
mod policy;
mod rng;
mod setassoc;
mod sim;
mod stats;
mod stream_buffer;
mod sweep;
mod victim;
mod write;

pub use batch::{decode_addrs, ChunkedDecoder, Kernel, KindFilter, CHUNK_LEN};
pub use classify::{classify_direct_mapped, classify_direct_mapped_optimal, MissClassification};
pub use config::{CacheConfig, ConfigError, Geometry};
pub use direct::DirectMapped;
pub use fully::FullyAssociative;
pub use hierarchy::{HierarchyStats, TwoLevel};
pub use instrument::Instrumented;
pub use kernel::{
    batch_de, batch_de_probed, batch_dm, batch_dm_probed, batch_opt, batch_triple, de_fsm_index,
    BatchDeResult, BatchTriple, DeFsmRow, DE_FSM_TABLE,
};
pub use min::OptimalFullyAssociative;
pub use policy::{
    batch_bwcost, batch_ehc, simulate_policy, BwCostPolicy, DePolicy, DmPolicy, EhcPolicy,
    OptPolicy, ReplacementPolicy, VictimChoice, EHC_HORIZON_FRAMES, NO_LINE, STARVE_LIMIT,
};
pub use rng::SplitMix64;
pub use setassoc::{Replacement, SetAssociative};
pub use sim::{run, run_addrs, AccessOutcome, CacheSim};
pub use stats::CacheStats;
pub use stream_buffer::{StreamBuffer, StreamBufferStats};
pub use sweep::{
    batch_sweep, batch_sweep_packed, batch_sweep_probed, SweepPoint, SweepPointResult, SweepPolicy,
};
pub use victim::VictimCache;
pub use write::{MemoryTraffic, WriteMode, WritebackCache};
