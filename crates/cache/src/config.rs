//! Cache parameters and derived address arithmetic.

use std::error::Error;
use std::fmt;

/// Validation failure for a [`CacheConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A size, line size, or associativity of zero.
    Zero,
    /// Total size, line size, or associativity is not a power of two.
    NotPowerOfTwo {
        /// The offending value.
        value: u64,
    },
    /// Line size below the 4-byte word the traces are defined on.
    LineTooSmall {
        /// The offending line size in bytes.
        line_bytes: u32,
    },
    /// `size / (line * associativity)` would be zero sets.
    TooAssociative,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero => write!(f, "cache parameters must be nonzero"),
            ConfigError::NotPowerOfTwo { value } => {
                write!(f, "cache parameter {value} is not a power of two")
            }
            ConfigError::LineTooSmall { line_bytes } => {
                write!(
                    f,
                    "line size {line_bytes} is below the 4-byte word granularity"
                )
            }
            ConfigError::TooAssociative => {
                write!(f, "associativity times line size exceeds the cache size")
            }
        }
    }
}

impl Error for ConfigError {}

/// Size, line size, and associativity of a cache.
///
/// All three must be powers of two; lines are at least one 4-byte word. The
/// derived [`Geometry`] performs the index/tag arithmetic shared by every
/// simulator.
///
/// # Examples
///
/// ```
/// use dynex_cache::CacheConfig;
///
/// // The paper's headline instruction cache: 32KB, 4-byte lines.
/// let c = CacheConfig::direct_mapped(32 * 1024, 4)?;
/// assert_eq!(c.n_sets(), 8192);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u32,
    line_bytes: u32,
    associativity: u32,
}

impl CacheConfig {
    /// Creates a configuration, validating every parameter.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is zero or not a power of
    /// two, if the line is smaller than a word, or if `associativity *
    /// line_bytes > size_bytes`.
    pub fn new(
        size_bytes: u32,
        line_bytes: u32,
        associativity: u32,
    ) -> Result<CacheConfig, ConfigError> {
        if size_bytes == 0 || line_bytes == 0 || associativity == 0 {
            return Err(ConfigError::Zero);
        }
        for value in [size_bytes, line_bytes, associativity] {
            if !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    value: value as u64,
                });
            }
        }
        if line_bytes < 4 {
            return Err(ConfigError::LineTooSmall { line_bytes });
        }
        if (associativity as u64) * (line_bytes as u64) > size_bytes as u64 {
            return Err(ConfigError::TooAssociative);
        }
        Ok(CacheConfig {
            size_bytes,
            line_bytes,
            associativity,
        })
    }

    /// Direct-mapped configuration (`associativity == 1`).
    ///
    /// # Errors
    ///
    /// Same as [`CacheConfig::new`].
    pub fn direct_mapped(size_bytes: u32, line_bytes: u32) -> Result<CacheConfig, ConfigError> {
        CacheConfig::new(size_bytes, line_bytes, 1)
    }

    /// Fully-associative configuration (one set).
    ///
    /// # Errors
    ///
    /// Same as [`CacheConfig::new`].
    pub fn fully_associative(size_bytes: u32, line_bytes: u32) -> Result<CacheConfig, ConfigError> {
        if size_bytes == 0 || line_bytes == 0 {
            return Err(ConfigError::Zero);
        }
        CacheConfig::new(size_bytes, line_bytes, size_bytes / line_bytes)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> u32 {
        self.size_bytes
    }

    /// Line (block) size in bytes.
    pub fn line_bytes(self) -> u32 {
        self.line_bytes
    }

    /// Number of lines per set.
    pub fn associativity(self) -> u32 {
        self.associativity
    }

    /// Total number of lines.
    pub fn n_lines(self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn n_sets(self) -> u32 {
        self.n_lines() / self.associativity
    }

    /// The derived address arithmetic.
    pub fn geometry(self) -> Geometry {
        Geometry {
            offset_bits: self.line_bytes.trailing_zeros(),
            index_bits: self.n_sets().trailing_zeros(),
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.associativity == 1 {
            write!(
                f,
                "{}KB direct-mapped, {}B lines",
                self.size_bytes / 1024,
                self.line_bytes
            )
        } else {
            write!(
                f,
                "{}KB {}-way, {}B lines",
                self.size_bytes / 1024,
                self.associativity,
                self.line_bytes
            )
        }
    }
}

/// Address arithmetic derived from a [`CacheConfig`]: splits a byte address
/// into line address, set index, and tag.
///
/// The full line address doubles as the "tag" stored by the simulators (it
/// uniquely identifies the block), which keeps comparisons trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    offset_bits: u32,
    index_bits: u32,
}

impl Geometry {
    /// Line address: the byte address shifted past the line offset.
    pub fn line_addr(self, addr: u32) -> u32 {
        addr >> self.offset_bits
    }

    /// Set index of a *line address*.
    pub fn set_of_line(self, line_addr: u32) -> u32 {
        line_addr & ((1 << self.index_bits) - 1)
    }

    /// Set index of a byte address.
    pub fn set_of_addr(self, addr: u32) -> u32 {
        self.set_of_line(self.line_addr(addr))
    }

    /// Tag of a line address (bits above the index).
    pub fn tag_of_line(self, line_addr: u32) -> u32 {
        line_addr >> self.index_bits
    }

    /// Number of bits used for the line offset.
    pub fn offset_bits(self) -> u32 {
        self.offset_bits
    }

    /// Number of bits used for the set index.
    pub fn index_bits(self) -> u32 {
        self.index_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_parameters() {
        assert_eq!(CacheConfig::new(0, 4, 1), Err(ConfigError::Zero));
        assert_eq!(CacheConfig::new(1024, 0, 1), Err(ConfigError::Zero));
        assert_eq!(CacheConfig::new(1024, 4, 0), Err(ConfigError::Zero));
        assert_eq!(
            CacheConfig::new(1000, 4, 1),
            Err(ConfigError::NotPowerOfTwo { value: 1000 })
        );
        assert_eq!(
            CacheConfig::new(1024, 12, 1),
            Err(ConfigError::NotPowerOfTwo { value: 12 })
        );
        assert_eq!(
            CacheConfig::new(1024, 2, 1),
            Err(ConfigError::LineTooSmall { line_bytes: 2 })
        );
        assert_eq!(
            CacheConfig::new(64, 16, 8),
            Err(ConfigError::TooAssociative)
        );
    }

    #[test]
    fn derived_quantities() {
        let c = CacheConfig::new(32 * 1024, 16, 2).unwrap();
        assert_eq!(c.n_lines(), 2048);
        assert_eq!(c.n_sets(), 1024);
        assert_eq!(c.geometry().offset_bits(), 4);
        assert_eq!(c.geometry().index_bits(), 10);
    }

    #[test]
    fn fully_associative_has_one_set() {
        let c = CacheConfig::fully_associative(1024, 16).unwrap();
        assert_eq!(c.n_sets(), 1);
        assert_eq!(c.associativity(), 64);
    }

    #[test]
    fn geometry_splits_addresses() {
        let g = CacheConfig::direct_mapped(1024, 16).unwrap().geometry();
        // 1024/16 = 64 sets, 4 offset bits, 6 index bits.
        let addr = 0b1010_1011_1100_1101u32;
        assert_eq!(g.line_addr(addr), addr >> 4);
        assert_eq!(g.set_of_addr(addr), (addr >> 4) & 63);
        assert_eq!(g.tag_of_line(g.line_addr(addr)), addr >> 10);
    }

    #[test]
    fn word_lines_have_zero_offset_within_words() {
        let g = CacheConfig::direct_mapped(4096, 4).unwrap().geometry();
        assert_eq!(g.offset_bits(), 2);
        assert_eq!(g.line_addr(0x1004), 0x401);
    }

    #[test]
    fn conflicting_addresses_share_a_set() {
        let c = CacheConfig::direct_mapped(1024, 4).unwrap();
        let g = c.geometry();
        let a = 0x0000_0040u32;
        let b = a + c.size_bytes(); // one cache-size apart => same set
        assert_eq!(g.set_of_addr(a), g.set_of_addr(b));
        assert_ne!(g.tag_of_line(g.line_addr(a)), g.tag_of_line(g.line_addr(b)));
    }

    #[test]
    fn display_is_readable() {
        let dm = CacheConfig::direct_mapped(32 * 1024, 16).unwrap();
        assert_eq!(dm.to_string(), "32KB direct-mapped, 16B lines");
        let sa = CacheConfig::new(8 * 1024, 16, 4).unwrap();
        assert_eq!(sa.to_string(), "8KB 4-way, 16B lines");
    }

    #[test]
    fn error_display() {
        assert!(ConfigError::TooAssociative
            .to_string()
            .contains("associativity"));
        assert!(ConfigError::Zero.to_string().contains("nonzero"));
    }
}
