//! Batch simulation kernels: the fast path behind `--kernel batch`.
//!
//! The reference simulators ([`crate::DirectMapped`], the DE cache in
//! `dynex-core`, and its optimal oracle) are written for clarity: one
//! `access()` call per reference, a branchy FSM, and a `HashMap`-backed
//! hit-last store. Every figure in the paper compares dm/de/opt on the *same*
//! reference stream, so the sweeps pay that per-reference overhead three
//! times per point. The kernels in this module trade none of the semantics
//! for throughput:
//!
//! * **table-driven FSM** — the eight-entry Figure 1 transition table is
//!   precomputed into [`DE_FSM_TABLE`]; one load replaces the FSM's branch
//!   chain. The table is an *independent* re-derivation of the paper's
//!   Figure 1; the `dynex-core` test suite drives it in lockstep against the
//!   spec `fsm::step` over all eight `(hit, sticky, hit_last)` inputs.
//! * **precomputed decode masks** — the offset shift and index mask are
//!   hoisted out of the loop instead of re-derived per access.
//! * **flat hit-last arena** — [`HitLastArena`] replaces the perfect store's
//!   `HashMap<u32, bool>` with a bitmap over the trace's line-address range
//!   (identical semantics: both start all-false and are written only on
//!   displacement).
//! * **chunked decode** — addresses are decoded into a reusable line-address
//!   buffer one chunk at a time (see [`crate::batch`]) instead of per
//!   reference.
//! * **fused single pass** — [`batch_triple`] simulates dm + de + opt over
//!   one decoded chunk stream, sharing the decode and the opt oracle's
//!   next-use precomputation.
//!
//! Every kernel is **bit-identical** to its reference simulator: same
//! statistics, same probe event stream (the probed variants emit exactly the
//! events the reference path emits, in the same order), same exclusion
//! counters. `tests/kernel_differential.rs` at the repository root enforces
//! this across workload profiles, cache geometries, and worker counts. With
//! the default [`NoopProbe`] the probed code monomorphizes down to the bare
//! counting loop, exactly as in the reference simulators.
//!
//! [`NoopProbe`]: dynex_obs::NoopProbe

use dynex_obs::span;
use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::batch::CHUNK_LEN;
use crate::direct::INVALID_LINE;
use crate::{CacheConfig, CacheStats};

/// One row of the precomputed dynamic-exclusion transition table
/// (Figure 1 of the paper), indexed by [`de_fsm_index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeFsmRow {
    /// The reference misses (the block is loaded or bypassed).
    pub is_miss: bool,
    /// The referenced block is installed, displacing the resident block.
    pub installs: bool,
    /// New value of the line's sticky bit.
    pub sticky_after: bool,
    /// Whether the referenced block's hit-last bit is written.
    pub writes_hit_last: bool,
    /// The value written when `writes_hit_last` is set.
    pub hit_last_value: bool,
}

/// Table index for one `(hit, sticky, hit_last)` input combination.
pub const fn de_fsm_index(hit: bool, sticky: bool, hit_last: bool) -> usize {
    ((hit as usize) << 2) | ((sticky as usize) << 1) | (hit_last as usize)
}

/// One transition of Figure 1, re-derived independently of
/// `dynex::fsm::step` (the lockstep tests in `dynex-core` prove the two
/// implementations identical):
///
/// * hit → serve, re-arm sticky, set the block's hit-last bit;
/// * miss on a non-sticky line → load unconditionally (the paper's anomaly
///   row: the incoming block's hit-last bit is set although it did not hit);
/// * miss on a sticky line with the block's hit-last bit set → load, and
///   consume the bit (one residency to prove itself);
/// * miss on a sticky line without the bit → bypass and spend the line's
///   inertia (clear sticky).
const fn de_fsm_row(hit: bool, sticky: bool, hit_last: bool) -> DeFsmRow {
    if hit {
        DeFsmRow {
            is_miss: false,
            installs: false,
            sticky_after: true,
            writes_hit_last: true,
            hit_last_value: true,
        }
    } else if !sticky {
        DeFsmRow {
            is_miss: true,
            installs: true,
            sticky_after: true,
            writes_hit_last: true,
            hit_last_value: true,
        }
    } else if hit_last {
        DeFsmRow {
            is_miss: true,
            installs: true,
            sticky_after: true,
            writes_hit_last: true,
            hit_last_value: false,
        }
    } else {
        DeFsmRow {
            is_miss: true,
            installs: false,
            sticky_after: false,
            writes_hit_last: false,
            hit_last_value: false,
        }
    }
}

/// The eight-entry Figure 1 transition table, precomputed at compile time.
///
/// Index with [`de_fsm_index`]`(hit, sticky, hit_last)`.
pub const DE_FSM_TABLE: [DeFsmRow; 8] = {
    let mut table = [de_fsm_row(false, false, false); 8];
    let mut i = 0;
    while i < 8 {
        table[i] = de_fsm_row((i >> 2) & 1 == 1, (i >> 1) & 1 == 1, i & 1 == 1);
        i += 1;
    }
    table
};

/// Flat arena for the hit-last bits of non-resident blocks: a bitmap over
/// `[0, max_line]`, semantically identical to the perfect store's
/// `HashMap<u32, bool>` (all bits start false; bits are written only when a
/// block is displaced, so absent and false are indistinguishable).
///
/// The capacity passed to [`HitLastArena::new`] is a *sizing hint* derived
/// from the caller's prescan of the trace (the largest line index any access
/// decodes to), never a hard limit: `get` beyond the allocated range reads
/// the store's all-false default and `set` grows the bitmap, so a
/// mis-derived capacity degrades to a reallocation instead of a panic.
/// Worst case (a reference near the top of the 30-bit line space) the arena
/// occupies 128 MiB; for the bounded footprints of the paper's workloads it
/// is a few KiB and every lookup is one shift-and-mask instead of a hash
/// probe.
#[derive(Debug, Clone)]
pub(crate) struct HitLastArena {
    words: Vec<u64>,
}

impl HitLastArena {
    /// Arena covering line addresses `[0, max_line]`; `max_line` comes from
    /// the kernel's trace prescan ([`max_line`]), not from a constant.
    pub(crate) fn new(max_line: u32) -> HitLastArena {
        HitLastArena {
            words: vec![0u64; (max_line as usize >> 6) + 1],
        }
    }

    #[inline]
    pub(crate) fn get(&self, line: u32) -> bool {
        match self.words.get(line as usize >> 6) {
            Some(word) => (word >> (line & 63)) & 1 == 1,
            // Beyond the sized range nothing has ever been displaced, and
            // the perfect store reads absent as false.
            None => false,
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, line: u32, value: bool) {
        let index = line as usize >> 6;
        if index >= self.words.len() {
            self.words.resize(index + 1, 0);
        }
        let word = &mut self.words[index];
        let bit = line & 63;
        *word = (*word & !(1u64 << bit)) | ((value as u64) << bit);
    }
}

/// Dynamic-exclusion counters produced by the batch DE kernel, mirroring
/// `dynex::DeStats` (which lives upstream of this crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchDeResult {
    /// Hit/miss accounting.
    pub stats: CacheStats,
    /// Misses that installed the referenced block.
    pub loads: u64,
    /// Misses that bypassed the cache.
    pub bypasses: u64,
}

/// The three-way dm/de/opt comparison produced by the fused kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchTriple {
    /// Conventional direct-mapped.
    pub dm: CacheStats,
    /// Dynamic exclusion (perfect hit-last store semantics).
    pub de: BatchDeResult,
    /// Optimal direct-mapped with bypass.
    pub opt: CacheStats,
}

/// Per-set state of the batch direct-mapped loop.
struct DmState {
    lines: Vec<u32>,
    misses: u64,
}

impl DmState {
    fn new(n_sets: usize) -> DmState {
        DmState {
            lines: vec![INVALID_LINE; n_sets],
            misses: 0,
        }
    }

    /// One conventional direct-mapped access, emitting exactly the events of
    /// [`crate::DirectMapped`].
    #[inline]
    fn step<P: Probe>(&mut self, addr: u32, line: u32, index_mask: u32, probe: &mut P) {
        let set = (line & index_mask) as usize;
        let resident = self.lines[set];
        if resident == line {
            probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Hit,
                cause: Cause::Resident,
            });
        } else {
            let cause = if resident == INVALID_LINE {
                Cause::Cold
            } else {
                probe.emit(Event::Eviction {
                    set: set as u32,
                    victim: resident,
                    replacement: line,
                });
                Cause::Replace
            };
            self.lines[set] = line;
            self.misses += 1;
            probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Miss,
                cause,
            });
        }
    }
}

/// Per-set state of the batch dynamic-exclusion loop.
struct DeState {
    lines: Vec<u32>,
    sticky: Vec<bool>,
    h_copy: Vec<bool>,
    arena: HitLastArena,
    misses: u64,
    loads: u64,
}

impl DeState {
    fn new(n_sets: usize, max_line: u32) -> DeState {
        DeState {
            lines: vec![INVALID_LINE; n_sets],
            sticky: vec![false; n_sets],
            h_copy: vec![false; n_sets],
            arena: HitLastArena::new(max_line),
            misses: 0,
            loads: 0,
        }
    }

    /// One dynamic-exclusion access through the precomputed table, emitting
    /// exactly the events (and in the order) of the reference
    /// `DeCache`/`DeLines`/`fsm::step_probed` stack.
    #[inline]
    fn step<P: Probe>(&mut self, addr: u32, line: u32, index_mask: u32, probe: &mut P) {
        let set = (line & index_mask) as usize;
        let resident = self.lines[set];
        let hit = resident == line;
        let sticky = self.sticky[set];
        let h_pred = self.arena.get(line);
        let row = DE_FSM_TABLE[de_fsm_index(hit, sticky, h_pred)];

        if row.is_miss {
            probe.emit(Event::ExclusionDecision {
                set: set as u32,
                line,
                loaded: row.installs,
            });
        }
        if row.sticky_after != sticky {
            probe.emit(Event::StickyFlip {
                set: set as u32,
                sticky: row.sticky_after,
            });
        }
        if row.writes_hit_last {
            probe.emit(Event::HitLastUpdate {
                line,
                hit_last: row.hit_last_value,
            });
        }
        self.sticky[set] = row.sticky_after;
        self.misses += row.is_miss as u64;

        let cause = if hit {
            // The resident block's in-line hit-last copy is re-armed.
            self.h_copy[set] = true;
            Cause::Resident
        } else if row.installs {
            self.loads += 1;
            let cause = if resident == INVALID_LINE {
                Cause::Cold
            } else {
                // Figure 6 "transfer on replacement": the victim's in-line
                // copy goes back to the arena.
                self.arena.set(resident, self.h_copy[set]);
                probe.emit(Event::Eviction {
                    set: set as u32,
                    victim: resident,
                    replacement: line,
                });
                Cause::Replace
            };
            self.lines[set] = line;
            self.h_copy[set] = row.hit_last_value;
            cause
        } else {
            Cause::Bypass
        };
        probe.emit(Event::Access {
            addr,
            set: set as u32,
            outcome: if row.is_miss {
                Outcome::Miss
            } else {
                Outcome::Hit
            },
            cause,
        });
    }

    fn result(&self, accesses: u64) -> BatchDeResult {
        BatchDeResult {
            stats: CacheStats::from_counts(accesses, self.misses),
            loads: self.loads,
            bypasses: self.misses - self.loads,
        }
    }
}

/// Decodes one chunk of byte addresses into the reusable line-address
/// buffer (the shift is the whole "decode": line = addr >> offset_bits).
/// Shared with the multi-configuration sweep kernel in [`crate::sweep`].
#[inline]
pub(crate) fn decode_chunk(chunk: &[u32], offset_bits: u32, line_buf: &mut [u32; CHUNK_LEN]) {
    for (dst, &addr) in line_buf.iter_mut().zip(chunk) {
        *dst = addr >> offset_bits;
    }
}

/// Largest line address in the trace (0 for an empty trace); sizes the
/// hit-last arena and the opt kernel's next-use map.
pub(crate) fn max_line(addrs: &[u32], offset_bits: u32) -> u32 {
    addrs.iter().map(|&a| a >> offset_bits).max().unwrap_or(0)
}

/// Batch kernel for the conventional direct-mapped cache.
///
/// Bit-identical to running [`crate::DirectMapped`] over the same stream.
///
/// # Panics
///
/// Panics if `config.associativity() != 1`, like the reference simulator.
///
/// # Examples
///
/// ```
/// use dynex_cache::{batch_dm, CacheConfig};
///
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let stats = batch_dm(config, &[0, 0, 64, 0]);
/// assert_eq!(stats.misses(), 3); // cold, hit, conflict, conflict
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
pub fn batch_dm(config: CacheConfig, addrs: &[u32]) -> CacheStats {
    batch_dm_probed(config, addrs, &mut NoopProbe)
}

/// [`batch_dm`] with event emission (same events as the reference path).
pub fn batch_dm_probed<P: Probe>(config: CacheConfig, addrs: &[u32], probe: &mut P) -> CacheStats {
    assert_eq!(
        config.associativity(),
        1,
        "DirectMapped requires associativity 1"
    );
    let geometry = config.geometry();
    let offset_bits = geometry.offset_bits();
    let index_mask = (1u32 << geometry.index_bits()) - 1;
    let mut dm = DmState::new(config.n_sets() as usize);
    let mut line_buf = [0u32; CHUNK_LEN];
    // Spans open at chunk boundaries only (two relaxed atomic loads per
    // 4096 references when tracing is off); the inner loop stays branchless.
    for chunk in addrs.chunks(CHUNK_LEN) {
        {
            let _decode = span::span("kernel.decode");
            decode_chunk(chunk, offset_bits, &mut line_buf);
        }
        let _simulate = span::span("kernel.simulate");
        for (&addr, &line) in chunk.iter().zip(&line_buf) {
            dm.step(addr, line, index_mask, probe);
        }
    }
    CacheStats::from_counts(addrs.len() as u64, dm.misses)
}

/// Batch kernel for the dynamic-exclusion cache (perfect hit-last store
/// semantics).
///
/// Bit-identical to the reference `DeCache` in `dynex-core`: same hit/miss
/// statistics and the same load/bypass split.
///
/// # Panics
///
/// Panics if `config.associativity() != 1` — dynamic exclusion is a
/// direct-mapped technique, as in the reference simulator.
///
/// # Examples
///
/// ```
/// use dynex_cache::{batch_de, CacheConfig};
///
/// // (a b)^10 on one line: a settles in, b bypasses.
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
/// let de = batch_de(config, &addrs);
/// assert_eq!(de.stats.misses(), 11);
/// assert_eq!(de.bypasses, 10);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
pub fn batch_de(config: CacheConfig, addrs: &[u32]) -> BatchDeResult {
    batch_de_probed(config, addrs, &mut NoopProbe)
}

/// [`batch_de`] with event emission (same events as the reference path).
pub fn batch_de_probed<P: Probe>(
    config: CacheConfig,
    addrs: &[u32],
    probe: &mut P,
) -> BatchDeResult {
    assert_eq!(
        config.associativity(),
        1,
        "dynamic exclusion applies to direct-mapped caches"
    );
    let geometry = config.geometry();
    let offset_bits = geometry.offset_bits();
    let index_mask = (1u32 << geometry.index_bits()) - 1;
    let mut de = DeState::new(config.n_sets() as usize, max_line(addrs, offset_bits));
    let mut line_buf = [0u32; CHUNK_LEN];
    for chunk in addrs.chunks(CHUNK_LEN) {
        {
            let _decode = span::span("kernel.decode");
            decode_chunk(chunk, offset_bits, &mut line_buf);
        }
        let _simulate = span::span("kernel.simulate");
        for (&addr, &line) in chunk.iter().zip(&line_buf) {
            de.step(addr, line, index_mask, probe);
        }
    }
    de.result(addrs.len() as u64)
}

/// Batch kernel for the optimal direct-mapped cache (Belady's MIN with
/// bypass, specialized to one line per set).
///
/// Bit-identical to the reference `OptimalDirectMapped::simulate`. Like the
/// reference it is a two-pass oracle: pass one chains each reference to its
/// block's next use, pass two applies the greedy keep-whichever-is-used-
/// sooner rule. The next-use chain is built on a flat array over the line
/// space when the trace's footprint allows, falling back to the reference's
/// hash map for pathologically sparse address ranges.
pub fn batch_opt(config: CacheConfig, addrs: &[u32]) -> CacheStats {
    let geometry = config.geometry();
    let offset_bits = geometry.offset_bits();
    let index_mask = (1u32 << geometry.index_bits()) - 1;

    let mut lines: Vec<u32> = Vec::with_capacity(addrs.len());
    let mut line_buf = [0u32; CHUNK_LEN];
    for chunk in addrs.chunks(CHUNK_LEN) {
        let _decode = span::span("kernel.decode");
        decode_chunk(chunk, offset_bits, &mut line_buf);
        lines.extend_from_slice(&line_buf[..chunk.len()]);
    }
    let max_line = lines.iter().copied().max().unwrap_or(0);
    let next = {
        let _next_use = span::span("kernel.next-use");
        next_use(&lines, max_line)
    };

    let mut state = OptState::new(config.n_sets() as usize);
    for (lines_chunk, next_chunk) in lines.chunks(CHUNK_LEN).zip(next.chunks(CHUNK_LEN)) {
        let _simulate = span::span("kernel.simulate");
        for (&line, &next) in lines_chunk.iter().zip(next_chunk) {
            state.step(line, next, index_mask);
        }
    }
    CacheStats::from_counts(lines.len() as u64, state.misses)
}

/// `next[i]` = position of the next reference to `lines[i]` (`NEVER` if
/// none). Flat-array variant of the reference oracle's reverse-scan map.
pub(crate) const NEVER: u32 = u32::MAX;

/// Above this line-space footprint the flat next-use array (4 bytes per
/// possible line) would cost more than the hash map it replaces.
pub(crate) const MAX_FLAT_LINES: usize = 1 << 26;

pub(crate) fn next_use(lines: &[u32], max_line: u32) -> Vec<u32> {
    let mut next = vec![NEVER; lines.len()];
    if (max_line as usize) < MAX_FLAT_LINES {
        let mut upcoming = vec![NEVER; max_line as usize + 1];
        for (i, &line) in lines.iter().enumerate().rev() {
            next[i] = upcoming[line as usize];
            upcoming[line as usize] = i as u32;
        }
    } else {
        let mut upcoming: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (i, &line) in lines.iter().enumerate().rev() {
            if let Some(&j) = upcoming.get(&line) {
                next[i] = j;
            }
            upcoming.insert(line, i as u32);
        }
    }
    next
}

/// Per-set state of the batch optimal loop.
struct OptState {
    resident: Vec<u32>,
    resident_next: Vec<u32>,
    misses: u64,
}

impl OptState {
    fn new(n_sets: usize) -> OptState {
        OptState {
            resident: vec![INVALID_LINE; n_sets],
            // An invalid resident is "never used again", so any incoming
            // block wins the greedy comparison.
            resident_next: vec![NEVER; n_sets],
            misses: 0,
        }
    }

    #[inline]
    fn step(&mut self, line: u32, next: u32, index_mask: u32) {
        let set = (line & index_mask) as usize;
        if self.resident[set] == line {
            self.resident_next[set] = next;
        } else {
            self.misses += 1;
            // Keep whichever of {resident, incoming} is referenced sooner.
            if next < self.resident_next[set] {
                self.resident[set] = line;
                self.resident_next[set] = next;
            }
        }
    }
}

/// The fused single-pass kernel: dm + de + opt over one decoded chunk
/// stream.
///
/// The three policies keep independent per-set state, so interleaving their
/// updates in one loop changes nothing about any of them — the outputs are
/// bit-identical to three separate runs (reference or batch). What fusion
/// buys is doing the address decode and the trace walk once instead of three
/// times, which is the shape of every figure sweep in the paper.
///
/// # Panics
///
/// Panics if `config.associativity() != 1`.
///
/// # Examples
///
/// ```
/// use dynex_cache::{batch_triple, CacheConfig};
///
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
/// let t = batch_triple(config, &addrs);
/// assert_eq!(t.dm.misses(), 20); // DM thrashes
/// assert_eq!(t.de.stats.misses(), 11);
/// assert_eq!(t.opt.misses(), 11);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
pub fn batch_triple(config: CacheConfig, addrs: &[u32]) -> BatchTriple {
    assert_eq!(
        config.associativity(),
        1,
        "the dm/de/opt triple is a direct-mapped comparison"
    );
    let geometry = config.geometry();
    let offset_bits = geometry.offset_bits();
    let index_mask = (1u32 << geometry.index_bits()) - 1;

    // Shared decode: one pass materializes the line addresses (the opt
    // oracle needs the whole stream for its next-use chain anyway) and finds
    // the footprint that sizes the DE arena.
    let mut lines: Vec<u32> = Vec::with_capacity(addrs.len());
    let mut line_buf = [0u32; CHUNK_LEN];
    let mut max_line = 0u32;
    for chunk in addrs.chunks(CHUNK_LEN) {
        let _decode = span::span("kernel.decode");
        decode_chunk(chunk, offset_bits, &mut line_buf);
        for &line in &line_buf[..chunk.len()] {
            max_line = max_line.max(line);
        }
        lines.extend_from_slice(&line_buf[..chunk.len()]);
    }
    let next = {
        let _next_use = span::span("kernel.next-use");
        next_use(&lines, max_line)
    };

    let n_sets = config.n_sets() as usize;
    let mut dm = DmState::new(n_sets);
    let mut de = DeState::new(n_sets, max_line);
    let mut opt = OptState::new(n_sets);
    // Chunked like the decode pass so the simulate span opens at chunk
    // boundaries only; the fused inner loop stays branchless.
    for (lines_chunk, next_chunk) in lines.chunks(CHUNK_LEN).zip(next.chunks(CHUNK_LEN)) {
        let _simulate = span::span("kernel.simulate");
        for (&line, &next) in lines_chunk.iter().zip(next_chunk) {
            // The fused pass never needs the byte address back: probes are
            // not attached here (sweeps are uninstrumented), so the addr
            // argument is dead and compiles away.
            dm.step(0, line, index_mask, &mut NoopProbe);
            de.step(0, line, index_mask, &mut NoopProbe);
            opt.step(line, next, index_mask);
        }
    }

    let accesses = lines.len() as u64;
    BatchTriple {
        dm: CacheStats::from_counts(accesses, dm.misses),
        de: de.result(accesses),
        opt: CacheStats::from_counts(accesses, opt.misses),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_addrs, DirectMapped, SplitMix64};

    fn config(size: u32, line: u32) -> CacheConfig {
        CacheConfig::direct_mapped(size, line).unwrap()
    }

    fn random_addrs(seed: u64, len: usize, span: u64) -> Vec<u32> {
        let mut rng = SplitMix64::new(seed);
        (0..len).map(|_| (rng.below(span) as u32) * 4).collect()
    }

    #[test]
    fn table_has_expected_shape() {
        // Hits never miss or install and always re-arm sticky.
        for hit_last in [false, true] {
            for sticky in [false, true] {
                let row = DE_FSM_TABLE[de_fsm_index(true, sticky, hit_last)];
                assert!(!row.is_miss && !row.installs && row.sticky_after);
                assert!(row.writes_hit_last && row.hit_last_value);
            }
        }
        // The anomaly row: unsticky miss loads and sets the bit.
        for hit_last in [false, true] {
            let row = DE_FSM_TABLE[de_fsm_index(false, false, hit_last)];
            assert!(row.is_miss && row.installs && row.sticky_after);
            assert!(row.writes_hit_last && row.hit_last_value);
        }
        // Sticky miss: arbitrated by hit-last.
        let load = DE_FSM_TABLE[de_fsm_index(false, true, true)];
        assert!(load.installs && load.sticky_after && load.writes_hit_last);
        assert!(!load.hit_last_value, "consumed on load");
        let bypass = DE_FSM_TABLE[de_fsm_index(false, true, false)];
        assert!(bypass.is_miss && !bypass.installs);
        assert!(!bypass.sticky_after && !bypass.writes_hit_last);
    }

    #[test]
    fn arena_is_a_bitmap_with_store_semantics() {
        let mut arena = HitLastArena::new(200);
        assert!(!arena.get(0) && !arena.get(200), "initially false");
        arena.set(63, true);
        arena.set(64, true);
        arena.set(200, true);
        assert!(arena.get(63) && arena.get(64) && arena.get(200));
        assert!(!arena.get(62) && !arena.get(65));
        arena.set(64, false);
        assert!(!arena.get(64), "clearable");
        assert!(arena.get(63), "neighbours untouched");
    }

    #[test]
    fn arena_capacity_is_a_hint_not_a_limit() {
        // Regression: line indices far beyond the sized capacity must read
        // as the store's all-false default and be settable (the bitmap
        // grows), never panic.
        let mut arena = HitLastArena::new(200);
        assert!(!arena.get(201) && !arena.get(100_000), "absent reads false");
        arena.set(100_000, true);
        assert!(arena.get(100_000));
        assert!(!arena.get(99_999) && !arena.get(100_001));
        arena.set(100_000, false);
        assert!(!arena.get(100_000));
    }

    #[test]
    fn de_kernels_handle_line_indices_beyond_200() {
        // Regression for the arena sizing: an address stream whose line
        // indices run far past 200 (the capacity the unit tests above size
        // for) must agree between the single DE kernel, the fused triple,
        // and the arena-free invariants, with no out-of-range access.
        let mut addrs = Vec::new();
        let mut rng = SplitMix64::new(99);
        for _ in 0..20_000 {
            // Lines up to ~65_536 at 4-byte lines: well past 200.
            addrs.push((rng.below(65_536) as u32) * 4);
        }
        // And one reference right at the top of the range, so the largest
        // line index is exercised on both the get and the displacement path.
        addrs.push(65_535 * 4);
        addrs.push(65_535 * 4);
        let cfg = config(256, 4);
        let de = batch_de(cfg, &addrs);
        let fused = batch_triple(cfg, &addrs);
        assert_eq!(de, fused.de);
        assert_eq!(de.loads + de.bypasses, de.stats.misses());
        assert_eq!(de.stats.accesses(), addrs.len() as u64);
    }

    #[test]
    fn dm_kernel_matches_reference_on_random_trace() {
        for (seed, span) in [(1u64, 64), (2, 1024), (3, 100_000)] {
            let addrs = random_addrs(seed, 20_000, span);
            for cfg in [config(64, 4), config(1024, 16), config(32 * 1024, 4)] {
                let mut reference = DirectMapped::new(cfg);
                let expected = run_addrs(&mut reference, addrs.iter().copied());
                assert_eq!(batch_dm(cfg, &addrs), expected, "seed {seed} cfg {cfg}");
            }
        }
    }

    #[test]
    fn de_kernel_invariants_on_random_trace() {
        // The cross-crate reference comparison lives in dynex-core and
        // tests/kernel_differential.rs; here the kernel's own invariants.
        let addrs = random_addrs(7, 30_000, 256);
        let cfg = config(256, 4);
        let de = batch_de(cfg, &addrs);
        assert_eq!(de.stats.accesses(), 30_000);
        assert_eq!(de.loads + de.bypasses, de.stats.misses());
        let dm = batch_dm(cfg, &addrs);
        let opt = batch_opt(cfg, &addrs);
        assert!(opt.misses() <= de.stats.misses());
        assert!(
            de.stats.misses() <= dm.misses() + 2 * 64,
            "near DM or better"
        );
    }

    #[test]
    fn de_kernel_learns_the_within_loop_pattern() {
        let cfg = config(64, 4);
        let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
        let de = batch_de(cfg, &addrs);
        assert_eq!(de.stats.misses(), 11);
        assert_eq!(de.loads, 1);
        assert_eq!(de.bypasses, 10);
    }

    #[test]
    fn opt_kernel_matches_reference_greedy_counts() {
        // (a^10 b)^10: 11 misses / 110 refs (see the reference oracle tests).
        let mut addrs = Vec::new();
        for _ in 0..10 {
            addrs.extend(std::iter::repeat_n(0u32, 10));
            addrs.push(64);
        }
        let stats = batch_opt(config(64, 4), &addrs);
        assert_eq!(stats.misses(), 11);
        assert_eq!(stats.accesses(), 110);
    }

    #[test]
    fn next_use_flat_and_hashed_agree() {
        let lines = [5u32, 7, 5, 5, 7, 2];
        let flat = next_use(&lines, 7);
        assert_eq!(flat, vec![2, 4, 3, NEVER, NEVER, NEVER]);
        // Force the hash fallback by lying about the footprint ceiling: use
        // a line beyond MAX_FLAT_LINES.
        let sparse = [(MAX_FLAT_LINES as u32) + 5, 0, (MAX_FLAT_LINES as u32) + 5];
        let next = next_use(&sparse, (MAX_FLAT_LINES as u32) + 5);
        assert_eq!(next, vec![2, NEVER, NEVER]);
    }

    #[test]
    fn fused_triple_matches_individual_kernels() {
        for seed in [11u64, 12, 13] {
            let addrs = random_addrs(seed, 10_000, 2_048);
            for cfg in [config(64, 4), config(1024, 4), config(4096, 16)] {
                let fused = batch_triple(cfg, &addrs);
                assert_eq!(fused.dm, batch_dm(cfg, &addrs));
                assert_eq!(fused.de, batch_de(cfg, &addrs));
                assert_eq!(fused.opt, batch_opt(cfg, &addrs));
            }
        }
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let cfg = config(64, 4);
        assert_eq!(batch_dm(cfg, &[]).accesses(), 0);
        assert_eq!(batch_de(cfg, &[]).stats.accesses(), 0);
        assert_eq!(batch_opt(cfg, &[]).accesses(), 0);
        let t = batch_triple(cfg, &[]);
        assert_eq!(t.dm.accesses(), 0);
    }

    #[test]
    fn probed_and_bare_kernels_agree() {
        use dynex_obs::CountingProbe;
        let addrs = random_addrs(21, 5_000, 512);
        let cfg = config(256, 4);
        let mut probe = CountingProbe::new();
        let probed = batch_de_probed(cfg, &addrs, &mut probe);
        assert_eq!(probed, batch_de(cfg, &addrs));
        let counts = probe.counts();
        assert_eq!(counts.accesses, probed.stats.accesses());
        assert_eq!(counts.misses, probed.stats.misses());
        assert_eq!(counts.exclusion_loads, probed.loads);
        assert_eq!(counts.exclusion_bypasses, probed.bypasses);
        let mut dm_probe = CountingProbe::new();
        let dm = batch_dm_probed(cfg, &addrs, &mut dm_probe);
        assert_eq!(dm, batch_dm(cfg, &addrs));
        assert_eq!(dm_probe.counts().misses, dm.misses());
        assert!(dm_probe.counts().evictions <= dm.misses());
    }

    #[test]
    #[should_panic(expected = "direct-mapped")]
    fn de_kernel_rejects_associative_config() {
        batch_de(CacheConfig::new(64, 4, 2).unwrap(), &[0]);
    }
}
