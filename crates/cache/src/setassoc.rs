//! Set-associative caches with pluggable replacement.

use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::{AccessOutcome, CacheConfig, CacheSim, CacheStats, Geometry, SplitMix64};

/// Replacement policy for [`SetAssociative`] caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Evict the least recently used line.
    #[default]
    Lru,
    /// Evict the line resident longest (insertion order).
    Fifo,
    /// Evict a pseudo-random line (deterministic, seeded).
    Random,
}

impl Replacement {
    fn name(self) -> &'static str {
        match self {
            Replacement::Lru => "LRU",
            Replacement::Fifo => "FIFO",
            Replacement::Random => "random",
        }
    }
}

/// A set-associative cache.
///
/// Each set holds `associativity` lines managed by the chosen
/// [`Replacement`] policy. With `associativity == 1` this behaves exactly
/// like [`crate::DirectMapped`] (verified by property test); with one set it
/// is fully associative (see [`crate::FullyAssociative`]).
///
/// The paper cites set-associative caches as the miss-rate gold standard that
/// direct-mapped caches trade away for access time; this type provides that
/// comparison point.
///
/// Like every simulator in this crate it is generic over an observability
/// [`Probe`] (default [`NoopProbe`], which compiles to nothing); see
/// [`SetAssociative::with_probe`].
///
/// # Examples
///
/// ```
/// use dynex_cache::{CacheConfig, CacheSim, Replacement, SetAssociative};
///
/// let config = CacheConfig::new(64, 4, 2)?;
/// let mut cache = SetAssociative::new(config, Replacement::Lru);
/// cache.access(0x0);
/// cache.access(0x40); // same set, second way
/// assert!(cache.access(0x0).is_hit()); // both fit
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssociative<P: Probe = NoopProbe> {
    config: CacheConfig,
    geometry: Geometry,
    policy: Replacement,
    /// Per set: resident line addresses, most recently used first (for LRU)
    /// or insertion order, newest first (for FIFO). Never exceeds
    /// associativity.
    sets: Vec<Vec<u32>>,
    rng: SplitMix64,
    stats: CacheStats,
    probe: P,
}

impl SetAssociative {
    /// Creates an empty cache with the given replacement policy.
    pub fn new(config: CacheConfig, policy: Replacement) -> SetAssociative {
        SetAssociative::with_seed(config, policy, 0x5eed_cafe)
    }

    /// Creates an empty cache seeding the random replacement policy.
    pub fn with_seed(config: CacheConfig, policy: Replacement, seed: u64) -> SetAssociative {
        SetAssociative::with_seed_and_probe(config, policy, seed, NoopProbe)
    }
}

impl<P: Probe> SetAssociative<P> {
    /// Creates an empty cache emitting events into `probe`.
    pub fn with_probe(config: CacheConfig, policy: Replacement, probe: P) -> SetAssociative<P> {
        SetAssociative::with_seed_and_probe(config, policy, 0x5eed_cafe, probe)
    }

    /// Creates an empty cache with both an RNG seed and a probe.
    pub fn with_seed_and_probe(
        config: CacheConfig,
        policy: Replacement,
        seed: u64,
        probe: P,
    ) -> SetAssociative<P> {
        SetAssociative {
            config,
            geometry: config.geometry(),
            policy,
            sets: vec![Vec::new(); config.n_sets() as usize],
            rng: SplitMix64::new(seed),
            stats: CacheStats::new(),
            probe,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> Replacement {
        self.policy
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the cache, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Whether the block containing `addr` is resident (no state change).
    pub fn contains(&self, addr: u32) -> bool {
        let line = self.geometry.line_addr(addr);
        self.sets[self.geometry.set_of_line(line) as usize].contains(&line)
    }
}

impl<P: Probe> CacheSim for SetAssociative<P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.geometry.line_addr(addr);
        let set = self.geometry.set_of_line(line) as usize;
        let ways = &mut self.sets[set];
        let outcome = match ways.iter().position(|&l| l == line) {
            Some(pos) => {
                if self.policy == Replacement::Lru {
                    // Move to front: index 0 is most recently used.
                    let hit = ways.remove(pos);
                    ways.insert(0, hit);
                }
                self.probe.emit(Event::Access {
                    addr,
                    set: set as u32,
                    outcome: Outcome::Hit,
                    cause: Cause::Resident,
                });
                AccessOutcome::Hit
            }
            None => {
                let cause = if ways.len() == self.config.associativity() as usize {
                    let victim = match self.policy {
                        // LRU & FIFO both evict the back (LRU keeps recency
                        // order, FIFO keeps insertion order).
                        Replacement::Lru | Replacement::Fifo => ways.pop().expect("set is full"),
                        Replacement::Random => {
                            let victim = self.rng.below_usize(ways.len());
                            ways.remove(victim)
                        }
                    };
                    self.probe.emit(Event::Eviction {
                        set: set as u32,
                        victim,
                        replacement: line,
                    });
                    Cause::Replace
                } else {
                    Cause::Cold
                };
                ways.insert(0, line);
                self.probe.emit(Event::Access {
                    addr,
                    set: set as u32,
                    outcome: Outcome::Miss,
                    cause,
                });
                AccessOutcome::Miss
            }
        };
        self.stats.record(outcome);
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!("{} ({})", self.config, self.policy.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_addrs;

    fn two_way(size: u32) -> SetAssociative {
        SetAssociative::new(CacheConfig::new(size, 4, 2).unwrap(), Replacement::Lru)
    }

    #[test]
    fn two_way_absorbs_pairwise_conflicts() {
        // The thrashing pair of the direct-mapped test coexists here.
        let mut c = two_way(256);
        let stats = run_addrs(&mut c, (0..20).map(|i| if i % 2 == 0 { 0u32 } else { 256 }));
        assert_eq!(stats.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way set: fill with a, b; touch a; insert c -> b evicted.
        let mut c = two_way(256);
        let (a, b, x) = (0u32, 256u32, 512u32);
        c.access(a);
        c.access(b);
        c.access(a);
        c.access(x); // evicts b under LRU
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(x));
    }

    #[test]
    fn fifo_evicts_oldest_resident() {
        let mut c = SetAssociative::new(CacheConfig::new(256, 4, 2).unwrap(), Replacement::Fifo);
        let (a, b, x) = (0u32, 256u32, 512u32);
        c.access(a);
        c.access(b);
        c.access(a); // hit: FIFO order unchanged
        c.access(x); // evicts a (oldest), not b
        assert!(!c.contains(a));
        assert!(c.contains(b));
        assert!(c.contains(x));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let config = CacheConfig::new(256, 4, 2).unwrap();
        let addrs: Vec<u32> = (0..200).map(|i| (i % 5) * 256).collect();
        let mut a = SetAssociative::with_seed(config, Replacement::Random, 1);
        let mut b = SetAssociative::with_seed(config, Replacement::Random, 1);
        assert_eq!(
            run_addrs(&mut a, addrs.iter().copied()),
            run_addrs(&mut b, addrs)
        );
    }

    #[test]
    fn one_way_matches_direct_mapped() {
        let config = CacheConfig::direct_mapped(512, 8).unwrap();
        let mut sa = SetAssociative::new(config, Replacement::Lru);
        let mut dm = crate::DirectMapped::new(config);
        let mut rng = SplitMix64::new(99);
        for _ in 0..2000 {
            let addr = (rng.below(4096) as u32) & !3;
            assert_eq!(sa.access(addr), dm.access(addr));
        }
        assert_eq!(sa.stats(), dm.stats());
    }

    #[test]
    fn associativity_never_exceeded() {
        let config = CacheConfig::new(64, 4, 4).unwrap(); // 4 sets of 4
        let mut c = SetAssociative::new(config, Replacement::Lru);
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            c.access((rng.below(1 << 14) as u32) & !3);
        }
        for set in &c.sets {
            assert!(set.len() <= 4);
        }
    }

    #[test]
    fn label_mentions_policy() {
        assert!(two_way(256).label().contains("LRU"));
        let r = SetAssociative::new(CacheConfig::new(256, 4, 2).unwrap(), Replacement::Random);
        assert!(r.label().contains("random"));
    }

    #[test]
    fn probe_distinguishes_cold_fills_from_evictions() {
        use dynex_obs::CountingProbe;
        let config = CacheConfig::new(256, 4, 2).unwrap();
        let mut c = SetAssociative::with_probe(config, Replacement::Lru, CountingProbe::new());
        // Fill one set (2 cold misses), hit, then overflow it (1 eviction).
        run_addrs(&mut c, [0u32, 256, 0, 512]);
        let counts = c.probe().counts();
        assert_eq!(counts.accesses, 4);
        assert_eq!(counts.hits, 1);
        assert_eq!(counts.misses, 3);
        assert_eq!(counts.evictions, 1);
    }

    #[test]
    fn probed_and_bare_stats_agree_for_each_policy() {
        use dynex_obs::CountingProbe;
        let config = CacheConfig::new(512, 4, 4).unwrap();
        for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
            let mut bare = SetAssociative::new(config, policy);
            let mut probed = SetAssociative::with_probe(config, policy, CountingProbe::new());
            let mut rng = SplitMix64::new(7);
            for _ in 0..3000 {
                let a = (rng.below(8192) as u32) & !3;
                assert_eq!(bare.access(a), probed.access(a));
            }
            assert_eq!(bare.stats(), probed.stats());
            let counts = probed.probe().counts();
            assert_eq!(counts.accesses, probed.stats().accesses());
            assert_eq!(counts.misses, probed.stats().misses());
            assert!(counts.evictions <= counts.misses);
        }
    }
}
