//! Stream buffer \[Jou90\]: sequential prefetch FIFO in front of memory.
//!
//! Section 2 of the dynamic-exclusion paper notes that stream buffers reduce
//! the *penalty* of sequential instruction misses but do not change the
//! number of conflict misses, making them complementary to dynamic
//! exclusion. The `streambuf` experiment demonstrates exactly that.

use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::direct::INVALID_LINE;
use crate::{AccessOutcome, CacheConfig, CacheSim, CacheStats, Geometry};

/// Extra accounting for a [`StreamBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamBufferStats {
    /// Demand accesses served by the buffer head instead of memory.
    pub stream_hits: u64,
    /// Buffer flushes caused by non-sequential misses.
    pub flushes: u64,
}

/// A direct-mapped cache fronted by a `depth`-entry sequential stream buffer.
///
/// On a cache miss the buffer head is probed: a match promotes the line into
/// the cache (no memory access, counted as a hit) and the buffer prefetches
/// the next sequential line; a mismatch flushes and restarts the buffer at
/// the miss address.
///
/// # Examples
///
/// ```
/// use dynex_cache::{CacheConfig, CacheSim, StreamBuffer};
///
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let mut cache = StreamBuffer::new(config, 4);
/// cache.access(0x100);                 // miss, buffer starts at 0x104
/// assert!(cache.access(0x104).is_hit()); // served by the buffer
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamBuffer<P: Probe = NoopProbe> {
    config: CacheConfig,
    geometry: Geometry,
    lines: Vec<u32>,
    /// Prefetched line addresses, head first; `buffer[i] = next_line + i`.
    buffer: Vec<u32>,
    depth: usize,
    extra: StreamBufferStats,
    stats: CacheStats,
    probe: P,
}

impl StreamBuffer {
    /// Creates an empty cache with a `depth`-line stream buffer.
    ///
    /// # Panics
    ///
    /// Panics if `config` is not direct-mapped or `depth == 0`.
    pub fn new(config: CacheConfig, depth: usize) -> StreamBuffer {
        StreamBuffer::with_probe(config, depth, NoopProbe)
    }
}

impl<P: Probe> StreamBuffer<P> {
    /// Creates an empty cache emitting events into `probe`.
    ///
    /// Buffer promotions surface as hits with [`Cause::StreamBuffer`].
    ///
    /// # Panics
    ///
    /// Same as [`StreamBuffer::new`].
    pub fn with_probe(config: CacheConfig, depth: usize, probe: P) -> StreamBuffer<P> {
        assert_eq!(
            config.associativity(),
            1,
            "stream buffers extend a direct-mapped cache"
        );
        assert!(depth > 0, "stream buffer must hold at least one line");
        StreamBuffer {
            config,
            geometry: config.geometry(),
            lines: vec![INVALID_LINE; config.n_sets() as usize],
            buffer: Vec::with_capacity(depth),
            depth,
            extra: StreamBufferStats::default(),
            stats: CacheStats::new(),
            probe,
        }
    }

    /// The primary cache configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Stream-buffer specific counters.
    pub fn stream_stats(&self) -> StreamBufferStats {
        self.extra
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the cache, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    fn refill_from(&mut self, line: u32) {
        self.buffer.clear();
        for i in 1..=self.depth as u32 {
            self.buffer.push(line.wrapping_add(i));
        }
    }
}

impl<P: Probe> CacheSim for StreamBuffer<P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.geometry.line_addr(addr);
        let set = self.geometry.set_of_line(line) as usize;
        let outcome = if self.lines[set] == line {
            self.probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Hit,
                cause: Cause::Resident,
            });
            AccessOutcome::Hit
        } else if self.buffer.first() == Some(&line) {
            // Promote from the buffer: no memory access for the demand line.
            self.buffer.remove(0);
            let next = self.buffer.last().map_or(line + 1, |&l| l + 1);
            self.buffer.push(next);
            let displaced = self.lines[set];
            if displaced != INVALID_LINE {
                self.probe.emit(Event::Eviction {
                    set: set as u32,
                    victim: displaced,
                    replacement: line,
                });
            }
            self.lines[set] = line;
            self.extra.stream_hits += 1;
            self.probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Hit,
                cause: Cause::StreamBuffer,
            });
            AccessOutcome::Hit
        } else {
            if !self.buffer.is_empty() {
                self.extra.flushes += 1;
            }
            self.refill_from(line);
            let displaced = self.lines[set];
            let cause = if displaced == INVALID_LINE {
                Cause::Cold
            } else {
                self.probe.emit(Event::Eviction {
                    set: set as u32,
                    victim: displaced,
                    replacement: line,
                });
                Cause::Replace
            };
            self.lines[set] = line;
            self.probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Miss,
                cause,
            });
            AccessOutcome::Miss
        };
        self.stats.record(outcome);
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!("{} + {}-deep stream buffer", self.config, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_addrs, DirectMapped};

    fn cache(depth: usize) -> StreamBuffer {
        StreamBuffer::new(CacheConfig::direct_mapped(64, 4).unwrap(), depth)
    }

    #[test]
    fn sequential_run_costs_one_memory_miss() {
        // A long cold sequential sweep: only the first access reaches memory;
        // the buffer strides along in front of the rest.
        let mut c = cache(4);
        let stats = run_addrs(&mut c, (0..32u32).map(|i| 0x1000 + i * 4));
        assert_eq!(stats.misses(), 1);
        assert_eq!(c.stream_stats().stream_hits, 31);
    }

    #[test]
    fn nonsequential_miss_flushes() {
        let mut c = cache(4);
        c.access(0x100); // buffer: 0x104..
        c.access(0x900); // non-sequential: flush + restart
        assert_eq!(c.stream_stats().flushes, 1);
        assert!(c.access(0x904).is_hit()); // new stream
    }

    #[test]
    fn conflict_misses_unchanged() {
        // Two conflicting blocks alternating: the buffer never helps, exactly
        // the paper's point that stream buffers are orthogonal to conflicts.
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let mut plain = DirectMapped::new(config);
        let mut sb = StreamBuffer::new(config, 4);
        let addrs: Vec<u32> = (0..20)
            .map(|i| if i % 2 == 0 { 0u32 } else { 64 })
            .collect();
        assert_eq!(
            run_addrs(&mut plain, addrs.iter().copied()).misses(),
            run_addrs(&mut sb, addrs).misses()
        );
    }

    #[test]
    fn never_more_memory_fetches_than_plain() {
        let config = CacheConfig::direct_mapped(128, 4).unwrap();
        let mut plain = DirectMapped::new(config);
        let mut sb = StreamBuffer::new(config, 4);
        let mut rng = crate::SplitMix64::new(77);
        // Mix of sequential runs and jumps.
        let mut addrs = Vec::new();
        let mut pc = 0u32;
        for _ in 0..2000 {
            if rng.chance(0.2) {
                pc = (rng.below(4096) as u32) & !3;
            } else {
                pc += 4;
            }
            addrs.push(pc);
        }
        let plain_stats = run_addrs(&mut plain, addrs.iter().copied());
        let sb_stats = run_addrs(&mut sb, addrs);
        assert!(sb_stats.misses() <= plain_stats.misses());
    }

    #[test]
    fn hit_in_cache_leaves_buffer_alone() {
        let mut c = cache(2);
        c.access(0x0);
        c.access(0x0);
        assert_eq!(c.stream_stats().flushes, 0);
        assert_eq!(c.stream_stats().stream_hits, 0);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_depth_rejected() {
        cache(0);
    }

    #[test]
    fn probe_attributes_promotions_to_the_stream_buffer() {
        use dynex_obs::{Cause, Event, EventLog, Outcome};
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let mut c = StreamBuffer::with_probe(config, 4, EventLog::new());
        run_addrs(&mut c, (0..8u32).map(|i| 0x1000 + i * 4));
        let events = c.into_probe().into_events();
        let promoted = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Access {
                        outcome: Outcome::Hit,
                        cause: Cause::StreamBuffer,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(promoted, 7, "all but the first access stream in");
    }

    #[test]
    fn probed_and_bare_stats_agree() {
        use dynex_obs::CountingProbe;
        let config = CacheConfig::direct_mapped(128, 4).unwrap();
        let mut bare = StreamBuffer::new(config, 4);
        let mut probed = StreamBuffer::with_probe(config, 4, CountingProbe::new());
        let mut rng = crate::SplitMix64::new(41);
        let mut pc = 0u32;
        for _ in 0..3000 {
            if rng.chance(0.2) {
                pc = (rng.below(4096) as u32) & !3;
            } else {
                pc += 4;
            }
            assert_eq!(bare.access(pc), probed.access(pc));
        }
        assert_eq!(bare.stats(), probed.stats());
        assert_eq!(probed.probe().counts().accesses, probed.stats().accesses());
    }
}
