//! Fully-associative cache: a single set spanning the whole capacity.

use crate::{AccessOutcome, CacheConfig, CacheSim, CacheStats, Replacement, SetAssociative};

/// A fully-associative cache (one set, LRU by default).
///
/// Used as the conflict-free reference point: any extra misses a
/// direct-mapped cache of the same capacity takes are conflict misses, the
/// quantity dynamic exclusion attacks.
///
/// # Examples
///
/// ```
/// use dynex_cache::{CacheSim, FullyAssociative, Replacement};
///
/// let mut cache = FullyAssociative::new(64, 4, Replacement::Lru)?;
/// cache.access(0x0);
/// cache.access(0x4000); // would conflict in a direct-mapped cache
/// assert!(cache.access(0x0).is_hit());
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FullyAssociative {
    inner: SetAssociative,
}

impl FullyAssociative {
    /// Creates an empty fully-associative cache.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ConfigError`] for invalid size/line parameters.
    pub fn new(
        size_bytes: u32,
        line_bytes: u32,
        policy: Replacement,
    ) -> Result<FullyAssociative, crate::ConfigError> {
        let config = CacheConfig::fully_associative(size_bytes, line_bytes)?;
        Ok(FullyAssociative {
            inner: SetAssociative::new(config, policy),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.inner.config()
    }

    /// Whether the block containing `addr` is resident (no state change).
    pub fn contains(&self, addr: u32) -> bool {
        self.inner.contains(addr)
    }
}

impl CacheSim for FullyAssociative {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        self.inner.access(addr)
    }

    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    fn label(&self) -> String {
        format!(
            "{}KB fully-associative, {}B lines ({})",
            self.config().size_bytes() / 1024,
            self.config().line_bytes(),
            match self.inner.policy() {
                Replacement::Lru => "LRU",
                Replacement::Fifo => "FIFO",
                Replacement::Random => "random",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_addrs;

    #[test]
    fn no_conflict_misses() {
        // 16 lines; 8 distinct blocks that all map to one DM set coexist here.
        let mut c = FullyAssociative::new(64, 4, Replacement::Lru).unwrap();
        let addrs: Vec<u32> = (0..8).map(|i| i * 64).collect();
        let stats = run_addrs(&mut c, addrs.iter().copied().chain(addrs.iter().copied()));
        assert_eq!(stats.misses(), 8); // cold only
    }

    #[test]
    fn capacity_misses_still_occur() {
        // 4 lines, 5-block cyclic working set under LRU: always misses.
        let mut c = FullyAssociative::new(16, 4, Replacement::Lru).unwrap();
        let stats = run_addrs(&mut c, (0..25).map(|i| (i % 5) * 16));
        assert_eq!(stats.misses(), 25);
    }

    #[test]
    fn single_set_geometry() {
        let c = FullyAssociative::new(128, 8, Replacement::Lru).unwrap();
        assert_eq!(c.config().n_sets(), 1);
        assert_eq!(c.config().associativity(), 16);
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(FullyAssociative::new(100, 4, Replacement::Lru).is_err());
    }

    #[test]
    fn label_is_descriptive() {
        let c = FullyAssociative::new(1024, 16, Replacement::Lru).unwrap();
        assert!(c.label().contains("fully-associative"));
    }
}
