//! Victim cache \[Jou90\]: a direct-mapped cache backed by a small
//! fully-associative buffer of recently evicted lines.
//!
//! Section 2 of the dynamic-exclusion paper positions victim caches as the
//! competing hardware fix for direct-mapped conflicts, noting they work well
//! for data (few conflicting blocks) but poorly for instructions (many). The
//! `victim` experiment reproduces that comparison.

use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::direct::INVALID_LINE;
use crate::{AccessOutcome, CacheConfig, CacheSim, CacheStats, Geometry};

/// A direct-mapped cache with a victim buffer.
///
/// On a primary miss the victim buffer is probed; a buffer hit swaps the
/// victim back into the primary cache (counted as a hit, since no memory
/// access occurs, matching Jouppi's accounting). On a full miss the displaced
/// primary line enters the buffer, evicting its least recently used entry.
///
/// # Examples
///
/// ```
/// use dynex_cache::{CacheConfig, CacheSim, VictimCache};
///
/// let config = CacheConfig::direct_mapped(256, 4)?;
/// let mut cache = VictimCache::new(config, 4);
/// cache.access(0x0);
/// cache.access(0x100); // evicts 0x0 into the victim buffer
/// assert!(cache.access(0x0).is_hit()); // rescued from the buffer
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VictimCache<P: Probe = NoopProbe> {
    config: CacheConfig,
    geometry: Geometry,
    lines: Vec<u32>,
    /// Victim lines, most recently inserted first.
    victims: Vec<u32>,
    victim_entries: usize,
    victim_hits: u64,
    stats: CacheStats,
    probe: P,
}

impl VictimCache {
    /// Creates an empty cache with a `victim_entries`-line buffer.
    ///
    /// # Panics
    ///
    /// Panics if `config` is not direct-mapped or `victim_entries == 0`.
    pub fn new(config: CacheConfig, victim_entries: usize) -> VictimCache {
        VictimCache::with_probe(config, victim_entries, NoopProbe)
    }
}

impl<P: Probe> VictimCache<P> {
    /// Creates an empty cache emitting events into `probe`.
    ///
    /// Buffer rescues surface as hits with [`Cause::VictimBuffer`].
    ///
    /// # Panics
    ///
    /// Same as [`VictimCache::new`].
    pub fn with_probe(config: CacheConfig, victim_entries: usize, probe: P) -> VictimCache<P> {
        assert_eq!(
            config.associativity(),
            1,
            "victim caches extend a direct-mapped cache"
        );
        assert!(
            victim_entries > 0,
            "victim buffer must hold at least one line"
        );
        VictimCache {
            config,
            geometry: config.geometry(),
            lines: vec![INVALID_LINE; config.n_sets() as usize],
            victims: Vec::with_capacity(victim_entries),
            victim_entries,
            victim_hits: 0,
            stats: CacheStats::new(),
            probe,
        }
    }

    /// The primary cache configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the cache, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Number of entries in the victim buffer.
    pub fn victim_entries(&self) -> usize {
        self.victim_entries
    }

    /// How many accesses were rescued by the victim buffer.
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits
    }

    fn push_victim(&mut self, line: u32) {
        if line == INVALID_LINE {
            return;
        }
        if self.victims.len() == self.victim_entries {
            self.victims.pop();
        }
        self.victims.insert(0, line);
    }
}

impl<P: Probe> CacheSim for VictimCache<P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.geometry.line_addr(addr);
        let set = self.geometry.set_of_line(line) as usize;
        let outcome = if self.lines[set] == line {
            self.probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Hit,
                cause: Cause::Resident,
            });
            AccessOutcome::Hit
        } else if let Some(pos) = self.victims.iter().position(|&v| v == line) {
            // Swap: rescued victim returns to the primary cache; the
            // displaced primary line takes its place in the buffer.
            self.victims.remove(pos);
            let displaced = self.lines[set];
            self.lines[set] = line;
            self.push_victim(displaced);
            self.victim_hits += 1;
            self.probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Hit,
                cause: Cause::VictimBuffer,
            });
            AccessOutcome::Hit
        } else {
            let displaced = self.lines[set];
            self.lines[set] = line;
            self.push_victim(displaced);
            let cause = if displaced == INVALID_LINE {
                Cause::Cold
            } else {
                self.probe.emit(Event::Eviction {
                    set: set as u32,
                    victim: displaced,
                    replacement: line,
                });
                Cause::Replace
            };
            self.probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: Outcome::Miss,
                cause,
            });
            AccessOutcome::Miss
        };
        self.stats.record(outcome);
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!(
            "{} + {}-entry victim buffer",
            self.config, self.victim_entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_addrs, DirectMapped};

    fn cache(entries: usize) -> VictimCache {
        VictimCache::new(CacheConfig::direct_mapped(256, 4).unwrap(), entries)
    }

    #[test]
    fn pairwise_thrash_is_absorbed() {
        // a/b alternating on one line: a victim buffer turns this into 2 cold
        // misses — the pathological case Jouppi built the buffer for.
        let mut c = cache(1);
        let stats = run_addrs(&mut c, (0..20).map(|i| if i % 2 == 0 { 0u32 } else { 256 }));
        assert_eq!(stats.misses(), 2);
        assert_eq!(c.victim_hits(), 18);
    }

    #[test]
    fn many_way_conflict_overwhelms_small_buffer() {
        // 6 blocks cycling through one line with a 4-entry buffer... the
        // rotation distance (5 intervening victims + displaced line) exceeds
        // the buffer, so every access misses — the instruction-stream failure
        // mode the paper describes.
        let mut c = cache(4);
        let stats = run_addrs(&mut c, (0..60).map(|i| (i % 6) * 256));
        assert_eq!(stats.misses(), 60);
    }

    #[test]
    fn never_worse_than_plain_direct_mapped() {
        let config = CacheConfig::direct_mapped(128, 4).unwrap();
        let mut plain = DirectMapped::new(config);
        let mut vc = VictimCache::new(config, 2);
        let mut rng = crate::SplitMix64::new(21);
        let addrs: Vec<u32> = (0..5000).map(|_| (rng.below(2048) as u32) & !3).collect();
        let plain_stats = run_addrs(&mut plain, addrs.iter().copied());
        let vc_stats = run_addrs(&mut vc, addrs);
        assert!(vc_stats.misses() <= plain_stats.misses());
    }

    #[test]
    fn swap_restores_displaced_line() {
        let mut c = cache(2);
        c.access(0x0); // resident
        c.access(0x100); // 0x0 -> buffer
        c.access(0x0); // swap back; 0x100 -> buffer
        assert!(c.access(0x100).is_hit()); // still rescuable
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_entry_buffer_rejected() {
        cache(0);
    }

    #[test]
    #[should_panic(expected = "direct-mapped")]
    fn associative_primary_rejected() {
        VictimCache::new(CacheConfig::new(256, 4, 2).unwrap(), 2);
    }

    #[test]
    fn label_mentions_buffer() {
        assert!(cache(4).label().contains("4-entry victim buffer"));
    }

    #[test]
    fn probe_attributes_rescues_to_the_victim_buffer() {
        use dynex_obs::{Cause, Event, EventLog, Outcome};
        let config = CacheConfig::direct_mapped(256, 4).unwrap();
        let mut c = VictimCache::with_probe(config, 1, EventLog::new());
        run_addrs(&mut c, [0u32, 256, 0]); // cold, conflict, rescue
        let events = c.into_probe().into_events();
        let rescues: Vec<&Event> = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Access {
                        outcome: Outcome::Hit,
                        cause: Cause::VictimBuffer,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(rescues.len(), 1);
    }

    #[test]
    fn probed_and_bare_stats_agree() {
        use dynex_obs::CountingProbe;
        let config = CacheConfig::direct_mapped(128, 4).unwrap();
        let mut bare = VictimCache::new(config, 4);
        let mut probed = VictimCache::with_probe(config, 4, CountingProbe::new());
        let mut rng = crate::SplitMix64::new(31);
        for _ in 0..4000 {
            let a = (rng.below(2048) as u32) & !3;
            assert_eq!(bare.access(a), probed.access(a));
        }
        assert_eq!(bare.stats(), probed.stats());
        assert_eq!(probed.probe().counts().accesses, probed.stats().accesses());
    }
}
