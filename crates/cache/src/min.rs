//! Belady's MIN: the optimal fully-associative cache (offline).
//!
//! The paper cites Belady \[Be166\] as the theoretical upper bound every
//! replacement policy is measured against. This module implements MIN with
//! bypass for a fully-associative cache: on a miss with a full cache, the
//! block whose next use is furthest away — *including the incoming block* —
//! is the one left out. It is the conflict-free, policy-free reference:
//! no cache of equal capacity, under any placement or replacement scheme,
//! misses less.
//!
//! Used by [`crate::classify_direct_mapped_optimal`] to classify misses
//! without the LRU artifact of the classic three-C taxonomy.

use std::collections::{BTreeSet, HashMap};

use crate::{AccessOutcome, CacheStats, ConfigError};

const NEVER: u64 = u64::MAX;

/// Offline simulator for the optimal fully-associative cache (MIN with
/// bypass).
///
/// # Examples
///
/// ```
/// use dynex_cache::OptimalFullyAssociative;
///
/// // Two blocks, one line: keep the one that is re-referenced.
/// let stats = OptimalFullyAssociative::simulate(1, 4, [0u32, 64, 0, 64, 0])?;
/// assert_eq!(stats.misses(), 3); // 0 kept; 64 bypassed twice
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OptimalFullyAssociative;

impl OptimalFullyAssociative {
    /// Simulates MIN over byte addresses for a cache of `capacity_lines`
    /// lines of `line_bytes` each.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Zero`] if either parameter is zero and
    /// [`ConfigError::LineTooSmall`] for sub-word lines.
    pub fn simulate<I>(
        capacity_lines: usize,
        line_bytes: u32,
        addrs: I,
    ) -> Result<CacheStats, ConfigError>
    where
        I: IntoIterator<Item = u32>,
    {
        let outcomes = OptimalFullyAssociative::outcomes(capacity_lines, line_bytes, addrs)?;
        let mut stats = CacheStats::new();
        for outcome in outcomes {
            stats.record(outcome);
        }
        Ok(stats)
    }

    /// Like [`OptimalFullyAssociative::simulate`], but returns the
    /// per-reference outcomes (used by the optimal miss classification).
    ///
    /// # Errors
    ///
    /// Same as [`OptimalFullyAssociative::simulate`].
    pub fn outcomes<I>(
        capacity_lines: usize,
        line_bytes: u32,
        addrs: I,
    ) -> Result<Vec<AccessOutcome>, ConfigError>
    where
        I: IntoIterator<Item = u32>,
    {
        if capacity_lines == 0 || line_bytes == 0 {
            return Err(ConfigError::Zero);
        }
        if line_bytes < 4 {
            return Err(ConfigError::LineTooSmall { line_bytes });
        }
        let shift = line_bytes.trailing_zeros();
        let lines: Vec<u32> = addrs.into_iter().map(|a| a >> shift).collect();

        // next[i]: position of the next reference to lines[i] (NEVER if none).
        let mut next = vec![NEVER; lines.len()];
        let mut upcoming: HashMap<u32, usize> = HashMap::new();
        for (i, &l) in lines.iter().enumerate().rev() {
            if let Some(&j) = upcoming.get(&l) {
                next[i] = j as u64;
            }
            upcoming.insert(l, i);
        }

        // Resident set, ordered by next use (ties impossible: positions are
        // unique; NEVER ties broken by the line id).
        let mut by_next_use: BTreeSet<(u64, u32)> = BTreeSet::new();
        let mut resident_key: HashMap<u32, u64> = HashMap::new();
        let mut outcomes = Vec::with_capacity(lines.len());

        for (i, &line) in lines.iter().enumerate() {
            if let Some(&key) = resident_key.get(&line) {
                outcomes.push(AccessOutcome::Hit);
                by_next_use.remove(&(key, line));
                by_next_use.insert((next[i], line));
                resident_key.insert(line, next[i]);
            } else {
                outcomes.push(AccessOutcome::Miss);
                if next[i] == NEVER {
                    // Never used again: bypassing is optimal.
                    continue;
                }
                if resident_key.len() < capacity_lines {
                    by_next_use.insert((next[i], line));
                    resident_key.insert(line, next[i]);
                } else {
                    // Compare with the furthest-next-use resident.
                    let &(worst_key, worst_line) =
                        by_next_use.iter().next_back().expect("cache is full");
                    if next[i] < worst_key {
                        by_next_use.remove(&(worst_key, worst_line));
                        resident_key.remove(&worst_line);
                        by_next_use.insert((next[i], line));
                        resident_key.insert(line, next[i]);
                    }
                    // else: bypass the incoming block.
                }
            }
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_addrs, CacheConfig, FullyAssociative, Replacement, SplitMix64};

    #[test]
    fn keeps_the_reused_block() {
        // (a b)^n with one line: a kept, b bypassed after its first miss...
        // every b access misses, a misses once.
        let addrs: Vec<u32> = (0..10).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
        let stats = OptimalFullyAssociative::simulate(1, 4, addrs).unwrap();
        assert_eq!(stats.misses(), 6); // a once + b five times
    }

    #[test]
    fn lru_hostile_cycle_is_handled_optimally() {
        // Cyclic sweep of C+1 blocks over C lines: LRU misses everything;
        // MIN keeps C-1 blocks resident and misses ~2 per cycle.
        let c = 4usize;
        let blocks = 5u32;
        let addrs: Vec<u32> = (0..50).map(|i| (i % blocks) * 4).collect();
        let min = OptimalFullyAssociative::simulate(c, 4, addrs.iter().copied()).unwrap();
        let mut lru = FullyAssociative::new(16, 4, Replacement::Lru).unwrap();
        let lru_stats = run_addrs(&mut lru, addrs.iter().copied());
        assert_eq!(lru_stats.misses(), 50, "LRU thrashes");
        assert!(
            min.misses() < 20,
            "MIN keeps most of the cycle: {}",
            min.misses()
        );
    }

    #[test]
    fn min_bounds_lru_everywhere() {
        let mut rng = SplitMix64::new(61);
        for trial in 0..20 {
            let addrs: Vec<u32> = (0..500).map(|_| (rng.below(64) as u32) * 4).collect();
            let min = OptimalFullyAssociative::simulate(8, 4, addrs.iter().copied()).unwrap();
            let mut lru = FullyAssociative::new(32, 4, Replacement::Lru).unwrap();
            let lru_stats = run_addrs(&mut lru, addrs.iter().copied());
            assert!(min.misses() <= lru_stats.misses(), "trial {trial}");
        }
    }

    #[test]
    fn min_bounds_direct_mapped_of_equal_capacity() {
        // Placement freedom can only help: FA-MIN <= DM on any stream.
        let mut rng = SplitMix64::new(62);
        for trial in 0..20 {
            let addrs: Vec<u32> = (0..500).map(|_| (rng.below(128) as u32) * 4).collect();
            let min = OptimalFullyAssociative::simulate(16, 4, addrs.iter().copied()).unwrap();
            let mut dm = crate::DirectMapped::new(CacheConfig::direct_mapped(64, 4).unwrap());
            let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
            assert!(min.misses() <= dm_stats.misses(), "trial {trial}");
        }
    }

    /// Exhaustive optimality: dynamic programming over all eviction/bypass
    /// choices must not beat the greedy furthest-in-future rule.
    #[test]
    fn greedy_matches_exhaustive_minimum() {
        use std::collections::HashMap as Map;

        fn min_misses(
            lines: &[u32],
            i: usize,
            resident: &mut Vec<u32>, // sorted
            capacity: usize,
            memo: &mut Map<(usize, Vec<u32>), u64>,
        ) -> u64 {
            if i == lines.len() {
                return 0;
            }
            let key = (i, resident.clone());
            if let Some(&m) = memo.get(&key) {
                return m;
            }
            let line = lines[i];
            let result = if resident.contains(&line) {
                min_misses(lines, i + 1, resident, capacity, memo)
            } else {
                // Option A: bypass.
                let mut best = min_misses(lines, i + 1, resident, capacity, memo);
                // Option B: insert (evicting each possible victim).
                if resident.len() < capacity {
                    let mut r = resident.clone();
                    r.push(line);
                    r.sort_unstable();
                    best = best.min(min_misses(lines, i + 1, &mut r, capacity, memo));
                } else {
                    for v in 0..resident.len() {
                        let mut r = resident.clone();
                        r[v] = line;
                        r.sort_unstable();
                        best = best.min(min_misses(lines, i + 1, &mut r, capacity, memo));
                    }
                }
                1 + best
            };
            memo.insert(key, result);
            result
        }

        let mut rng = SplitMix64::new(63);
        for trial in 0..60 {
            let len = 2 + rng.below_usize(10);
            let blocks = 2 + rng.below(4) as u32;
            let capacity = 1 + rng.below_usize(2);
            let lines: Vec<u32> = (0..len).map(|_| rng.below(blocks as u64) as u32).collect();
            let addrs: Vec<u32> = lines.iter().map(|&l| l * 4).collect();
            let greedy = OptimalFullyAssociative::simulate(capacity, 4, addrs)
                .unwrap()
                .misses();
            let best = min_misses(&lines, 0, &mut Vec::new(), capacity, &mut Map::new());
            assert_eq!(
                greedy, best,
                "trial {trial}: lines {lines:?} capacity {capacity}"
            );
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(OptimalFullyAssociative::simulate(0, 4, [0u32]).is_err());
        assert!(OptimalFullyAssociative::simulate(4, 0, [0u32]).is_err());
        assert!(OptimalFullyAssociative::simulate(4, 2, [0u32]).is_err());
    }

    #[test]
    fn empty_trace() {
        let stats = OptimalFullyAssociative::simulate(4, 4, std::iter::empty()).unwrap();
        assert_eq!(stats.accesses(), 0);
    }
}
