//! Three-C miss classification (Hill): compulsory / capacity / conflict.
//!
//! Dynamic exclusion attacks *conflict* misses — the misses a direct-mapped
//! cache takes that a fully-associative cache of the same capacity would
//! not. This module implements the classic per-reference classification so
//! experiments can report how large that target actually is per workload:
//!
//! * **compulsory** — first reference to the block, misses in any cache;
//! * **capacity** — the block was seen before, but a fully-associative LRU
//!   cache of equal capacity misses too;
//! * **conflict** — the direct-mapped cache misses where the
//!   fully-associative cache hits: pure placement damage.
//!
//! The classification has a well-known artifact: LRU is not optimal, so the
//! fully-associative reference can miss where the direct-mapped cache
//! *hits* (cyclic sweeps slightly above capacity). Those "anti-conflict"
//! events are counted separately rather than silently folded in.

use std::collections::HashSet;

use crate::{CacheConfig, FullyAssociative, Replacement};

/// Per-category miss counts from [`classify_direct_mapped`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissClassification {
    /// Total references classified.
    pub accesses: u64,
    /// First-touch misses (miss in any cache organization).
    pub compulsory: u64,
    /// Re-reference misses that the equal-capacity fully-associative LRU
    /// cache also takes.
    pub capacity: u64,
    /// Misses the fully-associative cache avoids: the direct-mapped
    /// placement's fault, dynamic exclusion's target.
    pub conflict: u64,
    /// Direct-mapped hits where the fully-associative LRU cache misses
    /// (the classification's LRU artifact, reported for transparency).
    pub anti_conflict: u64,
}

impl MissClassification {
    /// All direct-mapped misses (sum of the three categories).
    pub fn total_misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Conflict misses as a fraction of all direct-mapped misses (0 if no
    /// misses).
    pub fn conflict_fraction(&self) -> f64 {
        let total = self.total_misses();
        if total == 0 {
            0.0
        } else {
            self.conflict as f64 / total as f64
        }
    }

    /// Direct-mapped miss rate in percent.
    pub fn miss_rate_percent(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_misses() as f64 / self.accesses as f64 * 100.0
        }
    }
}

/// Classifies every miss a direct-mapped cache of `config` takes on `addrs`.
///
/// Runs the direct-mapped cache and an equal-capacity fully-associative LRU
/// shadow side by side.
///
/// # Examples
///
/// ```
/// use dynex_cache::{classify_direct_mapped, CacheConfig};
///
/// // Two conflicting blocks alternating: all non-cold misses are conflicts.
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
/// let c = classify_direct_mapped(config, addrs.iter().copied());
/// assert_eq!(c.compulsory, 2);
/// assert_eq!(c.conflict, 18);
/// assert_eq!(c.capacity, 0);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
pub fn classify_direct_mapped<I>(config: CacheConfig, addrs: I) -> MissClassification
where
    I: IntoIterator<Item = u32>,
{
    let geometry = config.geometry();
    let mut dm = crate::DirectMapped::new(config);
    let mut fa = FullyAssociative::new(config.size_bytes(), config.line_bytes(), Replacement::Lru)
        .expect("config already validated");
    let mut seen: HashSet<u32> = HashSet::new();
    let mut result = MissClassification::default();

    for addr in addrs {
        use crate::CacheSim;
        result.accesses += 1;
        let line = geometry.line_addr(addr);
        let first_touch = seen.insert(line);
        let dm_miss = dm.access(addr).is_miss();
        let fa_miss = fa.access(addr).is_miss();
        match (dm_miss, fa_miss, first_touch) {
            (true, _, true) => result.compulsory += 1,
            (true, true, false) => result.capacity += 1,
            (true, false, false) => result.conflict += 1,
            (false, true, _) => result.anti_conflict += 1,
            (false, false, _) => {}
        }
    }
    result
}

/// Classifies a direct-mapped cache's misses against the *optimal*
/// fully-associative cache (Belady's MIN with bypass) instead of LRU.
///
/// This tames the LRU artifact of [`classify_direct_mapped`]: MIN's *total*
/// misses never exceed any equal-capacity cache's, so in aggregate
/// `anti_conflict <= conflict` always holds (MIN optimizes globally, so it
/// may still miss at individual positions where the direct-mapped cache
/// happens to hit). The conflict bucket here counts placement *and*
/// replacement-policy damage together — exactly the misses a bypass scheme
/// like dynamic exclusion can attack.
///
/// # Examples
///
/// ```
/// use dynex_cache::{classify_direct_mapped_optimal, CacheConfig};
///
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
/// let c = classify_direct_mapped_optimal(config, &addrs);
/// assert_eq!(c.conflict, 18);
/// assert!(c.anti_conflict <= c.conflict); // guaranteed in aggregate
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
pub fn classify_direct_mapped_optimal(config: CacheConfig, addrs: &[u32]) -> MissClassification {
    let geometry = config.geometry();
    let min_outcomes = crate::OptimalFullyAssociative::outcomes(
        config.n_lines() as usize,
        config.line_bytes(),
        addrs.iter().copied(),
    )
    .expect("config already validated");
    let mut dm = crate::DirectMapped::new(config);
    let mut seen: HashSet<u32> = HashSet::new();
    let mut result = MissClassification::default();

    for (&addr, min_outcome) in addrs.iter().zip(min_outcomes) {
        use crate::CacheSim;
        result.accesses += 1;
        let line = geometry.line_addr(addr);
        let first_touch = seen.insert(line);
        let dm_miss = dm.access(addr).is_miss();
        match (dm_miss, min_outcome.is_miss(), first_touch) {
            (true, _, true) => result.compulsory += 1,
            (true, true, false) => result.capacity += 1,
            (true, false, false) => result.conflict += 1,
            (false, true, _) => result.anti_conflict += 1,
            (false, false, _) => {}
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(size: u32) -> CacheConfig {
        CacheConfig::direct_mapped(size, 4).unwrap()
    }

    #[test]
    fn cold_misses_are_compulsory() {
        let addrs: Vec<u32> = (0..16).map(|i| i * 4).collect();
        let c = classify_direct_mapped(config(256), addrs);
        assert_eq!(c.compulsory, 16);
        assert_eq!(c.capacity, 0);
        assert_eq!(c.conflict, 0);
        assert_eq!(c.total_misses(), 16);
    }

    #[test]
    fn pairwise_thrash_is_pure_conflict() {
        let addrs: Vec<u32> = (0..40).map(|i| if i % 2 == 0 { 0 } else { 256 }).collect();
        let c = classify_direct_mapped(config(256), addrs);
        assert_eq!(c.compulsory, 2);
        assert_eq!(c.conflict, 38);
        assert_eq!(c.capacity, 0);
        assert!((c.conflict_fraction() - 38.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_cyclic_sweep_is_capacity() {
        // 32 distinct blocks cycled through a 16-line cache: FA-LRU misses
        // everything too.
        let addrs: Vec<u32> = (0..320).map(|i| (i % 32) * 4).collect();
        let c = classify_direct_mapped(config(64), addrs);
        assert_eq!(c.compulsory, 32);
        assert!(c.capacity > 0);
        // Direct-mapped on a pure cyclic sweep also misses everything, and
        // FA-LRU does as well: no conflicts.
        assert_eq!(c.conflict, 0);
        assert_eq!(c.total_misses(), 320);
    }

    #[test]
    fn anti_conflict_artifact_is_visible() {
        // A cyclic sweep of 17 blocks over a 16-line cache: FA-LRU misses
        // all, but direct-mapped hits the blocks that do not share a set.
        let addrs: Vec<u32> = (0..170).map(|i| (i % 17) * 4).collect();
        let c = classify_direct_mapped(config(64), addrs);
        assert!(c.anti_conflict > 0, "LRU pathology should be visible");
    }

    #[test]
    fn identities_hold_on_random_streams() {
        let mut rng = crate::SplitMix64::new(44);
        let addrs: Vec<u32> = (0..5000).map(|_| (rng.below(256) as u32) * 4).collect();
        let c = classify_direct_mapped(config(256), addrs.iter().copied());
        // Total misses equals an independent direct-mapped run.
        use crate::CacheSim;
        let mut dm = crate::DirectMapped::new(config(256));
        let dm_stats = crate::run_addrs(&mut dm, addrs);
        assert_eq!(c.total_misses(), dm_stats.misses());
        assert_eq!(c.accesses, dm_stats.accesses());
        let _ = dm.label();
    }

    #[test]
    fn empty_stream() {
        let c = classify_direct_mapped(config(64), std::iter::empty());
        assert_eq!(c, MissClassification::default());
        assert_eq!(c.miss_rate_percent(), 0.0);
        assert_eq!(c.conflict_fraction(), 0.0);
    }

    #[test]
    fn optimal_classifier_aggregate_invariant() {
        let mut rng = crate::SplitMix64::new(47);
        // Include cyclic sweeps (the LRU pathology) in the mix.
        let mut addrs: Vec<u32> = (0..1000).map(|i| (i % 17) * 4).collect();
        addrs.extend((0..2000).map(|_| (rng.below(64) as u32) * 4));
        let c = classify_direct_mapped_optimal(config(64), &addrs);
        // MIN's total misses never exceed the direct-mapped cache's:
        // compulsory + capacity + anti <= compulsory + capacity + conflict.
        assert!(
            c.anti_conflict <= c.conflict,
            "MIN cannot lose in aggregate: anti {} vs conflict {}",
            c.anti_conflict,
            c.conflict
        );
        // Totals still reconcile with an independent direct-mapped run.
        use crate::CacheSim;
        let mut dm = crate::DirectMapped::new(config(64));
        let dm_stats = crate::run_addrs(&mut dm, addrs);
        assert_eq!(c.total_misses(), dm_stats.misses());
        let _ = dm.label();
    }

    #[test]
    fn optimal_conflict_bucket_contains_the_lru_artifact() {
        // On the 17-block cyclic sweep, the LRU classifier calls everything
        // capacity (FA-LRU misses too); the optimal classifier correctly
        // shows most misses as removable (MIN hits).
        let addrs: Vec<u32> = (0..1700).map(|i| (i % 17) * 4).collect();
        let lru = classify_direct_mapped(config(64), addrs.iter().copied());
        let opt = classify_direct_mapped_optimal(config(64), &addrs);
        assert!(
            opt.conflict > lru.conflict,
            "{} vs {}",
            opt.conflict,
            lru.conflict
        );
        assert!(opt.capacity < lru.capacity);
        assert_eq!(opt.total_misses(), lru.total_misses());
    }
}
