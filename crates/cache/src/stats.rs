//! Hit/miss accounting shared by all simulators.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::AccessOutcome;

/// Hit/miss counters and derived miss-rate metrics.
///
/// # Examples
///
/// ```
/// use dynex_cache::{AccessOutcome, CacheStats};
///
/// let mut stats = CacheStats::new();
/// stats.record(AccessOutcome::Miss);
/// stats.record(AccessOutcome::Hit);
/// assert_eq!(stats.miss_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    accesses: u64,
    misses: u64,
    fills: u64,
    writebacks: u64,
    probes: u64,
}

impl CacheStats {
    /// Fresh, all-zero counters.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// Reconstructs counters recorded elsewhere (sweep-journal replay).
    ///
    /// The bandwidth-cost counters start at zero — exactly what every
    /// pre-existing journal record and hit/miss-only kernel produces, so
    /// replayed results stay bit-identical to fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if `misses > accesses`.
    pub fn from_counts(accesses: u64, misses: u64) -> CacheStats {
        assert!(
            misses <= accesses,
            "misses ({misses}) cannot exceed accesses ({accesses})"
        );
        CacheStats {
            accesses,
            misses,
            ..CacheStats::default()
        }
    }

    /// [`CacheStats::from_counts`] plus the bandwidth-cost counters, for
    /// kernels and journal replays that account cache-side traffic.
    ///
    /// # Panics
    ///
    /// Panics if `misses > accesses`.
    pub fn from_traffic_counts(
        accesses: u64,
        misses: u64,
        fills: u64,
        writebacks: u64,
        probes: u64,
    ) -> CacheStats {
        let mut stats = CacheStats::from_counts(accesses, misses);
        stats.fills = fills;
        stats.writebacks = writebacks;
        stats.probes = probes;
        stats
    }

    /// Records one access outcome.
    pub fn record(&mut self, outcome: AccessOutcome) {
        self.accesses += 1;
        if outcome.is_miss() {
            self.misses += 1;
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses that hit.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Misses that installed (filled) a line — each one moves a line of
    /// data into the cache. Zero for hit/miss-only accounting.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Fills that displaced a valid resident line. Address traces carry no
    /// dirty information, so the accounting assumes a writeback cache in
    /// which every displaced valid line costs one transfer — an upper bound
    /// that is the same for every policy being compared.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Tag probes issued against the cache (one per access for every policy
    /// in the zoo today; counted separately so probe-filtering policies can
    /// report real savings). Zero for hit/miss-only accounting.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Bandwidth-cost summary in line-sized transfer units: the sum of
    /// probes, fills, and writebacks — the cache-side traffic metric of the
    /// bandwidth-aware DRAM-cache literature ("To Update or Not To
    /// Update?", arXiv 1907.02167). Lower is better; bypassing a miss saves
    /// a fill (and a potential writeback) at the cost of re-fetching on the
    /// next miss.
    pub fn bandwidth_transfers(&self) -> u64 {
        self.probes + self.fills + self.writebacks
    }

    /// Bandwidth transfers per thousand accesses — the normalized form the
    /// bandwidth figures tabulate; 0 for an empty run.
    pub fn bandwidth_per_kiloref(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.bandwidth_transfers() as f64 * 1000.0 / self.accesses as f64
        }
    }

    /// Miss rate in `[0, 1]`; 0 for an empty run.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Miss rate as a percentage, the unit the paper's figures use.
    pub fn miss_rate_percent(&self) -> f64 {
        self.miss_rate() * 100.0
    }

    /// Folds another counter set into this one (shard/job merging).
    ///
    /// Equivalent to `*self += other`; provided as a named method so that
    /// every mergeable result type across the workspace (`CacheStats`,
    /// `EventCounts`, `MetricsRegistry`, `IntervalSeries`) exposes the same
    /// verb for the sweep engine to call.
    pub fn merge(&mut self, other: &CacheStats) {
        *self += *other;
    }

    /// Percentage reduction of this miss rate relative to `baseline`
    /// (positive = fewer misses than the baseline), the metric of the paper's
    /// Figures 5, 9 and 12.
    ///
    /// Returns 0 when the baseline had no misses.
    pub fn percent_reduction_vs(&self, baseline: &CacheStats) -> f64 {
        let base = baseline.miss_rate();
        if base == 0.0 {
            0.0
        } else {
            (base - self.miss_rate()) / base * 100.0
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + rhs.accesses,
            misses: self.misses + rhs.misses,
            fills: self.fills + rhs.fills,
            writebacks: self.writebacks + rhs.writebacks,
            probes: self.probes + rhs.probes,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses,
            self.miss_rate_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(hits: u64, misses: u64) -> CacheStats {
        let mut s = CacheStats::new();
        for _ in 0..hits {
            s.record(AccessOutcome::Hit);
        }
        for _ in 0..misses {
            s.record(AccessOutcome::Miss);
        }
        s
    }

    #[test]
    fn counting() {
        let s = stats(3, 1);
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.miss_rate(), 0.25);
        assert_eq!(s.miss_rate_percent(), 25.0);
    }

    #[test]
    fn empty_run_has_zero_miss_rate() {
        assert_eq!(CacheStats::new().miss_rate(), 0.0);
    }

    #[test]
    fn from_counts_round_trips() {
        let s = stats(3, 2);
        assert_eq!(CacheStats::from_counts(s.accesses(), s.misses()), s);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn from_counts_rejects_impossible_counters() {
        let _ = CacheStats::from_counts(1, 2);
    }

    #[test]
    fn percent_reduction() {
        let baseline = stats(80, 20); // 20%
        let improved = stats(90, 10); // 10%
        assert!((improved.percent_reduction_vs(&baseline) - 50.0).abs() < 1e-9);
        // Worse than baseline gives a negative reduction.
        let worse = stats(60, 40);
        assert!(worse.percent_reduction_vs(&baseline) < 0.0);
        // Perfect baseline: reduction defined as 0.
        assert_eq!(stats(1, 1).percent_reduction_vs(&stats(5, 0)), 0.0);
    }

    #[test]
    fn addition_accumulates() {
        let mut a = stats(2, 1);
        a += stats(3, 4);
        assert_eq!(a, stats(5, 5));
        assert_eq!((stats(1, 0) + stats(0, 1)).accesses(), 2);
    }

    #[test]
    fn merge_matches_add_assign() {
        let mut a = stats(2, 1);
        a.merge(&stats(3, 4));
        assert_eq!(a, stats(5, 5));
        // Merging a zero value is the identity.
        let before = a;
        a.merge(&CacheStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn display_shows_percentage() {
        assert_eq!(stats(1, 1).to_string(), "2 accesses, 1 misses (50.00%)");
    }

    #[test]
    fn traffic_counts_round_trip_and_sum() {
        let s = CacheStats::from_traffic_counts(1000, 100, 60, 40, 1000);
        assert_eq!(s.fills(), 60);
        assert_eq!(s.writebacks(), 40);
        assert_eq!(s.probes(), 1000);
        assert_eq!(s.bandwidth_transfers(), 1100);
        assert!((s.bandwidth_per_kiloref() - 1100.0).abs() < 1e-9);
        let doubled = s + s;
        assert_eq!(doubled.fills(), 120);
        assert_eq!(doubled.writebacks(), 80);
        assert_eq!(doubled.probes(), 2000);
        // Hit/miss-only accounting keeps the traffic counters at zero, so
        // legacy journal replays compare equal to fresh legacy runs.
        assert_eq!(
            CacheStats::from_counts(1000, 100),
            CacheStats::from_traffic_counts(1000, 100, 0, 0, 0)
        );
        assert_ne!(s, CacheStats::from_counts(1000, 100));
        assert_eq!(CacheStats::new().bandwidth_per_kiloref(), 0.0);
    }
}
