//! A small deterministic PRNG used by the random replacement policy (and
//! re-exported for the workload generator).

/// SplitMix64: a tiny, fast, well-distributed 64-bit PRNG.
///
/// Chosen over a `rand` dependency so that simulation results and generated
/// traces are bit-reproducible regardless of external crate versions. Not
/// cryptographic.
///
/// # Examples
///
/// ```
/// use dynex_cache::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a nonzero bound");
        // Multiplication-based bounded sampling (Lemire); bias is negligible
        // for the bounds used in simulation (< 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero bound")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn below_covers_range() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.below_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be reachable");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(11);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SplitMix64::new(13);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
