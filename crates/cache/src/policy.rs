//! First-class replacement policies: the open-ended half of the policy zoo.
//!
//! The paper's contribution is a replacement policy, but for its first nine
//! PRs this repository could only compare dynamic exclusion against the two
//! fixed endpoints it shipped with (conventional direct-mapped and Belady's
//! optimal). This module turns "replacement policy" into a first-class
//! surface:
//!
//! * [`ReplacementPolicy`] — stateful per-set hooks (lookup, victim
//!   selection, fill) wide enough for set-associative policies. The trait
//!   sees trace positions, so oracle policies (OPT, EHC) can index
//!   precomputed future-knowledge arrays.
//! * [`simulate_policy`] — the generic reference driver: one chunk-decoded
//!   pass that owns the tag array and the [`CacheStats`] accounting
//!   (including the fills / writebacks / probes bandwidth counters) and
//!   delegates every decision to the policy.
//! * [`DmPolicy`] / [`DePolicy`] / [`OptPolicy`] — the paper's three
//!   policies re-expressed through the trait. They are *proven* equivalent
//!   to the spec simulators and the batch kernels by this module's tests
//!   and by `tests/kernel_differential.rs`; the fast paths in
//!   [`crate::kernel`] remain the specialized kernels.
//! * [`EhcPolicy`] / [`batch_ehc`] — Expected-Hit-Count replacement
//!   ("Making Belady-Inspired Replacement Policies More Effective Using
//!   Expected Hit Count", arXiv 1808.05024): rank the incoming block
//!   against the resident by how many hits each would supply within a
//!   capacity-scaled window ([`EHC_HORIZON_FRAMES`]) rather than by
//!   time-to-next-use. Reuses the fused kernel's oracle machinery (one
//!   reverse scan over the decoded line stream).
//! * [`BwCostPolicy`] / [`batch_bwcost`] — a bandwidth-aware selective-fill
//!   policy in the spirit of "To Update or Not To Update?" (arXiv
//!   1907.02167): a miss installs only when the block proved reuse during
//!   its last residency (a per-line reuse bit with DE-style
//!   transfer-on-replacement), with a small starvation counter that forces
//!   a fill after [`STARVE_LIMIT`] consecutive bypasses so the cache can
//!   never wedge shut. The payoff is measured in
//!   [`CacheStats::bandwidth_transfers`], not miss rate.
//!
//! Like every kernel in this crate, the batch entry points here are
//! bit-identical to the trait-driven reference path; the differential wall
//! enforces it.

use dynex_obs::span;

use crate::batch::CHUNK_LEN;
use crate::direct::INVALID_LINE;
use crate::kernel::{
    de_fsm_index, decode_chunk, max_line, next_use, DeFsmRow, HitLastArena, DE_FSM_TABLE,
    MAX_FLAT_LINES, NEVER,
};
use crate::{CacheConfig, CacheStats};

/// The sentinel line address marking an empty way in the resident slice
/// passed to [`ReplacementPolicy::victim`] (no real line decodes to it:
/// lines are addresses shifted right by at least the 4-byte word offset).
pub const NO_LINE: u32 = INVALID_LINE;

/// A bypass threshold for [`BwCostPolicy`]: after this many consecutive
/// bypassed misses the next miss installs unconditionally, bounding how
/// long a cold cache can refuse to learn.
pub const STARVE_LIMIT: u8 = 7;

/// What a policy decided to do with a missing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimChoice {
    /// Install the block into the given way, displacing its occupant.
    Install {
        /// The way index within the set (`0` for direct-mapped policies).
        way: usize,
    },
    /// Serve the reference without caching the block (McFarling's
    /// "exclusion"; the DRAM-cache literature's "don't update").
    Bypass,
}

/// Stateful per-set replacement-policy hooks driven by [`simulate_policy`].
///
/// The driver owns the tag array and all statistics; implementations own
/// only their policy state. Hooks fire in a fixed order per access:
/// `on_lookup` on every reference (hit or miss), then — on a miss only —
/// `victim`, and `on_fill` if the victim choice installed.
///
/// `pos` is the 0-based trace position of the access, so oracle policies
/// can index arrays precomputed from the whole trace.
pub trait ReplacementPolicy {
    /// Observes one reference after hit/miss determination; `hit_way` is
    /// the way the block was found in, `None` on a miss.
    fn on_lookup(&mut self, pos: usize, set: usize, line: u32, hit_way: Option<usize>);

    /// Decides what to do with a missing block. `resident` holds the set's
    /// current occupants, [`NO_LINE`] for empty ways.
    fn victim(&mut self, pos: usize, set: usize, line: u32, resident: &[u32]) -> VictimChoice;

    /// Observes an install: `evicted` is the displaced line, `None` when
    /// the way was empty.
    fn on_fill(&mut self, pos: usize, set: usize, line: u32, way: usize, evicted: Option<u32>);
}

/// Runs one policy over a byte-address trace: the reference kernel of the
/// policy zoo.
///
/// The driver accounts hits/misses plus the bandwidth counters: every
/// access is one probe, every install is one fill, and every install that
/// displaces a valid line is one writeback (address traces carry no dirty
/// bits, so the writeback-cache upper bound is applied uniformly — see
/// [`CacheStats::writebacks`]).
pub fn simulate_policy<P: ReplacementPolicy>(
    config: CacheConfig,
    addrs: &[u32],
    policy: &mut P,
) -> CacheStats {
    let geometry = config.geometry();
    let offset_bits = geometry.offset_bits();
    let index_mask = (1u32 << geometry.index_bits()) - 1;
    let ways = config.associativity() as usize;
    let mut tags = vec![NO_LINE; config.n_sets() as usize * ways];
    let mut misses = 0u64;
    let mut fills = 0u64;
    let mut writebacks = 0u64;
    let mut line_buf = [0u32; CHUNK_LEN];
    let mut pos = 0usize;
    for chunk in addrs.chunks(CHUNK_LEN) {
        {
            let _decode = span::span("kernel.decode");
            decode_chunk(chunk, offset_bits, &mut line_buf);
        }
        let _simulate = span::span("kernel.simulate");
        for &line in &line_buf[..chunk.len()] {
            let set = (line & index_mask) as usize;
            let frame = &mut tags[set * ways..(set + 1) * ways];
            let hit_way = frame.iter().position(|&t| t == line);
            policy.on_lookup(pos, set, line, hit_way);
            if hit_way.is_none() {
                misses += 1;
                match policy.victim(pos, set, line, frame) {
                    VictimChoice::Install { way } => {
                        let displaced = frame[way];
                        fills += 1;
                        if displaced != NO_LINE {
                            writebacks += 1;
                        }
                        frame[way] = line;
                        policy.on_fill(
                            pos,
                            set,
                            line,
                            way,
                            (displaced != NO_LINE).then_some(displaced),
                        );
                    }
                    VictimChoice::Bypass => {}
                }
            }
            pos += 1;
        }
    }
    CacheStats::from_traffic_counts(
        addrs.len() as u64,
        misses,
        fills,
        writebacks,
        addrs.len() as u64,
    )
}

/// The conventional direct-mapped policy: always install into way 0.
#[derive(Debug, Default, Clone, Copy)]
pub struct DmPolicy;

impl ReplacementPolicy for DmPolicy {
    fn on_lookup(&mut self, _pos: usize, _set: usize, _line: u32, _hit_way: Option<usize>) {}

    fn victim(&mut self, _pos: usize, _set: usize, _line: u32, _resident: &[u32]) -> VictimChoice {
        VictimChoice::Install { way: 0 }
    }

    fn on_fill(&mut self, _pos: usize, _set: usize, _line: u32, _way: usize, _evicted: Option<u32>) {
    }
}

/// Dynamic exclusion through the trait: the Figure 1 FSM with the perfect
/// hit-last store, bit-identical in its decisions to `DeCache` and
/// [`crate::batch_de`] (the driver's miss count equals theirs; its fill
/// count equals the DE load counter).
#[derive(Debug, Clone)]
pub struct DePolicy {
    sticky: Vec<bool>,
    h_copy: Vec<bool>,
    arena: HitLastArena,
    /// FSM row of the in-flight miss, stashed between `on_lookup` and the
    /// `victim` / `on_fill` hooks of the same access.
    row: DeFsmRow,
}

impl DePolicy {
    /// Policy state for one configuration; the trace sizes the hit-last
    /// arena (a hint — the arena grows on demand).
    pub fn new(config: CacheConfig, addrs: &[u32]) -> DePolicy {
        let n_sets = config.n_sets() as usize;
        DePolicy {
            sticky: vec![false; n_sets],
            h_copy: vec![false; n_sets],
            arena: HitLastArena::new(max_line(addrs, config.geometry().offset_bits())),
            row: DE_FSM_TABLE[0],
        }
    }
}

impl ReplacementPolicy for DePolicy {
    fn on_lookup(&mut self, _pos: usize, set: usize, line: u32, hit_way: Option<usize>) {
        let hit = hit_way.is_some();
        let row = DE_FSM_TABLE[de_fsm_index(hit, self.sticky[set], self.arena.get(line))];
        self.sticky[set] = row.sticky_after;
        if hit {
            // The resident block's in-line hit-last copy is re-armed.
            self.h_copy[set] = true;
        }
        self.row = row;
    }

    fn victim(&mut self, _pos: usize, _set: usize, _line: u32, _resident: &[u32]) -> VictimChoice {
        if self.row.installs {
            VictimChoice::Install { way: 0 }
        } else {
            VictimChoice::Bypass
        }
    }

    fn on_fill(&mut self, _pos: usize, set: usize, _line: u32, _way: usize, evicted: Option<u32>) {
        if let Some(victim) = evicted {
            // Figure 6 "transfer on replacement": the victim's in-line copy
            // goes back to the arena.
            self.arena.set(victim, self.h_copy[set]);
        }
        self.h_copy[set] = self.row.hit_last_value;
    }
}

/// Belady's optimal direct-mapped policy through the trait: keep whichever
/// of {resident, incoming} is referenced sooner, bypass otherwise.
/// Bit-identical in its decisions to `OptimalDirectMapped` and
/// [`crate::batch_opt`].
#[derive(Debug, Clone)]
pub struct OptPolicy {
    next: Vec<u32>,
    resident_next: Vec<u32>,
}

impl OptPolicy {
    /// Builds the next-use oracle for the trace (one reverse scan, shared
    /// machinery with the fused kernel).
    pub fn new(config: CacheConfig, addrs: &[u32]) -> OptPolicy {
        let offset_bits = config.geometry().offset_bits();
        let lines: Vec<u32> = addrs.iter().map(|&a| a >> offset_bits).collect();
        let top = lines.iter().copied().max().unwrap_or(0);
        let next = {
            let _next_use = span::span("kernel.next-use");
            next_use(&lines, top)
        };
        OptPolicy {
            next,
            // An invalid resident is "never used again", so any incoming
            // block wins the greedy comparison.
            resident_next: vec![NEVER; config.n_sets() as usize],
        }
    }
}

impl ReplacementPolicy for OptPolicy {
    fn on_lookup(&mut self, pos: usize, set: usize, _line: u32, hit_way: Option<usize>) {
        if hit_way.is_some() {
            self.resident_next[set] = self.next[pos];
        }
    }

    fn victim(&mut self, pos: usize, set: usize, _line: u32, _resident: &[u32]) -> VictimChoice {
        if self.next[pos] < self.resident_next[set] {
            VictimChoice::Install { way: 0 }
        } else {
            VictimChoice::Bypass
        }
    }

    fn on_fill(&mut self, pos: usize, set: usize, _line: u32, _way: usize, _evicted: Option<u32>) {
        self.resident_next[set] = self.next[pos];
    }
}

/// `uses[i]` = number of references to `lines[i]` in the window
/// `(i, i + horizon]` — the expected-hit-count oracle.
///
/// The finite horizon is what makes the count a usable ranking: a block's
/// *lifetime* reference total says nothing about whether those references
/// arrive while it could plausibly stay resident, and ranking by lifetime
/// totals lets a block with many far-future uses starve its set through
/// entire reuse bursts of its competitors. The EHC paper scores hits *per
/// residency*; a capacity-scaled window is the oracle analogue. Pass
/// `usize::MAX` for the degenerate whole-trace count.
///
/// One reverse sliding-window scan, with the same flat-array / hash-map
/// footprint split as the next-use oracle.
pub(crate) fn windowed_uses(lines: &[u32], horizon: usize) -> Vec<u32> {
    let n = lines.len();
    let mut uses = vec![0u32; n];
    let top = lines.iter().copied().max().unwrap_or(0);
    // Index that leaves the window `(i, i + horizon]` when moving from
    // position i+1 down to i; None when the window still covers trace end.
    let leaving = |i: usize| {
        i.checked_add(horizon)
            .and_then(|h| h.checked_add(1))
            .filter(|&out| out < n)
    };
    if (top as usize) < MAX_FLAT_LINES {
        let mut cnt = vec![0u32; top as usize + 1];
        for i in (0..n).rev() {
            if i + 1 < n {
                cnt[lines[i + 1] as usize] = cnt[lines[i + 1] as usize].saturating_add(1);
            }
            if let Some(out) = leaving(i) {
                cnt[lines[out] as usize] -= 1;
            }
            uses[i] = cnt[lines[i] as usize];
        }
    } else {
        let mut cnt: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for i in (0..n).rev() {
            if i + 1 < n {
                let entry = cnt.entry(lines[i + 1]).or_insert(0);
                *entry = entry.saturating_add(1);
            }
            if let Some(out) = leaving(i) {
                // The leaving line entered the window at reverse step out-1,
                // so the entry always exists.
                if let Some(entry) = cnt.get_mut(&lines[out]) {
                    *entry -= 1;
                }
            }
            uses[i] = cnt.get(&lines[i]).copied().unwrap_or(0);
        }
    }
    uses
}

/// The EHC oracle's counting window, in references per cache frame: a
/// block's expected hit count is the number of its uses within the next
/// `EHC_HORIZON_FRAMES × n_sets × ways` references. Small enough that the
/// count reflects hits plausibly deliverable within one residency, large
/// enough that loop-scale reuse is visible at every sweep size.
pub const EHC_HORIZON_FRAMES: usize = 8;

/// Expected-Hit-Count replacement (arXiv 1808.05024), adapted to the
/// paper's direct-mapped-with-bypass setting: on a miss, install the
/// incoming block only when it will supply strictly more future hits than
/// the resident block. Where OPT ranks blocks by *when* they are next
/// used, EHC ranks them by *how many* hits they still have to give — the
/// paper's observation is that hit count, not recency of next use, is what
/// a replacement decision actually buys.
///
/// This implementation uses exact hit counts from the oracle scan over a
/// capacity-scaled window ([`EHC_HORIZON_FRAMES`] references per cache
/// frame — the idealized form of the paper's per-residency predictor),
/// making it a proper sibling of the repository's perfect-history DE and
/// OPT simulators. The horizon matters: ranking by *lifetime* reference
/// totals lets a block with many far-future uses hold its set hostage
/// through entire reuse bursts of its competitors, which is precisely the
/// failure mode the paper's residency-scoped counting avoids. An empty set
/// has a resident hit count of zero, so a block with no use inside the
/// window bypasses even an empty frame — deterministic and harmless either
/// way, since neither choice can change a later outcome.
#[derive(Debug, Clone)]
pub struct EhcPolicy {
    hits_left: Vec<u32>,
    resident_hits: Vec<u32>,
}

impl EhcPolicy {
    /// Builds the windowed-use oracle for the trace.
    pub fn new(config: CacheConfig, addrs: &[u32]) -> EhcPolicy {
        let offset_bits = config.geometry().offset_bits();
        let lines: Vec<u32> = addrs.iter().map(|&a| a >> offset_bits).collect();
        let hits_left = {
            let _next_use = span::span("kernel.next-use");
            windowed_uses(&lines, ehc_horizon(config))
        };
        EhcPolicy {
            hits_left,
            resident_hits: vec![0; config.n_sets() as usize],
        }
    }
}

/// The EHC counting window for one configuration:
/// [`EHC_HORIZON_FRAMES`] references per cache frame.
fn ehc_horizon(config: CacheConfig) -> usize {
    config.n_sets() as usize * config.associativity() as usize * EHC_HORIZON_FRAMES
}

impl ReplacementPolicy for EhcPolicy {
    fn on_lookup(&mut self, pos: usize, set: usize, _line: u32, hit_way: Option<usize>) {
        if hit_way.is_some() {
            self.resident_hits[set] = self.hits_left[pos];
        }
    }

    fn victim(&mut self, pos: usize, set: usize, _line: u32, _resident: &[u32]) -> VictimChoice {
        if self.hits_left[pos] > self.resident_hits[set] {
            VictimChoice::Install { way: 0 }
        } else {
            VictimChoice::Bypass
        }
    }

    fn on_fill(&mut self, pos: usize, set: usize, _line: u32, _way: usize, _evicted: Option<u32>) {
        self.resident_hits[set] = self.hits_left[pos];
    }
}

/// Bandwidth-aware selective fill (arXiv 1907.02167's "to update or not to
/// update" question, answered with the repository's perfect-history
/// machinery): a miss installs only when the incoming block's reuse bit is
/// set — it hit at least once during its previous residency — or the way
/// is empty, or [`STARVE_LIMIT`] consecutive misses have bypassed.
///
/// The reuse bit lives in a per-line arena with DE-style
/// transfer-on-replacement: while resident, the live copy rides in the
/// set (`r_copy`); on eviction it is written back to the arena for the
/// next residency decision. The starvation counter is deliberately
/// *global* (the policy trades a little per-set precision for a 3-bit
/// hardware budget), which is also why this policy declares itself
/// non-set-shardable.
#[derive(Debug, Clone)]
pub struct BwCostPolicy {
    reuse: HitLastArena,
    r_copy: Vec<bool>,
    starve: u8,
}

impl BwCostPolicy {
    /// Policy state for one configuration; the trace sizes the reuse-bit
    /// arena (a hint — the arena grows on demand).
    pub fn new(config: CacheConfig, addrs: &[u32]) -> BwCostPolicy {
        BwCostPolicy {
            reuse: HitLastArena::new(max_line(addrs, config.geometry().offset_bits())),
            r_copy: vec![false; config.n_sets() as usize],
            starve: 0,
        }
    }
}

impl ReplacementPolicy for BwCostPolicy {
    fn on_lookup(&mut self, _pos: usize, set: usize, _line: u32, hit_way: Option<usize>) {
        if hit_way.is_some() {
            self.r_copy[set] = true;
        }
    }

    fn victim(&mut self, _pos: usize, _set: usize, line: u32, resident: &[u32]) -> VictimChoice {
        if resident[0] == NO_LINE || self.reuse.get(line) || self.starve >= STARVE_LIMIT {
            VictimChoice::Install { way: 0 }
        } else {
            self.starve = self.starve.saturating_add(1).min(STARVE_LIMIT);
            VictimChoice::Bypass
        }
    }

    fn on_fill(&mut self, _pos: usize, set: usize, _line: u32, _way: usize, evicted: Option<u32>) {
        if let Some(victim) = evicted {
            self.reuse.set(victim, self.r_copy[set]);
        }
        self.r_copy[set] = false;
        self.starve = 0;
    }
}

/// Batch kernel for Expected-Hit-Count replacement: the specialized
/// direct-mapped loop (flat per-set arrays, chunked decode), bit-identical
/// to [`simulate_policy`] with [`EhcPolicy`] — including the bandwidth
/// counters.
///
/// # Panics
///
/// Panics if `config.associativity() != 1`, like the other batch kernels.
pub fn batch_ehc(config: CacheConfig, addrs: &[u32]) -> CacheStats {
    assert_eq!(
        config.associativity(),
        1,
        "the EHC batch kernel is specialized to direct-mapped caches"
    );
    let geometry = config.geometry();
    let offset_bits = geometry.offset_bits();
    let index_mask = (1u32 << geometry.index_bits()) - 1;
    let lines = decode_all(addrs, offset_bits);
    let hits_left = {
        let _next_use = span::span("kernel.next-use");
        windowed_uses(&lines, ehc_horizon(config))
    };

    let n_sets = config.n_sets() as usize;
    let mut resident = vec![INVALID_LINE; n_sets];
    let mut resident_hits = vec![0u32; n_sets];
    let mut misses = 0u64;
    let mut fills = 0u64;
    let mut writebacks = 0u64;
    for (lines_chunk, hits_chunk) in lines.chunks(CHUNK_LEN).zip(hits_left.chunks(CHUNK_LEN)) {
        let _simulate = span::span("kernel.simulate");
        for (&line, &h) in lines_chunk.iter().zip(hits_chunk) {
            let set = (line & index_mask) as usize;
            if resident[set] == line {
                resident_hits[set] = h;
            } else {
                misses += 1;
                if h > resident_hits[set] {
                    fills += 1;
                    if resident[set] != INVALID_LINE {
                        writebacks += 1;
                    }
                    resident[set] = line;
                    resident_hits[set] = h;
                }
            }
        }
    }
    CacheStats::from_traffic_counts(
        addrs.len() as u64,
        misses,
        fills,
        writebacks,
        addrs.len() as u64,
    )
}

/// Batch kernel for the bandwidth-aware selective-fill policy,
/// bit-identical to [`simulate_policy`] with [`BwCostPolicy`] — including
/// the bandwidth counters.
///
/// # Panics
///
/// Panics if `config.associativity() != 1`, like the other batch kernels.
pub fn batch_bwcost(config: CacheConfig, addrs: &[u32]) -> CacheStats {
    assert_eq!(
        config.associativity(),
        1,
        "the bwcost batch kernel is specialized to direct-mapped caches"
    );
    let geometry = config.geometry();
    let offset_bits = geometry.offset_bits();
    let index_mask = (1u32 << geometry.index_bits()) - 1;
    let n_sets = config.n_sets() as usize;
    let mut resident = vec![INVALID_LINE; n_sets];
    let mut r_copy = vec![false; n_sets];
    let mut reuse = HitLastArena::new(max_line(addrs, offset_bits));
    let mut starve = 0u8;
    let mut misses = 0u64;
    let mut fills = 0u64;
    let mut writebacks = 0u64;
    let mut line_buf = [0u32; CHUNK_LEN];
    for chunk in addrs.chunks(CHUNK_LEN) {
        {
            let _decode = span::span("kernel.decode");
            decode_chunk(chunk, offset_bits, &mut line_buf);
        }
        let _simulate = span::span("kernel.simulate");
        for &line in &line_buf[..chunk.len()] {
            let set = (line & index_mask) as usize;
            let occupant = resident[set];
            if occupant == line {
                r_copy[set] = true;
            } else {
                misses += 1;
                if occupant == INVALID_LINE || reuse.get(line) || starve >= STARVE_LIMIT {
                    fills += 1;
                    if occupant != INVALID_LINE {
                        writebacks += 1;
                        reuse.set(occupant, r_copy[set]);
                    }
                    resident[set] = line;
                    r_copy[set] = false;
                    starve = 0;
                } else {
                    starve = starve.saturating_add(1).min(STARVE_LIMIT);
                }
            }
        }
    }
    CacheStats::from_traffic_counts(
        addrs.len() as u64,
        misses,
        fills,
        writebacks,
        addrs.len() as u64,
    )
}

/// Decodes the whole trace into line addresses, chunked like the batch
/// kernels so the decode spans stay comparable.
fn decode_all(addrs: &[u32], offset_bits: u32) -> Vec<u32> {
    let mut lines: Vec<u32> = Vec::with_capacity(addrs.len());
    let mut line_buf = [0u32; CHUNK_LEN];
    for chunk in addrs.chunks(CHUNK_LEN) {
        let _decode = span::span("kernel.decode");
        decode_chunk(chunk, offset_bits, &mut line_buf);
        lines.extend_from_slice(&line_buf[..chunk.len()]);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{batch_de, batch_dm, batch_opt, SplitMix64};

    fn config(size: u32, line: u32) -> CacheConfig {
        CacheConfig::direct_mapped(size, line).unwrap()
    }

    /// A deterministic loopy trace with enough conflicts to make every
    /// policy's decisions matter.
    fn trace(n: usize) -> Vec<u32> {
        let mut rng = SplitMix64::new(0x9010);
        let mut addrs = Vec::with_capacity(n);
        while addrs.len() < n {
            // A short loop body, then a jump into one of a few hot regions.
            let base = [0u32, 4096, 16384, 4096, 65536][(rng.next_u64() % 5) as usize];
            let body = 4 + (rng.next_u64() % 29) as u32;
            for i in 0..body {
                addrs.push(base + (i * 4) % 2048);
                if addrs.len() == n {
                    break;
                }
            }
        }
        addrs
    }

    fn thrash() -> Vec<u32> {
        (0..40).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect()
    }

    #[test]
    fn dm_policy_matches_batch_kernel() {
        let config = config(1024, 4);
        let addrs = trace(20_000);
        let via_trait = simulate_policy(config, &addrs, &mut DmPolicy);
        let via_kernel = batch_dm(config, &addrs);
        assert_eq!(via_trait.accesses(), via_kernel.accesses());
        assert_eq!(via_trait.misses(), via_kernel.misses());
        // The driver accounts bandwidth; DM fills on every miss.
        assert_eq!(via_trait.fills(), via_trait.misses());
        assert_eq!(via_trait.probes(), via_trait.accesses());
    }

    #[test]
    fn de_policy_matches_batch_kernel_and_load_counter() {
        let config = config(1024, 4);
        let addrs = trace(20_000);
        let mut policy = DePolicy::new(config, &addrs);
        let via_trait = simulate_policy(config, &addrs, &mut policy);
        let via_kernel = batch_de(config, &addrs);
        assert_eq!(via_trait.accesses(), via_kernel.stats.accesses());
        assert_eq!(via_trait.misses(), via_kernel.stats.misses());
        // The driver's fill counter is exactly DE's load counter; the
        // bypasses are the remaining misses.
        assert_eq!(via_trait.fills(), via_kernel.loads);
        assert_eq!(via_trait.misses() - via_trait.fills(), via_kernel.bypasses);
    }

    #[test]
    fn opt_policy_matches_batch_kernel() {
        let config = config(1024, 4);
        let addrs = trace(20_000);
        let mut policy = OptPolicy::new(config, &addrs);
        let via_trait = simulate_policy(config, &addrs, &mut policy);
        let via_kernel = batch_opt(config, &addrs);
        assert_eq!(via_trait.accesses(), via_kernel.accesses());
        assert_eq!(via_trait.misses(), via_kernel.misses());
    }

    #[test]
    fn ehc_trait_and_batch_agree_bit_for_bit() {
        for (size, line) in [(256, 4), (1024, 4), (4096, 16)] {
            let config = config(size, line);
            let addrs = trace(30_000);
            let mut policy = EhcPolicy::new(config, &addrs);
            let via_trait = simulate_policy(config, &addrs, &mut policy);
            let via_kernel = batch_ehc(config, &addrs);
            assert_eq!(via_trait, via_kernel, "S={size} b={line}");
        }
    }

    #[test]
    fn bwcost_trait_and_batch_agree_bit_for_bit() {
        for (size, line) in [(256, 4), (1024, 4), (4096, 16)] {
            let config = config(size, line);
            let addrs = trace(30_000);
            let mut policy = BwCostPolicy::new(config, &addrs);
            let via_trait = simulate_policy(config, &addrs, &mut policy);
            let via_kernel = batch_bwcost(config, &addrs);
            assert_eq!(via_trait, via_kernel, "S={size} b={line}");
        }
    }

    #[test]
    fn opt_is_a_lower_bound_for_ehc() {
        let config = config(1024, 4);
        let addrs = trace(30_000);
        let ehc = batch_ehc(config, &addrs);
        let opt = batch_opt(config, &addrs);
        let dm = batch_dm(config, &addrs);
        assert!(opt.misses() <= ehc.misses());
        // On this loopy trace the hit-count oracle beats blind replacement.
        assert!(ehc.misses() < dm.misses());
    }

    #[test]
    fn ehc_on_thrash_matches_opt() {
        // (a b)^20 on one set: both oracles keep `a` resident after the
        // cold start and bypass `b`.
        let config = config(64, 4);
        let addrs = thrash();
        assert_eq!(batch_ehc(config, &addrs).misses(), 21);
        assert_eq!(batch_opt(config, &addrs).misses(), 21);
    }

    #[test]
    fn bwcost_saves_bandwidth_on_thrash() {
        let config = config(64, 4);
        let addrs = thrash();
        let bw = batch_bwcost(config, &addrs);
        let dm = simulate_policy(config, &addrs, &mut DmPolicy);
        // DM fills on all 40 thrashing misses; the selective-fill policy
        // refuses the never-reused alternation after the cold fill.
        assert!(bw.bandwidth_transfers() < dm.bandwidth_transfers());
        assert!(bw.fills() < dm.fills());
    }

    #[test]
    fn bwcost_starvation_counter_forces_fills() {
        // A long no-reuse scan through one set: without the starvation
        // valve only the cold miss would ever fill; with it, every
        // (STARVE_LIMIT+1)-th miss installs.
        let config = config(64, 4);
        let addrs: Vec<u32> = (0..100u32).map(|i| i * 64).collect();
        let bw = batch_bwcost(config, &addrs);
        assert_eq!(bw.misses(), 100);
        assert!(bw.fills() > 1, "starvation valve never opened");
        assert!(bw.fills() < bw.misses());
        // 1 cold fill + one forced fill per STARVE_LIMIT+1 bypassed misses.
        assert_eq!(bw.fills(), 1 + 99 / (STARVE_LIMIT as u64 + 1));
    }

    #[test]
    fn windowed_uses_counts_references_inside_the_horizon() {
        let lines = [7u32, 3, 7, 7, 3];
        // An unbounded horizon counts every future reference.
        assert_eq!(windowed_uses(&lines, usize::MAX), vec![2, 1, 1, 0, 0]);
        // A 2-reference window only sees uses at i+1 and i+2.
        assert_eq!(windowed_uses(&lines, 2), vec![1, 0, 1, 0, 0]);
        // A 1-reference window only sees immediate reuse.
        assert_eq!(windowed_uses(&lines, 1), vec![0, 0, 1, 0, 0]);
        assert_eq!(windowed_uses(&[], 4), Vec::<u32>::new());
    }

    #[test]
    fn windowed_uses_flat_and_hashed_paths_agree() {
        // Shift one line address above MAX_FLAT_LINES to force the hashed
        // footprint path, then compare against the flat path on the same
        // relative pattern.
        let flat: Vec<u32> = [7u32, 3, 7, 9, 3, 7, 7, 9, 3, 7].to_vec();
        let hashed: Vec<u32> = flat
            .iter()
            .map(|&l| if l == 9 { MAX_FLAT_LINES as u32 + 1 } else { l })
            .collect();
        for horizon in [1usize, 2, 3, 8, usize::MAX] {
            assert_eq!(
                windowed_uses(&flat, horizon),
                windowed_uses(&hashed, horizon),
                "horizon {horizon}"
            );
        }
    }

    #[test]
    fn driver_supports_set_associative_frames() {
        // A 2-way LRU-free smoke: a trivial policy that installs into the
        // first empty way, else way 0 — exercises the multi-way frame
        // plumbing the trait reserves for future zoo members.
        struct FirstEmpty;
        impl ReplacementPolicy for FirstEmpty {
            fn on_lookup(&mut self, _: usize, _: usize, _: u32, _: Option<usize>) {}
            fn victim(&mut self, _: usize, _: usize, _: u32, resident: &[u32]) -> VictimChoice {
                let way = resident.iter().position(|&t| t == NO_LINE).unwrap_or(0);
                VictimChoice::Install { way }
            }
            fn on_fill(&mut self, _: usize, _: usize, _: u32, _: usize, _: Option<u32>) {}
        }
        let config = CacheConfig::new(128, 4, 2).unwrap();
        // Two lines that conflict in a direct-mapped cache coexist 2-way.
        let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
        let stats = simulate_policy(config, &addrs, &mut FirstEmpty);
        assert_eq!(stats.misses(), 2);
        assert_eq!(stats.fills(), 2);
        assert_eq!(stats.writebacks(), 0);
    }
}
