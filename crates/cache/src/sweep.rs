//! One-pass multi-configuration sweep kernel: the fast path behind
//! `--kernel sweep`.
//!
//! Every figure in the paper replays *one* trace across *many* (size, line,
//! policy) points. [`crate::kernel::batch_triple`] fused the three policies
//! of a single geometry into one traversal; [`batch_sweep`] goes the rest of
//! the way and carries N arbitrary geometries through a single pass:
//!
//! * **one decode per geometry** — the byte-address stream is decoded into a
//!   line-address stream once per *distinct* line size (`line = addr >>
//!   offset_bits` depends only on `offset_bits`), not once per point, via the
//!   same chunked decode the batch kernels use.
//! * **one next-use oracle per geometry** — the optimal policy's
//!   reverse-scan chain likewise depends only on the line size, so a 16-size
//!   sweep at one line size builds it once and shares it 16 ways.
//! * **struct-of-arrays point state** — each point owns flat tag / sticky /
//!   hit-last-copy vectors ([`DmSweep`]-style per-set arrays, matching the
//!   batch kernels' layout), kept in a single `Vec` indexed by point so the
//!   chunk loop walks them contiguously.
//! * **one hit-last slab** — the dynamic-exclusion points' hit-last bitmaps
//!   are carved, as disjoint per-point views, out of a single `Vec<u64>`
//!   allocation sized once from the trace prescan (see [`slab
//!   views`](#hit-last-slab)).
//! * **table-driven FSM across configs** — within a chunk every DE point
//!   steps through the same precomputed eight-row
//!   [`DE_FSM_TABLE`](crate::DE_FSM_TABLE); the inner loops carry no
//!   per-reference branches beyond the table row itself.
//! * **chunk-boundary merges** — per-point hit/miss tallies accumulate in
//!   registers inside a chunk and merge into the per-point totals only at
//!   chunk boundaries, exactly where the batch kernels open their
//!   observability spans.
//!
//! The kernel is **bit-identical** per point to the corresponding
//! single-point kernel ([`crate::batch_dm`] / [`crate::batch_de`] /
//! [`crate::batch_opt`]) and therefore to the reference simulators: same
//! statistics, same load/bypass split, and — through
//! [`batch_sweep_probed`] — the same per-point probe event stream in the
//! same order. `tests/kernel_differential.rs` and the property suite
//! `crates/cache/tests/prop_sweep_lockstep.rs` enforce this.
//!
//! # Hit-last slab
//!
//! Each DE point needs a hit-last bit per line address its geometry can
//! produce from the trace. Rather than one allocation per point, the sweep
//! sizes a single `u64` slab at setup (sum over DE points of each point's
//! prescan footprint, the largest geometry dominating) and hands every point
//! a disjoint word range. Views never overlap — two points with identical
//! geometry still get separate ranges, because their FSMs diverge the moment
//! their set counts differ and must never share exclusion state.

use dynex_obs::span;
use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::batch::{ChunkedDecoder, KindFilter, CHUNK_LEN};
use crate::direct::INVALID_LINE;
use crate::kernel::{de_fsm_index, decode_chunk, next_use, BatchDeResult, DE_FSM_TABLE, NEVER};
use crate::{CacheConfig, CacheStats};
use dynex_trace::PackedAccess;

/// The replacement/bypass policy of one sweep point.
///
/// These are the three policies the paper's figures compare and the batch
/// kernels specialize; the last-line variants keep global state across sets
/// and stay on the reference path (as with `--kernel batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepPolicy {
    /// Conventional direct-mapped (the paper's baseline).
    DirectMapped,
    /// Dynamic exclusion with a perfect hit-last store.
    DynamicExclusion,
    /// The future-knowing optimal direct-mapped cache with bypass.
    Optimal,
}

impl SweepPolicy {
    /// Stable lowercase name, matching the engine's policy names.
    pub fn name(self) -> &'static str {
        match self {
            SweepPolicy::DirectMapped => "dm",
            SweepPolicy::DynamicExclusion => "de",
            SweepPolicy::Optimal => "opt",
        }
    }
}

/// One point of a multi-configuration sweep: a cache geometry under a
/// policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepPoint {
    /// The cache geometry to simulate.
    pub config: CacheConfig,
    /// The replacement/bypass policy.
    pub policy: SweepPolicy,
}

impl SweepPoint {
    /// Creates a sweep point.
    pub fn new(config: CacheConfig, policy: SweepPolicy) -> SweepPoint {
        SweepPoint { config, policy }
    }
}

/// Per-point output of [`batch_sweep`], carrying exactly what the
/// corresponding single-point kernel returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPointResult {
    /// Conventional direct-mapped statistics ([`crate::batch_dm`]).
    Dm(CacheStats),
    /// Dynamic-exclusion statistics with the load/bypass split
    /// ([`crate::batch_de`]).
    De(BatchDeResult),
    /// Optimal direct-mapped statistics ([`crate::batch_opt`]).
    Opt(CacheStats),
}

impl SweepPointResult {
    /// The hit/miss statistics, whatever the policy.
    pub fn stats(&self) -> CacheStats {
        match *self {
            SweepPointResult::Dm(stats) | SweepPointResult::Opt(stats) => stats,
            SweepPointResult::De(de) => de.stats,
        }
    }

    /// The dynamic-exclusion counters, if this point ran the DE policy.
    pub fn de(&self) -> Option<BatchDeResult> {
        match *self {
            SweepPointResult::De(de) => Some(de),
            _ => None,
        }
    }
}

/// Per-set state of one direct-mapped sweep point.
struct DmSweep {
    lines: Vec<u32>,
    index_mask: u32,
    misses: u64,
}

impl DmSweep {
    fn new(n_sets: usize, index_mask: u32) -> DmSweep {
        DmSweep {
            lines: vec![INVALID_LINE; n_sets],
            index_mask,
            misses: 0,
        }
    }

    /// One chunk of conventional direct-mapped accesses, emitting exactly
    /// the events of [`crate::batch_dm_probed`]. The miss tally lives in a
    /// register inside the loop and merges at the chunk boundary.
    fn run_chunk<P: Probe>(&mut self, addrs: &[u32], lines: &[u32], probe: &mut P) {
        let mask = self.index_mask;
        let mut misses = 0u64;
        for (&addr, &line) in addrs.iter().zip(lines) {
            let set = (line & mask) as usize;
            let resident = self.lines[set];
            if resident == line {
                probe.emit(Event::Access {
                    addr,
                    set: set as u32,
                    outcome: Outcome::Hit,
                    cause: Cause::Resident,
                });
            } else {
                let cause = if resident == INVALID_LINE {
                    Cause::Cold
                } else {
                    probe.emit(Event::Eviction {
                        set: set as u32,
                        victim: resident,
                        replacement: line,
                    });
                    Cause::Replace
                };
                self.lines[set] = line;
                misses += 1;
                probe.emit(Event::Access {
                    addr,
                    set: set as u32,
                    outcome: Outcome::Miss,
                    cause,
                });
            }
        }
        self.misses += misses;
    }
}

/// Per-set state of one dynamic-exclusion sweep point. The hit-last bitmap
/// is a view into the shared slab starting at `slab_off` words.
struct DeSweep {
    lines: Vec<u32>,
    sticky: Vec<bool>,
    h_copy: Vec<bool>,
    index_mask: u32,
    slab_off: usize,
    misses: u64,
    loads: u64,
}

impl DeSweep {
    fn new(n_sets: usize, index_mask: u32, slab_off: usize) -> DeSweep {
        DeSweep {
            lines: vec![INVALID_LINE; n_sets],
            sticky: vec![false; n_sets],
            h_copy: vec![false; n_sets],
            index_mask,
            slab_off,
            misses: 0,
            loads: 0,
        }
    }

    /// One chunk of dynamic-exclusion accesses through the precomputed
    /// table, emitting exactly the events (and in the order) of
    /// [`crate::batch_de_probed`]. Tallies merge at the chunk boundary.
    fn run_chunk<P: Probe>(
        &mut self,
        addrs: &[u32],
        lines: &[u32],
        slab: &mut [u64],
        probe: &mut P,
    ) {
        let mask = self.index_mask;
        let base = self.slab_off;
        let mut misses = 0u64;
        let mut loads = 0u64;
        for (&addr, &line) in addrs.iter().zip(lines) {
            let set = (line & mask) as usize;
            let resident = self.lines[set];
            let hit = resident == line;
            let sticky = self.sticky[set];
            let h_pred = (slab[base + (line as usize >> 6)] >> (line & 63)) & 1 == 1;
            let row = DE_FSM_TABLE[de_fsm_index(hit, sticky, h_pred)];

            if row.is_miss {
                probe.emit(Event::ExclusionDecision {
                    set: set as u32,
                    line,
                    loaded: row.installs,
                });
            }
            if row.sticky_after != sticky {
                probe.emit(Event::StickyFlip {
                    set: set as u32,
                    sticky: row.sticky_after,
                });
            }
            if row.writes_hit_last {
                probe.emit(Event::HitLastUpdate {
                    line,
                    hit_last: row.hit_last_value,
                });
            }
            self.sticky[set] = row.sticky_after;
            misses += row.is_miss as u64;

            let cause = if hit {
                // The resident block's in-line hit-last copy is re-armed.
                self.h_copy[set] = true;
                Cause::Resident
            } else if row.installs {
                loads += 1;
                let cause = if resident == INVALID_LINE {
                    Cause::Cold
                } else {
                    // Figure 6 "transfer on replacement": the victim's
                    // in-line copy goes back to this point's slab view.
                    let word = &mut slab[base + (resident as usize >> 6)];
                    let bit = resident & 63;
                    *word = (*word & !(1u64 << bit)) | ((self.h_copy[set] as u64) << bit);
                    probe.emit(Event::Eviction {
                        set: set as u32,
                        victim: resident,
                        replacement: line,
                    });
                    Cause::Replace
                };
                self.lines[set] = line;
                self.h_copy[set] = row.hit_last_value;
                cause
            } else {
                Cause::Bypass
            };
            probe.emit(Event::Access {
                addr,
                set: set as u32,
                outcome: if row.is_miss {
                    Outcome::Miss
                } else {
                    Outcome::Hit
                },
                cause,
            });
        }
        self.misses += misses;
        self.loads += loads;
    }
}

/// Per-set state of one optimal sweep point.
struct OptSweep {
    resident: Vec<u32>,
    resident_next: Vec<u32>,
    index_mask: u32,
    misses: u64,
}

impl OptSweep {
    fn new(n_sets: usize, index_mask: u32) -> OptSweep {
        OptSweep {
            resident: vec![INVALID_LINE; n_sets],
            resident_next: vec![NEVER; n_sets],
            index_mask,
            misses: 0,
        }
    }

    /// One chunk of greedy keep-whichever-is-used-sooner accesses, identical
    /// to [`crate::batch_opt`]'s second pass. Tallies merge at the chunk
    /// boundary.
    fn run_chunk(&mut self, lines: &[u32], next: &[u32]) {
        let mask = self.index_mask;
        let mut misses = 0u64;
        for (&line, &next) in lines.iter().zip(next) {
            let set = (line & mask) as usize;
            if self.resident[set] == line {
                self.resident_next[set] = next;
            } else {
                misses += 1;
                if next < self.resident_next[set] {
                    self.resident[set] = line;
                    self.resident_next[set] = next;
                }
            }
        }
        self.misses += misses;
    }
}

enum PointState {
    Dm(DmSweep),
    De(DeSweep),
    Opt(OptSweep),
}

/// Carries N cache geometries through a single trace traversal.
///
/// Bit-identical per point to running the corresponding single-point batch
/// kernel (and therefore the reference simulator) over the same stream; what
/// the sweep buys is decoding each distinct line size once, building each
/// distinct next-use oracle once, and walking the trace once for the whole
/// plan instead of once per point.
///
/// Points may repeat geometries (each keeps fully independent state) and may
/// be a degenerate single-point vector, in which case the output equals the
/// single kernel's exactly.
///
/// # Panics
///
/// Panics if any point's `config.associativity() != 1`, like the single
/// kernels.
///
/// # Examples
///
/// ```
/// use dynex_cache::{batch_dm, batch_sweep, CacheConfig, SweepPoint, SweepPolicy};
///
/// let small = CacheConfig::direct_mapped(64, 4)?;
/// let large = CacheConfig::direct_mapped(256, 4)?;
/// let addrs: Vec<u32> = (0..100).map(|i| (i % 40) * 4).collect();
/// let points = [
///     SweepPoint::new(small, SweepPolicy::DirectMapped),
///     SweepPoint::new(large, SweepPolicy::DirectMapped),
/// ];
/// let results = batch_sweep(&points, &addrs);
/// assert_eq!(results[0].stats(), batch_dm(small, &addrs));
/// assert_eq!(results[1].stats(), batch_dm(large, &addrs));
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
pub fn batch_sweep(points: &[SweepPoint], addrs: &[u32]) -> Vec<SweepPointResult> {
    let mut probes = vec![NoopProbe; points.len()];
    batch_sweep_probed(points, addrs, &mut probes)
}

/// [`batch_sweep`] over a packed trace: one [`ChunkedDecoder`] pass feeds
/// every point in the plan.
pub fn batch_sweep_packed(
    points: &[SweepPoint],
    packed: &[PackedAccess],
    filter: KindFilter,
) -> Vec<SweepPointResult> {
    let mut addrs = Vec::with_capacity(if filter == KindFilter::All {
        packed.len()
    } else {
        0
    });
    let mut decoder = ChunkedDecoder::new(packed, filter);
    while let Some(chunk) = decoder.next_chunk() {
        addrs.extend_from_slice(chunk);
    }
    batch_sweep(points, &addrs)
}

/// [`batch_sweep`] with per-point event emission: `probes[i]` receives
/// exactly the events the single-point probed kernel would emit for
/// `points[i]`, in the same order (the optimal policy emits none, as in the
/// reference path).
///
/// # Panics
///
/// Panics if `probes.len() != points.len()` or any point's associativity is
/// not 1.
pub fn batch_sweep_probed<P: Probe>(
    points: &[SweepPoint],
    addrs: &[u32],
    probes: &mut [P],
) -> Vec<SweepPointResult> {
    assert_eq!(points.len(), probes.len(), "one probe per sweep point");
    for point in points {
        assert_eq!(
            point.config.associativity(),
            1,
            "the sweep kernel is a direct-mapped comparison"
        );
    }
    if points.is_empty() {
        return Vec::new();
    }

    // Distinct line geometries, in first-appearance order. The line address
    // stream depends only on offset_bits, so points sharing a line size
    // share one decode and (for optimal points) one next-use oracle.
    let mut offsets: Vec<u32> = Vec::new();
    let offset_of: Vec<usize> = points
        .iter()
        .map(|p| {
            let ob = p.config.geometry().offset_bits();
            offsets.iter().position(|&o| o == ob).unwrap_or_else(|| {
                offsets.push(ob);
                offsets.len() - 1
            })
        })
        .collect();

    // Shared decode: one chunked pass materializes every distinct line
    // stream and the footprint that sizes each DE slab view.
    let mut lines_by: Vec<Vec<u32>> = offsets
        .iter()
        .map(|_| Vec::with_capacity(addrs.len()))
        .collect();
    let mut max_by: Vec<u32> = vec![0; offsets.len()];
    let mut line_buf = [0u32; CHUNK_LEN];
    for chunk in addrs.chunks(CHUNK_LEN) {
        let _decode = span::span("kernel.decode");
        for (oi, &offset_bits) in offsets.iter().enumerate() {
            decode_chunk(chunk, offset_bits, &mut line_buf);
            for &line in &line_buf[..chunk.len()] {
                max_by[oi] = max_by[oi].max(line);
            }
            lines_by[oi].extend_from_slice(&line_buf[..chunk.len()]);
        }
    }

    // One next-use oracle per geometry that has an optimal point.
    let mut next_by: Vec<Option<Vec<u32>>> = vec![None; offsets.len()];
    for (point, &oi) in points.iter().zip(&offset_of) {
        if point.policy == SweepPolicy::Optimal && next_by[oi].is_none() {
            let _next_use = span::span("kernel.next-use");
            next_by[oi] = Some(next_use(&lines_by[oi], max_by[oi]));
        }
    }

    // Carve the shared hit-last slab: each DE point gets a disjoint word
    // range sized by its geometry's trace footprint.
    let mut slab_words = 0usize;
    let mut state: Vec<PointState> = points
        .iter()
        .zip(&offset_of)
        .map(|(point, &oi)| {
            let n_sets = point.config.n_sets() as usize;
            let index_mask = (1u32 << point.config.geometry().index_bits()) - 1;
            match point.policy {
                SweepPolicy::DirectMapped => PointState::Dm(DmSweep::new(n_sets, index_mask)),
                SweepPolicy::DynamicExclusion => {
                    let off = slab_words;
                    slab_words += (max_by[oi] as usize >> 6) + 1;
                    PointState::De(DeSweep::new(n_sets, index_mask, off))
                }
                SweepPolicy::Optimal => PointState::Opt(OptSweep::new(n_sets, index_mask)),
            }
        })
        .collect();
    let mut slab = vec![0u64; slab_words];

    // The one-pass walk: every point consumes the same chunk window before
    // the window advances, so each point's per-set state is touched in the
    // same order as its single-point run while the window stays in cache.
    let total = addrs.len();
    let mut pos = 0usize;
    while pos < total {
        let len = CHUNK_LEN.min(total - pos);
        let _simulate = span::span("kernel.simulate");
        let addr_chunk = &addrs[pos..pos + len];
        for (i, point_state) in state.iter_mut().enumerate() {
            let lines = &lines_by[offset_of[i]][pos..pos + len];
            match point_state {
                PointState::Dm(dm) => dm.run_chunk(addr_chunk, lines, &mut probes[i]),
                PointState::De(de) => de.run_chunk(addr_chunk, lines, &mut slab, &mut probes[i]),
                PointState::Opt(opt) => {
                    let next = next_by[offset_of[i]]
                        .as_ref()
                        .expect("next-use oracle built for every optimal geometry");
                    opt.run_chunk(lines, &next[pos..pos + len]);
                }
            }
        }
        pos += len;
    }

    let accesses = total as u64;
    state
        .into_iter()
        .map(|point_state| match point_state {
            PointState::Dm(dm) => {
                SweepPointResult::Dm(CacheStats::from_counts(accesses, dm.misses))
            }
            PointState::De(de) => SweepPointResult::De(BatchDeResult {
                stats: CacheStats::from_counts(accesses, de.misses),
                loads: de.loads,
                bypasses: de.misses - de.loads,
            }),
            PointState::Opt(opt) => {
                SweepPointResult::Opt(CacheStats::from_counts(accesses, opt.misses))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{batch_de, batch_dm, batch_opt, batch_triple, SplitMix64};
    use dynex_obs::EventLog;

    fn config(size: u32, line: u32) -> CacheConfig {
        CacheConfig::direct_mapped(size, line).unwrap()
    }

    fn random_addrs(seed: u64, len: usize, span: u64) -> Vec<u32> {
        let mut rng = SplitMix64::new(seed);
        (0..len).map(|_| (rng.below(span) as u32) * 4).collect()
    }

    fn all_policies(cfg: CacheConfig) -> Vec<SweepPoint> {
        vec![
            SweepPoint::new(cfg, SweepPolicy::DirectMapped),
            SweepPoint::new(cfg, SweepPolicy::DynamicExclusion),
            SweepPoint::new(cfg, SweepPolicy::Optimal),
        ]
    }

    fn assert_matches_single(points: &[SweepPoint], addrs: &[u32]) {
        let results = batch_sweep(points, addrs);
        assert_eq!(results.len(), points.len());
        for (point, result) in points.iter().zip(&results) {
            match point.policy {
                SweepPolicy::DirectMapped => {
                    assert_eq!(
                        *result,
                        SweepPointResult::Dm(batch_dm(point.config, addrs)),
                        "dm @ {}",
                        point.config
                    );
                }
                SweepPolicy::DynamicExclusion => {
                    assert_eq!(
                        *result,
                        SweepPointResult::De(batch_de(point.config, addrs)),
                        "de @ {}",
                        point.config
                    );
                }
                SweepPolicy::Optimal => {
                    assert_eq!(
                        *result,
                        SweepPointResult::Opt(batch_opt(point.config, addrs)),
                        "opt @ {}",
                        point.config
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_matches_single_kernels_across_geometries() {
        let addrs = random_addrs(3, 30_000, 50_000);
        let mut points = Vec::new();
        for size in [64u32, 1024, 8192, 32 * 1024] {
            for line in [4u32, 16] {
                points.extend(all_policies(config(size, line)));
            }
        }
        assert_matches_single(&points, &addrs);
    }

    #[test]
    fn duplicate_points_keep_independent_state() {
        let addrs = random_addrs(9, 10_000, 2_048);
        let cfg = config(256, 4);
        let points = vec![
            SweepPoint::new(cfg, SweepPolicy::DynamicExclusion),
            SweepPoint::new(cfg, SweepPolicy::DynamicExclusion),
            SweepPoint::new(cfg, SweepPolicy::DirectMapped),
            SweepPoint::new(cfg, SweepPolicy::DirectMapped),
        ];
        let results = batch_sweep(&points, &addrs);
        assert_eq!(results[0], results[1], "duplicates agree with each other");
        assert_eq!(results[2], results[3]);
        assert_matches_single(&points, &addrs);
    }

    #[test]
    fn degenerate_single_point_sweep_equals_single_kernel() {
        let addrs = random_addrs(5, 7_000, 512);
        for policy in [
            SweepPolicy::DirectMapped,
            SweepPolicy::DynamicExclusion,
            SweepPolicy::Optimal,
        ] {
            assert_matches_single(&[SweepPoint::new(config(1024, 16), policy)], &addrs);
        }
    }

    #[test]
    fn sweep_agrees_with_fused_triple() {
        let addrs = random_addrs(17, 20_000, 8_192);
        let cfg = config(4096, 4);
        let results = batch_sweep(&all_policies(cfg), &addrs);
        let fused = batch_triple(cfg, &addrs);
        assert_eq!(results[0].stats(), fused.dm);
        assert_eq!(results[1].de().unwrap(), fused.de);
        assert_eq!(results[2].stats(), fused.opt);
    }

    #[test]
    fn empty_cases_are_well_defined() {
        let addrs = random_addrs(1, 100, 64);
        assert!(batch_sweep(&[], &addrs).is_empty());
        let results = batch_sweep(&all_policies(config(64, 4)), &[]);
        for result in &results {
            assert_eq!(result.stats().accesses(), 0);
            assert_eq!(result.stats().misses(), 0);
        }
    }

    #[test]
    fn trace_shorter_than_one_chunk_matches() {
        let addrs = random_addrs(2, CHUNK_LEN / 3, 256);
        assert_matches_single(&all_policies(config(256, 4)), &addrs);
    }

    #[test]
    fn chunk_boundary_straddling_loop_matches() {
        // A tight two-line loop positioned to straddle the chunk boundary:
        // the DE state machine's sticky/hit-last hand-off crosses chunks.
        let mut addrs = vec![0u32; CHUNK_LEN - 3];
        for i in 0..64u32 {
            addrs.push(if i % 2 == 0 { 0 } else { 64 });
        }
        addrs.extend(random_addrs(4, CHUNK_LEN, 128));
        let mut points = all_policies(config(64, 4));
        points.extend(all_policies(config(1024, 16)));
        assert_matches_single(&points, &addrs);
    }

    #[test]
    fn probed_sweep_replays_single_kernel_event_streams() {
        let addrs = random_addrs(23, 6_000, 1_024);
        let points = [
            SweepPoint::new(config(256, 4), SweepPolicy::DirectMapped),
            SweepPoint::new(config(1024, 16), SweepPolicy::DynamicExclusion),
            SweepPoint::new(config(256, 4), SweepPolicy::Optimal),
        ];
        let mut probes = [EventLog::new(), EventLog::new(), EventLog::new()];
        let results = batch_sweep_probed(&points, &addrs, &mut probes);

        let mut dm_log = EventLog::new();
        let dm = crate::batch_dm_probed(points[0].config, &addrs, &mut dm_log);
        assert_eq!(results[0], SweepPointResult::Dm(dm));
        assert_eq!(probes[0].events(), dm_log.events());

        let mut de_log = EventLog::new();
        let de = crate::batch_de_probed(points[1].config, &addrs, &mut de_log);
        assert_eq!(results[1], SweepPointResult::De(de));
        assert_eq!(probes[1].events(), de_log.events());

        assert!(probes[2].events().is_empty(), "optimal emits no events");
    }

    #[test]
    fn packed_sweep_decodes_once_for_every_point() {
        use dynex_trace::Access;
        let accesses: Vec<PackedAccess> = (0..2_000)
            .map(|i| {
                let addr = (i as u32 % 700) * 4;
                PackedAccess::pack(if i % 3 == 0 {
                    Access::fetch(addr)
                } else {
                    Access::read(addr)
                })
            })
            .collect();
        let points = all_policies(config(256, 4));
        for filter in [KindFilter::All, KindFilter::Instructions, KindFilter::Data] {
            let addrs = crate::decode_addrs(&accesses, filter);
            assert_eq!(
                batch_sweep_packed(&points, &accesses, filter),
                batch_sweep(&points, &addrs),
                "{filter:?}"
            );
        }
    }

    #[test]
    fn all_filtered_trace_yields_zero_stats_for_every_point() {
        use dynex_trace::Access;
        let accesses: Vec<PackedAccess> = (0..500)
            .map(|i| PackedAccess::pack(Access::read((i as u32) * 4)))
            .collect();
        let results = batch_sweep_packed(
            &all_policies(config(64, 4)),
            &accesses,
            KindFilter::Instructions,
        );
        for result in &results {
            assert_eq!(result.stats().accesses(), 0);
            assert_eq!(result.stats().misses(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "direct-mapped")]
    fn sweep_rejects_associative_config() {
        let cfg = CacheConfig::new(64, 4, 2).unwrap();
        batch_sweep(&[SweepPoint::new(cfg, SweepPolicy::DirectMapped)], &[0]);
    }
}
