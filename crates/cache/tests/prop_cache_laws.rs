//! Property tests: structural laws every cache organization must obey.

// Gated: requires the `proptest` feature (and the proptest dev-dependency,
// unavailable in hermetic builds) to compile.
#![cfg(feature = "proptest")]

use dynex_cache::{
    classify_direct_mapped, classify_direct_mapped_optimal, run_addrs, CacheConfig, CacheSim,
    DirectMapped, FullyAssociative, OptimalFullyAssociative, Replacement, SetAssociative,
    StreamBuffer, TwoLevel, VictimCache,
};
use proptest::prelude::*;

/// Word-aligned addresses in a smallish region so conflicts actually happen.
fn arb_addrs() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec((0u32..2048).prop_map(|w| w * 4), 1..500)
}

fn arb_pow2(lo: u32, hi: u32) -> impl Strategy<Value = u32> {
    (lo.trailing_zeros()..=hi.trailing_zeros()).prop_map(|b| 1 << b)
}

proptest! {
    /// A 1-way set-associative cache is exactly a direct-mapped cache.
    #[test]
    fn one_way_equals_direct_mapped(
        addrs in arb_addrs(),
        size in arb_pow2(64, 4096),
        line in arb_pow2(4, 32),
    ) {
        let config = CacheConfig::direct_mapped(size, line).unwrap();
        let mut dm = DirectMapped::new(config);
        let mut sa = SetAssociative::new(config, Replacement::Lru);
        for &a in &addrs {
            prop_assert_eq!(dm.access(a), sa.access(a));
        }
    }

    /// Doubling associativity at fixed capacity never increases misses under
    /// LRU on *this* substrate... not true in general (Belady's anomaly is
    /// FIFO-only; LRU is a stack algorithm per set but sets change with
    /// associativity). So we assert the weaker, always-true law: a
    /// fully-associative LRU cache of equal capacity never has more misses
    /// than repeats of the same block count... also subtle. Instead: the
    /// fully-associative LRU cache is exactly inclusion-monotone in size.
    #[test]
    fn fully_associative_lru_misses_monotone_in_size(
        addrs in arb_addrs(),
        line in arb_pow2(4, 16),
    ) {
        // LRU is a stack algorithm: a bigger fully-associative LRU cache
        // never misses more.
        let mut small = FullyAssociative::new(256, line, Replacement::Lru).unwrap();
        let mut big = FullyAssociative::new(1024, line, Replacement::Lru).unwrap();
        let s = run_addrs(&mut small, addrs.iter().copied());
        let b = run_addrs(&mut big, addrs.iter().copied());
        prop_assert!(b.misses() <= s.misses());
    }

    /// Victim caches never take more misses than the bare direct-mapped cache.
    #[test]
    fn victim_never_hurts(addrs in arb_addrs(), entries in 1usize..8) {
        let config = CacheConfig::direct_mapped(256, 4).unwrap();
        let mut dm = DirectMapped::new(config);
        let mut vc = VictimCache::new(config, entries);
        let d = run_addrs(&mut dm, addrs.iter().copied());
        let v = run_addrs(&mut vc, addrs.iter().copied());
        prop_assert!(v.misses() <= d.misses());
        prop_assert_eq!(v.accesses(), d.accesses());
    }

    /// Stream buffers never take more memory fetches than the bare cache.
    #[test]
    fn stream_buffer_never_hurts(addrs in arb_addrs(), depth in 1usize..8) {
        let config = CacheConfig::direct_mapped(256, 4).unwrap();
        let mut dm = DirectMapped::new(config);
        let mut sb = StreamBuffer::new(config, depth);
        let d = run_addrs(&mut dm, addrs.iter().copied());
        let s = run_addrs(&mut sb, addrs.iter().copied());
        prop_assert!(s.misses() <= d.misses());
    }

    /// In a hierarchy, L2 accesses equal L1 misses, and a same-size,
    /// same-line L2 behind a DM L1 misses on every access (contents shadow).
    #[test]
    fn hierarchy_accounting(addrs in arb_addrs()) {
        let config = CacheConfig::direct_mapped(128, 4).unwrap();
        let mut h = TwoLevel::new(DirectMapped::new(config), DirectMapped::new(config));
        run_addrs(&mut h, addrs.iter().copied());
        let s = h.hierarchy_stats();
        prop_assert_eq!(s.l2.accesses(), s.l1.misses());
        // Identical geometry => identical contents => every L1 miss also
        // misses in L2.
        prop_assert_eq!(s.l2.misses(), s.l2.accesses());
    }

    /// Hits never change what `contains` reports; misses always install the
    /// line in a direct-mapped cache.
    #[test]
    fn direct_mapped_install_invariant(addrs in arb_addrs()) {
        let mut dm = DirectMapped::new(CacheConfig::direct_mapped(128, 8).unwrap());
        for &a in &addrs {
            dm.access(a);
            prop_assert!(dm.contains(a), "referenced block must be resident");
        }
    }

    /// Belady's MIN is a true lower bound for every organization of equal
    /// capacity, and both miss classifications reconcile with the
    /// direct-mapped miss count.
    #[test]
    fn min_bounds_and_classifications_reconcile(addrs in arb_addrs()) {
        let config = CacheConfig::direct_mapped(128, 4).unwrap();
        let min = OptimalFullyAssociative::simulate(
            config.n_lines() as usize,
            4,
            addrs.iter().copied(),
        )
        .unwrap();

        let mut dm = DirectMapped::new(config);
        let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
        prop_assert!(min.misses() <= dm_stats.misses());

        let mut fa = FullyAssociative::new(128, 4, Replacement::Lru).unwrap();
        let fa_stats = run_addrs(&mut fa, addrs.iter().copied());
        prop_assert!(min.misses() <= fa_stats.misses());

        let mut sa = SetAssociative::new(CacheConfig::new(128, 4, 4).unwrap(), Replacement::Lru);
        let sa_stats = run_addrs(&mut sa, addrs.iter().copied());
        prop_assert!(min.misses() <= sa_stats.misses());

        let lru_classes = classify_direct_mapped(config, addrs.iter().copied());
        let opt_classes = classify_direct_mapped_optimal(config, &addrs);
        prop_assert_eq!(lru_classes.total_misses(), dm_stats.misses());
        prop_assert_eq!(opt_classes.total_misses(), dm_stats.misses());
        prop_assert_eq!(lru_classes.compulsory, opt_classes.compulsory);
        prop_assert!(opt_classes.anti_conflict <= opt_classes.conflict);
    }

    /// Set-associative caches obey LRU inclusion within the same geometry:
    /// doubling the *number of ways while doubling capacity* (same set count)
    /// never increases misses.
    #[test]
    fn lru_inclusion_same_sets(addrs in arb_addrs()) {
        // 32 sets in both: 128B direct-mapped vs 256B 2-way.
        let narrow = CacheConfig::direct_mapped(128, 4).unwrap();
        let wide = CacheConfig::new(256, 4, 2).unwrap();
        prop_assert_eq!(narrow.n_sets(), wide.n_sets());
        let mut a = SetAssociative::new(narrow, Replacement::Lru);
        let mut b = SetAssociative::new(wide, Replacement::Lru);
        let sa = run_addrs(&mut a, addrs.iter().copied());
        let sb = run_addrs(&mut b, addrs.iter().copied());
        prop_assert!(sb.misses() <= sa.misses());
    }
}
