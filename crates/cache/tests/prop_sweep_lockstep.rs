//! Property tests: the one-pass multi-configuration sweep kernel stays in
//! lockstep with the single-point kernels — statistics and probe event
//! streams both — for arbitrary address streams and config vectors.

// Gated: requires the `proptest` feature (and the proptest dev-dependency,
// unavailable in hermetic builds) to compile.
#![cfg(feature = "proptest")]

use dynex_cache::{
    batch_de, batch_de_probed, batch_dm, batch_dm_probed, batch_opt, batch_sweep,
    batch_sweep_probed, run_addrs, CacheConfig, DirectMapped, SweepPoint, SweepPointResult,
    SweepPolicy,
};
use dynex_obs::EventLog;
use proptest::prelude::*;

/// Word-aligned addresses in a smallish region so conflicts actually happen.
fn arb_addrs() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec((0u32..2048).prop_map(|w| w * 4), 0..500)
}

fn arb_pow2(lo: u32, hi: u32) -> impl Strategy<Value = u32> {
    (lo.trailing_zeros()..=hi.trailing_zeros()).prop_map(|b| 1 << b)
}

fn arb_policy() -> impl Strategy<Value = SweepPolicy> {
    prop_oneof![
        Just(SweepPolicy::DirectMapped),
        Just(SweepPolicy::DynamicExclusion),
        Just(SweepPolicy::Optimal),
    ]
}

/// Random sweep plans: 1..8 points over random geometries and policies.
/// Duplicate points arise naturally from the small geometry space (and the
/// lockstep laws must hold for them — every point keeps independent state);
/// length-1 vectors cover the degenerate single-config sweep.
fn arb_points() -> impl Strategy<Value = Vec<SweepPoint>> {
    proptest::collection::vec(
        (arb_pow2(64, 4096), arb_pow2(4, 32), arb_policy()).prop_map(|(size, line, policy)| {
            SweepPoint::new(CacheConfig::direct_mapped(size, line).unwrap(), policy)
        }),
        1..8,
    )
}

/// The single-point kernel result for one sweep point.
fn single_point(point: &SweepPoint, addrs: &[u32]) -> SweepPointResult {
    match point.policy {
        SweepPolicy::DirectMapped => SweepPointResult::Dm(batch_dm(point.config, addrs)),
        SweepPolicy::DynamicExclusion => SweepPointResult::De(batch_de(point.config, addrs)),
        SweepPolicy::Optimal => SweepPointResult::Opt(batch_opt(point.config, addrs)),
    }
}

proptest! {
    /// `batch_sweep` is bit-identical per point to the single-point batch
    /// kernels (which the workspace differential wall in turn pins to the
    /// reference simulators) for any plan, duplicates included.
    #[test]
    fn sweep_matches_single_point_kernels(addrs in arb_addrs(), points in arb_points()) {
        let swept = batch_sweep(&points, &addrs);
        prop_assert_eq!(swept.len(), points.len());
        for (point, got) in points.iter().zip(&swept) {
            prop_assert_eq!(got, &single_point(point, &addrs));
        }
    }

    /// Direct-mapped sweep points also agree with the per-reference spec
    /// simulator directly, closing the loop inside this crate.
    #[test]
    fn dm_sweep_points_match_the_reference_simulator(
        addrs in arb_addrs(),
        size in arb_pow2(64, 4096),
        line in arb_pow2(4, 32),
    ) {
        let config = CacheConfig::direct_mapped(size, line).unwrap();
        let point = SweepPoint::new(config, SweepPolicy::DirectMapped);
        let swept = batch_sweep(&[point], &addrs);
        let mut reference = DirectMapped::new(config);
        let stats = run_addrs(&mut reference, addrs.iter().copied());
        prop_assert_eq!(swept[0].stats(), stats);
    }

    /// The probed sweep replays each point's single-kernel event stream
    /// exactly — same events, same order, per point.
    #[test]
    fn probed_sweep_replays_single_kernel_event_streams(
        addrs in arb_addrs(),
        points in arb_points(),
    ) {
        let mut probes: Vec<EventLog> = points.iter().map(|_| EventLog::new()).collect();
        let swept = batch_sweep_probed(&points, &addrs, &mut probes);
        for ((point, got), log) in points.iter().zip(&swept).zip(&probes) {
            let mut single = EventLog::new();
            let expected = match point.policy {
                SweepPolicy::DirectMapped => {
                    SweepPointResult::Dm(batch_dm_probed(point.config, &addrs, &mut single))
                }
                SweepPolicy::DynamicExclusion => {
                    SweepPointResult::De(batch_de_probed(point.config, &addrs, &mut single))
                }
                // The optimal oracle has no probed hot path; its sweep
                // points emit no events either.
                SweepPolicy::Optimal => SweepPointResult::Opt(batch_opt(point.config, &addrs)),
            };
            prop_assert_eq!(got, &expected);
            prop_assert_eq!(log.events(), single.events());
        }
    }

    /// Duplicated points keep fully independent state: a plan listing the
    /// same point twice yields the same result in both slots.
    #[test]
    fn duplicate_points_are_independent(
        addrs in arb_addrs(),
        size in arb_pow2(64, 1024),
        line in arb_pow2(4, 16),
        policy in arb_policy(),
    ) {
        let config = CacheConfig::direct_mapped(size, line).unwrap();
        let point = SweepPoint::new(config, policy);
        let twice = batch_sweep(&[point, point], &addrs);
        prop_assert_eq!(&twice[0], &twice[1]);
        prop_assert_eq!(&twice[0], &single_point(&point, &addrs));
    }
}
