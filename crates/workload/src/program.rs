//! The program model: procedures, statements, and address layout.

use std::fmt;

/// Identifies a procedure within a [`Program`].
///
/// Obtained from [`crate::ProgramBuilder::add_procedure`]; only valid for the
/// program built by that builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Loop trip counts: fixed, or drawn uniformly per loop entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trips {
    /// Always exactly `n` iterations.
    Fixed(u32),
    /// Uniform in `[lo, hi]`, drawn each time the loop is entered.
    Uniform(u32, u32),
}

impl Trips {
    pub(crate) fn draw(self, rng: &mut dynex_cache::SplitMix64) -> u32 {
        match self {
            Trips::Fixed(n) => n,
            Trips::Uniform(lo, hi) => {
                if hi <= lo {
                    lo
                } else {
                    lo + rng.below((hi - lo + 1) as u64) as u32
                }
            }
        }
    }
}

/// One statement of a procedure body.
///
/// Statements are laid out in address order within their procedure; loops
/// add one header word (the compare-and-branch re-fetched every iteration)
/// and one back-edge word, calls are one word plus the callee, so the
/// emitted instruction streams have the shape of compiled loop nests.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `n` sequential instructions.
    Straight(u32),
    /// A counted loop around a body.
    Loop {
        /// Trip count policy, sampled at loop entry.
        trips: Trips,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A call to another procedure (one call instruction, then the callee).
    Call(ProcId),
    /// A two-way branch taken with probability `prob_then`.
    IfElse {
        /// Probability of the `then` arm, in `[0, 1]`.
        prob_then: f64,
        /// Taken arm.
        then_branch: Vec<Stmt>,
        /// Fall-through arm.
        else_branch: Vec<Stmt>,
    },
    /// `count` memory instructions, each one instruction fetch plus one data
    /// reference drawn from data pattern `pattern`; a fraction
    /// `write_fraction` of the data references are writes.
    Data {
        /// Index into the program's data patterns.
        pattern: usize,
        /// Number of load/store instructions.
        count: u32,
        /// Fraction of references that are stores, in `[0, 1]`.
        write_fraction: f64,
    },
}

/// Helper constructors for readable profile definitions.
impl Stmt {
    /// `n` sequential instructions.
    pub fn straight(n: u32) -> Stmt {
        Stmt::Straight(n)
    }

    /// A fixed-trip loop.
    pub fn loop_n(trips: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            trips: Trips::Fixed(trips),
            body,
        }
    }

    /// A variable-trip loop.
    pub fn loop_range(lo: u32, hi: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            trips: Trips::Uniform(lo, hi),
            body,
        }
    }

    /// A call statement.
    pub fn call(proc: ProcId) -> Stmt {
        Stmt::Call(proc)
    }

    /// `count` reads from data pattern `pattern`.
    pub fn reads(pattern: usize, count: u32) -> Stmt {
        Stmt::Data {
            pattern,
            count,
            write_fraction: 0.0,
        }
    }

    /// `count` mixed reads/writes from data pattern `pattern`.
    pub fn data(pattern: usize, count: u32, write_fraction: f64) -> Stmt {
        Stmt::Data {
            pattern,
            count,
            write_fraction,
        }
    }

    /// Instruction words this statement occupies (not counting callees).
    pub(crate) fn len_words(&self) -> u32 {
        match self {
            Stmt::Straight(n) => *n,
            // One header word (re-fetched each iteration) + body + back-edge.
            Stmt::Loop { body, .. } => 2 + body_len_words(body),
            Stmt::Call(_) => 1,
            Stmt::IfElse {
                then_branch,
                else_branch,
                ..
            } => {
                // Branch word + both arms laid out sequentially + join word.
                2 + body_len_words(then_branch) + body_len_words(else_branch)
            }
            Stmt::Data { count, .. } => *count,
        }
    }
}

pub(crate) fn body_len_words(body: &[Stmt]) -> u32 {
    body.iter().map(Stmt::len_words).sum()
}

/// A procedure: a statement list with an assigned address range.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    pub(crate) body: Vec<Stmt>,
    /// First instruction byte address (assigned at layout).
    pub(crate) base_addr: u32,
    /// Code size in words, including the return instruction.
    pub(crate) len_words: u32,
    /// Words of stack frame this procedure pushes/pops (0 = leaf w/o frame).
    pub(crate) frame_words: u32,
}

impl Procedure {
    /// First instruction byte address.
    pub fn base_addr(&self) -> u32 {
        self.base_addr
    }

    /// Code size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.len_words * 4
    }
}

/// A complete program: laid-out procedures, data patterns, and an entry
/// point. Built with [`crate::ProgramBuilder`]; executed with
/// [`crate::Executor`] (or the [`Program::trace`] convenience).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) procs: Vec<Procedure>,
    pub(crate) patterns: Vec<crate::data::DataPattern>,
    pub(crate) entry: ProcId,
    pub(crate) seed: u64,
}

impl Program {
    /// The entry procedure.
    pub fn entry(&self) -> ProcId {
        self.entry
    }

    /// Number of procedures.
    pub fn n_procs(&self) -> usize {
        self.procs.len()
    }

    /// Looks up a procedure.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn procedure(&self, id: ProcId) -> &Procedure {
        &self.procs[id.0]
    }

    /// Total code footprint in bytes (sum of procedure sizes, excluding
    /// layout padding).
    pub fn code_bytes(&self) -> u64 {
        self.procs.iter().map(|p| p.size_bytes() as u64).sum()
    }

    /// Generates the first `n_refs` references of the program's execution.
    ///
    /// The program restarts from its entry point (with data cursors
    /// preserved) as often as needed to fill the budget.
    pub fn trace(&self, n_refs: usize) -> dynex_trace::Trace {
        let mut trace = dynex_trace::Trace::with_capacity(n_refs);
        let mut executor = crate::Executor::new(self);
        executor.generate_into(n_refs, |a| trace.push(a));
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stmt_lengths() {
        assert_eq!(Stmt::straight(7).len_words(), 7);
        assert_eq!(Stmt::loop_n(3, vec![Stmt::straight(5)]).len_words(), 7);
        assert_eq!(Stmt::call(ProcId(0)).len_words(), 1);
        assert_eq!(Stmt::reads(0, 4).len_words(), 4);
        let branch = Stmt::IfElse {
            prob_then: 0.5,
            then_branch: vec![Stmt::straight(3)],
            else_branch: vec![Stmt::straight(2)],
        };
        assert_eq!(branch.len_words(), 7);
    }

    #[test]
    fn nested_loop_length() {
        let inner = Stmt::loop_n(10, vec![Stmt::straight(4)]);
        let outer = Stmt::loop_n(5, vec![Stmt::straight(2), inner]);
        // outer: 2 + (2 + (2 + 4)) = 10
        assert_eq!(outer.len_words(), 10);
    }

    #[test]
    fn trips_draw() {
        let mut rng = dynex_cache::SplitMix64::new(1);
        assert_eq!(Trips::Fixed(9).draw(&mut rng), 9);
        for _ in 0..100 {
            let t = Trips::Uniform(3, 6).draw(&mut rng);
            assert!((3..=6).contains(&t));
        }
        assert_eq!(Trips::Uniform(5, 5).draw(&mut rng), 5);
        assert_eq!(
            Trips::Uniform(7, 2).draw(&mut rng),
            7,
            "degenerate range clamps to lo"
        );
    }

    #[test]
    fn proc_id_display() {
        assert_eq!(ProcId(3).to_string(), "proc#3");
    }
}
