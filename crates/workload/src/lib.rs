//! Synthetic SPEC'89-style workloads for the `dynex` cache experiments.
//!
//! McFarling's ISCA '92 evaluation used pixie traces of the SPEC'89
//! benchmarks on a DECstation 3100. Those traces are not reproducible today,
//! so this crate substitutes a *program model*: procedures made of straight
//! runs, nested loops, calls, and branches are laid out in a 32-bit address
//! space and interpreted to emit instruction and data references. Dynamic
//! exclusion cares only about the *reference patterns* — loop-vs-loop,
//! loop-level, and within-loop conflicts — which the model produces the same
//! way real compiled loop nests do.
//!
//! The ten profiles in [`spec`] are named after and structurally modelled on
//! the SPEC'89 programs the paper used (Figure 2): code footprint, loop
//! structure, call density, and data access style are matched to each
//! benchmark's published characterization. Absolute miss rates differ from
//! the paper's; the shapes of the curves are what the generator is
//! calibrated to preserve.
//!
//! Everything is deterministic: the same profile and reference budget always
//! produce the identical trace, via the workspace's `SplitMix64` PRNG.
//!
//! # Examples
//!
//! ```
//! use dynex_workload::spec;
//!
//! let profile = spec::profile("gcc").expect("gcc is a known profile");
//! let trace = profile.trace(10_000);
//! assert_eq!(trace.len(), 10_000);
//! // Deterministic: a second generation is identical.
//! assert_eq!(profile.trace(10_000), trace);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod builder;
mod data;
mod exec;
pub mod patterns;
mod program;
pub mod spec;

pub use app::AppParams;
pub use builder::{BuildError, ProgramBuilder, DEFAULT_CODE_BASE};
pub use data::{DataPattern, DataSpace};
pub use exec::Executor;
pub use program::{ProcId, Program, Stmt, Trips};
pub use spec::Profile;

/// Re-export of the deterministic PRNG used throughout trace generation.
pub use dynex_cache::SplitMix64;
