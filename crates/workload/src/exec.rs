//! The interpreter: walks a [`Program`] and emits its reference stream.

use dynex_cache::SplitMix64;
use dynex_trace::Access;

use crate::data::DataSpace;
use crate::program::{body_len_words, ProcId, Program, Stmt};

/// Base of the descending stack segment.
const STACK_BASE: u32 = 0x7fff_f000;

/// How many stack words a call actually touches (caps huge declared frames
/// so call-heavy programs are not drowned in stack traffic).
const FRAME_TOUCH_CAP: u32 = 4;

/// Executes a [`Program`], emitting instruction fetches and data references
/// in program order.
///
/// The executor restarts the program from its entry point whenever it
/// finishes, preserving data cursors, so traces of any length can be drawn.
/// All randomness (trip counts, branch directions, random data patterns)
/// derives from the program's seed: generation is fully deterministic.
///
/// # Examples
///
/// ```
/// use dynex_workload::{Executor, ProgramBuilder, Stmt};
///
/// let mut b = ProgramBuilder::new(7);
/// let main = b.add_procedure(vec![Stmt::loop_n(4, vec![Stmt::straight(2)])]);
/// let program = b.build(main)?;
/// let mut refs = Vec::new();
/// Executor::new(&program).generate_into(10, |a| refs.push(a));
/// assert_eq!(refs.len(), 10);
/// assert!(refs.iter().all(|a| a.is_instruction()));
/// # Ok::<(), dynex_workload::BuildError>(())
/// ```
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    rng: SplitMix64,
    data: DataSpace,
    stack_ptr: u32,
    remaining: usize,
}

impl<'p> Executor<'p> {
    /// Creates an executor positioned at the program entry.
    pub fn new(program: &'p Program) -> Executor<'p> {
        Executor {
            program,
            rng: SplitMix64::new(program.seed ^ 0xe0ec),
            data: DataSpace::new(&program.patterns, program.seed ^ 0xda7a),
            stack_ptr: STACK_BASE,
            remaining: 0,
        }
    }

    /// Emits exactly `n_refs` references into `sink` (restarting the program
    /// as needed). Subsequent calls continue where the previous stopped in
    /// terms of data cursors, but restart control flow from the entry.
    pub fn generate_into<F: FnMut(Access)>(&mut self, n_refs: usize, mut sink: F) {
        self.remaining = n_refs;
        while self.remaining > 0 {
            self.stack_ptr = STACK_BASE;
            self.exec_proc(self.program.entry, 0, &mut sink);
        }
    }

    fn emit<F: FnMut(Access)>(&mut self, access: Access, sink: &mut F) -> bool {
        if self.remaining == 0 {
            return false;
        }
        sink(access);
        self.remaining -= 1;
        self.remaining > 0
    }

    fn exec_proc<F: FnMut(Access)>(&mut self, id: ProcId, depth: u32, sink: &mut F) -> bool {
        assert!(
            depth < 64,
            "call depth exceeded (builder guarantees an acyclic call graph)"
        );
        let (base, len_words, frame_words, body) = {
            let p = self.program.procedure(id);
            (p.base_addr, p.len_words, p.frame_words, &p.body)
        };
        // Prologue: push the frame.
        let touched = frame_words.min(FRAME_TOUCH_CAP);
        if frame_words > 0 {
            self.stack_ptr = self.stack_ptr.wrapping_sub(frame_words * 4);
            for w in 0..touched {
                if !self.emit(Access::write(self.stack_ptr + w * 4), sink) {
                    return false;
                }
            }
        }
        let alive = self.exec_body(body, base, depth, sink)
            && self.emit(Access::fetch(base + (len_words - 1) * 4), sink); // return instr
                                                                           // Epilogue: pop the frame (restore registers).
        let alive = alive && {
            let mut ok = true;
            for w in 0..touched {
                if !self.emit(Access::read(self.stack_ptr + w * 4), sink) {
                    ok = false;
                    break;
                }
            }
            ok
        };
        if frame_words > 0 {
            self.stack_ptr = self.stack_ptr.wrapping_add(frame_words * 4);
        }
        alive
    }

    /// Executes `body` laid out starting at byte address `pc`. Returns
    /// `false` when the reference budget ran out.
    fn exec_body<F: FnMut(Access)>(
        &mut self,
        body: &[Stmt],
        mut pc: u32,
        depth: u32,
        sink: &mut F,
    ) -> bool {
        for stmt in body {
            let stmt_len = stmt.len_words();
            match stmt {
                Stmt::Straight(n) => {
                    for w in 0..*n {
                        if !self.emit(Access::fetch(pc + w * 4), sink) {
                            return false;
                        }
                    }
                }
                Stmt::Loop { trips, body } => {
                    let header = pc;
                    let body_base = pc + 4;
                    let backedge = pc + 4 + body_len_words(body) * 4;
                    let t = trips.draw(&mut self.rng);
                    if t == 0 {
                        // The test still executes once and falls through.
                        if !self.emit(Access::fetch(header), sink) {
                            return false;
                        }
                    }
                    for _ in 0..t {
                        if !self.emit(Access::fetch(header), sink) {
                            return false;
                        }
                        if !self.exec_body(body, body_base, depth, sink) {
                            return false;
                        }
                        if !self.emit(Access::fetch(backedge), sink) {
                            return false;
                        }
                    }
                }
                Stmt::Call(callee) => {
                    if !self.emit(Access::fetch(pc), sink) {
                        return false;
                    }
                    if !self.exec_proc(*callee, depth + 1, sink) {
                        return false;
                    }
                }
                Stmt::IfElse {
                    prob_then,
                    then_branch,
                    else_branch,
                } => {
                    let branch_word = pc;
                    let then_base = pc + 4;
                    let else_base = then_base + body_len_words(then_branch) * 4;
                    let join_word = else_base + body_len_words(else_branch) * 4;
                    if !self.emit(Access::fetch(branch_word), sink) {
                        return false;
                    }
                    let taken = self.rng.chance(*prob_then);
                    let ok = if taken {
                        self.exec_body(then_branch, then_base, depth, sink)
                    } else {
                        self.exec_body(else_branch, else_base, depth, sink)
                    };
                    if !ok {
                        return false;
                    }
                    if !self.emit(Access::fetch(join_word), sink) {
                        return false;
                    }
                }
                Stmt::Data {
                    pattern,
                    count,
                    write_fraction,
                } => {
                    for w in 0..*count {
                        if !self.emit(Access::fetch(pc + w * 4), sink) {
                            return false;
                        }
                        let addr = self.data.next_addr(&self.program.patterns, *pattern);
                        let access = if self.rng.chance(*write_fraction) {
                            Access::write(addr)
                        } else {
                            Access::read(addr)
                        };
                        if !self.emit(access, sink) {
                            return false;
                        }
                    }
                }
            }
            pc += stmt_len * 4;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataPattern, ProgramBuilder};

    fn collect(program: &Program, n: usize) -> Vec<Access> {
        let mut v = Vec::new();
        Executor::new(program).generate_into(n, |a| v.push(a));
        v
    }

    #[test]
    fn straight_line_is_sequential() {
        let mut b = ProgramBuilder::new(0);
        b.max_padding(0);
        let p = b.add_procedure(vec![Stmt::straight(3)]);
        let prog = b.build(p).unwrap();
        let refs = collect(&prog, 4);
        let base = prog.procedure(p).base_addr();
        // 3 straight words + return word.
        let expected: Vec<u32> = (0..4).map(|w| base + w * 4).collect();
        assert_eq!(refs.iter().map(|a| a.addr()).collect::<Vec<_>>(), expected);
        assert!(refs.iter().all(|a| a.is_instruction()));
    }

    #[test]
    fn loop_refetches_header_and_backedge() {
        let mut b = ProgramBuilder::new(0);
        b.max_padding(0);
        let p = b.add_procedure(vec![Stmt::loop_n(3, vec![Stmt::straight(1)])]);
        let prog = b.build(p).unwrap();
        let base = prog.procedure(p).base_addr();
        let refs = collect(&prog, 9);
        let addrs: Vec<u32> = refs.iter().map(|a| a.addr()).collect();
        // header, body, backedge x3
        let (h, body, be) = (base, base + 4, base + 8);
        assert_eq!(addrs, vec![h, body, be, h, body, be, h, body, be]);
    }

    #[test]
    fn calls_descend_and_return() {
        let mut b = ProgramBuilder::new(0);
        b.max_padding(0);
        let leaf = b.add_procedure(vec![Stmt::straight(1)]);
        let main = b.add_procedure(vec![Stmt::call(leaf), Stmt::straight(1)]);
        let prog = b.build(main).unwrap();
        let leaf_base = prog.procedure(leaf).base_addr();
        let main_base = prog.procedure(main).base_addr();
        let refs = collect(&prog, 5);
        let addrs: Vec<u32> = refs.iter().map(|a| a.addr()).collect();
        // call word, leaf body, leaf ret, continue, main ret.
        assert_eq!(
            addrs,
            vec![
                main_base,
                leaf_base,
                leaf_base + 4,
                main_base + 4,
                main_base + 8
            ]
        );
    }

    #[test]
    fn frames_emit_stack_traffic() {
        let mut b = ProgramBuilder::new(0);
        let leaf = b.add_procedure_with_frame(vec![Stmt::straight(1)], 2);
        let main = b.add_procedure(vec![Stmt::call(leaf)]);
        let prog = b.build(main).unwrap();
        let refs = collect(&prog, 8);
        let writes = refs
            .iter()
            .filter(|a| a.kind() == dynex_trace::AccessKind::Write)
            .count();
        let reads = refs
            .iter()
            .filter(|a| a.kind() == dynex_trace::AccessKind::Read)
            .count();
        assert_eq!(writes, 2, "frame push");
        assert_eq!(reads, 2, "frame pop");
        // Stack addresses live in the stack segment.
        assert!(refs
            .iter()
            .filter(|a| a.is_data())
            .all(|a| a.addr() >= STACK_BASE - 64));
    }

    #[test]
    fn data_statements_interleave_fetch_and_data() {
        let mut b = ProgramBuilder::new(0);
        let arr = b.add_pattern(DataPattern::Stride {
            base: 0x1000_0000,
            len_words: 8,
            stride_words: 1,
        });
        let p = b.add_procedure(vec![Stmt::reads(arr, 3)]);
        let prog = b.build(p).unwrap();
        let refs = collect(&prog, 6);
        assert!(refs[0].is_instruction());
        assert_eq!(refs[1], Access::read(0x1000_0000));
        assert!(refs[2].is_instruction());
        assert_eq!(refs[3], Access::read(0x1000_0004));
    }

    #[test]
    fn program_restarts_to_fill_budget() {
        let mut b = ProgramBuilder::new(0);
        let p = b.add_procedure(vec![Stmt::straight(2)]);
        let prog = b.build(p).unwrap();
        // Program is 3 refs long (2 + ret); ask for 10.
        let refs = collect(&prog, 10);
        assert_eq!(refs.len(), 10);
        assert_eq!(refs[0].addr(), refs[3].addr(), "restarted from entry");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut b = ProgramBuilder::new(0xfeed);
        let arr = b.add_pattern(DataPattern::RandomIn {
            base: 0x2000_0000,
            len_words: 256,
        });
        let leaf = b.add_procedure(vec![Stmt::reads(arr, 2)]);
        let p = b.add_procedure(vec![Stmt::loop_range(
            2,
            9,
            vec![
                Stmt::call(leaf),
                Stmt::IfElse {
                    prob_then: 0.3,
                    then_branch: vec![Stmt::straight(2)],
                    else_branch: vec![Stmt::straight(5)],
                },
            ],
        )]);
        let prog = b.build(p).unwrap();
        assert_eq!(prog.trace(5_000), prog.trace(5_000));
    }

    #[test]
    fn zero_trip_loop_fetches_test_once() {
        let mut b = ProgramBuilder::new(0);
        b.max_padding(0);
        let p = b.add_procedure(vec![
            Stmt::Loop {
                trips: crate::Trips::Fixed(0),
                body: vec![Stmt::straight(1)],
            },
            Stmt::straight(1),
        ]);
        let prog = b.build(p).unwrap();
        let base = prog.procedure(p).base_addr();
        let refs = collect(&prog, 3);
        let addrs: Vec<u32> = refs.iter().map(|a| a.addr()).collect();
        // loop header (test fails), then the following straight word, ret.
        assert_eq!(addrs, vec![base, base + 12, base + 16]);
    }

    #[test]
    fn exact_budget_cutoff() {
        let mut b = ProgramBuilder::new(0);
        let p = b.add_procedure(vec![Stmt::straight(100)]);
        let prog = b.build(p).unwrap();
        for n in [1usize, 7, 99, 100, 101] {
            assert_eq!(collect(&prog, n).len(), n);
        }
    }
}
