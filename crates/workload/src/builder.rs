//! Constructing and laying out programs.

use std::error::Error;
use std::fmt;

use dynex_cache::SplitMix64;

use crate::data::DataPattern;
use crate::program::{body_len_words, ProcId, Procedure, Program, Stmt};

/// Default first instruction address (MIPS-style text segment).
pub const DEFAULT_CODE_BASE: u32 = 0x0040_0000;

/// Validation failure from [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A `Call` names a procedure that was never added.
    UnknownProc {
        /// The dangling callee.
        callee: ProcId,
    },
    /// The call graph contains a cycle (the executor does not model true
    /// recursion).
    RecursiveCall {
        /// A procedure on the cycle.
        on_cycle: ProcId,
    },
    /// A `Data` statement names a pattern that was never added.
    UnknownPattern {
        /// The dangling pattern index.
        index: usize,
    },
    /// A probability outside `[0, 1]`.
    BadProbability {
        /// The offending value.
        value: f64,
    },
    /// The builder holds no procedures.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownProc { callee } => write!(f, "call to unknown {callee}"),
            BuildError::RecursiveCall { on_cycle } => {
                write!(f, "recursive call cycle through {on_cycle}")
            }
            BuildError::UnknownPattern { index } => {
                write!(f, "data statement uses unknown pattern {index}")
            }
            BuildError::BadProbability { value } => {
                write!(f, "branch probability {value} outside [0, 1]")
            }
            BuildError::Empty => write!(f, "program has no procedures"),
        }
    }
}

impl Error for BuildError {}

/// Incrementally builds a [`Program`]: add data patterns and procedures,
/// then [`ProgramBuilder::build`] lays the code out and validates it.
///
/// # Examples
///
/// ```
/// use dynex_workload::{ProgramBuilder, Stmt};
///
/// let mut b = ProgramBuilder::new(42);
/// let leaf = b.add_procedure(vec![Stmt::straight(8)]);
/// let main = b.add_procedure(vec![Stmt::loop_n(10, vec![
///     Stmt::straight(4),
///     Stmt::call(leaf),
/// ])]);
/// let program = b.build(main)?;
/// let trace = program.trace(1_000);
/// assert_eq!(trace.len(), 1_000);
/// # Ok::<(), dynex_workload::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    procs: Vec<(Vec<Stmt>, u32)>,
    patterns: Vec<DataPattern>,
    seed: u64,
    code_base: u32,
    max_pad_words: u32,
    shuffle: bool,
}

impl ProgramBuilder {
    /// Creates an empty builder; `seed` drives layout padding, loop trip
    /// draws, and random data patterns of the built program.
    pub fn new(seed: u64) -> ProgramBuilder {
        ProgramBuilder {
            procs: Vec::new(),
            patterns: Vec::new(),
            seed,
            code_base: DEFAULT_CODE_BASE,
            max_pad_words: 8,
            shuffle: false,
        }
    }

    /// Scatters procedures across the text segment (deterministically) in
    /// place of creation-order layout.
    ///
    /// Real linkers separate callers from their callees — library code, other
    /// compilation units — which is what makes loop bodies conflict with the
    /// procedures they call. Creation-order layout places helpers right next
    /// to the loops that use them, so those conflicts never arise; profiles
    /// that model large multi-module applications enable shuffling.
    pub fn shuffle_layout(&mut self, shuffle: bool) -> &mut ProgramBuilder {
        self.shuffle = shuffle;
        self
    }

    /// Sets the first instruction address (default [`DEFAULT_CODE_BASE`]).
    pub fn code_base(&mut self, addr: u32) -> &mut ProgramBuilder {
        self.code_base = addr & !3;
        self
    }

    /// Sets the maximum random padding between procedures, in words
    /// (default 8; 0 packs procedures back to back).
    pub fn max_padding(&mut self, words: u32) -> &mut ProgramBuilder {
        self.max_pad_words = words;
        self
    }

    /// Registers a data pattern, returning its index for [`Stmt::Data`].
    pub fn add_pattern(&mut self, pattern: DataPattern) -> usize {
        self.patterns.push(pattern);
        self.patterns.len() - 1
    }

    /// Adds a leaf-frame procedure (no stack traffic on call).
    pub fn add_procedure(&mut self, body: Vec<Stmt>) -> ProcId {
        self.add_procedure_with_frame(body, 0)
    }

    /// Adds a procedure that pushes `frame_words` of stack on entry and pops
    /// them on return (emitting stack writes/reads).
    pub fn add_procedure_with_frame(&mut self, body: Vec<Stmt>, frame_words: u32) -> ProcId {
        self.procs.push((body, frame_words));
        ProcId(self.procs.len() - 1)
    }

    /// Lays out and validates the program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for dangling calls or patterns, recursive
    /// call cycles, invalid probabilities, or an empty program.
    pub fn build(&self, entry: ProcId) -> Result<Program, BuildError> {
        if self.procs.is_empty() {
            return Err(BuildError::Empty);
        }
        if entry.0 >= self.procs.len() {
            return Err(BuildError::UnknownProc { callee: entry });
        }
        for (body, _) in &self.procs {
            self.validate_body(body)?;
        }
        self.check_acyclic()?;

        // Layout: procedures from the code base with deterministic random
        // padding so conflict alignment varies; optionally in shuffled order.
        let mut rng = SplitMix64::new(self.seed ^ 0x01a0_u64);
        let mut order: Vec<usize> = (0..self.procs.len()).collect();
        if self.shuffle {
            // Fisher–Yates with the builder seed.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.below_usize(i + 1));
            }
        }
        let mut bases = vec![0u32; self.procs.len()];
        let mut cursor = self.code_base;
        for &index in &order {
            let (body, _) = &self.procs[index];
            let len_words = body_len_words(body) + 1; // + return instruction
            bases[index] = cursor;
            let pad = if self.max_pad_words == 0 {
                0
            } else {
                rng.below(self.max_pad_words as u64 + 1) as u32
            };
            cursor += (len_words + pad) * 4;
        }
        let procs: Vec<Procedure> = self
            .procs
            .iter()
            .enumerate()
            .map(|(index, (body, frame_words))| Procedure {
                body: body.clone(),
                base_addr: bases[index],
                len_words: body_len_words(body) + 1,
                frame_words: *frame_words,
            })
            .collect();

        Ok(Program {
            procs,
            patterns: self.patterns.clone(),
            entry,
            seed: self.seed,
        })
    }

    fn validate_body(&self, body: &[Stmt]) -> Result<(), BuildError> {
        for stmt in body {
            match stmt {
                Stmt::Straight(_) => {}
                Stmt::Loop { body, .. } => self.validate_body(body)?,
                Stmt::Call(callee) => {
                    if callee.0 >= self.procs.len() {
                        return Err(BuildError::UnknownProc { callee: *callee });
                    }
                }
                Stmt::IfElse {
                    prob_then,
                    then_branch,
                    else_branch,
                } => {
                    if !(0.0..=1.0).contains(prob_then) {
                        return Err(BuildError::BadProbability { value: *prob_then });
                    }
                    self.validate_body(then_branch)?;
                    self.validate_body(else_branch)?;
                }
                Stmt::Data {
                    pattern,
                    write_fraction,
                    ..
                } => {
                    if *pattern >= self.patterns.len() {
                        return Err(BuildError::UnknownPattern { index: *pattern });
                    }
                    if !(0.0..=1.0).contains(write_fraction) {
                        return Err(BuildError::BadProbability {
                            value: *write_fraction,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn check_acyclic(&self) -> Result<(), BuildError> {
        // DFS with colors over the static call graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        fn callees(body: &[Stmt], out: &mut Vec<usize>) {
            for stmt in body {
                match stmt {
                    Stmt::Call(p) => out.push(p.0),
                    Stmt::Loop { body, .. } => callees(body, out),
                    Stmt::IfElse {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        callees(then_branch, out);
                        callees(else_branch, out);
                    }
                    _ => {}
                }
            }
        }
        fn visit(
            procs: &[(Vec<Stmt>, u32)],
            colors: &mut [Color],
            node: usize,
        ) -> Result<(), BuildError> {
            colors[node] = Color::Gray;
            let mut next = Vec::new();
            callees(&procs[node].0, &mut next);
            for callee in next {
                match colors[callee] {
                    Color::Gray => {
                        return Err(BuildError::RecursiveCall {
                            on_cycle: ProcId(callee),
                        })
                    }
                    Color::White => visit(procs, colors, callee)?,
                    Color::Black => {}
                }
            }
            colors[node] = Color::Black;
            Ok(())
        }
        let mut colors = vec![Color::White; self.procs.len()];
        for node in 0..self.procs.len() {
            if colors[node] == Color::White {
                visit(&self.procs, &mut colors, node)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_lays_out_in_order() {
        let mut b = ProgramBuilder::new(1);
        b.max_padding(0);
        let p0 = b.add_procedure(vec![Stmt::straight(7)]); // 8 words with ret
        let p1 = b.add_procedure(vec![Stmt::straight(3)]);
        let prog = b.build(p1).unwrap();
        assert_eq!(prog.procedure(p0).base_addr(), DEFAULT_CODE_BASE);
        assert_eq!(prog.procedure(p1).base_addr(), DEFAULT_CODE_BASE + 8 * 4);
        assert_eq!(prog.procedure(p0).size_bytes(), 32);
        assert_eq!(prog.code_bytes(), 32 + 16);
    }

    #[test]
    fn padding_is_deterministic() {
        let build = || {
            let mut b = ProgramBuilder::new(5);
            let p0 = b.add_procedure(vec![Stmt::straight(4)]);
            let _p1 = b.add_procedure(vec![Stmt::straight(4)]);
            b.build(p0).unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            ProgramBuilder::new(0).build(ProcId(0)),
            Err(BuildError::Empty)
        );
    }

    #[test]
    fn rejects_unknown_callee() {
        let mut b = ProgramBuilder::new(0);
        let p = b.add_procedure(vec![Stmt::call(ProcId(9))]);
        assert_eq!(
            b.build(p),
            Err(BuildError::UnknownProc { callee: ProcId(9) })
        );
    }

    #[test]
    fn rejects_unknown_entry() {
        let mut b = ProgramBuilder::new(0);
        b.add_procedure(vec![Stmt::straight(1)]);
        assert!(matches!(
            b.build(ProcId(7)),
            Err(BuildError::UnknownProc { .. })
        ));
    }

    #[test]
    fn rejects_direct_recursion() {
        let mut b = ProgramBuilder::new(0);
        // Self-call: id equals the procedure's own (next) index.
        let p = b.add_procedure(vec![Stmt::call(ProcId(0))]);
        assert_eq!(
            b.build(p),
            Err(BuildError::RecursiveCall {
                on_cycle: ProcId(0)
            })
        );
    }

    #[test]
    fn rejects_mutual_recursion() {
        let mut b = ProgramBuilder::new(0);
        let _p0 = b.add_procedure(vec![Stmt::call(ProcId(1))]);
        let p1 = b.add_procedure(vec![Stmt::call(ProcId(0))]);
        assert!(matches!(b.build(p1), Err(BuildError::RecursiveCall { .. })));
    }

    #[test]
    fn rejects_bad_pattern_and_probability() {
        let mut b = ProgramBuilder::new(0);
        let p = b.add_procedure(vec![Stmt::reads(0, 4)]);
        assert_eq!(b.build(p), Err(BuildError::UnknownPattern { index: 0 }));

        let mut b = ProgramBuilder::new(0);
        let p = b.add_procedure(vec![Stmt::IfElse {
            prob_then: 1.5,
            then_branch: vec![],
            else_branch: vec![],
        }]);
        assert_eq!(b.build(p), Err(BuildError::BadProbability { value: 1.5 }));
    }

    #[test]
    fn nested_call_in_loop_is_found_by_validation() {
        let mut b = ProgramBuilder::new(0);
        let p = b.add_procedure(vec![Stmt::loop_n(3, vec![Stmt::call(ProcId(5))])]);
        assert!(matches!(b.build(p), Err(BuildError::UnknownProc { .. })));
    }

    #[test]
    fn code_base_is_word_aligned() {
        let mut b = ProgramBuilder::new(0);
        b.code_base(0x1003);
        let p = b.add_procedure(vec![Stmt::straight(1)]);
        assert_eq!(b.build(p).unwrap().procedure(p).base_addr(), 0x1000);
    }

    #[test]
    fn error_display() {
        assert!(BuildError::Empty.to_string().contains("no procedures"));
        assert!(BuildError::UnknownProc { callee: ProcId(2) }
            .to_string()
            .contains("proc#2"));
    }
}
