//! The Section 3 micro-patterns, as address sequences.
//!
//! These generators produce the exact conflict patterns the paper analyses:
//! two blocks `a` and `b` that map to the same line of a direct-mapped cache
//! of a given size. They drive the `patterns` experiment and many tests.

use dynex_trace::{Access, Trace};

/// Two word addresses guaranteed to conflict in every direct-mapped cache of
/// `cache_bytes` capacity or less (same index, different tags).
pub fn conflicting_pair(cache_bytes: u32) -> (u32, u32) {
    (0, cache_bytes)
}

/// Section 3.1, conflict between loops: `(a^inner b^inner)^outer`.
///
/// Conventional and optimal direct-mapped caches both miss `2 * outer` times
/// (10% for `inner = outer = 10`).
pub fn conflict_between_loops(a: u32, b: u32, inner: u32, outer: u32) -> Trace {
    let mut trace = Trace::with_capacity((2 * inner * outer) as usize);
    for _ in 0..outer {
        for _ in 0..inner {
            trace.push(Access::fetch(a));
        }
        for _ in 0..inner {
            trace.push(Access::fetch(b));
        }
    }
    trace
}

/// Section 3.2, conflict between loop levels: `(a^inner b)^outer`.
///
/// A conventional direct-mapped cache takes ~2 misses per `b` (18% for
/// `inner = outer = 10`); the optimal cache keeps `a` and misses only on `b`
/// (10%).
pub fn conflict_between_loop_levels(a: u32, b: u32, inner: u32, outer: u32) -> Trace {
    let mut trace = Trace::with_capacity(((inner + 1) * outer) as usize);
    for _ in 0..outer {
        for _ in 0..inner {
            trace.push(Access::fetch(a));
        }
        trace.push(Access::fetch(b));
    }
    trace
}

/// Section 3.3, conflict within a loop: `(a b)^trips`.
///
/// A conventional direct-mapped cache misses on every reference (100%); the
/// optimal cache keeps one block (55% for `trips = 10`).
pub fn conflict_within_loop(a: u32, b: u32, trips: u32) -> Trace {
    let mut trace = Trace::with_capacity((2 * trips) as usize);
    for _ in 0..trips {
        trace.push(Access::fetch(a));
        trace.push(Access::fetch(b));
    }
    trace
}

/// The three-way loop `(a b c)^trips` that defeats a single sticky bit
/// (Section 4's discussion of additional sticky bits).
pub fn three_way_loop(a: u32, b: u32, c: u32, trips: u32) -> Trace {
    let mut trace = Trace::with_capacity((3 * trips) as usize);
    for _ in 0..trips {
        trace.push(Access::fetch(a));
        trace.push(Access::fetch(b));
        trace.push(Access::fetch(c));
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_conflicts_by_construction() {
        let (a, b) = conflicting_pair(1024);
        assert_ne!(a, b);
        assert_eq!(a % 1024, b % 1024);
    }

    #[test]
    fn between_loops_shape() {
        let t = conflict_between_loops(0, 64, 10, 10);
        assert_eq!(t.len(), 200);
        assert_eq!(t.get(0), Some(Access::fetch(0)));
        assert_eq!(t.get(9), Some(Access::fetch(0)));
        assert_eq!(t.get(10), Some(Access::fetch(64)));
        assert_eq!(t.get(19), Some(Access::fetch(64)));
        assert_eq!(t.get(20), Some(Access::fetch(0)));
    }

    #[test]
    fn loop_levels_shape() {
        let t = conflict_between_loop_levels(0, 64, 10, 10);
        assert_eq!(t.len(), 110);
        assert_eq!(t.get(10), Some(Access::fetch(64)));
        assert_eq!(t.get(11), Some(Access::fetch(0)));
    }

    #[test]
    fn within_loop_shape() {
        let t = conflict_within_loop(0, 64, 10);
        assert_eq!(t.len(), 20);
        assert_eq!(t.get(0), Some(Access::fetch(0)));
        assert_eq!(t.get(1), Some(Access::fetch(64)));
    }

    #[test]
    fn three_way_shape() {
        let t = three_way_loop(0, 64, 128, 10);
        assert_eq!(t.len(), 30);
        assert_eq!(t.get(2), Some(Access::fetch(128)));
    }
}
