//! Ten synthetic profiles modelled on the SPEC'89 benchmarks of the paper's
//! Figure 2.
//!
//! Each profile is a [`Program`] whose *structure* — code footprint, loop
//! nesting, call density, basic-block size, and data access style — follows
//! the published characterization of the benchmark it is named after:
//!
//! | profile   | description (paper)                | model highlights |
//! |-----------|------------------------------------|------------------|
//! | `doduc`   | Monte Carlo simulation             | ~90KB numeric code, mid-size blocks, branchy phase loops |
//! | `eqntott` | equation to truth table conversion | tiny hot compare/sort loops, large strided bit-vector data |
//! | `espresso`| boolean function minimization      | ~45KB cube-loop phases, pointer-chased cover data |
//! | `fpppp`   | quantum chemistry                  | enormous straight-line blocks re-executed per iteration |
//! | `gcc`     | GNU C compiler                     | ~250KB over hundreds of procs, pass phases + rare helpers |
//! | `li`      | lisp interpreter                   | small dispatch-loop interpreter, stack + cons-cell chasing |
//! | `mat300`  | matrix multiplication              | ~1KB triple loop, row- and column-strided matrices |
//! | `nasa7`   | NASA Ames FORTRAN kernels          | seven small vector kernels in rotation |
//! | `spice`   | circuit simulation                 | ~170KB device-model phases, sparse scattered data |
//! | `tomcatv` | vectorized mesh generation         | few small loops over mesh-sized strided arrays |
//!
//! The integer/mixed programs are instances of the phased-application
//! generator ([`crate::AppParams`]); the numeric kernels are bespoke loop
//! nests. Knob values were calibrated so the miss-rate *shapes* of the
//! paper's figures hold (see `EXPERIMENTS.md`).

use dynex_trace::Trace;

use crate::app::AppParams;
use crate::data::DataPattern;
use crate::program::{Program, Stmt};
use crate::ProgramBuilder;

/// Data segment base.
const DATA_BASE: u32 = 0x1000_0000;

/// A named synthetic benchmark.
#[derive(Debug, Clone)]
pub struct Profile {
    name: &'static str,
    description: &'static str,
    program: Program,
}

impl Profile {
    /// Short name (matches the paper's Figure 2).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description (paraphrasing Figure 2).
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Generates the first `n_refs` references of this profile.
    pub fn trace(&self, n_refs: usize) -> Trace {
        self.program.trace(n_refs)
    }
}

/// Names of all ten profiles, in the paper's order.
pub const NAMES: [&str; 10] = [
    "doduc", "eqntott", "espresso", "fpppp", "gcc", "li", "mat300", "nasa7", "spice", "tomcatv",
];

/// Builds every profile.
pub fn all() -> Vec<Profile> {
    NAMES
        .iter()
        .map(|n| profile(n).expect("NAMES are all buildable"))
        .collect()
}

/// Builds one profile by name.
pub fn profile(name: &str) -> Option<Profile> {
    let (description, program) = match name {
        "doduc" => ("Monte Carlo simulation", doduc()),
        "eqntott" => ("conversion from equation to truth table", eqntott()),
        "espresso" => ("minimization of boolean functions", espresso()),
        "fpppp" => ("quantum chemistry calculations", fpppp()),
        "gcc" => ("GNU C compiler", gcc()),
        "li" => ("lisp interpreter", li()),
        "mat300" => ("matrix multiplication", mat300()),
        "nasa7" => ("NASA Ames FORTRAN Kernels", nasa7()),
        "spice" => ("circuit simulation", spice()),
        "tomcatv" => ("vectorized mesh generation", tomcatv()),
        _ => return None,
    };
    Some(Profile {
        name: NAMES.iter().find(|&&n| n == name)?,
        description,
        program,
    })
}

/// `gcc`: many compilation passes over a very large text segment; each pass
/// is a hot walk loop with rare excursions into pass-specific helpers.
fn gcc() -> Program {
    let mut p = AppParams::new(0x9cc);
    p.phases = 18;
    p.inner_trips = (15, 60);
    p.body_words = (15, 40);
    p.hot_helpers_per_phase = 2;
    p.hot_helper_words = (60, 200);
    p.rare_helpers_per_phase = 13;
    p.rare_helper_words = (80, 240);
    p.rare_call_prob = 0.06;
    p.frame_words = 3;
    p.data_patterns = vec![
        DataPattern::Chase {
            base: DATA_BASE,
            len_words: 2_500,
            perm_seed: 11,
        },
        DataPattern::Hot {
            base: DATA_BASE + 0x100000,
            len_words: 512,
        },
    ];
    p.body_data = vec![(0, 1, 0.25), (1, 2, 0.4)];
    p.build()
}

/// `spice`: device-model evaluation phases plus a sparse solve, over a large
/// text segment; scattered matrix data.
fn spice() -> Program {
    let mut p = AppParams::new(0x591c);
    p.phases = 12;
    p.inner_trips = (20, 80);
    p.body_words = (15, 45);
    p.hot_helpers_per_phase = 2;
    p.hot_helper_words = (80, 260);
    p.rare_helpers_per_phase = 12;
    p.rare_helper_words = (60, 220);
    p.rare_call_prob = 0.06;
    p.frame_words = 4;
    p.data_patterns = vec![
        DataPattern::Chase {
            base: DATA_BASE,
            len_words: 3_000,
            perm_seed: 17,
        },
        DataPattern::RandomIn {
            base: DATA_BASE + 0x100000,
            len_words: 14_000,
        },
    ];
    p.body_data = vec![(0, 2, 0.4), (1, 1, 0.2)];
    p.build()
}

/// `doduc`: Monte Carlo physics phases with mid-size numeric blocks and
/// table lookups.
fn doduc() -> Program {
    let mut p = AppParams::new(0xd0d0c);
    p.phases = 10;
    p.inner_trips = (10, 45);
    p.body_words = (25, 70);
    p.hot_helpers_per_phase = 3;
    p.hot_helper_words = (100, 300);
    p.rare_helpers_per_phase = 8;
    p.rare_helper_words = (60, 180);
    p.rare_call_prob = 0.05;
    p.frame_words = 4;
    p.data_patterns = vec![
        DataPattern::RandomIn {
            base: DATA_BASE,
            len_words: 4_000,
        },
        DataPattern::Hot {
            base: DATA_BASE + 0x40000,
            len_words: 512,
        },
    ];
    p.body_data = vec![(0, 1, 0.2), (1, 2, 0.45)];
    p.build()
}

/// `espresso`: cube-iteration phases over moderate code, pointer-chased set
/// representations.
fn espresso() -> Program {
    let mut p = AppParams::new(0xe59e);
    p.phases = 8;
    p.inner_trips = (15, 60);
    p.body_words = (10, 30);
    p.hot_helpers_per_phase = 2;
    p.hot_helper_words = (60, 180);
    p.rare_helpers_per_phase = 8;
    p.rare_helper_words = (50, 150);
    p.rare_call_prob = 0.05;
    p.frame_words = 2;
    p.data_patterns = vec![
        DataPattern::Chase {
            base: DATA_BASE,
            len_words: 2_000,
            perm_seed: 5,
        },
        DataPattern::Stride {
            base: DATA_BASE + 0x80000,
            len_words: 10_000,
            stride_words: 3,
        },
    ];
    p.body_data = vec![(0, 1, 0.3), (1, 1, 0.1)];
    p.build()
}

/// `li`: a small interpreter: one dominant dispatch phase over a compact
/// handler set, heavy stack traffic and heap chasing.
fn li() -> Program {
    let mut p = AppParams::new(0x11);
    p.phases = 5;
    p.inner_trips = (30, 120);
    p.body_words = (15, 25);
    p.hot_helpers_per_phase = 2;
    p.hot_helper_words = (40, 140);
    p.rare_helpers_per_phase = 8;
    p.rare_helper_words = (40, 120);
    p.rare_call_prob = 0.05;
    p.frame_words = 3;
    p.data_patterns = vec![
        DataPattern::Chase {
            base: DATA_BASE,
            len_words: 3_000,
            perm_seed: 13,
        },
        DataPattern::Hot {
            base: DATA_BASE + 0x100000,
            len_words: 256,
        },
    ];
    p.body_data = vec![(0, 2, 0.35), (1, 1, 0.3)];
    p.build()
}

/// `eqntott`: a tiny hot sort/compare kernel streaming through large bit
/// vectors; almost no cold code.
fn eqntott() -> Program {
    let mut p = AppParams::new(0xe960);
    p.phases = 3;
    p.inner_trips = (40, 160);
    p.body_words = (8, 20);
    p.hot_helpers_per_phase = 1;
    p.hot_helper_words = (15, 50);
    p.rare_helpers_per_phase = 4;
    p.rare_helper_words = (30, 100);
    p.rare_call_prob = 0.05;
    p.frame_words = 2;
    p.data_patterns = vec![
        DataPattern::Stride {
            base: DATA_BASE,
            len_words: 12_000,
            stride_words: 1,
        },
        DataPattern::RandomIn {
            base: DATA_BASE + 0x100000,
            len_words: 4_000,
        },
    ];
    p.body_data = vec![(0, 2, 0.1), (1, 1, 0.4)];
    p.build()
}

/// `fpppp`: enormous straight-line integral blocks re-executed every
/// iteration — at cache sizes below the block footprint, every pass through
/// a block alternates its lines with the other blocks' aliased lines, the
/// within-loop pattern at whole-program scale.
fn fpppp() -> Program {
    let mut b = ProgramBuilder::new(0xf999);
    let integrals = b.add_pattern(DataPattern::Stride {
        base: DATA_BASE,
        len_words: 20_000,
        stride_words: 2,
    });
    let scratch = b.add_pattern(DataPattern::Hot {
        base: DATA_BASE + 20_000 * 4 + 0x1a4,
        len_words: 1024,
    });
    let giant1 = b.add_procedure(vec![
        Stmt::straight(1800),
        Stmt::data(scratch, 40, 0.45),
        Stmt::straight(1800),
        Stmt::reads(integrals, 50),
        Stmt::straight(1300),
    ]);
    let giant2 = b.add_procedure(vec![
        Stmt::straight(1400),
        Stmt::data(scratch, 30, 0.45),
        Stmt::straight(1400),
        Stmt::reads(integrals, 40),
    ]);
    let giant3 = b.add_procedure(vec![
        Stmt::straight(1100),
        Stmt::reads(integrals, 30),
        Stmt::straight(900),
    ]);
    let small = b.add_procedure(vec![Stmt::straight(80), Stmt::data(scratch, 10, 0.3)]);
    let main = b.add_procedure(vec![Stmt::loop_n(
        1_000_000,
        vec![
            Stmt::straight(40),
            Stmt::call(giant1),
            Stmt::call(small),
            Stmt::call(giant2),
            Stmt::loop_n(2, vec![Stmt::call(giant3), Stmt::call(small)]),
        ],
    )]);
    b.build(main).expect("fpppp profile is valid")
}

/// `mat300`: 300x300 matrix multiply — a ~1KB triple loop; the column-walked
/// operand provides the strided data misses, instruction misses are
/// essentially cold-start only.
fn mat300() -> Program {
    let mut b = ProgramBuilder::new(0x300);
    let n = 320u32;
    let a_row = b.add_pattern(DataPattern::Stride {
        base: DATA_BASE,
        len_words: n * n,
        stride_words: 1,
    });
    let b_col = b.add_pattern(DataPattern::Stride {
        base: DATA_BASE + 4 * n * n,
        len_words: n * n,
        stride_words: n,
    });
    let c_cell = b.add_pattern(DataPattern::Hot {
        base: DATA_BASE + 8 * n * n,
        len_words: 64,
    });
    let inner = vec![
        Stmt::straight(4),
        Stmt::reads(a_row, 1),
        Stmt::reads(b_col, 1),
        Stmt::data(c_cell, 1, 0.5),
        Stmt::straight(3),
    ];
    let main = b.add_procedure(vec![Stmt::loop_n(
        1_000_000,
        vec![
            Stmt::straight(6),
            Stmt::loop_n(30, vec![Stmt::straight(3), Stmt::loop_n(30, inner.clone())]),
        ],
    )]);
    b.build(main).expect("mat300 profile is valid")
}

/// `nasa7`: seven small FORTRAN kernels (FFT, Cholesky, block tridiagonal,
/// ...) run in rotation — each a tiny loop nest over large strided arrays.
fn nasa7() -> Program {
    let mut b = ProgramBuilder::new(0xa5a7);
    let mut kernels = Vec::new();
    for k in 0..7u32 {
        // Sequential bases with irregular pads: round offsets would alias
        // at every cache size.
        let array = b.add_pattern(DataPattern::Stride {
            base: DATA_BASE + k * (16_000 * 4 + 0x2e4),
            len_words: 16_000,
            stride_words: [1, 7, 1, 16, 1, 64, 2][k as usize],
        });
        let inner = vec![
            Stmt::straight(5 + k % 3),
            Stmt::data(array, 2, 0.35),
            Stmt::straight(3),
        ];
        kernels.push(b.add_procedure_with_frame(
            vec![Stmt::loop_n(
                10,
                vec![Stmt::straight(4), Stmt::loop_n(25, inner)],
            )],
            2,
        ));
    }
    let mut rotation = vec![Stmt::straight(10)];
    rotation.extend(kernels.iter().map(|&k| Stmt::call(k)));
    let main = b.add_procedure(vec![Stmt::loop_n(1_000_000, rotation)]);
    b.build(main).expect("nasa7 profile is valid")
}

/// `tomcatv`: vectorized mesh generation — a handful of small loop nests
/// sweeping large mesh arrays with row and column strides.
fn tomcatv() -> Program {
    let mut b = ProgramBuilder::new(0x70ca);
    let n = 300u32;
    let mesh_x = b.add_pattern(DataPattern::Stride {
        base: DATA_BASE,
        len_words: n * n,
        stride_words: 1,
    });
    let mesh_y = b.add_pattern(DataPattern::Stride {
        base: DATA_BASE + 4 * n * n,
        len_words: n * n,
        stride_words: n,
    });
    let residual = b.add_pattern(DataPattern::Hot {
        base: DATA_BASE + 8 * n * n,
        len_words: 128,
    });
    let sweep1 = b.add_procedure(vec![Stmt::loop_n(
        40,
        vec![
            Stmt::straight(6),
            Stmt::reads(mesh_x, 3),
            Stmt::reads(mesh_y, 2),
            Stmt::data(residual, 1, 0.5),
        ],
    )]);
    let sweep2 = b.add_procedure(vec![Stmt::loop_n(
        40,
        vec![
            Stmt::straight(8),
            Stmt::reads(mesh_y, 3),
            Stmt::data(mesh_x, 2, 0.6),
        ],
    )]);
    let relax = b.add_procedure(vec![Stmt::loop_n(
        20,
        vec![
            Stmt::straight(5),
            Stmt::data(residual, 2, 0.5),
            Stmt::reads(mesh_x, 1),
        ],
    )]);
    let main = b.add_procedure(vec![Stmt::loop_n(
        1_000_000,
        vec![
            Stmt::straight(10),
            Stmt::call(sweep1),
            Stmt::call(sweep2),
            Stmt::call(relax),
        ],
    )]);
    b.build(main).expect("tomcatv profile is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_trace::TraceStats;

    #[test]
    fn all_profiles_build_and_generate() {
        for p in all() {
            let trace = p.trace(5_000);
            assert_eq!(trace.len(), 5_000, "{}", p.name());
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        for name in NAMES {
            let a = profile(name).unwrap().trace(3_000);
            let b = profile(name).unwrap().trace(3_000);
            assert_eq!(a, b, "{name}");
        }
    }

    #[test]
    fn unknown_profile_is_none() {
        assert!(profile("quake").is_none());
    }

    #[test]
    fn footprints_are_distinctive() {
        let code_kb = |n: &str| profile(n).unwrap().program().code_bytes() / 1024;
        assert!(code_kb("gcc") > 100, "gcc code {}KB", code_kb("gcc"));
        assert!(code_kb("spice") > 60, "spice code {}KB", code_kb("spice"));
        assert!(code_kb("mat300") < 4, "mat300 code {}KB", code_kb("mat300"));
        assert!(
            code_kb("tomcatv") < 8,
            "tomcatv code {}KB",
            code_kb("tomcatv")
        );
        assert!(code_kb("fpppp") > 30, "fpppp code {}KB", code_kb("fpppp"));
        assert!(
            code_kb("eqntott") < 16,
            "eqntott code {}KB",
            code_kb("eqntott")
        );
    }

    #[test]
    fn streams_mix_instructions_and_data() {
        for name in ["gcc", "li", "mat300", "eqntott", "fpppp"] {
            let stats = TraceStats::from_accesses(profile(name).unwrap().trace(50_000).iter());
            let frac = stats.instruction_fraction();
            assert!(
                (0.5..1.0).contains(&frac),
                "{name}: instruction fraction {frac}"
            );
            assert!(stats.data_refs() > 0, "{name} has data refs");
        }
    }

    #[test]
    fn descriptions_match_figure_2() {
        assert_eq!(profile("gcc").unwrap().description(), "GNU C compiler");
        assert_eq!(profile("li").unwrap().description(), "lisp interpreter");
        assert_eq!(
            profile("tomcatv").unwrap().description(),
            "vectorized mesh generation"
        );
    }
}
