//! A parameterized "phased application" generator.
//!
//! Most of the SPEC'89 integer/mixed benchmarks share one dynamic shape:
//! execution is dominated by a rotation of *phases*, each a hot inner loop
//! with a small, stable body and one or two fixed callees, plus occasional
//! excursions into a pool of rarely used helper procedures. That shape is
//! exactly what produces the paper's three conflict patterns:
//!
//! * hot body vs. its fixed callees — *conflict within a loop* `(a b)^n`,
//! * hot loop vs. rare helpers — *conflict between loop levels* `(a^n b)`,
//! * one phase's hot code vs. another's — *conflict between loops*
//!   `(a^n b^n)^m`.
//!
//! [`AppParams`] exposes the knobs (footprint, phase count, rare-call
//! probability, block sizes) that the per-benchmark profiles in
//! [`crate::spec`] tune to match each program's published characterization.

use dynex_cache::SplitMix64;

use crate::data::DataPattern;
use crate::program::{ProcId, Program, Stmt};
use crate::ProgramBuilder;

/// Knobs for the phased application generator.
///
/// Use [`AppParams::new`] for defaults, adjust fields, then
/// [`AppParams::build`].
#[derive(Debug, Clone)]
pub struct AppParams {
    /// PRNG seed for structure, layout, and data.
    pub seed: u64,
    /// Number of phases in the main rotation.
    pub phases: usize,
    /// Inner-loop trip range per phase visit.
    pub inner_trips: (u32, u32),
    /// Instruction words in the hot inner-loop body (split around calls).
    pub body_words: (u32, u32),
    /// Fixed hot callees per phase, called every iteration.
    pub hot_helpers_per_phase: usize,
    /// Size range of hot callees, in words.
    pub hot_helper_words: (u32, u32),
    /// Rarely-called helper procedures per phase.
    pub rare_helpers_per_phase: usize,
    /// Size range of rare helpers, in words.
    pub rare_helper_words: (u32, u32),
    /// Probability an inner iteration takes a rare-helper excursion.
    pub rare_call_prob: f64,
    /// Stack frame words for procedures (0 disables stack traffic).
    pub frame_words: u32,
    /// Data patterns available to the program (registered in order). Their
    /// bases are relocated onto a sequential, irregularly padded layout at
    /// build time, like a real allocator would place them.
    pub data_patterns: Vec<DataPattern>,
    /// Data references per inner iteration as `(pattern index, count,
    /// write fraction)` triples.
    pub body_data: Vec<(usize, u32, f64)>,
    /// Maximum random padding between procedures, in words.
    pub layout_padding: u32,
    /// Scatter procedures across the text segment (see
    /// [`crate::ProgramBuilder::shuffle_layout`]); on by default — phased
    /// applications model large multi-module programs.
    pub shuffle_layout: bool,
}

impl AppParams {
    /// Reasonable defaults for a mid-size integer application.
    pub fn new(seed: u64) -> AppParams {
        AppParams {
            seed,
            phases: 8,
            inner_trips: (10, 40),
            body_words: (10, 30),
            hot_helpers_per_phase: 2,
            hot_helper_words: (30, 120),
            rare_helpers_per_phase: 12,
            rare_helper_words: (60, 250),
            rare_call_prob: 0.1,
            frame_words: 3,
            data_patterns: Vec::new(),
            body_data: Vec::new(),
            layout_padding: 8,
            shuffle_layout: true,
        }
    }

    /// Builds the program: a main loop rotating over the phases.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate program-construction invariants
    /// (e.g. probabilities outside `[0, 1]`); all built-in profiles are
    /// valid by construction.
    pub fn build(&self) -> Program {
        let mut b = ProgramBuilder::new(self.seed);
        b.max_padding(self.layout_padding);
        b.shuffle_layout(self.shuffle_layout);
        let mut rng = SplitMix64::new(self.seed ^ 0xa99);

        // Relocate data regions sequentially with irregular padding: round
        // power-of-two spacing between regions would make them alias at
        // *every* cache size in a sweep, an artifact no real allocator
        // produces.
        let mut data_cursor: u32 = 0x1000_0000;
        let pattern_ids: Vec<usize> = self
            .data_patterns
            .iter()
            .map(|p| {
                let relocated = relocate(p, &mut data_cursor, &mut rng);
                b.add_pattern(relocated)
            })
            .collect();

        let mut phase_procs = Vec::with_capacity(self.phases);
        for _ in 0..self.phases {
            // Rare helper pool for this phase.
            let rare: Vec<ProcId> = (0..self.rare_helpers_per_phase)
                .map(|_| {
                    let len = draw(&mut rng, self.rare_helper_words);
                    b.add_procedure_with_frame(vec![Stmt::straight(len)], self.frame_words)
                })
                .collect();
            // Fixed hot callees.
            let hot: Vec<ProcId> = (0..self.hot_helpers_per_phase)
                .map(|_| {
                    let len = draw(&mut rng, self.hot_helper_words);
                    b.add_procedure_with_frame(vec![Stmt::straight(len)], self.frame_words)
                })
                .collect();

            // Inner loop body: straight runs around the hot calls, data
            // references, and a low-probability excursion into the rare pool.
            let mut body = Vec::new();
            body.push(Stmt::straight(draw(&mut rng, self.body_words)));
            for (k, &h) in hot.iter().enumerate() {
                body.push(Stmt::call(h));
                if k + 1 < hot.len() {
                    body.push(Stmt::straight(draw(&mut rng, self.body_words) / 2 + 1));
                }
            }
            for &(pattern, count, wf) in &self.body_data {
                body.push(Stmt::data(pattern_ids[pattern], count, wf));
            }
            if !rare.is_empty() && self.rare_call_prob > 0.0 {
                body.push(Stmt::IfElse {
                    prob_then: self.rare_call_prob,
                    then_branch: dispatch_tree(&rare),
                    else_branch: vec![Stmt::straight(2)],
                });
            }
            body.push(Stmt::straight(draw(&mut rng, self.body_words) / 2 + 1));

            let phase = b.add_procedure_with_frame(
                vec![Stmt::Loop {
                    trips: crate::Trips::Uniform(self.inner_trips.0, self.inner_trips.1),
                    body,
                }],
                self.frame_words,
            );
            phase_procs.push(phase);
        }

        let mut rotation = vec![Stmt::straight(10)];
        rotation.extend(phase_procs.iter().map(|&p| Stmt::call(p)));
        let main = b.add_procedure(vec![Stmt::loop_n(1_000_000, rotation)]);
        b.build(main).expect("AppParams produce valid programs")
    }
}

/// Re-bases `pattern` at the cursor and advances it by the region size plus
/// an irregular pad (word-aligned, never a neat power of two).
fn relocate(pattern: &DataPattern, cursor: &mut u32, rng: &mut SplitMix64) -> DataPattern {
    let base = *cursor;
    let mut relocated = pattern.clone();
    let len_words = match &mut relocated {
        DataPattern::Stride {
            base: b, len_words, ..
        }
        | DataPattern::RandomIn { base: b, len_words }
        | DataPattern::Chase {
            base: b, len_words, ..
        }
        | DataPattern::Hot { base: b, len_words } => {
            *b = base;
            *len_words
        }
    };
    let pad_words = 64 + rng.below(4096) as u32;
    *cursor = base + (len_words + pad_words) * 4;
    relocated
}

fn draw(rng: &mut SplitMix64, (lo, hi): (u32, u32)) -> u32 {
    if hi <= lo {
        lo
    } else {
        lo + rng.below((hi - lo + 1) as u64) as u32
    }
}

/// A balanced branch tree dispatching to exactly one of `targets`.
pub(crate) fn dispatch_tree(targets: &[ProcId]) -> Vec<Stmt> {
    match targets.len() {
        0 => vec![],
        1 => vec![Stmt::call(targets[0])],
        n => {
            let mid = n / 2;
            vec![Stmt::IfElse {
                prob_then: mid as f64 / n as f64,
                then_branch: dispatch_tree(&targets[..mid]),
                else_branch: dispatch_tree(&targets[mid..]),
            }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_generates() {
        let app = AppParams::new(1).build();
        let t = app.trace(10_000);
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn deterministic() {
        let a = AppParams::new(2).build().trace(5_000);
        let b = AppParams::new(2).build().trace(5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn footprint_scales_with_pool_sizes() {
        let small = AppParams::new(3).build().code_bytes();
        let mut params = AppParams::new(3);
        params.rare_helpers_per_phase = 40;
        params.phases = 16;
        let big = params.build().code_bytes();
        assert!(big > 2 * small, "{big} vs {small}");
    }

    #[test]
    fn data_patterns_emit_data_refs() {
        let mut params = AppParams::new(4);
        params.data_patterns = vec![DataPattern::Stride {
            base: 0x1000_0000,
            len_words: 1000,
            stride_words: 1,
        }];
        params.body_data = vec![(0, 2, 0.5)];
        let t = params.build().trace(20_000);
        let data = t.iter().filter(|a| a.is_data()).count();
        assert!(data > 1000, "expected data traffic, got {data}");
    }

    #[test]
    fn rare_prob_zero_emits_no_branchy_excursions() {
        let mut params = AppParams::new(5);
        params.rare_call_prob = 0.0;
        // Still builds and runs.
        let t = params.build().trace(2_000);
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn hot_loops_dominate_the_stream() {
        // The defining property: the stream must be loopy, i.e. a large
        // fraction of instruction fetches are re-fetches of recently seen
        // addresses. Measure re-reference rate within a 4K-word window.
        let app = AppParams::new(6).build();
        let t = app.trace(100_000);
        let mut seen = std::collections::HashMap::new();
        let mut rerefs = 0usize;
        let mut total = 0usize;
        for (i, a) in t.iter().enumerate() {
            if a.is_instruction() {
                total += 1;
                if let Some(&j) = seen.get(&a.word_addr()) {
                    if i - j < 50_000 {
                        rerefs += 1;
                    }
                }
                seen.insert(a.word_addr(), i);
            }
        }
        let rate = rerefs as f64 / total as f64;
        assert!(
            rate > 0.8,
            "stream should be dominated by loops, re-ref rate {rate}"
        );
    }
}
