//! Data reference patterns.
//!
//! Each [`DataPattern`] owns a region of the data segment and a generation
//! rule; the per-execution cursor state lives in [`DataSpace`] so a
//! [`crate::Program`] stays immutable and shareable.

use dynex_cache::SplitMix64;

/// A data access pattern over a region of the address space.
///
/// All addresses are byte addresses (word aligned); lengths are in words
/// (4 bytes).
#[derive(Debug, Clone, PartialEq)]
pub enum DataPattern {
    /// Strided sequential walk: cursor advances by `stride_words`, wrapping
    /// at the region end — array sweeps (eqntott), matrix column walks
    /// (mat300, tomcatv), vector kernels (nasa7).
    Stride {
        /// First byte address of the region (word aligned).
        base: u32,
        /// Region length in words.
        len_words: u32,
        /// Cursor advance per reference, in words.
        stride_words: u32,
    },
    /// Uniformly random references within the region — hash tables and
    /// scattered heap accesses (gcc, spice).
    RandomIn {
        /// First byte address of the region (word aligned).
        base: u32,
        /// Region length in words.
        len_words: u32,
    },
    /// Pointer chasing: a fixed affine permutation walk over the region —
    /// list and tree traversal (li, espresso). Poor spatial locality,
    /// perfect temporal periodicity.
    Chase {
        /// First byte address of the region (word aligned).
        base: u32,
        /// Region length in words.
        len_words: u32,
        /// Seed fixing the permutation.
        perm_seed: u64,
    },
    /// A small constantly reused region — locals, temporaries, globals.
    Hot {
        /// First byte address of the region (word aligned).
        base: u32,
        /// Region length in words.
        len_words: u32,
    },
}

impl DataPattern {
    fn len_words(&self) -> u32 {
        match self {
            DataPattern::Stride { len_words, .. }
            | DataPattern::RandomIn { len_words, .. }
            | DataPattern::Chase { len_words, .. }
            | DataPattern::Hot { len_words, .. } => *len_words,
        }
    }

    fn base(&self) -> u32 {
        match self {
            DataPattern::Stride { base, .. }
            | DataPattern::RandomIn { base, .. }
            | DataPattern::Chase { base, .. }
            | DataPattern::Hot { base, .. } => *base,
        }
    }

    /// Region size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len_words() as u64 * 4
    }
}

/// Per-execution cursor state for a program's data patterns.
///
/// Created by [`crate::Executor`]; cursors persist across program restarts so
/// long traces keep walking their arrays instead of replaying the first pass.
#[derive(Debug, Clone)]
pub struct DataSpace {
    cursors: Vec<u32>,
    /// Precomputed `(multiplier, offset)` for `Chase` patterns.
    chase_params: Vec<Option<(u32, u32)>>,
    rng: SplitMix64,
}

impl DataSpace {
    /// Fresh cursors for `patterns`, with `seed` driving the random
    /// patterns.
    ///
    /// # Panics
    ///
    /// Panics if any pattern region is empty.
    pub fn new(patterns: &[DataPattern], seed: u64) -> DataSpace {
        let chase_params = patterns
            .iter()
            .map(|p| match p {
                DataPattern::Chase {
                    perm_seed,
                    len_words,
                    ..
                } => {
                    assert!(*len_words > 0, "data pattern region must be nonempty");
                    let mut mix = SplitMix64::new(*perm_seed);
                    // Odd multiplier for a full-period-ish affine walk.
                    let a = (((mix.next_u64() as u32) | 1) % (*len_words).max(2)) | 1;
                    let c = (mix.next_u64() as u32) % len_words;
                    Some((a, c))
                }
                other => {
                    assert!(
                        other.len_words() > 0,
                        "data pattern region must be nonempty"
                    );
                    None
                }
            })
            .collect();
        DataSpace {
            cursors: vec![0; patterns.len()],
            chase_params,
            rng: SplitMix64::new(seed),
        }
    }

    /// Next byte address from pattern `index` of `patterns`.
    ///
    /// `patterns` must be the list this space was created for.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn next_addr(&mut self, patterns: &[DataPattern], index: usize) -> u32 {
        let pattern = &patterns[index];
        let len = pattern.len_words();
        let word = match pattern {
            DataPattern::Stride { stride_words, .. } => {
                let w = self.cursors[index];
                self.cursors[index] = (w + *stride_words) % len;
                w
            }
            DataPattern::RandomIn { .. } => self.rng.below(len as u64) as u32,
            DataPattern::Chase { .. } => {
                let w = self.cursors[index];
                let (a, c) = self.chase_params[index].expect("chase params precomputed");
                self.cursors[index] = (a.wrapping_mul(w).wrapping_add(c)) % len;
                w
            }
            DataPattern::Hot { .. } => self.rng.below(len as u64) as u32,
        };
        pattern.base() + word * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_walks_and_wraps() {
        let patterns = vec![DataPattern::Stride {
            base: 0x1000,
            len_words: 4,
            stride_words: 1,
        }];
        let mut space = DataSpace::new(&patterns, 0);
        let addrs: Vec<u32> = (0..6).map(|_| space.next_addr(&patterns, 0)).collect();
        assert_eq!(addrs, vec![0x1000, 0x1004, 0x1008, 0x100c, 0x1000, 0x1004]);
    }

    #[test]
    fn strided_columns() {
        let patterns = vec![DataPattern::Stride {
            base: 0,
            len_words: 100,
            stride_words: 10,
        }];
        let mut space = DataSpace::new(&patterns, 0);
        let addrs: Vec<u32> = (0..11).map(|_| space.next_addr(&patterns, 0)).collect();
        assert_eq!(addrs[0], 0);
        assert_eq!(addrs[1], 40);
        assert_eq!(addrs[10], 0, "wraps after covering the region");
    }

    #[test]
    fn random_stays_in_region() {
        let patterns = vec![DataPattern::RandomIn {
            base: 0x2000,
            len_words: 16,
        }];
        let mut space = DataSpace::new(&patterns, 7);
        for _ in 0..500 {
            let a = space.next_addr(&patterns, 0);
            assert!((0x2000..0x2000 + 64).contains(&a));
            assert_eq!(a % 4, 0);
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let patterns = vec![DataPattern::RandomIn {
            base: 0,
            len_words: 64,
        }];
        let mut a = DataSpace::new(&patterns, 9);
        let mut b = DataSpace::new(&patterns, 9);
        for _ in 0..100 {
            assert_eq!(a.next_addr(&patterns, 0), b.next_addr(&patterns, 0));
        }
    }

    #[test]
    fn chase_visits_many_distinct_words() {
        let patterns = vec![DataPattern::Chase {
            base: 0,
            len_words: 64,
            perm_seed: 3,
        }];
        let mut space = DataSpace::new(&patterns, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(space.next_addr(&patterns, 0));
        }
        assert!(
            seen.len() > 8,
            "chase should wander, visited {}",
            seen.len()
        );
    }

    #[test]
    fn independent_cursors_per_pattern() {
        let patterns = vec![
            DataPattern::Stride {
                base: 0,
                len_words: 8,
                stride_words: 1,
            },
            DataPattern::Stride {
                base: 0x100,
                len_words: 8,
                stride_words: 1,
            },
        ];
        let mut space = DataSpace::new(&patterns, 0);
        assert_eq!(space.next_addr(&patterns, 0), 0);
        assert_eq!(space.next_addr(&patterns, 1), 0x100);
        assert_eq!(space.next_addr(&patterns, 0), 4);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_region_rejected() {
        DataSpace::new(
            &[DataPattern::Hot {
                base: 0,
                len_words: 0,
            }],
            0,
        );
    }

    #[test]
    fn size_bytes() {
        let p = DataPattern::Hot {
            base: 0,
            len_words: 32,
        };
        assert_eq!(p.size_bytes(), 128);
    }
}
