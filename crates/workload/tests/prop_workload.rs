//! Property tests: the workload generator produces well-formed, reproducible
//! streams for arbitrary (valid) parameter settings, not just the ten
//! calibrated profiles.

// Gated: requires the `proptest` feature (and the proptest dev-dependency,
// unavailable in hermetic builds) to compile.
#![cfg(feature = "proptest")]

use dynex_trace::TraceStats;
use dynex_workload::{AppParams, DataPattern, ProgramBuilder, Stmt};
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = AppParams> {
    (
        any::<u64>(),    // seed
        1usize..6,       // phases
        1u32..20,        // body lo
        1usize..3,       // hot helpers
        0usize..6,       // rare helpers
        0.0f64..0.3,     // rare prob
        0u32..5,         // frame words
        prop::bool::ANY, // shuffle
    )
        .prop_map(
            |(seed, phases, body_lo, hot, rare, rare_prob, frame, shuffle)| {
                let mut p = AppParams::new(seed);
                p.phases = phases;
                p.body_words = (body_lo, body_lo + 10);
                p.hot_helpers_per_phase = hot;
                p.rare_helpers_per_phase = rare;
                p.rare_call_prob = rare_prob;
                p.frame_words = frame;
                p.shuffle_layout = shuffle;
                p.data_patterns = vec![
                    DataPattern::Stride {
                        base: 0,
                        len_words: 1000,
                        stride_words: 3,
                    },
                    DataPattern::Hot {
                        base: 0,
                        len_words: 64,
                    },
                ];
                p.body_data = vec![(0, 1, 0.3), (1, 1, 0.5)];
                p
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any parameter combination builds, generates exactly the requested
    /// number of references, and does so deterministically.
    #[test]
    fn apps_generate_exact_deterministic_streams(params in arb_app(), n in 1usize..5_000) {
        let program = params.build();
        let a = program.trace(n);
        prop_assert_eq!(a.len(), n);
        let b = params.build().trace(n);
        prop_assert_eq!(a, b);
    }

    /// Instruction fetches land in the text segment; data lands in the data
    /// or stack segments; nothing is emitted outside them.
    #[test]
    fn addresses_stay_in_their_segments(params in arb_app()) {
        let program = params.build();
        let trace = program.trace(3_000);
        for access in trace.iter() {
            if access.is_instruction() {
                prop_assert!(
                    (0x0040_0000..0x1000_0000).contains(&access.addr()),
                    "instruction outside text: {:#x}",
                    access.addr()
                );
            } else {
                let a = access.addr();
                prop_assert!(
                    (0x1000_0000..0x4000_0000).contains(&a) || a >= 0x7f00_0000,
                    "data outside data/stack: {a:#x}"
                );
            }
        }
    }

    /// Shuffled and sequential layouts contain the same procedures (same
    /// code bytes), just placed differently.
    #[test]
    fn shuffle_preserves_code_size(params in arb_app()) {
        let mut sequential = params.clone();
        sequential.shuffle_layout = false;
        let mut shuffled = params;
        shuffled.shuffle_layout = true;
        prop_assert_eq!(
            sequential.build().code_bytes(),
            shuffled.build().code_bytes()
        );
    }

    /// The stream is loop-dominated: a high fraction of instruction fetches
    /// are re-references (the property dynamic exclusion depends on).
    #[test]
    fn streams_are_loopy(params in arb_app()) {
        let program = params.build();
        let trace = program.trace(20_000);
        let stats = TraceStats::from_accesses(trace.iter());
        // Footprint far below fetch count => heavy re-reference.
        prop_assert!(
            stats.instruction_footprint_words() * 2 < stats.fetches(),
            "footprint {} vs fetches {}",
            stats.instruction_footprint_words(),
            stats.fetches()
        );
    }
}

/// Pinned fingerprint of the golden trace below (see that test's comment).
const GOLDEN_HASH: u64 = 0x93c9_5d39_0132_0e7c;

/// Deterministic regression: a hand-built program emits the same trace on
/// every run of every build (golden hash).
#[test]
fn golden_trace_is_stable() {
    let mut b = ProgramBuilder::new(0xfeed_beef);
    let arr = b.add_pattern(DataPattern::Stride {
        base: 0x1000_0000,
        len_words: 97,
        stride_words: 5,
    });
    let leaf = b.add_procedure_with_frame(vec![Stmt::straight(7), Stmt::reads(arr, 2)], 2);
    let main = b.add_procedure(vec![Stmt::loop_n(
        50,
        vec![
            Stmt::straight(3),
            Stmt::call(leaf),
            Stmt::IfElse {
                prob_then: 0.4,
                then_branch: vec![Stmt::straight(2)],
                else_branch: vec![Stmt::straight(5)],
            },
        ],
    )]);
    let program = b.build(main).unwrap();
    let trace = program.trace(2_000);

    // FNV-1a over the packed words: cheap, stable fingerprint.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for p in trace.as_packed() {
        hash ^= p.to_raw() as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    // If generation semantics change intentionally, update this constant
    // (run with --nocapture to see the new value) and note it in
    // CHANGELOG.md — every calibrated figure shifts with it.
    println!("golden trace hash: {hash:#018x}");
    assert_eq!(hash, GOLDEN_HASH);
    // Cross-run determinism (the part that must never change silently):
    let again = program.trace(2_000);
    assert_eq!(trace, again);
}
