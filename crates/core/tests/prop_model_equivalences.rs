//! Property tests: equivalences between independently implemented models.
//! Two different code paths computing the same mathematical object must
//! agree reference-for-reference — a strong guard against drift in any one
//! implementation.

// Gated: requires the `proptest` feature (and the proptest dev-dependency,
// unavailable in hermetic builds) to compile.
#![cfg(feature = "proptest")]

use dynex::{DeCache, DeHierarchy, HashedStore, HitLastStrategy, MultiStickyDeCache};
use dynex_cache::{CacheConfig, CacheSim};
use proptest::prelude::*;

fn arb_addrs() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec((0u32..512).prop_map(|w| w * 4), 1..600)
}

proptest! {
    /// The hashed hierarchy strategy keeps its hit-last bits in an L1-side
    /// table, so its L1 decisions must match a single-level `DeCache` over
    /// the same `HashedStore` — the L2 is pure content bookkeeping.
    #[test]
    fn hashed_hierarchy_l1_equals_single_level_hashed_cache(
        addrs in arb_addrs(),
        bits in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        let l1 = CacheConfig::direct_mapped(128, 4).unwrap();
        let l2 = CacheConfig::direct_mapped(1024, 4).unwrap();
        let mut hierarchy =
            DeHierarchy::new(l1, l2, HitLastStrategy::Hashed { bits_per_line: bits }).unwrap();
        let mut single = DeCache::with_store(l1, HashedStore::new(l1, bits));
        for &a in &addrs {
            prop_assert_eq!(hierarchy.access(a), single.access(a), "addr {:#x}", a);
        }
        prop_assert_eq!(hierarchy.stats(), single.stats());
    }

    /// Assume-hit and assume-miss agree whenever the L2 is so large that it
    /// never evicts AND every block has been seen before (after a warmup
    /// pass, predictions come from stored bits, not the miss default).
    #[test]
    fn l2_strategies_agree_after_warmup_in_huge_l2(addrs in arb_addrs()) {
        let l1 = CacheConfig::direct_mapped(128, 4).unwrap();
        let l2 = CacheConfig::direct_mapped(1 << 20, 4).unwrap();
        let mut hit = DeHierarchy::new(l1, l2, HitLastStrategy::AssumeHit).unwrap();
        let mut miss = DeHierarchy::new(l1, l2, HitLastStrategy::AssumeMiss).unwrap();
        // Warmup: both see every block once (defaults may differ here).
        for &a in &addrs {
            hit.access(a);
            miss.access(a);
        }
        // After warmup the stored hit-last bits may still differ (the two
        // defaults steered different FSM paths), so we do not demand
        // equality of state — only that both hierarchies satisfy the
        // exclusion/inclusion contracts they advertise.
        for &a in &addrs {
            hit.access(a);
            miss.access(a);
            prop_assert!(!(miss.l1_contains(a) && miss.l2_contains(a)));
            if hit.l1_contains(a) {
                prop_assert!(hit.l2_contains(a), "inclusive hierarchy lost {:#x}", a);
            }
        }
    }

    /// Sticky depth is monotone on the pure three-way loop: deeper counters
    /// never miss more on (abc)^n than shallower ones.
    #[test]
    fn sticky_depth_monotone_on_three_way_loop(trips in 3u32..60) {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let trace = dynex_workload::patterns::three_way_loop(0, 64, 128, trips);
        let mut last = u64::MAX;
        for depth in 1u8..=4 {
            let mut cache = MultiStickyDeCache::new(config, depth);
            let stats = dynex_cache::run(&mut cache, trace.iter());
            prop_assert!(
                stats.misses() <= last,
                "depth {depth}: {} > {last}",
                stats.misses()
            );
            last = stats.misses();
        }
    }

    /// A DE cache never reports more misses than accesses, never reports a
    /// resident block as missing twice in a row without an intervening
    /// conflict, and always serves a just-loaded block.
    #[test]
    fn de_cache_local_sanity(addrs in arb_addrs()) {
        let config = CacheConfig::direct_mapped(256, 4).unwrap();
        let mut de = DeCache::new(config);
        for &a in &addrs {
            let outcome = de.access(a);
            if outcome.is_miss() && de.contains(a) {
                // Loaded: an immediate re-access must hit.
                prop_assert!(de.access(a).is_hit());
            }
        }
        prop_assert!(de.stats().misses() <= de.stats().accesses());
    }
}
