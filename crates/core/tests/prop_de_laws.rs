//! Property tests: the inequalities and equivalences the paper's analysis
//! rests on, checked over random traces.

// Gated: requires the `proptest` feature (and the proptest dev-dependency,
// unavailable in hermetic builds) to compile.
#![cfg(feature = "proptest")]

use dynex::{
    DeCache, DeHierarchy, HashedStore, HitLastStrategy, LastLineDeCache, MultiStickyDeCache,
    OptimalDirectMapped, PerfectStore,
};
use dynex_cache::{run_addrs, CacheConfig, CacheSim, DirectMapped};
use proptest::prelude::*;

/// Word-aligned addresses in a small region over a small cache, so conflicts
/// and sticky dynamics are exercised heavily.
fn arb_trace() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec((0u32..256).prop_map(|w| w * 4), 1..400)
}

/// Loop-structured traces: nests of repeated block sequences, the patterns
/// DE is designed around.
fn arb_loopy_trace() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u32..64, 1..5), // loop body blocks
            1u32..12,                                  // trip count
        ),
        1..20,
    )
    .prop_map(|loops| {
        let mut trace = Vec::new();
        for (body, trips) in loops {
            for _ in 0..trips {
                trace.extend(body.iter().map(|&b| b * 4));
            }
        }
        trace
    })
}

fn small_config() -> CacheConfig {
    CacheConfig::direct_mapped(128, 4).unwrap()
}

proptest! {
    /// The optimal direct-mapped cache is a lower bound for the conventional
    /// one and for dynamic exclusion with any store.
    #[test]
    fn optimal_is_a_lower_bound(addrs in arb_trace()) {
        let cfg = small_config();
        let opt = OptimalDirectMapped::simulate(cfg, addrs.iter().copied()).misses();

        let mut dm = DirectMapped::new(cfg);
        prop_assert!(opt <= run_addrs(&mut dm, addrs.iter().copied()).misses());

        let mut de = DeCache::new(cfg);
        prop_assert!(opt <= run_addrs(&mut de, addrs.iter().copied()).misses());

        let mut hashed = DeCache::with_store(cfg, HashedStore::new(cfg, 4));
        prop_assert!(opt <= run_addrs(&mut hashed, addrs.iter().copied()).misses());
    }

    /// Same bound on loop-structured traces (where DE actually wins).
    #[test]
    fn optimal_is_a_lower_bound_on_loops(addrs in arb_loopy_trace()) {
        let cfg = small_config();
        let opt = OptimalDirectMapped::simulate(cfg, addrs.iter().copied()).misses();
        let mut de = DeCache::new(cfg);
        prop_assert!(opt <= run_addrs(&mut de, addrs.iter().copied()).misses());
    }

    /// Every simulator agrees on the access count, and DE's loads + bypasses
    /// partition its misses.
    #[test]
    fn accounting_identities(addrs in arb_trace()) {
        let cfg = small_config();
        let mut de = DeCache::new(cfg);
        let stats = run_addrs(&mut de, addrs.iter().copied());
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        prop_assert_eq!(de.de_stats().loads + de.de_stats().bypasses, stats.misses());
    }

    /// The hierarchy's L1 with a huge L2 under assume-miss matches the
    /// single-level DE cache with a perfect store (both implement "exact bit
    /// for every block ever seen, default false").
    #[test]
    fn huge_l2_assume_miss_equals_perfect_store(addrs in arb_loopy_trace()) {
        let cfg = small_config();
        let l2 = CacheConfig::direct_mapped(1 << 20, 4).unwrap();
        let mut h = DeHierarchy::new(cfg, l2, HitLastStrategy::AssumeMiss).unwrap();
        let mut single = DeCache::with_store(cfg, PerfectStore::new());
        for &a in &addrs {
            prop_assert_eq!(h.access(a), single.access(a));
        }
    }

    /// MultiSticky with depth 1 is the single-bit FSM.
    #[test]
    fn multisticky_depth_one_is_base_fsm(addrs in arb_trace()) {
        let cfg = small_config();
        let mut multi = MultiStickyDeCache::new(cfg, 1);
        let mut single = DeCache::new(cfg);
        for &a in &addrs {
            prop_assert_eq!(multi.access(a), single.access(a));
        }
    }

    /// With no two consecutive references to the same line, the last-line
    /// buffer is never consulted, so the wrapper and the bare DE cache are
    /// reference-for-reference identical. (On traces *with* intra-line runs
    /// they intentionally diverge: the buffer makes the FSM see one event per
    /// run — Section 6's whole point — which can move misses either way.)
    #[test]
    fn lastline_transparent_without_runs(addrs in arb_trace()) {
        let cfg = CacheConfig::direct_mapped(128, 16).unwrap();
        let geometry = cfg.geometry();
        // Drop consecutive same-line references.
        let mut filtered: Vec<u32> = Vec::new();
        for a in addrs {
            if filtered.last().map(|&p| geometry.line_addr(p)) != Some(geometry.line_addr(a)) {
                filtered.push(a);
            }
        }
        let mut bare = DeCache::new(cfg);
        let mut buffered = LastLineDeCache::new(cfg);
        for &a in &filtered {
            prop_assert_eq!(bare.access(a), buffered.access(a));
        }
    }

    /// Dynamic exclusion's whole premise: on traces made of loops it never
    /// does much worse than conventional (bounded startup cost per
    /// conflicting block pair), and the optimal cache confirms whatever it
    /// saves was real.
    #[test]
    fn de_bounded_regression_vs_dm(addrs in arb_loopy_trace()) {
        let cfg = small_config();
        let mut dm = DirectMapped::new(cfg);
        let mut de = DeCache::new(cfg);
        let dm_misses = run_addrs(&mut dm, addrs.iter().copied()).misses();
        let de_misses = run_addrs(&mut de, addrs.iter().copied()).misses();
        // DE pays at most ~2 extra misses per distinct block (training) —
        // bound it loosely by 2x distinct blocks + dm misses.
        let distinct = {
            let mut set: Vec<u32> = addrs.clone();
            set.sort_unstable();
            set.dedup();
            set.len() as u64
        };
        prop_assert!(
            de_misses <= dm_misses + 2 * distinct,
            "de {de_misses} vs dm {dm_misses} with {distinct} blocks"
        );
    }

    /// Exclusive hierarchies never hold a block at both levels.
    #[test]
    fn exclusion_invariant(addrs in arb_trace(), hashed in any::<bool>()) {
        let strategy = if hashed {
            HitLastStrategy::Hashed { bits_per_line: 4 }
        } else {
            HitLastStrategy::AssumeMiss
        };
        let l1 = small_config();
        let l2 = CacheConfig::direct_mapped(512, 4).unwrap();
        let mut h = DeHierarchy::new(l1, l2, strategy).unwrap();
        for &a in &addrs {
            h.access(a);
            prop_assert!(!(h.l1_contains(a) && h.l2_contains(a)));
        }
    }
}
