//! Property tests: the batch kernel's precomputed FSM table
//! (`dynex_cache::DE_FSM_TABLE`) driven in lockstep with the spec transition
//! function [`dynex::fsm::step`] over random reference sequences.
//!
//! The unit test `fsm::tests::batch_kernel_table_matches_spec_step` checks the
//! eight table rows point-wise; this suite checks that *sequential
//! composition* agrees too — same actions, same sticky trajectory, same
//! hit-last store, same probe event counts — and that random sequences
//! actually reach all eight transitions.

// Gated: requires the `proptest` feature (and the proptest dev-dependency,
// unavailable in hermetic builds) to compile.
#![cfg(feature = "proptest")]

use std::collections::HashMap;

use dynex::fsm::{step, step_probed, DeAction};
use dynex_cache::{de_fsm_index, DeFsmRow, DE_FSM_TABLE};
use dynex_obs::CountingProbe;
use proptest::prelude::*;

/// A single cache line referenced by a handful of symbolic blocks: small
/// alphabet + long sequences maximizes sticky/hit-last churn, so all eight
/// FSM inputs show up quickly.
fn arb_refs() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 1..600)
}

/// One-line interpreter state shared by both drivers.
#[derive(Default)]
struct Line {
    resident: Option<u8>,
    sticky: bool,
    hit_last: HashMap<u8, bool>,
}

impl Line {
    fn inputs(&self, block: u8) -> (bool, bool, bool) {
        (
            self.resident == Some(block),
            self.sticky,
            *self.hit_last.get(&block).unwrap_or(&false),
        )
    }
}

/// Advance `line` by one reference using the **spec** `step`.
fn spec_step(line: &mut Line, block: u8) -> DeAction {
    let (hit, sticky, hit_last) = line.inputs(block);
    let t = step(hit, sticky, hit_last);
    line.sticky = t.sticky_after;
    if let Some(v) = t.hit_last_after {
        line.hit_last.insert(block, v);
    }
    if t.action.installs() {
        line.resident = Some(block);
    }
    t.action
}

/// Advance `line` by one reference using the **table** row, exactly as the
/// batch kernel does (branchless field reads, no `Transition` construction).
fn table_step(line: &mut Line, block: u8) -> (DeFsmRow, usize) {
    let (hit, sticky, hit_last) = line.inputs(block);
    let index = de_fsm_index(hit, sticky, hit_last);
    let row = DE_FSM_TABLE[index];
    line.sticky = row.sticky_after;
    if row.writes_hit_last {
        line.hit_last.insert(block, row.hit_last_value);
    }
    if row.installs {
        line.resident = Some(block);
    }
    (row, index)
}

proptest! {
    /// Full lockstep: per-reference action bits, sticky trajectory, resident
    /// block, and the entire hit-last store agree after every reference.
    #[test]
    fn table_and_spec_agree_on_random_sequences(refs in arb_refs()) {
        let mut spec = Line::default();
        let mut table = Line::default();
        for (i, &block) in refs.iter().enumerate() {
            // Inputs must agree *before* the step (same evolved state)...
            prop_assert_eq!(spec.inputs(block), table.inputs(block), "ref {}", i);
            let action = spec_step(&mut spec, block);
            let (row, _) = table_step(&mut table, block);
            // ...and the transition bits must agree on it.
            prop_assert_eq!(row.is_miss, action.is_miss(), "ref {}", i);
            prop_assert_eq!(row.installs, action.installs(), "ref {}", i);
            prop_assert_eq!(spec.sticky, table.sticky, "ref {}", i);
            prop_assert_eq!(spec.resident, table.resident, "ref {}", i);
        }
        prop_assert_eq!(spec.hit_last, table.hit_last);
    }

    /// Coverage: a sequence long enough to churn the line reaches all eight
    /// table rows, so the lockstep test above is not vacuously passing on a
    /// subset of the FSM.
    #[test]
    fn long_sequences_reach_all_eight_transitions(seed in proptest::collection::vec(0u8..4, 0..32)) {
        // Deterministic churn appended to the random prefix guarantees
        // coverage regardless of what the prefix did: alternating blocks
        // with occasional repeats visit every (hit, sticky, hit_last) cell.
        let mut refs = seed;
        for round in 0u8..16 {
            for block in 0u8..4 {
                refs.push(block);
                if (round + block) % 3 == 0 {
                    refs.push(block); // immediate repeat => hit transitions
                }
            }
        }
        let mut line = Line::default();
        let mut seen = [false; 8];
        for &block in &refs {
            let (_, index) = table_step(&mut line, block);
            seen[index] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "transitions seen: {:?}", seen);
    }

    /// Probe parity: the event counts `step_probed` emits are exactly what
    /// the table row predicts — an exclusion decision on every miss (split
    /// load/bypass by `installs`), a sticky flip iff the bit changed, a
    /// hit-last update iff the row writes one.
    #[test]
    fn probe_events_match_table_prediction(refs in arb_refs()) {
        let mut spec = Line::default();
        let mut table = Line::default();
        for &block in &refs {
            let (hit, sticky, hit_last) = spec.inputs(block);
            let mut probe = CountingProbe::new();
            step_probed(hit, sticky, hit_last, 0, u32::from(block), &mut probe);
            spec_step(&mut spec, block);
            let (row, _) = table_step(&mut table, block);
            let c = probe.counts();
            prop_assert_eq!(c.exclusion_loads, u64::from(row.is_miss && row.installs));
            prop_assert_eq!(c.exclusion_bypasses, u64::from(row.is_miss && !row.installs));
            prop_assert_eq!(c.sticky_flips, u64::from(row.sticky_after != sticky));
            prop_assert_eq!(c.hit_last_updates, u64::from(row.writes_hit_last));
        }
    }
}
