//! Dynamic exclusion with multi-word lines (Section 6, Figure 10).
//!
//! Two problems appear when a line holds several instructions: sequential
//! references within a line would churn the FSM (the loop patterns vanish),
//! and excluding a whole line would make every sequential instruction in it
//! miss. The paper's fix — implemented here as its second alternative — adds
//! a *last-line* buffer with its own *last-tag*: sequential references that
//! match the last-tag are served from the buffer without touching dynamic
//! exclusion state, so the FSM sees one event per line *run* and bypassed
//! lines still enjoy spatial locality.

use dynex_cache::{AccessOutcome, CacheConfig, CacheSim, CacheStats};
use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::{DeCache, DeStats, HitLastStore, PerfectStore};

/// A dynamic-exclusion cache with a last-line buffer, for line sizes above
/// one word.
///
/// References to the most recently touched line are served from the buffer
/// (hits that change no DE state); the first reference of each new line run
/// goes through the inner [`DeCache`]. With one-word lines this is
/// observably different from a bare [`DeCache`] only for back-to-back
/// repeats of the same word, which hit the buffer either way.
///
/// # Examples
///
/// ```
/// use dynex::LastLineDeCache;
/// use dynex_cache::{CacheConfig, CacheSim};
///
/// let mut cache = LastLineDeCache::new(CacheConfig::direct_mapped(256, 16)?);
/// cache.access(0x100);                 // miss: new line
/// assert!(cache.access(0x104).is_hit()); // same line: last-line buffer
/// assert!(cache.access(0x10c).is_hit());
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LastLineDeCache<S = PerfectStore, P: Probe = NoopProbe> {
    inner: DeCache<S, P>,
    last_tag: Option<u32>,
    buffer_hits: u64,
    stats: CacheStats,
}

impl LastLineDeCache<PerfectStore> {
    /// Creates a last-line DE cache with an unbounded hit-last store.
    pub fn new(config: CacheConfig) -> LastLineDeCache<PerfectStore> {
        LastLineDeCache::with_store(config, PerfectStore::new())
    }
}

impl<S: HitLastStore> LastLineDeCache<S> {
    /// Creates a last-line DE cache over a caller-provided hit-last store.
    pub fn with_store(config: CacheConfig, store: S) -> LastLineDeCache<S> {
        LastLineDeCache::with_store_and_probe(config, store, NoopProbe)
    }
}

impl<S: HitLastStore, P: Probe> LastLineDeCache<S, P> {
    /// Creates a last-line DE cache over a caller-provided hit-last store,
    /// emitting events into `probe`.
    ///
    /// Buffer hits surface as [`Event::Access`] with
    /// [`Cause::LineBuffer`]; everything else comes from the inner
    /// [`DeCache`].
    pub fn with_store_and_probe(config: CacheConfig, store: S, probe: P) -> LastLineDeCache<S, P> {
        LastLineDeCache {
            inner: DeCache::with_store_and_probe(config, store, probe),
            last_tag: None,
            buffer_hits: 0,
            stats: CacheStats::new(),
        }
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        self.inner.probe()
    }

    /// Consumes the cache, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.inner.into_probe()
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.inner.config()
    }

    /// DE counters of the inner cache (loads/bypasses count line runs).
    pub fn de_stats(&self) -> DeStats {
        self.inner.de_stats()
    }

    /// References served by the last-line buffer.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits
    }

    /// Extra state the structure adds over a conventional direct-mapped
    /// cache, in bits: the last-line buffer (data + tag) plus one sticky bit
    /// per line plus `hit_last_bits_per_line` hit-last bits per line. Used by
    /// the Figure 13 efficiency comparison.
    pub fn overhead_bits(&self, hit_last_bits_per_line: u32) -> u64 {
        let config = self.config();
        let line_bits = config.line_bytes() as u64 * 8;
        let tag_bits = 32 - config.geometry().offset_bits() as u64; // full line address
        let per_line = 1 + hit_last_bits_per_line as u64;
        line_bits + tag_bits + per_line * config.n_lines() as u64
    }
}

impl<S: HitLastStore, P: Probe> CacheSim for LastLineDeCache<S, P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.inner.config().geometry().line_addr(addr);
        let outcome = if self.last_tag == Some(line) {
            self.buffer_hits += 1;
            let set = self.inner.set_of_line(line);
            self.inner.probe_mut().emit(Event::Access {
                addr,
                set,
                outcome: Outcome::Hit,
                cause: Cause::LineBuffer,
            });
            AccessOutcome::Hit
        } else {
            self.last_tag = Some(line);
            self.inner.access_line(line)
        };
        self.stats.record(outcome);
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!("{} (dynamic exclusion + last-line)", self.inner.config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_cache::run_addrs;

    #[test]
    fn sequential_run_costs_one_miss_even_when_bypassed() {
        // 64B cache, 16B lines (4 sets). Two conflicting lines alternate;
        // within each line, 4 sequential words.
        let cfg = CacheConfig::direct_mapped(64, 16).unwrap();
        let mut de = LastLineDeCache::new(cfg);
        let mut addrs = Vec::new();
        for round in 0..10 {
            let base = if round % 2 == 0 { 0u32 } else { 64 };
            for w in 0..4 {
                addrs.push(base + w * 4);
            }
        }
        let stats = run_addrs(&mut de, addrs);
        // Line runs look like (A B)^5 at line granularity: DE keeps A
        // resident, B bypasses — but B's words after the first are buffer
        // hits. Misses: A cold (1) + B runs (5) = 6.
        assert_eq!(stats.misses(), 6);
        assert_eq!(de.buffer_hits(), 30);
    }

    #[test]
    fn fsm_state_updates_once_per_line_run() {
        let cfg = CacheConfig::direct_mapped(64, 16).unwrap();
        let mut de = LastLineDeCache::new(cfg);
        // One run of 4 words in line A: exactly one load event.
        run_addrs(&mut de, [0u32, 4, 8, 12]);
        assert_eq!(de.de_stats().loads, 1);
        assert_eq!(de.de_stats().bypasses, 0);
    }

    #[test]
    fn word_lines_match_bare_de_cache() {
        // With 4B lines, repeats aside, the wrapper must agree with DeCache.
        let cfg = CacheConfig::direct_mapped(64, 4).unwrap();
        let mut wrapped = LastLineDeCache::new(cfg);
        let mut bare = DeCache::new(cfg);
        let mut rng = dynex_cache::SplitMix64::new(17);
        let mut last = u32::MAX;
        for _ in 0..2000 {
            // Avoid immediate repeats so the buffer can't differ from the
            // cache (a repeat hits in both anyway, but via different paths).
            let mut a = (rng.below(32) as u32) * 4;
            if a == last {
                a = (a + 4) % 128;
            }
            last = a;
            assert_eq!(wrapped.access(a), bare.access(a));
        }
        assert_eq!(wrapped.stats(), bare.stats());
    }

    #[test]
    fn immediate_repeat_hits_buffer_without_fsm_update() {
        let cfg = CacheConfig::direct_mapped(64, 16).unwrap();
        let mut de = LastLineDeCache::new(cfg);
        de.access(0x0);
        let loads_before = de.de_stats().loads;
        assert!(de.access(0x0).is_hit());
        assert_eq!(de.de_stats().loads, loads_before);
        assert_eq!(de.buffer_hits(), 1);
    }

    #[test]
    fn buffer_does_not_shield_conflicting_lines() {
        let cfg = CacheConfig::direct_mapped(64, 16).unwrap();
        let mut de = LastLineDeCache::new(cfg);
        de.access(0x0); // line A
        de.access(64); // line B, conflicting: miss (bypass), buffer now B
        assert!(de.access(0x0).is_hit(), "A still resident in the cache");
    }

    #[test]
    fn overhead_bits_accounting() {
        // 8KB cache, 16B lines = 512 lines. Last line: 128 data + 28 tag
        // bits; per line: 1 sticky + 4 hit-last = 5 bits.
        let cfg = CacheConfig::direct_mapped(8 * 1024, 16).unwrap();
        let de = LastLineDeCache::new(cfg);
        assert_eq!(de.overhead_bits(4), 128 + 28 + 5 * 512);
    }

    #[test]
    fn label_mentions_last_line() {
        let cfg = CacheConfig::direct_mapped(64, 16).unwrap();
        assert!(LastLineDeCache::new(cfg).label().contains("last-line"));
    }

    #[test]
    fn probe_attributes_buffer_hits_to_the_line_buffer() {
        use dynex_obs::{EventLog, Outcome};
        let cfg = CacheConfig::direct_mapped(64, 16).unwrap();
        let mut de =
            LastLineDeCache::with_store_and_probe(cfg, PerfectStore::new(), EventLog::new());
        run_addrs(&mut de, [0u32, 4, 8, 64]); // load, 2 buffer hits, bypass
        let events = de.into_probe().into_events();
        let buffered = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Access {
                        outcome: Outcome::Hit,
                        cause: Cause::LineBuffer,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(buffered, 2);
        // Access events cover every reference exactly once.
        let accesses = events
            .iter()
            .filter(|e| matches!(e, Event::Access { .. }))
            .count();
        assert_eq!(accesses, 4);
    }

    #[test]
    fn probed_and_bare_runs_are_identical() {
        use dynex_obs::CountingProbe;
        let cfg = CacheConfig::direct_mapped(64, 16).unwrap();
        let mut bare = LastLineDeCache::new(cfg);
        let mut probed =
            LastLineDeCache::with_store_and_probe(cfg, PerfectStore::new(), CountingProbe::new());
        let mut rng = dynex_cache::SplitMix64::new(27);
        for _ in 0..3000 {
            let a = (rng.below(256) as u32) & !3;
            assert_eq!(bare.access(a), probed.access(a));
        }
        assert_eq!(bare.stats(), probed.stats());
        assert_eq!(bare.buffer_hits(), probed.buffer_hits());
        assert_eq!(probed.probe().counts().accesses, probed.stats().accesses());
    }
}
