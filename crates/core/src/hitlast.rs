//! Where the hit-last bits of non-resident blocks live (Section 5).
//!
//! "In principle, there is one hit-last bit in memory associated with each
//! instruction. In practice, this is impossible" — the paper therefore
//! studies bounded stores. [`PerfectStore`] models the in-principle version
//! (used by the single-level Figures 3–5 and 11–15); [`HashedStore`] models
//! the practical k-bits-per-line tagless table ("the hashing strategy needs
//! only four hit-last bits for each cache line"); the L2-backed strategies
//! live in [`crate::DeHierarchy`] because they interact with cache contents.

use std::collections::HashMap;

use dynex_cache::CacheConfig;

/// Storage for hit-last bits of blocks that are not resident in the L1
/// cache.
///
/// Implementations are consulted on every L1 miss (`get`) and updated when a
/// block is displaced from L1 (`set`, carrying the resident copy back).
pub trait HitLastStore {
    /// The predicted hit-last bit for the block at `line_addr`.
    fn get(&self, line_addr: u32) -> bool;

    /// Records the hit-last bit for the block at `line_addr`.
    fn set(&mut self, line_addr: u32, value: bool);
}

/// An unbounded hit-last store: one exact bit per block ever seen.
///
/// Blocks never seen before report the configurable initial value
/// (default `false`, i.e. "has not hit"; the paper's FSM walk-throughs cover
/// both initializations and converge within two misses either way).
///
/// # Examples
///
/// ```
/// use dynex::{HitLastStore, PerfectStore};
///
/// let mut store = PerfectStore::new();
/// assert!(!store.get(0x99));
/// store.set(0x99, true);
/// assert!(store.get(0x99));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerfectStore {
    bits: HashMap<u32, bool>,
    initial: bool,
}

impl PerfectStore {
    /// Creates a store where unseen blocks report `false`.
    pub fn new() -> PerfectStore {
        PerfectStore::default()
    }

    /// Creates a store where unseen blocks report `initial`.
    pub fn with_initial(initial: bool) -> PerfectStore {
        PerfectStore {
            bits: HashMap::new(),
            initial,
        }
    }

    /// Number of blocks with a recorded bit.
    pub fn tracked_blocks(&self) -> usize {
        self.bits.len()
    }
}

impl HitLastStore for PerfectStore {
    fn get(&self, line_addr: u32) -> bool {
        *self.bits.get(&line_addr).unwrap_or(&self.initial)
    }

    fn set(&mut self, line_addr: u32, value: bool) {
        self.bits.insert(line_addr, value);
    }
}

/// A tagless table of `k` hit-last bits per cache line, indexed by the
/// block's set plus a hash of its tag.
///
/// Distinct blocks can alias onto the same bit; the paper observes that four
/// bits per line recover almost all of the perfect store's benefit (because
/// an L2 four times the L1 size catches most L1 misses — same working-set
/// argument). The `ablate-hashwidth` experiment sweeps `k`.
///
/// # Examples
///
/// ```
/// use dynex::{HashedStore, HitLastStore};
/// use dynex_cache::CacheConfig;
///
/// let config = CacheConfig::direct_mapped(1024, 4)?;
/// let mut store = HashedStore::new(config, 4);
/// store.set(0x123, true);
/// assert!(store.get(0x123));
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HashedStore {
    bits: Vec<bool>,
    set_mask: u32,
    index_bits: u32,
    ways: u32,
}

impl HashedStore {
    /// Creates an all-false table with `bits_per_line` entries per cache
    /// line of `config`.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_line` is zero or not a power of two.
    pub fn new(config: CacheConfig, bits_per_line: u32) -> HashedStore {
        assert!(
            bits_per_line > 0 && bits_per_line.is_power_of_two(),
            "bits_per_line must be a nonzero power of two"
        );
        let sets = config.n_sets();
        HashedStore {
            bits: vec![false; (sets * bits_per_line) as usize],
            set_mask: sets - 1,
            index_bits: sets.trailing_zeros(),
            ways: bits_per_line,
        }
    }

    /// Bits per cache line in this table.
    pub fn bits_per_line(&self) -> u32 {
        self.ways
    }

    /// Total storage in bits.
    pub fn total_bits(&self) -> usize {
        self.bits.len()
    }

    fn slot(&self, line_addr: u32) -> usize {
        let set = line_addr & self.set_mask;
        let tag = line_addr >> self.index_bits;
        // Cheap tag mix so nearby tags spread across the k ways.
        let way = (tag ^ (tag >> 7) ^ (tag >> 13)) & (self.ways - 1);
        (set * self.ways + way) as usize
    }
}

impl HitLastStore for HashedStore {
    fn get(&self, line_addr: u32) -> bool {
        self.bits[self.slot(line_addr)]
    }

    fn set(&mut self, line_addr: u32, value: bool) {
        let slot = self.slot(line_addr);
        self.bits[slot] = value;
    }
}

/// A [`HitLastStore`] wrapper that emits
/// [`Event::HitLastUpdate`](dynex_obs::Event::HitLastUpdate) for every write
/// to the underlying store.
///
/// The FSM-level events ([`crate::fsm::step_probed`]) describe *logical*
/// updates of `h[x]`; this wrapper additionally observes the *physical*
/// write-back path — the Figure 6 "transfer on replacement" traffic into
/// whatever store holds non-resident bits.
///
/// # Examples
///
/// ```
/// use dynex::{HitLastStore, PerfectStore, ProbedStore};
/// use dynex_obs::EventLog;
///
/// let mut store = ProbedStore::new(PerfectStore::new(), EventLog::new());
/// store.set(0x40, true);
/// assert_eq!(store.probe().events().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProbedStore<S: HitLastStore, P: dynex_obs::Probe> {
    inner: S,
    probe: P,
}

impl<S: HitLastStore, P: dynex_obs::Probe> ProbedStore<S, P> {
    /// Wraps `inner`, sending one event per `set` call to `probe`.
    pub fn new(inner: S, probe: P) -> ProbedStore<S, P> {
        ProbedStore { inner, probe }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the wrapper, returning the store and the probe.
    pub fn into_parts(self) -> (S, P) {
        (self.inner, self.probe)
    }
}

impl<S: HitLastStore, P: dynex_obs::Probe> HitLastStore for ProbedStore<S, P> {
    fn get(&self, line_addr: u32) -> bool {
        self.inner.get(line_addr)
    }

    fn set(&mut self, line_addr: u32, value: bool) {
        self.probe.emit(dynex_obs::Event::HitLastUpdate {
            line: line_addr,
            hit_last: value,
        });
        self.inner.set(line_addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_store_records_exactly() {
        let mut s = PerfectStore::new();
        assert!(!s.get(1));
        s.set(1, true);
        s.set(2, false);
        assert!(s.get(1));
        assert!(!s.get(2));
        assert_eq!(s.tracked_blocks(), 2);
        s.set(1, false);
        assert!(!s.get(1));
        assert_eq!(s.tracked_blocks(), 2);
    }

    #[test]
    fn perfect_store_initial_value() {
        let s = PerfectStore::with_initial(true);
        assert!(s.get(0xabc));
        let mut s = PerfectStore::with_initial(true);
        s.set(0xabc, false);
        assert!(!s.get(0xabc));
    }

    #[test]
    fn hashed_store_roundtrips_within_capacity() {
        let config = CacheConfig::direct_mapped(256, 4).unwrap(); // 64 lines
        let mut s = HashedStore::new(config, 4);
        assert_eq!(s.total_bits(), 256);
        // One block per set: no aliasing possible.
        for line in 0u32..64 {
            s.set(line, line % 2 == 0);
        }
        for line in 0u32..64 {
            assert_eq!(s.get(line), line % 2 == 0);
        }
    }

    #[test]
    fn hashed_store_aliases_when_overcommitted() {
        let config = CacheConfig::direct_mapped(16, 4).unwrap(); // 4 lines
        let mut s = HashedStore::new(config, 1);
        // Many blocks in one set with 1 bit: all alias.
        s.set(0, true);
        assert!(s.get(0));
        s.set(4, false); // same set (4 lines), same single bit
        assert!(!s.get(0), "1-bit table must alias conflicting tags");
    }

    #[test]
    fn hashed_store_spreads_tags_across_ways() {
        let config = CacheConfig::direct_mapped(16, 4).unwrap(); // 4 sets
        let s = HashedStore::new(config, 4);
        // Blocks in the same set with different tags should not all land on
        // one way.
        let slots: std::collections::HashSet<usize> = (0..16).map(|t| s.slot(t * 4)).collect();
        assert!(
            slots.len() >= 3,
            "tag hash should use multiple ways, got {slots:?}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn hashed_store_rejects_bad_width() {
        HashedStore::new(CacheConfig::direct_mapped(64, 4).unwrap(), 3);
    }

    #[test]
    fn store_trait_objects_work() {
        let mut perfect = PerfectStore::new();
        let store: &mut dyn HitLastStore = &mut perfect;
        store.set(9, true);
        assert!(store.get(9));
    }

    #[test]
    fn probed_store_observes_writes_transparently() {
        use dynex_obs::CountingProbe;
        let mut store = ProbedStore::new(PerfectStore::new(), CountingProbe::new());
        store.set(3, true);
        store.set(5, false);
        assert!(store.get(3));
        assert!(!store.get(5));
        assert_eq!(store.probe().counts().hit_last_updates, 2);
        let (inner, probe) = store.into_parts();
        assert!(inner.get(3));
        assert_eq!(probe.counts().hit_last_updates, 2);
    }

    #[test]
    fn probed_store_composes_with_de_cache() {
        use crate::DeCache;
        use dynex_cache::{CacheConfig, CacheSim};
        use dynex_obs::CountingProbe;
        let cfg = CacheConfig::direct_mapped(64, 4).unwrap();
        let mut bare = DeCache::new(cfg);
        let mut observed = DeCache::with_store(
            cfg,
            ProbedStore::new(PerfectStore::new(), CountingProbe::new()),
        );
        let mut rng = dynex_cache::SplitMix64::new(23);
        for _ in 0..2000 {
            let a = (rng.below(64) as u32) * 4;
            assert_eq!(bare.access(a), observed.access(a));
        }
        assert_eq!(bare.stats(), observed.stats());
        // Every store write is a displaced victim; loads displacing a valid
        // block bound the write count.
        let writes = observed.store().probe().counts().hit_last_updates;
        assert!(writes <= observed.de_stats().loads);
        assert!(writes > 0);
    }
}
