//! Two-level hierarchies with dynamic exclusion at L1 (Section 5, Figure 6).
//!
//! The hit-last bit of a non-resident block "naturally" lives in the next
//! level of the memory hierarchy, but the L2 cannot catch every L1 miss, so
//! the paper studies three responses to an L2 miss:
//!
//! * **hashed** — forget the L2: keep a tagless table of hit-last bits in L1
//!   (four per line suffice). Structurally simplest; the L2 need not even
//!   know L1 uses dynamic exclusion.
//! * **assume-hit** — store the bit with the L2 line; on an L2 miss assume
//!   the block *would* have hit. Slightly fewer L1 misses, but the L2 must
//!   stay inclusive, so it gains nothing itself.
//! * **assume-miss** — as above but assume *not* hit on an L2 miss. Blocks
//!   resident in L1 need not be stored in L2 at all (exclusion), which is
//!   what lowers the L2 miss rate in Figures 8–9.
//!
//! The hashed strategy also manages L1/L2 contents exclusively (nothing
//! forces inclusion), so it shares the L2 benefit.

use std::error::Error;
use std::fmt;

use dynex_cache::{AccessOutcome, CacheConfig, CacheSim, CacheStats, Geometry};
use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::cache::DeStats;
use crate::{DeEvent, DeLines, HashedStore, HitLastStore};

const INVALID_LINE: u32 = u32::MAX;

/// How the hierarchy answers "what is `h[x]`?" when the L2 cache misses —
/// and, consequently, how L1/L2 contents are managed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLastStrategy {
    /// Hit-last bits live in a tagless L1-side table
    /// ([`HashedStore`]); L1/L2 contents are exclusive.
    Hashed {
        /// Table entries per L1 cache line (the paper finds 4 sufficient).
        bits_per_line: u32,
    },
    /// Bits live with L2 lines; an L2 miss predicts "would hit". L2 is
    /// inclusive (every L1 block also occupies L2).
    AssumeHit,
    /// Bits live with L2 lines; an L2 miss predicts "would not hit". L1/L2
    /// contents are exclusive.
    AssumeMiss,
}

impl HitLastStrategy {
    /// `true` for the strategies that keep L1 contents out of L2.
    pub fn is_exclusive(self) -> bool {
        !matches!(self, HitLastStrategy::AssumeHit)
    }

    fn name(self) -> String {
        match self {
            HitLastStrategy::Hashed { bits_per_line } => format!("hashed/{bits_per_line}"),
            HitLastStrategy::AssumeHit => "assume-hit".to_owned(),
            HitLastStrategy::AssumeMiss => "assume-miss".to_owned(),
        }
    }
}

impl fmt::Display for HitLastStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Configuration failure constructing a [`DeHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyError {
    /// L1 and L2 must use the same line size.
    LineMismatch,
    /// L2 must be at least as large as L1.
    L2SmallerThanL1,
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::LineMismatch => write!(f, "L1 and L2 line sizes must match"),
            HierarchyError::L2SmallerThanL1 => write!(f, "L2 must be at least as large as L1"),
        }
    }
}

impl Error for HierarchyError {}

/// Statistics of a [`DeHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeHierarchyStats {
    /// L1 accounting (all references).
    pub l1: CacheStats,
    /// L2 accounting (references that missed in L1).
    pub l2: CacheStats,
    /// L1 dynamic-exclusion counters.
    pub de: DeStats,
}

/// A dynamic-exclusion L1 over a direct-mapped L2, wired per
/// [`HitLastStrategy`].
///
/// This is the organization of the paper's Figures 7–9: L1 miss rate as a
/// function of the L2/L1 size ratio and L2 miss rate as a function of L2
/// size, per strategy.
///
/// # Examples
///
/// ```
/// use dynex::{DeHierarchy, HitLastStrategy};
/// use dynex_cache::{run_addrs, CacheConfig, CacheSim};
///
/// let l1 = CacheConfig::direct_mapped(64, 4)?;
/// let l2 = CacheConfig::direct_mapped(256, 4)?;
/// let mut h = DeHierarchy::new(l1, l2, HitLastStrategy::AssumeMiss)?;
/// run_addrs(&mut h, [0u32, 64, 0, 64, 0, 64]);
/// assert!(h.hierarchy_stats().l1.misses() < 6); // exclusion beats thrashing
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeHierarchy<P: Probe = NoopProbe> {
    l1_config: CacheConfig,
    l2_config: CacheConfig,
    strategy: HitLastStrategy,
    l1: DeLines,
    hashed: Option<HashedStore>,
    l2_geometry: Geometry,
    l2_lines: Vec<u32>,
    l2_hbits: Vec<bool>,
    l1_stats: CacheStats,
    l2_stats: CacheStats,
    de_stats: DeStats,
    probe: P,
}

impl DeHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError`] if the line sizes differ or L2 is smaller
    /// than L1.
    pub fn new(
        l1: CacheConfig,
        l2: CacheConfig,
        strategy: HitLastStrategy,
    ) -> Result<DeHierarchy, HierarchyError> {
        DeHierarchy::with_probe(l1, l2, strategy, NoopProbe)
    }
}

impl<P: Probe> DeHierarchy<P> {
    /// Builds the hierarchy with an attached probe.
    ///
    /// Events describe the L1 (the DE cache): per-reference
    /// [`Event::Access`], the FSM events of [`crate::fsm::step_probed`],
    /// L1 [`Event::Eviction`]s, and an [`Event::HitLastUpdate`] for every
    /// hit-last bit physically written back on displacement (the Figure 6
    /// transfer path, regardless of which strategy stores it).
    ///
    /// # Errors
    ///
    /// Same as [`DeHierarchy::new`].
    pub fn with_probe(
        l1: CacheConfig,
        l2: CacheConfig,
        strategy: HitLastStrategy,
        probe: P,
    ) -> Result<DeHierarchy<P>, HierarchyError> {
        if l1.line_bytes() != l2.line_bytes() {
            return Err(HierarchyError::LineMismatch);
        }
        if l2.size_bytes() < l1.size_bytes() {
            return Err(HierarchyError::L2SmallerThanL1);
        }
        let hashed = match strategy {
            HitLastStrategy::Hashed { bits_per_line } => Some(HashedStore::new(l1, bits_per_line)),
            _ => None,
        };
        Ok(DeHierarchy {
            l1_config: l1,
            l2_config: l2,
            strategy,
            l1: DeLines::new(l1),
            hashed,
            l2_geometry: l2.geometry(),
            l2_lines: vec![INVALID_LINE; l2.n_sets() as usize],
            l2_hbits: vec![false; l2.n_sets() as usize],
            l1_stats: CacheStats::new(),
            l2_stats: CacheStats::new(),
            de_stats: DeStats::default(),
            probe,
        })
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the hierarchy, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// The L1 configuration.
    pub fn l1_config(&self) -> CacheConfig {
        self.l1_config
    }

    /// The L2 configuration.
    pub fn l2_config(&self) -> CacheConfig {
        self.l2_config
    }

    /// The hit-last strategy in use.
    pub fn strategy(&self) -> HitLastStrategy {
        self.strategy
    }

    /// Statistics for both levels.
    pub fn hierarchy_stats(&self) -> DeHierarchyStats {
        DeHierarchyStats {
            l1: self.l1_stats,
            l2: self.l2_stats,
            de: self.de_stats,
        }
    }

    /// Whether `addr`'s block is resident in L1 (no state change).
    pub fn l1_contains(&self, addr: u32) -> bool {
        self.l1.contains_line(self.l1.geometry().line_addr(addr))
    }

    /// Whether `addr`'s block is resident in L2 (no state change).
    pub fn l2_contains(&self, addr: u32) -> bool {
        let line = self.l1.geometry().line_addr(addr);
        self.l2_lines[self.l2_geometry.set_of_line(line) as usize] == line
    }

    fn l2_set(&self, line: u32) -> usize {
        self.l2_geometry.set_of_line(line) as usize
    }

    /// Installs `line` in L2 (displacing silently), recording its h bit.
    fn l2_allocate(&mut self, line: u32, h: bool) {
        let set = self.l2_set(line);
        self.l2_lines[set] = line;
        self.l2_hbits[set] = h;
    }
}

impl<P: Probe> CacheSim for DeHierarchy<P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.l1.geometry().line_addr(addr);
        let l1_set = self.l1.geometry().set_of_line(line);

        // L1 hit: no L2 involvement, FSM re-arms the line.
        if self.l1.contains_line(line) {
            let event = self.l1.access_line_probed(line, false, &mut self.probe);
            debug_assert_eq!(event, DeEvent::Hit);
            self.probe.emit(Event::Access {
                addr,
                set: l1_set,
                outcome: Outcome::Hit,
                cause: Cause::Resident,
            });
            self.l1_stats.record(AccessOutcome::Hit);
            return AccessOutcome::Hit;
        }

        // L1 miss: the block is fetched via L2.
        let l2_set = self.l2_set(line);
        let l2_hit = self.l2_lines[l2_set] == line;
        self.l2_stats.record(if l2_hit {
            AccessOutcome::Hit
        } else {
            AccessOutcome::Miss
        });

        let h_pred = match self.strategy {
            HitLastStrategy::Hashed { .. } => self
                .hashed
                .as_ref()
                .expect("hashed strategy carries a store")
                .get(line),
            HitLastStrategy::AssumeHit => {
                if l2_hit {
                    self.l2_hbits[l2_set]
                } else {
                    true
                }
            }
            HitLastStrategy::AssumeMiss => {
                if l2_hit {
                    self.l2_hbits[l2_set]
                } else {
                    false
                }
            }
        };

        let event = self.l1.access_line_probed(line, h_pred, &mut self.probe);
        let cause = match event {
            DeEvent::Hit => unreachable!("contains_line was false"),
            DeEvent::Loaded { victim } => {
                self.de_stats.loads += 1;
                // Victim write-back: its hit-last copy returns to wherever
                // non-resident bits live (Figure 6's transfer-on-replacement).
                if let Some((victim_line, victim_h)) = victim {
                    match self.strategy {
                        HitLastStrategy::Hashed { .. } => {
                            self.hashed
                                .as_mut()
                                .expect("hashed strategy carries a store")
                                .set(victim_line, victim_h);
                            self.probe.emit(Event::HitLastUpdate {
                                line: victim_line,
                                hit_last: victim_h,
                            });
                            // Exclusive contents: the eviction fills L2.
                            self.l2_allocate(victim_line, victim_h);
                        }
                        HitLastStrategy::AssumeMiss => {
                            self.l2_allocate(victim_line, victim_h);
                            self.probe.emit(Event::HitLastUpdate {
                                line: victim_line,
                                hit_last: victim_h,
                            });
                        }
                        HitLastStrategy::AssumeHit => {
                            // Inclusive: update the bit if the copy is still
                            // there; a lost copy is simply dropped.
                            let vset = self.l2_set(victim_line);
                            if self.l2_lines[vset] == victim_line {
                                self.l2_hbits[vset] = victim_h;
                                self.probe.emit(Event::HitLastUpdate {
                                    line: victim_line,
                                    hit_last: victim_h,
                                });
                            }
                        }
                    }
                }
                // Content management for the loaded block.
                if self.strategy.is_exclusive() {
                    // Promoted to L1: leaves L2.
                    let set = self.l2_set(line);
                    if self.l2_lines[set] == line {
                        self.l2_lines[set] = INVALID_LINE;
                    }
                } else if !l2_hit {
                    // Inclusive: the memory fetch fills L2 too.
                    self.l2_allocate(line, true);
                }
                if victim.is_some() {
                    Cause::Replace
                } else {
                    Cause::Cold
                }
            }
            DeEvent::Bypassed => {
                self.de_stats.bypasses += 1;
                // The block lives in L2 only (it is not in L1).
                if !l2_hit {
                    self.l2_allocate(line, false);
                }
                Cause::Bypass
            }
        };
        self.probe.emit(Event::Access {
            addr,
            set: l1_set,
            outcome: Outcome::Miss,
            cause,
        });
        self.l1_stats.record(AccessOutcome::Miss);
        AccessOutcome::Miss
    }

    fn stats(&self) -> CacheStats {
        self.l1_stats
    }

    fn label(&self) -> String {
        format!(
            "L1 {} DE({}) + L2 {}",
            self.l1_config, self.strategy, self.l2_config
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_cache::run_addrs;

    fn hierarchy(l1: u32, l2: u32, strategy: HitLastStrategy) -> DeHierarchy {
        DeHierarchy::new(
            CacheConfig::direct_mapped(l1, 4).unwrap(),
            CacheConfig::direct_mapped(l2, 4).unwrap(),
            strategy,
        )
        .unwrap()
    }

    /// (a b)^n addresses conflicting in a 64B L1.
    fn within_loop(n: usize) -> Vec<u32> {
        (0..2 * n)
            .map(|i| if i % 2 == 0 { 0 } else { 64 })
            .collect()
    }

    #[test]
    fn construction_validation() {
        let l1 = CacheConfig::direct_mapped(64, 4).unwrap();
        let bad_line = CacheConfig::direct_mapped(256, 16).unwrap();
        assert_eq!(
            DeHierarchy::new(l1, bad_line, HitLastStrategy::AssumeHit).unwrap_err(),
            HierarchyError::LineMismatch
        );
        let small = CacheConfig::direct_mapped(32, 4).unwrap();
        assert_eq!(
            DeHierarchy::new(l1, small, HitLastStrategy::AssumeHit).unwrap_err(),
            HierarchyError::L2SmallerThanL1
        );
    }

    #[test]
    fn assume_miss_excludes_and_halves_thrash() {
        let mut h = hierarchy(64, 256, HitLastStrategy::AssumeMiss);
        let stats = run_addrs(&mut h, within_loop(10));
        // Same steady state as the single-level DE cache: a hits, b bypasses.
        assert_eq!(stats.misses(), 11);
        let hs = h.hierarchy_stats();
        assert_eq!(hs.l2.accesses(), 11);
    }

    #[test]
    fn exclusive_strategies_never_hold_block_in_both_levels() {
        for strategy in [
            HitLastStrategy::AssumeMiss,
            HitLastStrategy::Hashed { bits_per_line: 4 },
        ] {
            let mut h = hierarchy(64, 256, strategy);
            let mut rng = dynex_cache::SplitMix64::new(31);
            for _ in 0..3000 {
                let a = (rng.below(128) as u32) * 4;
                h.access(a);
                assert!(
                    !(h.l1_contains(a) && h.l2_contains(a)),
                    "{strategy}: block in both levels"
                );
            }
        }
    }

    #[test]
    fn assume_hit_keeps_l2_inclusive_of_loads() {
        let mut h = hierarchy(64, 1024, HitLastStrategy::AssumeHit);
        // Small working set, no L2 conflicts: inclusion must hold exactly.
        let mut rng = dynex_cache::SplitMix64::new(32);
        for _ in 0..2000 {
            let a = (rng.below(64) as u32) * 4;
            h.access(a);
            if h.l1_contains(a) {
                assert!(
                    h.l2_contains(a),
                    "inclusive hierarchy lost a resident block"
                );
            }
        }
    }

    #[test]
    fn assume_hit_with_equal_l2_degenerates_to_conventional() {
        // Paper: "if the L2 cache is the same size as the L1 cache, the
        // assume-hit option gives no improvement since the cache degenerates
        // to conventional direct-mapped behavior."
        let mut h = hierarchy(64, 64, HitLastStrategy::AssumeHit);
        let stats = run_addrs(&mut h, within_loop(10));
        assert_eq!(stats.misses(), 20, "every (ab)^10 reference must miss");
    }

    #[test]
    fn assume_miss_lowers_l2_misses_vs_assume_hit() {
        // Working set larger than L2: exclusion gives L2 extra effective
        // capacity. Cyclic sweep over 96 blocks with 64B L1 / 256B L2.
        let addrs: Vec<u32> = (0..20_000).map(|i| ((i % 96) as u32) * 4).collect();
        let mut inclusive = hierarchy(64, 256, HitLastStrategy::AssumeHit);
        let mut exclusive = hierarchy(64, 256, HitLastStrategy::AssumeMiss);
        run_addrs(&mut inclusive, addrs.iter().copied());
        run_addrs(&mut exclusive, addrs.iter().copied());
        let inc = inclusive.hierarchy_stats();
        let exc = exclusive.hierarchy_stats();
        assert!(
            exc.l2.misses() < inc.l2.misses(),
            "exclusion should reduce L2 misses: {} vs {}",
            exc.l2.misses(),
            inc.l2.misses()
        );
    }

    #[test]
    fn large_l2_approaches_perfect_store_behaviour() {
        // With an L2 far larger than the working set, assume-miss behaves
        // like a single-level DE cache with a perfect store.
        let addrs = within_loop(50);
        let mut h = hierarchy(64, 4096, HitLastStrategy::AssumeMiss);
        let h_stats = run_addrs(&mut h, addrs.iter().copied());
        let mut single = crate::DeCache::new(CacheConfig::direct_mapped(64, 4).unwrap());
        let s_stats = run_addrs(&mut single, addrs.iter().copied());
        assert_eq!(h_stats.misses(), s_stats.misses());
    }

    #[test]
    fn hashed_l1_behaviour_independent_of_l2_size() {
        let strategy = HitLastStrategy::Hashed { bits_per_line: 4 };
        let addrs = within_loop(50);
        let mut small = hierarchy(64, 64, strategy);
        let mut big = hierarchy(64, 4096, strategy);
        let s = run_addrs(&mut small, addrs.iter().copied());
        let b = run_addrs(&mut big, addrs.iter().copied());
        assert_eq!(s.misses(), b.misses(), "hashed bits live in L1, not L2");
    }

    #[test]
    fn l2_accesses_equal_l1_misses() {
        for strategy in [
            HitLastStrategy::AssumeHit,
            HitLastStrategy::AssumeMiss,
            HitLastStrategy::Hashed { bits_per_line: 4 },
        ] {
            let mut h = hierarchy(64, 512, strategy);
            let mut rng = dynex_cache::SplitMix64::new(7);
            let addrs: Vec<u32> = (0..5000).map(|_| (rng.below(256) as u32) * 4).collect();
            run_addrs(&mut h, addrs);
            let s = h.hierarchy_stats();
            assert_eq!(s.l2.accesses(), s.l1.misses(), "{strategy}");
            assert_eq!(s.de.loads + s.de.bypasses, s.l1.misses(), "{strategy}");
        }
    }

    #[test]
    fn strategy_display_and_exclusivity() {
        assert_eq!(HitLastStrategy::AssumeHit.to_string(), "assume-hit");
        assert_eq!(HitLastStrategy::AssumeMiss.to_string(), "assume-miss");
        assert_eq!(
            HitLastStrategy::Hashed { bits_per_line: 4 }.to_string(),
            "hashed/4"
        );
        assert!(!HitLastStrategy::AssumeHit.is_exclusive());
        assert!(HitLastStrategy::AssumeMiss.is_exclusive());
        assert!(HitLastStrategy::Hashed { bits_per_line: 2 }.is_exclusive());
    }

    #[test]
    fn error_display() {
        assert!(HierarchyError::LineMismatch.to_string().contains("line"));
        assert!(HierarchyError::L2SmallerThanL1.to_string().contains("L2"));
    }

    #[test]
    fn label_names_strategy() {
        let h = hierarchy(64, 256, HitLastStrategy::AssumeMiss);
        assert!(h.label().contains("assume-miss"));
    }

    #[test]
    fn probed_and_bare_runs_are_identical_per_strategy() {
        use dynex_obs::CountingProbe;
        for strategy in [
            HitLastStrategy::AssumeHit,
            HitLastStrategy::AssumeMiss,
            HitLastStrategy::Hashed { bits_per_line: 4 },
        ] {
            let l1 = CacheConfig::direct_mapped(64, 4).unwrap();
            let l2 = CacheConfig::direct_mapped(512, 4).unwrap();
            let mut bare = DeHierarchy::new(l1, l2, strategy).unwrap();
            let mut probed =
                DeHierarchy::with_probe(l1, l2, strategy, CountingProbe::new()).unwrap();
            let mut rng = dynex_cache::SplitMix64::new(43);
            for _ in 0..4000 {
                let a = (rng.below(256) as u32) * 4;
                assert_eq!(bare.access(a), probed.access(a), "{strategy}");
            }
            assert_eq!(
                bare.hierarchy_stats(),
                probed.hierarchy_stats(),
                "{strategy}"
            );
            let c = probed.probe().counts();
            let stats = probed.hierarchy_stats();
            assert_eq!(c.accesses, stats.l1.accesses(), "{strategy}");
            assert_eq!(c.misses, stats.l1.misses(), "{strategy}");
            assert_eq!(c.exclusion_loads, stats.de.loads, "{strategy}");
            assert_eq!(c.exclusion_bypasses, stats.de.bypasses, "{strategy}");
        }
    }
}
