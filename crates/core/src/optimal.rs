//! The paper's "optimal direct-mapped cache": direct-mapped placement with a
//! future-knowing replacement *and bypass* policy.
//!
//! Each line of a direct-mapped cache is an independent one-entry cache, and
//! a one-entry cache with bypass has a simple optimal policy: on a miss,
//! keep whichever of {resident block, incoming block} is referenced again
//! sooner (Belady's MIN specialized to a single entry). This needs future
//! knowledge, so it is computed offline in two passes: one to chain each
//! reference to the next use of its block, one to simulate.
//!
//! Optimality of the greedy rule is verified in the test suite against an
//! exhaustive search over all load/bypass decision sequences.

use std::collections::HashMap;

use dynex_cache::{AccessOutcome, CacheConfig, CacheStats};

const INVALID_LINE: u32 = u32::MAX;
const NEVER: usize = usize::MAX;

/// Offline simulator for the optimal direct-mapped cache.
///
/// Not a [`dynex_cache::CacheSim`]: the policy needs the whole trace up
/// front. Use [`OptimalDirectMapped::simulate`] for one-word lines and
/// [`OptimalDirectMapped::simulate_with_lastline`] for multi-word lines
/// (where the comparable DE cache also has a last-line buffer; see
/// [`crate::LastLineDeCache`]).
///
/// # Examples
///
/// ```
/// use dynex::OptimalDirectMapped;
/// use dynex_cache::CacheConfig;
///
/// // (a b)^3 on one line: optimal keeps one block => misses a, then b 3x.
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let stats = OptimalDirectMapped::simulate(config, [0u32, 64, 0, 64, 0, 64]);
/// assert_eq!(stats.misses(), 4);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OptimalDirectMapped;

impl OptimalDirectMapped {
    /// Simulates the optimal direct-mapped cache over byte addresses.
    pub fn simulate<I>(config: CacheConfig, addrs: I) -> CacheStats
    where
        I: IntoIterator<Item = u32>,
    {
        let geometry = config.geometry();
        let lines: Vec<u32> = addrs.into_iter().map(|a| geometry.line_addr(a)).collect();
        let next = next_use(&lines);

        let n_sets = config.n_sets() as usize;
        let mut resident = vec![INVALID_LINE; n_sets];
        let mut resident_next = vec![NEVER; n_sets];
        let mut stats = CacheStats::new();

        for (i, &line) in lines.iter().enumerate() {
            let set = geometry.set_of_line(line) as usize;
            if resident[set] == line {
                stats.record(AccessOutcome::Hit);
                resident_next[set] = next[i];
            } else {
                stats.record(AccessOutcome::Miss);
                // Keep whichever block is used sooner. An invalid resident
                // has resident_next == NEVER, so the incoming block wins.
                if next[i] < resident_next[set] {
                    resident[set] = line;
                    resident_next[set] = next[i];
                }
            }
        }
        stats
    }

    /// Simulates the optimal direct-mapped cache *with a last-line buffer*
    /// over byte addresses.
    ///
    /// Consecutive references to the same line are served by the buffer
    /// (hits), and the optimal decision is made once per line run using the
    /// next *run* of the same line as the future-use distance — the same
    /// accounting as [`crate::LastLineDeCache`], keeping this an upper bound
    /// for the DE cache at every line size.
    pub fn simulate_with_lastline<I>(config: CacheConfig, addrs: I) -> CacheStats
    where
        I: IntoIterator<Item = u32>,
    {
        let geometry = config.geometry();

        // Collapse into line runs.
        let mut runs: Vec<(u32, u32)> = Vec::new(); // (line, length)
        for addr in addrs {
            let line = geometry.line_addr(addr);
            match runs.last_mut() {
                Some((last, len)) if *last == line => *len += 1,
                _ => runs.push((line, 1)),
            }
        }
        let run_lines: Vec<u32> = runs.iter().map(|&(line, _)| line).collect();
        let next = next_use(&run_lines);

        let n_sets = config.n_sets() as usize;
        let mut resident = vec![INVALID_LINE; n_sets];
        let mut resident_next = vec![NEVER; n_sets];
        let mut stats = CacheStats::new();

        for (i, &(line, len)) in runs.iter().enumerate() {
            let set = geometry.set_of_line(line) as usize;
            if resident[set] == line {
                stats.record(AccessOutcome::Hit);
                resident_next[set] = next[i];
            } else {
                stats.record(AccessOutcome::Miss);
                if next[i] < resident_next[set] {
                    resident[set] = line;
                    resident_next[set] = next[i];
                }
            }
            // The rest of the run hits in the last-line buffer.
            for _ in 1..len {
                stats.record(AccessOutcome::Hit);
            }
        }
        stats
    }
}

/// For each position, the position of the next reference to the same value
/// (`NEVER` if none).
fn next_use(values: &[u32]) -> Vec<usize> {
    let mut next = vec![NEVER; values.len()];
    let mut upcoming: HashMap<u32, usize> = HashMap::new();
    for (i, &v) in values.iter().enumerate().rev() {
        if let Some(&j) = upcoming.get(&v) {
            next[i] = j;
        }
        upcoming.insert(v, i);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynex_cache::{run_addrs, DirectMapped};

    fn config(size: u32, line: u32) -> CacheConfig {
        CacheConfig::direct_mapped(size, line).unwrap()
    }

    #[test]
    fn next_use_chains() {
        let next = next_use(&[5, 7, 5, 5, 7]);
        assert_eq!(next, vec![2, 4, 3, NEVER, NEVER]);
        assert_eq!(next_use(&[]), Vec::<usize>::new());
    }

    #[test]
    fn section3_conflict_between_loops_is_10_percent() {
        // (a^10 b^10)^10 => 20 misses / 200 refs.
        let mut addrs = Vec::new();
        for _ in 0..10 {
            addrs.extend(std::iter::repeat_n(0u32, 10));
            addrs.extend(std::iter::repeat_n(64u32, 10));
        }
        let stats = OptimalDirectMapped::simulate(config(64, 4), addrs);
        assert_eq!(stats.misses(), 20);
        assert_eq!(stats.accesses(), 200);
    }

    #[test]
    fn section3_loop_levels_is_10_percent() {
        // (a^10 b)^10 => a_m b_m (a_h^10 b_m)^9: 11 misses / 110 refs.
        let mut addrs = Vec::new();
        for _ in 0..10 {
            addrs.extend(std::iter::repeat_n(0u32, 10));
            addrs.push(64);
        }
        let stats = OptimalDirectMapped::simulate(config(64, 4), addrs);
        assert_eq!(stats.misses(), 11);
        assert_eq!(stats.accesses(), 110);
    }

    #[test]
    fn section3_within_loop_is_55_percent() {
        // (a b)^10 => keep one block: 11 misses / 20 refs.
        let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
        let stats = OptimalDirectMapped::simulate(config(64, 4), addrs);
        assert_eq!(stats.misses(), 11);
    }

    #[test]
    fn never_worse_than_conventional() {
        let cfg = config(128, 4);
        let mut rng = dynex_cache::SplitMix64::new(8);
        let addrs: Vec<u32> = (0..3000).map(|_| (rng.below(128) as u32) * 4).collect();
        let mut dm = DirectMapped::new(cfg);
        let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
        let opt_stats = OptimalDirectMapped::simulate(cfg, addrs);
        assert!(opt_stats.misses() <= dm_stats.misses());
    }

    /// Exhaustive optimality check: dynamic programming over all
    /// (position, resident) states must not beat the greedy policy.
    #[test]
    fn greedy_matches_exhaustive_minimum() {
        fn min_misses(
            lines: &[u32],
            i: usize,
            resident: u32,
            memo: &mut HashMap<(usize, u32), u64>,
        ) -> u64 {
            if i == lines.len() {
                return 0;
            }
            if let Some(&m) = memo.get(&(i, resident)) {
                return m;
            }
            let line = lines[i];
            let result = if line == resident {
                min_misses(lines, i + 1, resident, memo)
            } else {
                let load = min_misses(lines, i + 1, line, memo);
                let bypass = min_misses(lines, i + 1, resident, memo);
                1 + load.min(bypass)
            };
            memo.insert((i, resident), result);
            result
        }

        let cfg = config(4, 4); // a single line: every block conflicts
        let mut rng = dynex_cache::SplitMix64::new(42);
        for trial in 0..200 {
            let len = 2 + rng.below_usize(14);
            let blocks = 1 + rng.below(4) as u32;
            let lines: Vec<u32> = (0..len).map(|_| rng.below(blocks as u64) as u32).collect();
            let addrs: Vec<u32> = lines.iter().map(|&l| l * 4).collect();
            let greedy = OptimalDirectMapped::simulate(cfg, addrs).misses();
            let best = min_misses(&lines, 0, INVALID_LINE, &mut HashMap::new());
            assert_eq!(greedy, best, "trial {trial}: lines {lines:?}");
        }
    }

    #[test]
    fn lastline_variant_counts_runs() {
        // Two conflicting 16B lines, 4-word runs, alternating 10 times:
        // optimal keeps one line => misses: other line per run + 1 cold.
        let cfg = config(64, 16);
        let mut addrs = Vec::new();
        for round in 0..10 {
            let base = if round % 2 == 0 { 0u32 } else { 64 };
            for w in 0..4 {
                addrs.push(base + w * 4);
            }
        }
        let stats = OptimalDirectMapped::simulate_with_lastline(cfg, addrs);
        assert_eq!(stats.accesses(), 40);
        assert_eq!(stats.misses(), 6); // cold A + 5 B runs (B bypassed)
    }

    #[test]
    fn lastline_equals_plain_for_word_lines_without_repeats() {
        let cfg = config(128, 4);
        let mut rng = dynex_cache::SplitMix64::new(4);
        let mut addrs = Vec::new();
        let mut last = u32::MAX;
        for _ in 0..500 {
            let mut a = (rng.below(64) as u32) * 4;
            if a == last {
                a = (a + 4) % 256;
            }
            last = a;
            addrs.push(a);
        }
        let plain = OptimalDirectMapped::simulate(cfg, addrs.iter().copied());
        let buffered = OptimalDirectMapped::simulate_with_lastline(cfg, addrs);
        assert_eq!(plain, buffered);
    }

    #[test]
    fn empty_trace() {
        let stats = OptimalDirectMapped::simulate(config(64, 4), std::iter::empty());
        assert_eq!(stats.accesses(), 0);
    }
}
