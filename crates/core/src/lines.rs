//! The per-line state arrays shared by every dynamic-exclusion cache.

use dynex_cache::{CacheConfig, Geometry};
use dynex_obs::{Event, NoopProbe, Probe};

use crate::fsm::{self, DeAction};

/// Sentinel line address meaning "invalid line" (line addresses fit in 30
/// bits, so no collision is possible).
const INVALID_LINE: u32 = u32::MAX;

/// What happened to the cache contents on one reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeEvent {
    /// The block was resident.
    Hit,
    /// The block was installed.
    Loaded {
        /// The displaced block and its hit-last copy, if a valid block was
        /// displaced. The caller is responsible for writing the copy back to
        /// its hit-last store — this is the Figure 6 "transfer on
        /// replacement" path.
        victim: Option<(u32, bool)>,
    },
    /// The block was passed to the CPU without being stored.
    Bypassed,
}

impl DeEvent {
    /// `true` unless the reference hit.
    pub fn is_miss(self) -> bool {
        !matches!(self, DeEvent::Hit)
    }

    /// `true` if the reference was bypassed.
    pub fn is_bypass(self) -> bool {
        matches!(self, DeEvent::Bypassed)
    }
}

/// The direct-mapped content, sticky bits, and resident hit-last copies of a
/// dynamic-exclusion cache, operating on *line addresses*.
///
/// This type owns the mechanics every DE variant shares — [`DeCache`],
/// [`LastLineDeCache`], and [`DeHierarchy`] differ only in where the
/// hit-last bits of non-resident blocks live and in what surrounds the
/// per-line FSM. Each resident block's hit-last bit is kept *in* the line
/// (`h_copy`), as the paper's Figure 6 prescribes, and handed back to the
/// caller when the block is displaced.
///
/// [`DeCache`]: crate::DeCache
/// [`LastLineDeCache`]: crate::LastLineDeCache
/// [`DeHierarchy`]: crate::DeHierarchy
#[derive(Debug, Clone)]
pub struct DeLines {
    geometry: Geometry,
    lines: Vec<u32>,
    sticky: Vec<bool>,
    h_copy: Vec<bool>,
}

impl DeLines {
    /// Creates cold (all-invalid, non-sticky) line state for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.associativity() != 1`: dynamic exclusion is a
    /// direct-mapped technique.
    pub fn new(config: CacheConfig) -> DeLines {
        assert_eq!(
            config.associativity(),
            1,
            "dynamic exclusion applies to direct-mapped caches"
        );
        let n = config.n_sets() as usize;
        DeLines {
            geometry: config.geometry(),
            lines: vec![INVALID_LINE; n],
            sticky: vec![false; n],
            h_copy: vec![false; n],
        }
    }

    /// The address arithmetic in use.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Whether `line` is currently resident (no state change).
    pub fn contains_line(&self, line: u32) -> bool {
        self.lines[self.geometry.set_of_line(line) as usize] == line
    }

    /// Whether `line`'s set currently has its sticky bit set.
    pub fn is_sticky(&self, line: u32) -> bool {
        self.sticky[self.geometry.set_of_line(line) as usize]
    }

    /// The resident block's hit-last copy, if `line` is resident.
    pub fn resident_hit_last(&self, line: u32) -> Option<bool> {
        let set = self.geometry.set_of_line(line) as usize;
        (self.lines[set] == line).then_some(self.h_copy[set])
    }

    /// Presents `line` to its cache line, with `h_pred` as the referenced
    /// block's hit-last bit (consulted only on a miss; callers obtain it from
    /// their [`crate::HitLastStore`] or next cache level *before* calling).
    ///
    /// Applies the FSM transition to the sticky bit and the resident block's
    /// hit-last copy, installs or bypasses the block, and reports what
    /// happened. On [`DeEvent::Loaded`] the caller must write the returned
    /// victim's hit-last copy back to wherever non-resident bits live.
    pub fn access_line(&mut self, line: u32, h_pred: bool) -> DeEvent {
        self.access_line_probed(line, h_pred, &mut NoopProbe)
    }

    /// [`DeLines::access_line`] with event emission: the FSM events come from
    /// [`fsm::step_probed`] and a displacement additionally emits
    /// [`Event::Eviction`].
    pub fn access_line_probed<P: Probe>(
        &mut self,
        line: u32,
        h_pred: bool,
        probe: &mut P,
    ) -> DeEvent {
        let set_index = self.geometry.set_of_line(line);
        let set = set_index as usize;
        let hit = self.lines[set] == line;
        let transition = fsm::step_probed(hit, self.sticky[set], h_pred, set_index, line, probe);
        self.sticky[set] = transition.sticky_after;
        match transition.action {
            DeAction::Hit => {
                // hit_last_after is Some(true) by construction.
                self.h_copy[set] = true;
                DeEvent::Hit
            }
            DeAction::Load => {
                let victim =
                    (self.lines[set] != INVALID_LINE).then(|| (self.lines[set], self.h_copy[set]));
                if let Some((victim_line, _)) = victim {
                    probe.emit(Event::Eviction {
                        set: set_index,
                        victim: victim_line,
                        replacement: line,
                    });
                }
                self.lines[set] = line;
                self.h_copy[set] = transition
                    .hit_last_after
                    .expect("loads always update hit-last");
                DeEvent::Loaded { victim }
            }
            DeAction::Bypass => DeEvent::Bypassed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines() -> DeLines {
        // 4 sets, 4B lines.
        DeLines::new(CacheConfig::direct_mapped(16, 4).unwrap())
    }

    #[test]
    fn cold_load_then_hit() {
        let mut l = lines();
        assert_eq!(l.access_line(0, false), DeEvent::Loaded { victim: None });
        assert_eq!(l.access_line(0, false), DeEvent::Hit);
        assert!(l.contains_line(0));
        assert!(l.is_sticky(0));
        assert_eq!(l.resident_hit_last(0), Some(true));
    }

    #[test]
    fn sticky_line_bypasses_unproven_block() {
        let mut l = lines();
        l.access_line(0, false); // resident, sticky
        let e = l.access_line(4, false); // conflicting line, h=0
        assert_eq!(e, DeEvent::Bypassed);
        assert!(l.contains_line(0), "resident survives");
        assert!(!l.is_sticky(0), "inertia spent");
    }

    #[test]
    fn unsticky_line_is_replaced_and_victim_reported() {
        let mut l = lines();
        l.access_line(0, false);
        l.access_line(4, false); // bypass, clears sticky
        let e = l.access_line(4, false); // now loads
        assert_eq!(
            e,
            DeEvent::Loaded {
                victim: Some((0, true))
            }
        );
        assert!(l.contains_line(4));
        assert!(!l.contains_line(0));
    }

    #[test]
    fn hit_last_block_loads_through_sticky_with_consumed_bit() {
        let mut l = lines();
        l.access_line(0, false); // resident 0, sticky
        let e = l.access_line(4, true); // h[4]=1: loads despite sticky
        assert_eq!(
            e,
            DeEvent::Loaded {
                victim: Some((0, true))
            }
        );
        assert_eq!(
            l.resident_hit_last(4),
            Some(false),
            "hit-last consumed on load"
        );
        assert!(l.is_sticky(4), "sticky stays set");
    }

    #[test]
    fn sets_are_independent() {
        let mut l = lines();
        l.access_line(0, false);
        l.access_line(1, false); // different set
        assert!(l.contains_line(0));
        assert!(l.contains_line(1));
        // Bypass on set 0 does not touch set 1's sticky bit.
        l.access_line(4, false);
        assert!(!l.is_sticky(0));
        assert!(l.is_sticky(1));
    }

    #[test]
    fn resident_hit_last_none_for_absent_line() {
        let mut l = lines();
        l.access_line(0, false);
        assert_eq!(l.resident_hit_last(4), None);
    }

    #[test]
    #[should_panic(expected = "direct-mapped")]
    fn rejects_associative_config() {
        DeLines::new(CacheConfig::new(16, 4, 2).unwrap());
    }

    #[test]
    fn probed_access_emits_eviction_on_displacement_only() {
        use dynex_obs::CountingProbe;
        let mut l = lines();
        let mut probe = CountingProbe::new();
        l.access_line_probed(0, false, &mut probe); // cold load: no eviction
        assert_eq!(probe.counts().evictions, 0);
        l.access_line_probed(4, false, &mut probe); // bypass: no eviction
        assert_eq!(probe.counts().evictions, 0);
        l.access_line_probed(4, false, &mut probe); // load displacing 0
        assert_eq!(probe.counts().evictions, 1);
        assert_eq!(probe.counts().exclusion_loads, 2);
        assert_eq!(probe.counts().exclusion_bypasses, 1);
    }

    #[test]
    fn probed_and_plain_access_agree() {
        use dynex_obs::NoopProbe;
        let mut a = lines();
        let mut b = lines();
        for (line, h) in [(0u32, false), (4, true), (0, false), (8, false), (8, true)] {
            assert_eq!(
                a.access_line(line, h),
                b.access_line_probed(line, h, &mut NoopProbe)
            );
        }
    }

    #[test]
    fn event_predicates() {
        assert!(DeEvent::Bypassed.is_miss());
        assert!(DeEvent::Bypassed.is_bypass());
        assert!(DeEvent::Loaded { victim: None }.is_miss());
        assert!(!DeEvent::Loaded { victim: None }.is_bypass());
        assert!(!DeEvent::Hit.is_miss());
    }
}
