//! The single-level dynamic-exclusion cache (Sections 4–5 of the paper).

use dynex_cache::{AccessOutcome, CacheConfig, CacheSim, CacheStats};

use crate::{DeEvent, DeLines, HitLastStore, PerfectStore};

/// Dynamic-exclusion-specific counters, beyond hit/miss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeStats {
    /// Misses that installed the referenced block.
    pub loads: u64,
    /// Misses that bypassed the cache (block passed straight to the CPU).
    pub bypasses: u64,
}

/// A direct-mapped cache governed by the dynamic-exclusion FSM.
///
/// This is the cache of the paper's Figures 3–5 (instruction streams),
/// Figure 14 (data streams), and Figure 15 (combined streams): one-word
/// lines, sticky bit per line, and a [`HitLastStore`] for the hit-last bits
/// of non-resident blocks ([`PerfectStore`] by default — the "in principle"
/// store; use [`crate::HashedStore`] for the bounded one, or
/// [`crate::DeHierarchy`] for the L2-backed strategies).
///
/// For line sizes above one word, wrap the reference stream semantics with
/// [`crate::LastLineDeCache`] instead: a bare `DeCache` updates FSM state on
/// every reference, which destroys the loop patterns the FSM recognizes —
/// exactly the problem Section 6 of the paper describes.
///
/// # Examples
///
/// ```
/// use dynex::DeCache;
/// use dynex_cache::{run_addrs, CacheConfig, CacheSim};
///
/// // The loop-level pattern (a^4 b)^3: b only interrupts, so b is excluded.
/// let mut de = DeCache::new(CacheConfig::direct_mapped(64, 4)?);
/// let mut refs = Vec::new();
/// for _ in 0..3 {
///     refs.extend([0u32; 4]); // a
///     refs.push(64);          // b, conflicting
/// }
/// let stats = run_addrs(&mut de, refs);
/// assert_eq!(stats.misses(), 4); // a once + b three times; a is never evicted
/// assert_eq!(de.de_stats().bypasses, 3);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeCache<S = PerfectStore> {
    config: CacheConfig,
    lines: DeLines,
    store: S,
    stats: CacheStats,
    de_stats: DeStats,
}

impl DeCache<PerfectStore> {
    /// Creates a DE cache with an unbounded ("in principle") hit-last store.
    pub fn new(config: CacheConfig) -> DeCache<PerfectStore> {
        DeCache::with_store(config, PerfectStore::new())
    }
}

impl<S: HitLastStore> DeCache<S> {
    /// Creates a DE cache over a caller-provided hit-last store.
    pub fn with_store(config: CacheConfig, store: S) -> DeCache<S> {
        DeCache {
            config,
            lines: DeLines::new(config),
            store,
            stats: CacheStats::new(),
            de_stats: DeStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Dynamic-exclusion-specific counters.
    pub fn de_stats(&self) -> DeStats {
        self.de_stats
    }

    /// The hit-last store (for inspection in tests and experiments).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Whether the block containing `addr` is resident (no state change).
    pub fn contains(&self, addr: u32) -> bool {
        self.lines.contains_line(self.lines.geometry().line_addr(addr))
    }

    /// Presents a *line address* (shared with [`crate::LastLineDeCache`]).
    pub(crate) fn access_line(&mut self, line: u32) -> AccessOutcome {
        let h_pred = self.store.get(line);
        let event = self.lines.access_line(line, h_pred);
        let outcome = match event {
            DeEvent::Hit => AccessOutcome::Hit,
            DeEvent::Loaded { victim } => {
                self.de_stats.loads += 1;
                if let Some((victim_line, victim_h)) = victim {
                    self.store.set(victim_line, victim_h);
                }
                AccessOutcome::Miss
            }
            DeEvent::Bypassed => {
                self.de_stats.bypasses += 1;
                AccessOutcome::Miss
            }
        };
        self.stats.record(outcome);
        outcome
    }
}

impl<S: HitLastStore> CacheSim for DeCache<S> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.lines.geometry().line_addr(addr);
        self.access_line(line)
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!("{} (dynamic exclusion)", self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HashedStore;
    use dynex_cache::{run_addrs, DirectMapped};

    fn config(size: u32) -> CacheConfig {
        CacheConfig::direct_mapped(size, 4).unwrap()
    }

    /// Addresses for two conflicting blocks in a 64B cache.
    const A: u32 = 0;
    const B: u32 = 64;

    #[test]
    fn within_loop_pattern_halves_misses() {
        // (a b)^10: DM misses all 20; DE settles to a-hits/b-bypasses.
        let mut de = DeCache::new(config(64));
        let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { A } else { B }).collect();
        let stats = run_addrs(&mut de, addrs);
        assert_eq!(stats.misses(), 11); // cold a + 10 b misses
        assert_eq!(de.de_stats().bypasses, 10);
        assert_eq!(de.de_stats().loads, 1);
    }

    #[test]
    fn conflict_between_loops_matches_optimal_after_training() {
        // (a^10 b^10)^10: optimal misses 20; DE within 2.
        let mut de = DeCache::new(config(64));
        let mut addrs = Vec::new();
        for _ in 0..10 {
            addrs.extend(std::iter::repeat(A).take(10));
            addrs.extend(std::iter::repeat(B).take(10));
        }
        let stats = run_addrs(&mut de, addrs);
        assert!((20..=22).contains(&stats.misses()), "got {}", stats.misses());
    }

    #[test]
    fn no_conflicts_behaves_like_conventional() {
        // Disjoint working set fitting the cache: DE must not add misses
        // beyond cold start.
        let cfg = config(256);
        let addrs: Vec<u32> = (0..64u32)
            .map(|i| (i % 16) * 4)
            .collect();
        let mut de = DeCache::new(cfg);
        let mut dm = DirectMapped::new(cfg);
        let de_stats = run_addrs(&mut de, addrs.iter().copied());
        let dm_stats = run_addrs(&mut dm, addrs);
        assert_eq!(de_stats.misses(), dm_stats.misses());
        assert_eq!(de.de_stats().bypasses, 0);
    }

    #[test]
    fn victim_hit_last_written_back_to_store() {
        let mut de = DeCache::new(config(64));
        // Load a, let it hit, then force it out via b (h[b] trained).
        run_addrs(&mut de, [A, A, B, B, A]);
        // Timeline: a load (h_copy=1), a hit, b bypass (s->0), b load
        // (victim a written back with h=1), a: sticky miss with h[a]=1 ->
        // load (victim b written back with h_copy=1).
        assert!(de.contains(A));
        assert!(!de.contains(B));
        assert!(de.store().get(B >> 2), "b's hit-last copy written back on displacement");
        assert!(de.store().get(A >> 2), "a's bit from its first displacement");
        assert_eq!(de.stats().misses(), 4);
    }

    #[test]
    fn hashed_store_variant_runs() {
        let cfg = config(64);
        let mut de = DeCache::with_store(cfg, HashedStore::new(cfg, 4));
        let addrs: Vec<u32> = (0..40).map(|i| if i % 2 == 0 { A } else { B }).collect();
        let stats = run_addrs(&mut de, addrs);
        // Only two blocks: no aliasing pressure, must match the perfect
        // store's behaviour.
        assert_eq!(stats.misses(), 21);
    }

    #[test]
    fn bypasses_plus_loads_equal_misses() {
        let mut de = DeCache::new(config(64));
        let mut rng = dynex_cache::SplitMix64::new(3);
        let addrs: Vec<u32> = (0..1000).map(|_| (rng.below(64) as u32) * 4).collect();
        let stats = run_addrs(&mut de, addrs);
        assert_eq!(de.de_stats().loads + de.de_stats().bypasses, stats.misses());
    }

    #[test]
    fn contains_tracks_residency_not_bypass() {
        let mut de = DeCache::new(config(64));
        de.access(A);
        de.access(B); // bypassed
        assert!(de.contains(A));
        assert!(!de.contains(B));
    }

    #[test]
    fn label_mentions_dynamic_exclusion() {
        assert!(DeCache::new(config(64)).label().contains("dynamic exclusion"));
    }
}
