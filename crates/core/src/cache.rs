//! The single-level dynamic-exclusion cache (Sections 4–5 of the paper).

use dynex_cache::{AccessOutcome, CacheConfig, CacheSim, CacheStats};
use dynex_obs::{Cause, Event, NoopProbe, Probe};

use crate::{DeEvent, DeLines, HitLastStore, PerfectStore};

/// Dynamic-exclusion-specific counters, beyond hit/miss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeStats {
    /// Misses that installed the referenced block.
    pub loads: u64,
    /// Misses that bypassed the cache (block passed straight to the CPU).
    pub bypasses: u64,
}

/// A direct-mapped cache governed by the dynamic-exclusion FSM.
///
/// This is the cache of the paper's Figures 3–5 (instruction streams),
/// Figure 14 (data streams), and Figure 15 (combined streams): one-word
/// lines, sticky bit per line, and a [`HitLastStore`] for the hit-last bits
/// of non-resident blocks ([`PerfectStore`] by default — the "in principle"
/// store; use [`crate::HashedStore`] for the bounded one, or
/// [`crate::DeHierarchy`] for the L2-backed strategies).
///
/// For line sizes above one word, wrap the reference stream semantics with
/// [`crate::LastLineDeCache`] instead: a bare `DeCache` updates FSM state on
/// every reference, which destroys the loop patterns the FSM recognizes —
/// exactly the problem Section 6 of the paper describes.
///
/// # Examples
///
/// ```
/// use dynex::DeCache;
/// use dynex_cache::{run_addrs, CacheConfig, CacheSim};
///
/// // The loop-level pattern (a^4 b)^3: b only interrupts, so b is excluded.
/// let mut de = DeCache::new(CacheConfig::direct_mapped(64, 4)?);
/// let mut refs = Vec::new();
/// for _ in 0..3 {
///     refs.extend([0u32; 4]); // a
///     refs.push(64);          // b, conflicting
/// }
/// let stats = run_addrs(&mut de, refs);
/// assert_eq!(stats.misses(), 4); // a once + b three times; a is never evicted
/// assert_eq!(de.de_stats().bypasses, 3);
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeCache<S = PerfectStore, P: Probe = NoopProbe> {
    config: CacheConfig,
    lines: DeLines,
    store: S,
    stats: CacheStats,
    de_stats: DeStats,
    probe: P,
}

impl DeCache<PerfectStore> {
    /// Creates a DE cache with an unbounded ("in principle") hit-last store.
    pub fn new(config: CacheConfig) -> DeCache<PerfectStore> {
        DeCache::with_store(config, PerfectStore::new())
    }
}

impl<P: Probe> DeCache<PerfectStore, P> {
    /// Creates a DE cache with an unbounded store, emitting events into
    /// `probe`.
    pub fn with_probe(config: CacheConfig, probe: P) -> DeCache<PerfectStore, P> {
        DeCache::with_store_and_probe(config, PerfectStore::new(), probe)
    }
}

impl<S: HitLastStore> DeCache<S> {
    /// Creates a DE cache over a caller-provided hit-last store.
    pub fn with_store(config: CacheConfig, store: S) -> DeCache<S> {
        DeCache::with_store_and_probe(config, store, NoopProbe)
    }
}

impl<S: HitLastStore, P: Probe> DeCache<S, P> {
    /// Creates a DE cache over a caller-provided hit-last store, emitting
    /// events into `probe`.
    ///
    /// Emitted events: [`Event::Access`] per reference (cause
    /// [`Cause::Bypass`] for bypassed misses), plus the FSM and eviction
    /// events of [`crate::fsm::step_probed`] and
    /// [`DeLines::access_line_probed`].
    pub fn with_store_and_probe(config: CacheConfig, store: S, probe: P) -> DeCache<S, P> {
        DeCache {
            config,
            lines: DeLines::new(config),
            store,
            stats: CacheStats::new(),
            de_stats: DeStats::default(),
            probe,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Dynamic-exclusion-specific counters.
    pub fn de_stats(&self) -> DeStats {
        self.de_stats
    }

    /// The hit-last store (for inspection in tests and experiments).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the probe (wrappers such as
    /// [`crate::LastLineDeCache`] emit their own events through it).
    pub(crate) fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the cache, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Whether the block containing `addr` is resident (no state change).
    pub fn contains(&self, addr: u32) -> bool {
        self.lines
            .contains_line(self.lines.geometry().line_addr(addr))
    }

    /// The set index `line` maps to (used by wrappers to label events).
    pub(crate) fn set_of_line(&self, line: u32) -> u32 {
        self.lines.geometry().set_of_line(line)
    }

    /// Presents a *line address* (shared with [`crate::LastLineDeCache`]).
    pub(crate) fn access_line(&mut self, line: u32) -> AccessOutcome {
        let addr = line << self.lines.geometry().offset_bits();
        self.access_inner(line, addr)
    }

    fn access_inner(&mut self, line: u32, addr: u32) -> AccessOutcome {
        let h_pred = self.store.get(line);
        let event = self.lines.access_line_probed(line, h_pred, &mut self.probe);
        let set = self.lines.geometry().set_of_line(line);
        let (outcome, cause) = match event {
            DeEvent::Hit => (AccessOutcome::Hit, Cause::Resident),
            DeEvent::Loaded { victim } => {
                self.de_stats.loads += 1;
                let cause = match victim {
                    Some((victim_line, victim_h)) => {
                        self.store.set(victim_line, victim_h);
                        Cause::Replace
                    }
                    None => Cause::Cold,
                };
                (AccessOutcome::Miss, cause)
            }
            DeEvent::Bypassed => {
                self.de_stats.bypasses += 1;
                (AccessOutcome::Miss, Cause::Bypass)
            }
        };
        self.probe.emit(Event::Access {
            addr,
            set,
            outcome: outcome.into(),
            cause,
        });
        self.stats.record(outcome);
        outcome
    }
}

impl<S: HitLastStore, P: Probe> CacheSim for DeCache<S, P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.lines.geometry().line_addr(addr);
        self.access_inner(line, addr)
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!("{} (dynamic exclusion)", self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HashedStore;
    use dynex_cache::{run_addrs, DirectMapped};

    fn config(size: u32) -> CacheConfig {
        CacheConfig::direct_mapped(size, 4).unwrap()
    }

    /// Addresses for two conflicting blocks in a 64B cache.
    const A: u32 = 0;
    const B: u32 = 64;

    #[test]
    fn within_loop_pattern_halves_misses() {
        // (a b)^10: DM misses all 20; DE settles to a-hits/b-bypasses.
        let mut de = DeCache::new(config(64));
        let addrs: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { A } else { B }).collect();
        let stats = run_addrs(&mut de, addrs);
        assert_eq!(stats.misses(), 11); // cold a + 10 b misses
        assert_eq!(de.de_stats().bypasses, 10);
        assert_eq!(de.de_stats().loads, 1);
    }

    #[test]
    fn conflict_between_loops_matches_optimal_after_training() {
        // (a^10 b^10)^10: optimal misses 20; DE within 2.
        let mut de = DeCache::new(config(64));
        let mut addrs = Vec::new();
        for _ in 0..10 {
            addrs.extend(std::iter::repeat_n(A, 10));
            addrs.extend(std::iter::repeat_n(B, 10));
        }
        let stats = run_addrs(&mut de, addrs);
        assert!(
            (20..=22).contains(&stats.misses()),
            "got {}",
            stats.misses()
        );
    }

    #[test]
    fn no_conflicts_behaves_like_conventional() {
        // Disjoint working set fitting the cache: DE must not add misses
        // beyond cold start.
        let cfg = config(256);
        let addrs: Vec<u32> = (0..64u32).map(|i| (i % 16) * 4).collect();
        let mut de = DeCache::new(cfg);
        let mut dm = DirectMapped::new(cfg);
        let de_stats = run_addrs(&mut de, addrs.iter().copied());
        let dm_stats = run_addrs(&mut dm, addrs);
        assert_eq!(de_stats.misses(), dm_stats.misses());
        assert_eq!(de.de_stats().bypasses, 0);
    }

    #[test]
    fn victim_hit_last_written_back_to_store() {
        let mut de = DeCache::new(config(64));
        // Load a, let it hit, then force it out via b (h[b] trained).
        run_addrs(&mut de, [A, A, B, B, A]);
        // Timeline: a load (h_copy=1), a hit, b bypass (s->0), b load
        // (victim a written back with h=1), a: sticky miss with h[a]=1 ->
        // load (victim b written back with h_copy=1).
        assert!(de.contains(A));
        assert!(!de.contains(B));
        assert!(
            de.store().get(B >> 2),
            "b's hit-last copy written back on displacement"
        );
        assert!(
            de.store().get(A >> 2),
            "a's bit from its first displacement"
        );
        assert_eq!(de.stats().misses(), 4);
    }

    #[test]
    fn hashed_store_variant_runs() {
        let cfg = config(64);
        let mut de = DeCache::with_store(cfg, HashedStore::new(cfg, 4));
        let addrs: Vec<u32> = (0..40).map(|i| if i % 2 == 0 { A } else { B }).collect();
        let stats = run_addrs(&mut de, addrs);
        // Only two blocks: no aliasing pressure, must match the perfect
        // store's behaviour.
        assert_eq!(stats.misses(), 21);
    }

    #[test]
    fn bypasses_plus_loads_equal_misses() {
        let mut de = DeCache::new(config(64));
        let mut rng = dynex_cache::SplitMix64::new(3);
        let addrs: Vec<u32> = (0..1000).map(|_| (rng.below(64) as u32) * 4).collect();
        let stats = run_addrs(&mut de, addrs);
        assert_eq!(de.de_stats().loads + de.de_stats().bypasses, stats.misses());
    }

    #[test]
    fn contains_tracks_residency_not_bypass() {
        let mut de = DeCache::new(config(64));
        de.access(A);
        de.access(B); // bypassed
        assert!(de.contains(A));
        assert!(!de.contains(B));
    }

    #[test]
    fn label_mentions_dynamic_exclusion() {
        assert!(DeCache::new(config(64))
            .label()
            .contains("dynamic exclusion"));
    }

    #[test]
    fn probe_counts_match_de_stats() {
        use dynex_obs::CountingProbe;
        let mut de = DeCache::with_probe(config(64), CountingProbe::new());
        let mut rng = dynex_cache::SplitMix64::new(9);
        let addrs: Vec<u32> = (0..2000).map(|_| (rng.below(64) as u32) * 4).collect();
        let stats = run_addrs(&mut de, addrs);
        let counts = de.probe().counts();
        assert_eq!(counts.accesses, stats.accesses());
        assert_eq!(counts.hits, stats.hits());
        assert_eq!(counts.misses, stats.misses());
        assert_eq!(counts.exclusion_loads, de.de_stats().loads);
        assert_eq!(counts.exclusion_bypasses, de.de_stats().bypasses);
        assert!(counts.evictions <= counts.exclusion_loads);
    }

    #[test]
    fn probe_attributes_bypasses() {
        use dynex_obs::{Cause, Event, EventLog, Outcome};
        let mut de = DeCache::with_probe(config(64), EventLog::new());
        run_addrs(&mut de, [A, B]); // cold load, bypass
        let events = de.into_probe().into_events();
        let bypassed = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Access {
                        outcome: Outcome::Miss,
                        cause: Cause::Bypass,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(bypassed, 1);
    }

    /// The batch DE kernel must replicate this cache bit-for-bit: same
    /// statistics, same load/bypass split, and the same event stream in the
    /// same order. This is the unit-level anchor of the differential wall in
    /// `tests/kernel_differential.rs`.
    #[test]
    fn batch_kernel_matches_reference_events_and_stats() {
        use dynex_cache::{batch_de_probed, run_addrs, SplitMix64};
        use dynex_obs::EventLog;
        for (seed, span, size) in [(17u64, 64u64, 64u32), (18, 512, 256), (19, 4096, 1024)] {
            let cfg = CacheConfig::direct_mapped(size, 4).unwrap();
            let mut rng = SplitMix64::new(seed);
            let addrs: Vec<u32> = (0..5000).map(|_| (rng.below(span) as u32) * 4).collect();

            let mut reference = DeCache::with_probe(cfg, EventLog::new());
            let ref_stats = run_addrs(&mut reference, addrs.iter().copied());
            let ref_de = reference.de_stats();
            let ref_events = reference.into_probe().into_events();

            let mut log = EventLog::new();
            let batch = batch_de_probed(cfg, &addrs, &mut log);
            assert_eq!(batch.stats, ref_stats, "seed {seed}");
            assert_eq!(batch.loads, ref_de.loads, "seed {seed}");
            assert_eq!(batch.bypasses, ref_de.bypasses, "seed {seed}");
            assert_eq!(log.into_events(), ref_events, "seed {seed}");
        }
    }

    #[test]
    fn probed_and_bare_runs_are_identical() {
        use dynex_obs::CountingProbe;
        let cfg = config(64);
        let mut bare = DeCache::new(cfg);
        let mut probed = DeCache::with_probe(cfg, CountingProbe::new());
        let mut rng = dynex_cache::SplitMix64::new(13);
        for _ in 0..3000 {
            let a = (rng.below(96) as u32) * 4;
            assert_eq!(bare.access(a), probed.access(a));
        }
        assert_eq!(bare.stats(), probed.stats());
        assert_eq!(bare.de_stats(), probed.de_stats());
    }
}
