//! Dynamic exclusion cache replacement — McFarling, ISCA 1992.
//!
//! Direct-mapped caches are fast but thrash when blocks needed in the same
//! program phase conflict for a line. *Dynamic exclusion* attaches a tiny
//! finite-state machine to each cache line — one **sticky** bit per line plus
//! one **hit-last** bit per memory block — that recognizes the common
//! loop-induced reference patterns and *bypasses* (passes to the CPU without
//! storing) blocks whose caching would only cause thrashing.
//!
//! The crate provides:
//!
//! * [`fsm`] — the pure state machine of the paper's Figure 1,
//! * [`DeCache`] — a direct-mapped cache governed by the FSM, with pluggable
//!   [`HitLastStore`]s ([`PerfectStore`], [`HashedStore`]),
//! * [`LastLineDeCache`] — the Section 6 structure for line sizes above one
//!   word (Figure 10's last-tag/last-line buffer),
//! * [`OptimalDirectMapped`] — the paper's "optimal direct-mapped cache":
//!   same placement, future-knowing replacement *and* bypass (Belady-style,
//!   two-pass),
//! * [`DeHierarchy`] — the Section 5 two-level organization with the three
//!   hit-last storage strategies ([`HitLastStrategy`]): `hashed`,
//!   `assume-hit`, `assume-miss`, including the L1/L2 exclusion that lowers
//!   L2 miss rates in Figures 8–9,
//! * [`MultiStickyDeCache`] — the multi-level sticky extension the paper
//!   references (\[McF91a\]), used by the `ablate-sticky` experiment.
//!
//! # Quick start
//!
//! ```
//! use dynex::{DeCache, OptimalDirectMapped};
//! use dynex_cache::{run_addrs, CacheConfig, CacheSim, DirectMapped};
//!
//! // The within-loop conflict (a b)^10: a and b share one line.
//! let config = CacheConfig::direct_mapped(64, 4)?;
//! let trace: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
//!
//! let mut dm = DirectMapped::new(config);
//! let mut de = DeCache::new(config);
//! let dm_stats = run_addrs(&mut dm, trace.iter().copied());
//! let de_stats = run_addrs(&mut de, trace.iter().copied());
//! let opt_stats = OptimalDirectMapped::simulate(config, trace.iter().copied());
//!
//! assert_eq!(dm_stats.misses(), 20);            // conventional: 100% misses
//! assert_eq!(opt_stats.misses(), 11);           // optimal: keep one block
//! assert!(de_stats.misses() <= opt_stats.misses() + 2); // DE: optimal + startup
//! # Ok::<(), dynex_cache::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod fsm;
mod hierarchy;
mod hitlast;
mod lastline;
mod linebuf;
mod lines;
mod optimal;
mod sticky;

pub use cache::{DeCache, DeStats};
pub use hierarchy::{DeHierarchy, DeHierarchyStats, HierarchyError, HitLastStrategy};
pub use hitlast::{HashedStore, HitLastStore, PerfectStore, ProbedStore};
pub use lastline::LastLineDeCache;
pub use linebuf::{DeStreamBuffer, InstrRegisterDeCache};
pub use lines::{DeEvent, DeLines};
pub use optimal::OptimalDirectMapped;
pub use sticky::MultiStickyDeCache;
