//! The other two Section 6 structures for multi-word lines.
//!
//! The paper lists three "particularly simple" ways to keep an excluded line
//! available for its sequential references:
//!
//! 1. an **instruction register** the size of one line
//!    ([`InstrRegisterDeCache`]) — missing lines are always latched there,
//!    and only stored in the cache when the FSM says to;
//! 2. a **last-line buffer** with its own tag ([`crate::LastLineDeCache`]) —
//!    the alternative the paper evaluates in Figure 11;
//! 3. leaving excluded lines **in the stream buffer**
//!    ([`DeStreamBuffer`]) — cheapest if the machine already has one
//!    \[Jou90\], and the buffer's sequential prefetch comes along for free.
//!
//! The `ablate-linebuf` experiment compares the three.

use dynex_cache::{AccessOutcome, CacheConfig, CacheSim, CacheStats};

use crate::cache::DeStats;
use crate::{DeCache, HitLastStore, PerfectStore};

/// Section 6 alternative 1: dynamic exclusion with a one-line instruction
/// register.
///
/// Every fetched line — from memory *or* from the cache — passes through the
/// pipeline's instruction register, so sequential references are served from
/// it without touching dynamic-exclusion state, and an excluded line costs
/// one miss per run. Because the register latches every line change, this
/// structure is observably identical to the last-line buffer
/// ([`crate::LastLineDeCache`]) in miss behaviour — which is why the paper
/// evaluates only one of them; the types differ in hardware cost (the
/// register already exists in the pipeline, the last-line buffer adds a
/// tagged line beside the cache). The equivalence is pinned by a test.
///
/// # Examples
///
/// ```
/// use dynex::InstrRegisterDeCache;
/// use dynex_cache::{CacheConfig, CacheSim};
///
/// let mut cache = InstrRegisterDeCache::new(CacheConfig::direct_mapped(256, 16)?);
/// cache.access(0x100);                  // miss: latched in the register
/// assert!(cache.access(0x104).is_hit());  // served by the register
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstrRegisterDeCache<S = PerfectStore> {
    inner: DeCache<S>,
    register: Option<u32>,
    register_hits: u64,
    stats: CacheStats,
}

impl InstrRegisterDeCache<PerfectStore> {
    /// Creates an instruction-register DE cache with an unbounded hit-last
    /// store.
    pub fn new(config: CacheConfig) -> InstrRegisterDeCache<PerfectStore> {
        InstrRegisterDeCache::with_store(config, PerfectStore::new())
    }
}

impl<S: HitLastStore> InstrRegisterDeCache<S> {
    /// Creates an instruction-register DE cache over a caller-provided
    /// store.
    pub fn with_store(config: CacheConfig, store: S) -> InstrRegisterDeCache<S> {
        InstrRegisterDeCache {
            inner: DeCache::with_store(config, store),
            register: None,
            register_hits: 0,
            stats: CacheStats::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.inner.config()
    }

    /// DE counters of the inner cache.
    pub fn de_stats(&self) -> DeStats {
        self.inner.de_stats()
    }

    /// References served by the instruction register.
    pub fn register_hits(&self) -> u64 {
        self.register_hits
    }
}

impl<S: HitLastStore> CacheSim for InstrRegisterDeCache<S> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.inner.config().geometry().line_addr(addr);
        let outcome = if self.register == Some(line) {
            self.register_hits += 1;
            AccessOutcome::Hit
        } else {
            // Any line change refills the register: from the cache on a hit,
            // from memory on a miss (where the FSM also decides storage).
            self.register = Some(line);
            self.inner.access_line(line)
        };
        self.stats.record(outcome);
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!(
            "{} (dynamic exclusion + instruction register)",
            self.inner.config()
        )
    }
}

/// Section 6 alternative 3: dynamic exclusion backed by a sequential stream
/// buffer.
///
/// Missing lines refill the buffer; excluded (bypassed) lines simply stay in
/// it, so their sequential references cost one memory fetch, and the buffer's
/// prefetch additionally hides purely sequential misses — the paper notes
/// this is "probably the simplest if the machine already uses a stream
/// buffer".
///
/// Misses count memory fetches: a reference served by the buffer is a hit.
///
/// # Examples
///
/// ```
/// use dynex::DeStreamBuffer;
/// use dynex_cache::{CacheConfig, CacheSim};
///
/// let mut cache = DeStreamBuffer::new(CacheConfig::direct_mapped(256, 16)?, 4);
/// cache.access(0x100);                   // miss: buffer holds the line + prefetch
/// assert!(cache.access(0x10c).is_hit()); // same line, from the buffer
/// assert!(cache.access(0x110).is_hit()); // next line, prefetched
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeStreamBuffer<S = PerfectStore> {
    inner: DeCache<S>,
    /// Prefetched line addresses, head first.
    buffer: Vec<u32>,
    depth: usize,
    stream_hits: u64,
    stats: CacheStats,
}

impl DeStreamBuffer<PerfectStore> {
    /// Creates a DE cache with a `depth`-line stream buffer and an unbounded
    /// hit-last store.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(config: CacheConfig, depth: usize) -> DeStreamBuffer<PerfectStore> {
        DeStreamBuffer::with_store(config, depth, PerfectStore::new())
    }
}

impl<S: HitLastStore> DeStreamBuffer<S> {
    /// Creates a DE cache with a stream buffer over a caller-provided store.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn with_store(config: CacheConfig, depth: usize, store: S) -> DeStreamBuffer<S> {
        assert!(depth > 0, "stream buffer must hold at least one line");
        DeStreamBuffer {
            inner: DeCache::with_store(config, store),
            buffer: Vec::with_capacity(depth),
            depth,
            stream_hits: 0,
            stats: CacheStats::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.inner.config()
    }

    /// DE counters of the inner cache.
    pub fn de_stats(&self) -> DeStats {
        self.inner.de_stats()
    }

    /// References served by the stream buffer.
    pub fn stream_hits(&self) -> u64 {
        self.stream_hits
    }
}

impl<S: HitLastStore> CacheSim for DeStreamBuffer<S> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.inner.config().geometry().line_addr(addr);
        let outcome = if self.inner.contains(addr) {
            self.inner.access_line(line)
        } else if let Some(position) = self.buffer.iter().position(|&l| l == line) {
            // Served by the buffer: no memory fetch, no FSM churn (the line
            // keeps streaming). Slide the prefetch window so the served line
            // becomes the head and the tail keeps running ahead.
            self.stream_hits += 1;
            self.buffer.drain(..position);
            let mut next = self.buffer.last().copied().unwrap_or(line).wrapping_add(1);
            while self.buffer.len() < self.depth {
                self.buffer.push(next);
                next = next.wrapping_add(1);
            }
            AccessOutcome::Hit
        } else {
            // Memory fetch. The FSM decides whether the line also enters the
            // cache; either way the buffer restarts at this line so its
            // remaining words (and sequential successors) are covered.
            self.inner.access_line(line);
            self.buffer.clear();
            for i in 0..self.depth as u32 {
                self.buffer.push(line.wrapping_add(i));
            }
            AccessOutcome::Miss
        };
        self.stats.record(outcome);
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!(
            "{} (dynamic exclusion + {}-deep stream buffer)",
            self.inner.config(),
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LastLineDeCache;
    use dynex_cache::run_addrs;

    fn config() -> CacheConfig {
        CacheConfig::direct_mapped(64, 16).unwrap()
    }

    /// Two conflicting 16B lines alternating in 4-word runs.
    fn alternating_runs(rounds: u32) -> Vec<u32> {
        let mut addrs = Vec::new();
        for round in 0..rounds {
            let base = if round % 2 == 0 { 0u32 } else { 64 };
            for w in 0..4 {
                addrs.push(base + w * 4);
            }
        }
        addrs
    }

    #[test]
    fn register_serves_sequential_words_of_excluded_lines() {
        let mut c = InstrRegisterDeCache::new(config());
        let stats = run_addrs(&mut c, alternating_runs(10));
        // Same steady state as the last-line buffer: A resident, B excluded
        // but latched: 1 cold + 5 B-run misses.
        assert_eq!(stats.misses(), 6);
        assert_eq!(c.register_hits(), 30);
    }

    #[test]
    fn register_is_equivalent_to_last_line_buffer() {
        // The paper's alternatives 1 and 2 differ only in hardware; the miss
        // behaviour is identical reference-for-reference.
        let mut reg = InstrRegisterDeCache::new(config());
        let mut ll = LastLineDeCache::new(config());
        let mut rng = dynex_cache::SplitMix64::new(91);
        let mut pc = 0u32;
        for _ in 0..5000 {
            if rng.chance(0.2) {
                pc = (rng.below(1024) as u32) * 4;
            } else {
                pc += 4;
            }
            assert_eq!(reg.access(pc), ll.access(pc), "at pc {pc:#x}");
        }
        assert_eq!(reg.stats(), ll.stats());
        assert_eq!(reg.register_hits(), ll.buffer_hits());
    }

    #[test]
    fn stream_buffer_prefetches_across_lines() {
        let mut c = DeStreamBuffer::new(config(), 4);
        // A cold sequential sweep of 16 words (4 lines): one memory fetch.
        // The first line was loaded into the cache, so its remaining 3 words
        // are cache hits; the other 12 references stream from the buffer.
        let stats = run_addrs(&mut c, (0..16u32).map(|i| 0x100 + i * 4));
        assert_eq!(stats.misses(), 1);
        assert_eq!(c.stream_hits(), 12);
    }

    #[test]
    fn stream_buffer_keeps_excluded_lines_available() {
        // Stronger than the last-line buffer: the excluded line survives in
        // the buffer across the other line's cache hits (nothing flushes it
        // until a non-matching miss), so B pays exactly one memory fetch.
        let mut c = DeStreamBuffer::new(config(), 4);
        let stats = run_addrs(&mut c, alternating_runs(10));
        assert_eq!(stats.misses(), 2);
        assert!(
            c.de_stats().bypasses > 0,
            "the conflicting line was excluded"
        );
    }

    #[test]
    fn the_three_structures_rank_as_expected_on_alternation() {
        // Register == last-line; the stream buffer does strictly better on
        // the alternating pattern (it retains the excluded line).
        let addrs = alternating_runs(20);
        let mut reg = InstrRegisterDeCache::new(config());
        let mut ll = LastLineDeCache::new(config());
        let mut sb = DeStreamBuffer::new(config(), 4);
        let r = run_addrs(&mut reg, addrs.iter().copied());
        let l = run_addrs(&mut ll, addrs.iter().copied());
        let s = run_addrs(&mut sb, addrs.iter().copied());
        assert_eq!(r.misses(), l.misses());
        assert!(s.misses() <= l.misses());
        assert_eq!(s.misses(), 2, "one fetch per conflicting line");
    }

    #[test]
    fn stream_buffer_never_misses_more_than_last_line() {
        // The buffer is a strict superset of the last-line's capability on
        // instruction streams: it holds the latest line *and* prefetches.
        let mut rng = dynex_cache::SplitMix64::new(33);
        let mut addrs = Vec::new();
        let mut pc = 0u32;
        for _ in 0..3000 {
            if rng.chance(0.15) {
                pc = (rng.below(512) as u32) * 4;
            } else {
                pc += 4;
            }
            addrs.push(pc);
        }
        let mut ll = LastLineDeCache::new(config());
        let mut sb = DeStreamBuffer::new(config(), 4);
        let l = run_addrs(&mut ll, addrs.iter().copied());
        let s = run_addrs(&mut sb, addrs.iter().copied());
        assert!(
            s.misses() <= l.misses(),
            "sb {} vs ll {}",
            s.misses(),
            l.misses()
        );
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_depth_rejected() {
        DeStreamBuffer::new(config(), 0);
    }

    #[test]
    fn labels_name_the_structures() {
        assert!(InstrRegisterDeCache::new(config())
            .label()
            .contains("instruction register"));
        assert!(DeStreamBuffer::new(config(), 4)
            .label()
            .contains("stream buffer"));
    }
}
