//! The dynamic-exclusion finite-state machine (Figure 1 of the paper).
//!
//! The FSM is presented here as a pure transition function over three input
//! bits so it can be tested exhaustively and reused by every cache variant:
//!
//! * `hit` — the referenced block is the line's resident block,
//! * `sticky` — the line's sticky bit,
//! * `hit_last` — the referenced block's hit-last bit (`h[x]`), consulted
//!   only on a miss.
//!
//! The transition table (see `DESIGN.md` for the derivation from the paper's
//! narrative):
//!
//! | condition                   | action  | sticky' | h\[x\]'      |
//! |-----------------------------|---------|---------|--------------|
//! | hit                         | hit     | 1       | 1            |
//! | miss, `!sticky`             | load    | 1       | 1 (anomaly)  |
//! | miss, `sticky`, `h[x]`      | load    | 1       | 0 (consumed) |
//! | miss, `sticky`, `!h[x]`     | bypass  | 0       | unchanged    |
//!
//! The "anomaly" row is the transition the paper calls out explicitly
//! (`A,!s -> B,s` sets `h[b]` although `b` did not hit); it lets random
//! references enter the cache sooner. The "consumed" row gives a block loaded
//! on the strength of its hit-last bit exactly one residency to prove itself,
//! which is what converges the loop-level pattern `(a^n b)^m` to permanently
//! excluding `b`.

/// What the cache should do with the referenced block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeAction {
    /// The block is resident: serve it from the cache.
    Hit,
    /// Miss: fetch the block and store it, replacing the resident block.
    Load,
    /// Miss: fetch the block and pass it to the CPU *without* storing it.
    Bypass,
}

impl DeAction {
    /// `true` unless the reference hit.
    pub fn is_miss(self) -> bool {
        !matches!(self, DeAction::Hit)
    }

    /// `true` if the block ends up resident after the reference.
    pub fn installs(self) -> bool {
        matches!(self, DeAction::Load)
    }
}

/// Complete result of one FSM step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transition {
    /// What to do with the referenced block.
    pub action: DeAction,
    /// New value of the line's sticky bit.
    pub sticky_after: bool,
    /// New value of the referenced block's hit-last bit, or `None` if it is
    /// left unchanged.
    pub hit_last_after: Option<bool>,
}

/// One step of the dynamic-exclusion FSM.
///
/// # Examples
///
/// ```
/// use dynex::fsm::{step, DeAction};
///
/// // Sticky line defends its resident against a block that did not hit last
/// // time — the block is bypassed and the line's inertia is spent.
/// let t = step(false, true, false);
/// assert_eq!(t.action, DeAction::Bypass);
/// assert!(!t.sticky_after);
/// assert_eq!(t.hit_last_after, None);
/// ```
pub fn step(hit: bool, sticky: bool, hit_last: bool) -> Transition {
    if hit {
        Transition {
            action: DeAction::Hit,
            sticky_after: true,
            hit_last_after: Some(true),
        }
    } else if !sticky {
        Transition {
            action: DeAction::Load,
            sticky_after: true,
            hit_last_after: Some(true),
        }
    } else if hit_last {
        Transition {
            action: DeAction::Load,
            sticky_after: true,
            hit_last_after: Some(false),
        }
    } else {
        Transition {
            action: DeAction::Bypass,
            sticky_after: false,
            hit_last_after: None,
        }
    }
}

/// [`step`] plus event emission: the observable FSM.
///
/// `set` is the cache line index and `line` the referenced block's line
/// address, both only used to label the events. Emits, in order:
///
/// * [`Event::ExclusionDecision`] on every miss (`loaded` true for loads,
///   false for bypasses), so exclusion loads + bypasses always equal misses;
/// * [`Event::StickyFlip`] whenever the sticky bit changes value;
/// * [`Event::HitLastUpdate`] whenever the referenced block's hit-last bit is
///   written (`hit_last_after` is `Some`).
///
/// With [`dynex_obs::NoopProbe`] this monomorphizes back to exactly [`step`].
///
/// [`Event::ExclusionDecision`]: dynex_obs::Event::ExclusionDecision
/// [`Event::StickyFlip`]: dynex_obs::Event::StickyFlip
/// [`Event::HitLastUpdate`]: dynex_obs::Event::HitLastUpdate
pub fn step_probed<P: dynex_obs::Probe>(
    hit: bool,
    sticky: bool,
    hit_last: bool,
    set: u32,
    line: u32,
    probe: &mut P,
) -> Transition {
    use dynex_obs::Event;
    let transition = step(hit, sticky, hit_last);
    if !hit {
        probe.emit(Event::ExclusionDecision {
            set,
            line,
            loaded: transition.action.installs(),
        });
    }
    if transition.sticky_after != sticky {
        probe.emit(Event::StickyFlip {
            set,
            sticky: transition.sticky_after,
        });
    }
    if let Some(value) = transition.hit_last_after {
        probe.emit(Event::HitLastUpdate {
            line,
            hit_last: value,
        });
    }
    transition
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exhaustive_table() {
        // All eight input combinations, pinned.
        for hit_last in [false, true] {
            // Hits ignore hit_last and always re-arm the line.
            let t = step(true, false, hit_last);
            assert_eq!(t.action, DeAction::Hit);
            assert!(t.sticky_after);
            assert_eq!(t.hit_last_after, Some(true));
            let t = step(true, true, hit_last);
            assert_eq!(t.action, DeAction::Hit);
            assert!(t.sticky_after);
            assert_eq!(t.hit_last_after, Some(true));
        }
        // Unsticky miss loads unconditionally (the h-setting anomaly).
        for hit_last in [false, true] {
            let t = step(false, false, hit_last);
            assert_eq!(t.action, DeAction::Load);
            assert!(t.sticky_after);
            assert_eq!(t.hit_last_after, Some(true));
        }
        // Sticky miss: arbitrated by hit-last.
        let t = step(false, true, true);
        assert_eq!(t.action, DeAction::Load);
        assert!(t.sticky_after);
        assert_eq!(t.hit_last_after, Some(false));
        let t = step(false, true, false);
        assert_eq!(t.action, DeAction::Bypass);
        assert!(!t.sticky_after);
        assert_eq!(t.hit_last_after, None);
    }

    /// A tiny reference interpreter: one cache line, symbolic blocks.
    /// Returns the per-reference actions.
    fn run_line(refs: &[char], init_hit_last: &[(char, bool)]) -> Vec<DeAction> {
        let mut resident: Option<char> = None;
        let mut sticky = false;
        let mut h: HashMap<char, bool> = init_hit_last.iter().copied().collect();
        let mut actions = Vec::new();
        for &x in refs {
            let hit = resident == Some(x);
            let t = step(hit, sticky, *h.get(&x).unwrap_or(&false));
            sticky = t.sticky_after;
            if let Some(v) = t.hit_last_after {
                h.insert(x, v);
            }
            if t.action == DeAction::Load {
                resident = Some(x);
            }
            actions.push(t.action);
        }
        actions
    }

    fn misses(actions: &[DeAction]) -> usize {
        actions.iter().filter(|a| a.is_miss()).count()
    }

    /// Section 3.1, conflict between loops: (a^10 b^10)^10.
    /// Conventional DM: 10% misses (20/200). Optimal DM: 10%.
    /// DE must be within 2 misses of optimal from any initial state.
    #[test]
    fn pattern_conflict_between_loops() {
        let mut refs = Vec::new();
        for _ in 0..10 {
            refs.extend(std::iter::repeat_n('a', 10));
            refs.extend(std::iter::repeat_n('b', 10));
        }
        for ha in [false, true] {
            for hb in [false, true] {
                let actions = run_line(&refs, &[('a', ha), ('b', hb)]);
                let m = misses(&actions);
                assert!(
                    (20..=22).contains(&m),
                    "expected 20..=22 misses (optimal 20 + <=2 startup), got {m} \
                     with h[a]={ha}, h[b]={hb}"
                );
            }
        }
    }

    /// Section 3.2, conflict between loop levels: (a^10 b)^10.
    /// Conventional DM: 18% (b knocks a out every iteration -> ~2 misses per
    /// b). Optimal DM: 10% (11/110: a once, b always). DE: optimal + <=2.
    #[test]
    fn pattern_conflict_between_loop_levels() {
        let mut refs = Vec::new();
        for _ in 0..10 {
            refs.extend(std::iter::repeat_n('a', 10));
            refs.push('b');
        }
        for ha in [false, true] {
            for hb in [false, true] {
                let actions = run_line(&refs, &[('a', ha), ('b', hb)]);
                let m = misses(&actions);
                assert!(
                    (11..=13).contains(&m),
                    "expected 11..=13 misses, got {m} with h[a]={ha}, h[b]={hb}"
                );
            }
        }
    }

    /// After training, b must never be loaded again in (a^10 b)^m: the
    /// sticky bit plus the consumed hit-last bit permanently exclude it.
    #[test]
    fn loop_level_pattern_excludes_b_permanently() {
        let mut refs = Vec::new();
        for _ in 0..10 {
            refs.extend(std::iter::repeat_n('a', 10));
            refs.push('b');
        }
        // Worst case for b: h[b] initially set, so b gets one residency.
        let actions = run_line(&refs, &[('a', false), ('b', true)]);
        // Find loads of b: positions 10, 21, 32... are b's references.
        let b_positions: Vec<usize> = (0..10).map(|k| 10 + k * 11).collect();
        let b_loads = b_positions
            .iter()
            .filter(|&&p| actions[p] == DeAction::Load)
            .count();
        assert!(b_loads <= 1, "b must be loaded at most once, got {b_loads}");
    }

    /// Section 3.3, conflict within a loop: (a b)^10.
    /// Conventional DM: 100%. Optimal DM: 55% (11/20). DE: 55% + <=2 misses.
    #[test]
    fn pattern_conflict_within_loop() {
        let refs: Vec<char> = (0..20)
            .map(|i| if i % 2 == 0 { 'a' } else { 'b' })
            .collect();
        for ha in [false, true] {
            for hb in [false, true] {
                let actions = run_line(&refs, &[('a', ha), ('b', hb)]);
                let m = misses(&actions);
                assert!(
                    (11..=13).contains(&m),
                    "expected 11..=13 misses, got {m} with h[a]={ha}, h[b]={hb}"
                );
            }
        }
    }

    /// In the within-loop pattern the FSM settles into the A,s <-> A,!s cycle
    /// the paper describes: one block hits forever, the other bypasses.
    #[test]
    fn within_loop_settles_into_two_state_cycle() {
        let refs: Vec<char> = (0..40)
            .map(|i| if i % 2 == 0 { 'a' } else { 'b' })
            .collect();
        let actions = run_line(&refs, &[]);
        // Steady state (second half): alternating Hit / Bypass.
        for (i, &action) in actions.iter().enumerate().skip(20) {
            if i % 2 == 0 {
                assert_eq!(action, DeAction::Hit, "a should hit at {i}");
            } else {
                assert_eq!(action, DeAction::Bypass, "b should bypass at {i}");
            }
        }
    }

    /// The three-way loop (a b c)^10 defeats the single sticky bit: the FSM
    /// paper notes both DM and single-bit DE miss on every reference.
    #[test]
    fn three_way_loop_defeats_single_sticky_bit() {
        let refs: Vec<char> = (0..30)
            .map(|i| match i % 3 {
                0 => 'a',
                1 => 'b',
                _ => 'c',
            })
            .collect();
        let actions = run_line(&refs, &[]);
        assert_eq!(
            misses(&actions),
            30,
            "single-bit DE misses every (abc)^n reference"
        );
    }

    /// A solo block (no conflicts) behaves exactly like a conventional cache:
    /// one cold miss then hits.
    #[test]
    fn no_conflict_is_unaffected() {
        let refs = vec!['a'; 50];
        let actions = run_line(&refs, &[]);
        assert_eq!(misses(&actions), 1);
        assert!(actions[1..].iter().all(|&a| a == DeAction::Hit));
    }

    /// `step_probed` must be behaviourally identical to `step` and emit the
    /// documented events for each of the eight input combinations.
    #[test]
    fn probed_step_matches_pure_step_and_emits() {
        use dynex_obs::{CountingProbe, NoopProbe};
        for hit in [false, true] {
            for sticky in [false, true] {
                for hit_last in [false, true] {
                    let pure = step(hit, sticky, hit_last);
                    assert_eq!(
                        pure,
                        step_probed(hit, sticky, hit_last, 0, 1, &mut NoopProbe)
                    );
                    let mut probe = CountingProbe::new();
                    step_probed(hit, sticky, hit_last, 0, 1, &mut probe);
                    let c = probe.counts();
                    let decided = u64::from(!hit);
                    assert_eq!(c.exclusion_loads + c.exclusion_bypasses, decided);
                    assert_eq!(c.sticky_flips, u64::from(pure.sticky_after != sticky));
                    assert_eq!(c.hit_last_updates, u64::from(pure.hit_last_after.is_some()));
                }
            }
        }
    }

    /// The precomputed batch-kernel table (`dynex_cache::DE_FSM_TABLE`) is an
    /// independent re-derivation of Figure 1; drive it in lockstep with the
    /// spec `step` over all eight inputs. `tests/kernel_differential.rs` and
    /// the proptest suite extend this to whole reference sequences.
    #[test]
    fn batch_kernel_table_matches_spec_step() {
        use dynex_cache::{de_fsm_index, DE_FSM_TABLE};
        for hit in [false, true] {
            for sticky in [false, true] {
                for hit_last in [false, true] {
                    let spec = step(hit, sticky, hit_last);
                    let row = DE_FSM_TABLE[de_fsm_index(hit, sticky, hit_last)];
                    assert_eq!(row.is_miss, spec.action.is_miss());
                    assert_eq!(row.installs, spec.action.installs());
                    assert_eq!(row.sticky_after, spec.sticky_after);
                    assert_eq!(row.writes_hit_last, spec.hit_last_after.is_some());
                    if let Some(value) = spec.hit_last_after {
                        assert_eq!(row.hit_last_value, value);
                    }
                }
            }
        }
    }

    /// Bypass never installs; load always installs; hit never changes the
    /// resident. (Guards the `installs` helper contract.)
    #[test]
    fn action_predicates() {
        assert!(DeAction::Load.installs());
        assert!(!DeAction::Bypass.installs());
        assert!(!DeAction::Hit.installs());
        assert!(DeAction::Load.is_miss());
        assert!(DeAction::Bypass.is_miss());
        assert!(!DeAction::Hit.is_miss());
    }
}
