//! Multi-level sticky counters — the paper's "additional sticky bits"
//! extension (\[McF91a\], discussed at the end of Section 4).
//!
//! A loop whose body has three mutually conflicting instructions,
//! `(a b c)^n`, defeats the single sticky bit: every reference misses in
//! both a conventional and a single-bit DE cache. Giving each line a small
//! saturating counter instead of one bit lets a resident block survive
//! several distinct unproven challengers, effectively locking `a` in the
//! cache for this pattern. The paper reports mixed overall results (longer
//! training, worse behaviour on other patterns); the `ablate-sticky`
//! experiment quantifies that trade-off.

use dynex_cache::{AccessOutcome, CacheConfig, CacheSim, CacheStats, Geometry};
use dynex_obs::{Cause, Event, NoopProbe, Outcome, Probe};

use crate::cache::DeStats;
use crate::{HitLastStore, PerfectStore};

const INVALID_LINE: u32 = u32::MAX;

/// A dynamic-exclusion cache whose sticky state is a saturating counter in
/// `0..=max_sticky`.
///
/// Transition rules (reducing exactly to the single-bit FSM when
/// `max_sticky == 1`):
///
/// * hit — counter saturates to `max_sticky`, `h[x] := 1`;
/// * miss, counter `== 0` — load, counter `:= max_sticky`, `h[x] := 1`;
/// * miss, counter `> 0`, `h[x]` set — load, counter unchanged, `h[x] := 0`;
/// * miss, counter `> 0`, `h[x]` clear — bypass, counter `-= 1`.
///
/// # Examples
///
/// ```
/// use dynex::MultiStickyDeCache;
/// use dynex_cache::{run_addrs, CacheConfig, CacheSim};
///
/// // (a b c)^10 on one line: 2 sticky levels lock `a` in.
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let mut de2 = MultiStickyDeCache::new(config, 2);
/// let refs: Vec<u32> = (0..30).map(|i| [0u32, 64, 128][i % 3]).collect();
/// let stats = run_addrs(&mut de2, refs);
/// assert!(stats.misses() <= 21); // vs 30 for DM and single-bit DE
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiStickyDeCache<S = PerfectStore, P: Probe = NoopProbe> {
    config: CacheConfig,
    geometry: Geometry,
    max_sticky: u8,
    lines: Vec<u32>,
    counter: Vec<u8>,
    h_copy: Vec<bool>,
    store: S,
    stats: CacheStats,
    de_stats: DeStats,
    probe: P,
}

impl MultiStickyDeCache<PerfectStore> {
    /// Creates a multi-sticky DE cache with an unbounded hit-last store.
    ///
    /// # Panics
    ///
    /// Panics if `max_sticky == 0` (a zero-inertia cache is just
    /// direct-mapped; construct [`dynex_cache::DirectMapped`] instead) or if
    /// `config` is not direct-mapped.
    pub fn new(config: CacheConfig, max_sticky: u8) -> MultiStickyDeCache<PerfectStore> {
        MultiStickyDeCache::with_store(config, max_sticky, PerfectStore::new())
    }
}

impl<S: HitLastStore> MultiStickyDeCache<S> {
    /// Creates a multi-sticky DE cache over a caller-provided store.
    ///
    /// # Panics
    ///
    /// Same as [`MultiStickyDeCache::new`].
    pub fn with_store(config: CacheConfig, max_sticky: u8, store: S) -> MultiStickyDeCache<S> {
        MultiStickyDeCache::with_store_and_probe(config, max_sticky, store, NoopProbe)
    }
}

impl<S: HitLastStore, P: Probe> MultiStickyDeCache<S, P> {
    /// Creates a multi-sticky DE cache over a caller-provided store, emitting
    /// events into `probe`.
    ///
    /// [`Event::StickyFlip`] fires when a line's inertia changes between
    /// "none" and "some" (counter crossing zero), matching the single-bit
    /// FSM's flips when `max_sticky == 1`.
    ///
    /// # Panics
    ///
    /// Same as [`MultiStickyDeCache::new`].
    pub fn with_store_and_probe(
        config: CacheConfig,
        max_sticky: u8,
        store: S,
        probe: P,
    ) -> MultiStickyDeCache<S, P> {
        assert!(max_sticky >= 1, "max_sticky must be at least 1");
        assert_eq!(
            config.associativity(),
            1,
            "dynamic exclusion applies to direct-mapped caches"
        );
        let n = config.n_sets() as usize;
        MultiStickyDeCache {
            config,
            geometry: config.geometry(),
            max_sticky,
            lines: vec![INVALID_LINE; n],
            counter: vec![0; n],
            h_copy: vec![false; n],
            store,
            stats: CacheStats::new(),
            de_stats: DeStats::default(),
            probe,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The saturation level of the sticky counters.
    pub fn max_sticky(&self) -> u8 {
        self.max_sticky
    }

    /// Dynamic-exclusion counters.
    pub fn de_stats(&self) -> DeStats {
        self.de_stats
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the cache, returning the attached probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Whether `addr`'s block is resident (no state change).
    pub fn contains(&self, addr: u32) -> bool {
        let line = self.geometry.line_addr(addr);
        self.lines[self.geometry.set_of_line(line) as usize] == line
    }

    /// Emits a sticky flip when the counter's truthiness changed.
    fn emit_sticky(&mut self, set: u32, before: u8, after: u8) {
        if (before > 0) != (after > 0) {
            self.probe.emit(Event::StickyFlip {
                set,
                sticky: after > 0,
            });
        }
    }
}

impl<S: HitLastStore, P: Probe> CacheSim for MultiStickyDeCache<S, P> {
    fn access(&mut self, addr: u32) -> AccessOutcome {
        let line = self.geometry.line_addr(addr);
        let set_index = self.geometry.set_of_line(line);
        let set = set_index as usize;
        let counter_before = self.counter[set];
        let (outcome, cause) = if self.lines[set] == line {
            self.counter[set] = self.max_sticky;
            self.h_copy[set] = true;
            self.emit_sticky(set_index, counter_before, self.max_sticky);
            self.probe.emit(Event::HitLastUpdate {
                line,
                hit_last: true,
            });
            (AccessOutcome::Hit, Cause::Resident)
        } else if self.counter[set] == 0 {
            self.probe.emit(Event::ExclusionDecision {
                set: set_index,
                line,
                loaded: true,
            });
            let cause = if self.lines[set] != INVALID_LINE {
                self.store.set(self.lines[set], self.h_copy[set]);
                self.probe.emit(Event::Eviction {
                    set: set_index,
                    victim: self.lines[set],
                    replacement: line,
                });
                Cause::Replace
            } else {
                Cause::Cold
            };
            self.lines[set] = line;
            self.counter[set] = self.max_sticky;
            self.h_copy[set] = true;
            self.emit_sticky(set_index, counter_before, self.max_sticky);
            self.probe.emit(Event::HitLastUpdate {
                line,
                hit_last: true,
            });
            self.de_stats.loads += 1;
            (AccessOutcome::Miss, cause)
        } else if self.store.get(line) {
            self.probe.emit(Event::ExclusionDecision {
                set: set_index,
                line,
                loaded: true,
            });
            let cause = if self.lines[set] != INVALID_LINE {
                self.store.set(self.lines[set], self.h_copy[set]);
                self.probe.emit(Event::Eviction {
                    set: set_index,
                    victim: self.lines[set],
                    replacement: line,
                });
                Cause::Replace
            } else {
                Cause::Cold
            };
            self.lines[set] = line;
            self.h_copy[set] = false; // consumed, as in the single-bit FSM
            self.probe.emit(Event::HitLastUpdate {
                line,
                hit_last: false,
            });
            self.de_stats.loads += 1;
            (AccessOutcome::Miss, cause)
        } else {
            self.probe.emit(Event::ExclusionDecision {
                set: set_index,
                line,
                loaded: false,
            });
            self.counter[set] -= 1;
            self.emit_sticky(set_index, counter_before, self.counter[set]);
            self.de_stats.bypasses += 1;
            (AccessOutcome::Miss, Cause::Bypass)
        };
        self.probe.emit(Event::Access {
            addr,
            set: set_index,
            outcome: match outcome {
                AccessOutcome::Hit => Outcome::Hit,
                AccessOutcome::Miss => Outcome::Miss,
            },
            cause,
        });
        self.stats.record(outcome);
        outcome
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!(
            "{} (dynamic exclusion, sticky={})",
            self.config, self.max_sticky
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeCache;
    use dynex_cache::run_addrs;

    fn config() -> CacheConfig {
        CacheConfig::direct_mapped(64, 4).unwrap()
    }

    /// max_sticky == 1 must replicate the single-bit DE cache exactly.
    #[test]
    fn level_one_equals_single_bit_fsm() {
        let mut multi = MultiStickyDeCache::new(config(), 1);
        let mut single = DeCache::new(config());
        let mut rng = dynex_cache::SplitMix64::new(12);
        for _ in 0..5000 {
            let a = (rng.below(48) as u32) * 4;
            assert_eq!(multi.access(a), single.access(a));
        }
        assert_eq!(multi.stats(), single.stats());
        assert_eq!(multi.de_stats(), single.de_stats());
    }

    #[test]
    fn two_levels_rescue_three_way_loop() {
        // (a b c)^10: single-bit misses all 30; two levels keep `a`.
        let refs: Vec<u32> = (0..30).map(|i| [0u32, 64, 128][i % 3]).collect();
        let mut de1 = MultiStickyDeCache::new(config(), 1);
        let mut de2 = MultiStickyDeCache::new(config(), 2);
        let s1 = run_addrs(&mut de1, refs.iter().copied());
        let s2 = run_addrs(&mut de2, refs.iter().copied());
        assert_eq!(s1.misses(), 30);
        // With inertia 2: a hits every round after the first; b and c bypass.
        assert_eq!(s2.misses(), 21);
    }

    #[test]
    fn deep_counters_slow_adaptation_on_phase_change() {
        // Phase 1 trains on block a; phase 2 switches to (b)^k. Deeper
        // counters take longer to admit b — the paper's "additional startup
        // time" cost.
        fn misses_in_phase2(max_sticky: u8) -> u64 {
            let mut de = MultiStickyDeCache::new(config(), max_sticky);
            let mut refs: Vec<u32> = vec![0; 10]; // train a, counter saturated
            refs.extend(std::iter::repeat_n(64, 10)); // phase change
            let total = run_addrs(&mut de, refs).misses();
            total - 1 // subtract a's cold miss
        }
        let shallow = misses_in_phase2(1);
        let deep = misses_in_phase2(4);
        assert!(
            deep > shallow,
            "deeper sticky must adapt slower: {deep} vs {shallow}"
        );
    }

    #[test]
    fn counter_saturates_on_hits() {
        let mut de = MultiStickyDeCache::new(config(), 3);
        // Load a, wear the counter down with two distinct challengers, then
        // one hit must restore full inertia.
        de.access(0); // load, counter=3
        de.access(64); // bypass, 2
        de.access(128); // bypass, 1
        de.access(0); // hit, back to 3
        de.access(64); // bypass, 2
        de.access(128); // bypass, 1
        de.access(192); // bypass, 0
        assert!(de.contains(0), "resident survived six challengers");
        assert_eq!(de.de_stats().bypasses, 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sticky_rejected() {
        MultiStickyDeCache::new(config(), 0);
    }

    #[test]
    fn label_mentions_sticky_depth() {
        assert!(MultiStickyDeCache::new(config(), 2)
            .label()
            .contains("sticky=2"));
    }

    #[test]
    fn probed_level_one_events_match_single_bit_de_cache() {
        use dynex_obs::CountingProbe;
        let mut multi = MultiStickyDeCache::with_store_and_probe(
            config(),
            1,
            PerfectStore::new(),
            CountingProbe::new(),
        );
        let mut single = DeCache::with_probe(config(), CountingProbe::new());
        let mut rng = dynex_cache::SplitMix64::new(19);
        for _ in 0..4000 {
            let a = (rng.below(48) as u32) * 4;
            assert_eq!(multi.access(a), single.access(a));
        }
        let m = multi.probe().counts();
        let s = single.probe().counts();
        assert_eq!(m.accesses, s.accesses);
        assert_eq!(m.misses, s.misses);
        assert_eq!(m.evictions, s.evictions);
        assert_eq!(m.exclusion_loads, s.exclusion_loads);
        assert_eq!(m.exclusion_bypasses, s.exclusion_bypasses);
        assert_eq!(m.sticky_flips, s.sticky_flips);
    }

    #[test]
    fn probed_and_bare_runs_are_identical() {
        use dynex_obs::CountingProbe;
        let mut bare = MultiStickyDeCache::new(config(), 3);
        let mut probed = MultiStickyDeCache::with_store_and_probe(
            config(),
            3,
            PerfectStore::new(),
            CountingProbe::new(),
        );
        let mut rng = dynex_cache::SplitMix64::new(29);
        for _ in 0..4000 {
            let a = (rng.below(64) as u32) * 4;
            assert_eq!(bare.access(a), probed.access(a));
        }
        assert_eq!(bare.stats(), probed.stats());
        assert_eq!(bare.de_stats(), probed.de_stats());
        let c = probed.probe().counts();
        assert_eq!(c.exclusion_loads, probed.de_stats().loads);
        assert_eq!(c.exclusion_bypasses, probed.de_stats().bypasses);
    }
}
