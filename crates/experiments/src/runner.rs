//! Shared simulation drivers: the DM / DE / OPT comparison the paper's
//! figures are built from.
//!
//! Since PR 2 the drivers sit on `dynex-engine`: the single-point entry
//! points ([`triple`], [`triple_lastline`]) dispatch through
//! [`dynex_engine::PolicyKind`], and the sweep entry points fan the points out
//! over the engine's deterministic worker pool. Results are in plan order
//! and bit-identical for every worker count, so figures built on these
//! functions never depend on `--jobs`.
//!
//! Since PR 5 the ad-hoc sweep entry points (`triples`, `triples_lastline`,
//! `triple_kernel`) are deprecated shims over [`crate::api`] — the typed
//! request API that every driver, example, and the `dynex-serve` service
//! construct requests through.

use dynex::{DeCache, OptimalDirectMapped};
use dynex_cache::{run_addrs, CacheConfig, CacheStats, Kernel};
use dynex_engine::{default_kernel, PolicyKind};
use dynex_obs::{CountingProbe, EventCounts};

/// Results of one workload under the three caches the paper compares
/// throughout: conventional direct-mapped, dynamic exclusion, and optimal
/// direct-mapped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triple {
    /// Conventional direct-mapped.
    pub dm: CacheStats,
    /// Dynamic exclusion (perfect hit-last store).
    pub de: CacheStats,
    /// Optimal direct-mapped with bypass.
    pub opt: CacheStats,
}

impl Triple {
    /// DE's percentage miss reduction vs the conventional cache.
    pub fn de_reduction(&self) -> f64 {
        self.de.percent_reduction_vs(&self.dm)
    }

    /// OPT's percentage miss reduction vs the conventional cache.
    pub fn opt_reduction(&self) -> f64 {
        self.opt.percent_reduction_vs(&self.dm)
    }
}

/// Runs the three-way comparison at word-line granularity (`b = 4`) with
/// the session's [`dynex_engine::default_kernel`].
pub fn triple(config: CacheConfig, addrs: &[u32]) -> Triple {
    crate::api::run_triple(default_kernel(), config, addrs)
}

/// Runs the three-way comparison with an explicit kernel.
#[deprecated(
    since = "0.1.0",
    note = "use `dynex_experiments::api::run_triple` — the request API \
            replaces the loose free-function entry points"
)]
pub fn triple_kernel(kernel: Kernel, config: CacheConfig, addrs: &[u32]) -> Triple {
    crate::api::run_triple(kernel, config, addrs)
}

/// Runs [`triple`] over many `(config, trace)` sweep points on the engine's
/// worker pool.
#[deprecated(
    since = "0.1.0",
    note = "use `dynex_experiments::api::sweep_triples` — the request API \
            replaces the loose free-function entry points"
)]
pub fn triples(points: &[(CacheConfig, &[u32])]) -> Vec<Triple> {
    crate::api::sweep_triples(points)
}

/// Runs [`triple_lastline`] over many `(config, trace)` sweep points on the
/// engine's worker pool.
#[deprecated(
    since = "0.1.0",
    note = "use `dynex_experiments::api::sweep_triples_lastline` — the \
            request API replaces the loose free-function entry points"
)]
pub fn triples_lastline(points: &[(CacheConfig, &[u32])]) -> Vec<Triple> {
    crate::api::sweep_triples_lastline(points)
}

/// One labelled triple as a JSON object (a JSONL line, without the newline).
///
/// The miss-rate and reduction fields use Rust's shortest-roundtrip float
/// formatting, so the text is a pure function of the statistics — exporting
/// a parallel sweep yields the same bytes as a serial one.
pub fn triple_to_json(label: &str, t: &Triple) -> String {
    let quoted = label.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        r#"{{"label":"{}","dm":{{"accesses":{},"misses":{},"rate":{}}},"de":{{"accesses":{},"misses":{},"rate":{}}},"opt":{{"accesses":{},"misses":{},"rate":{}}},"de_reduction":{},"opt_reduction":{}}}"#,
        quoted,
        t.dm.accesses(),
        t.dm.misses(),
        t.dm.miss_rate_percent(),
        t.de.accesses(),
        t.de.misses(),
        t.de.miss_rate_percent(),
        t.opt.accesses(),
        t.opt.misses(),
        t.opt.miss_rate_percent(),
        t.de_reduction(),
        t.opt_reduction(),
    )
}

/// Serializes labelled triples as JSONL (one [`triple_to_json`] object per
/// line), in slice order.
pub fn triples_to_jsonl<'a, I>(rows: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a Triple)>,
{
    let mut out = String::new();
    for (label, t) in rows {
        out.push_str(&triple_to_json(label, t));
        out.push('\n');
    }
    out
}

/// A [`Triple`] augmented with per-simulator event tallies from the
/// observability layer.
///
/// The DM and DE runs carry a [`CountingProbe`]; OPT is a two-pass oracle
/// without a probed hot path, so only its stats appear. The embedded
/// `Triple` is byte-identical to what [`triple`] returns for the same
/// inputs — instrumentation never perturbs simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedTriple {
    /// The plain three-way statistics.
    pub triple: Triple,
    /// Event tallies from the conventional direct-mapped run.
    pub dm_events: EventCounts,
    /// Event tallies from the dynamic-exclusion run (includes sticky flips,
    /// hit-last updates, and exclusion decisions).
    pub de_events: EventCounts,
}

/// Runs the three-way comparison with counting probes attached to the DM and
/// DE caches.
pub fn triple_observed(config: CacheConfig, addrs: &[u32]) -> ObservedTriple {
    let mut dm = dynex_cache::DirectMapped::with_probe(config, CountingProbe::new());
    let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
    let mut de = DeCache::with_probe(config, CountingProbe::new());
    let de_stats = run_addrs(&mut de, addrs.iter().copied());
    let opt = OptimalDirectMapped::simulate(config, addrs.iter().copied());
    ObservedTriple {
        triple: Triple {
            dm: dm_stats,
            de: de_stats,
            opt,
        },
        dm_events: dm.into_probe().counts(),
        de_events: de.into_probe().counts(),
    }
}

/// Runs the three-way comparison for multi-word lines: DE and OPT both get
/// the Section 6 last-line buffer; the conventional cache stays bare.
pub fn triple_lastline(config: CacheConfig, addrs: &[u32]) -> Triple {
    let simulate = |policy: PolicyKind| {
        policy
            .simulate(config, addrs)
            .expect("dm and the lastline variants run on every kernel")
    };
    Triple {
        dm: simulate(PolicyKind::DirectMapped),
        de: simulate(PolicyKind::DeLastLine),
        opt: simulate(PolicyKind::OptimalDmLastLine),
    }
}

/// Averages miss-rate percentages across per-benchmark triples (the paper's
/// "average across the SPEC benchmarks").
pub fn average_rates(triples: &[Triple]) -> (f64, f64, f64) {
    let n = triples.len().max(1) as f64;
    let dm = triples
        .iter()
        .map(|t| t.dm.miss_rate_percent())
        .sum::<f64>()
        / n;
    let de = triples
        .iter()
        .map(|t| t.de.miss_rate_percent())
        .sum::<f64>()
        / n;
    let opt = triples
        .iter()
        .map(|t| t.opt.miss_rate_percent())
        .sum::<f64>()
        / n;
    (dm, de, opt)
}

/// Percentage reduction of `new` vs `base` miss-rate percentages.
pub fn reduction(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thrash() -> Vec<u32> {
        (0..40).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect()
    }

    #[test]
    fn triple_orders_correctly() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let t = triple(config, &thrash());
        assert!(t.opt.misses() <= t.de.misses());
        assert!(t.de.misses() < t.dm.misses());
        assert!(t.de_reduction() > 0.0);
        assert!(t.opt_reduction() >= t.de_reduction());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_the_request_api() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let addrs = thrash();
        assert_eq!(
            triple_kernel(Kernel::Batch, config, &addrs),
            crate::api::run_triple(Kernel::Batch, config, &addrs)
        );
        let points: Vec<(CacheConfig, &[u32])> = vec![(config, &addrs)];
        assert_eq!(triples(&points), crate::api::sweep_triples(&points));
        assert_eq!(
            triples_lastline(&points),
            crate::api::sweep_triples_lastline(&points)
        );
    }

    #[test]
    fn lastline_triple_runs() {
        let config = CacheConfig::direct_mapped(64, 16).unwrap();
        let addrs: Vec<u32> = (0..200)
            .map(|i| {
                if (i / 4) % 2 == 0 {
                    (i % 4) * 4
                } else {
                    64 + (i % 4) * 4
                }
            })
            .collect();
        let t = triple_lastline(config, &addrs);
        assert!(t.opt.misses() <= t.de.misses());
        assert!(t.de.misses() <= t.dm.misses());
    }

    #[test]
    fn averaging() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let t = triple(config, &thrash());
        let (dm, de, opt) = average_rates(&[t, t]);
        assert_eq!(dm, t.dm.miss_rate_percent());
        assert_eq!(de, t.de.miss_rate_percent());
        assert_eq!(opt, t.opt.miss_rate_percent());
        assert_eq!(average_rates(&[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn observed_triple_matches_bare_triple_and_stats() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let addrs = thrash();
        let bare = triple(config, &addrs);
        let observed = triple_observed(config, &addrs);
        assert_eq!(observed.triple, bare);
        // Event tallies must agree with the statistics they mirror.
        assert_eq!(observed.dm_events.accesses, bare.dm.accesses());
        assert_eq!(observed.dm_events.misses, bare.dm.misses());
        assert_eq!(observed.de_events.accesses, bare.de.accesses());
        assert_eq!(observed.de_events.misses, bare.de.misses());
        // Every DE miss carries an exclusion decision.
        assert_eq!(
            observed.de_events.exclusion_loads + observed.de_events.exclusion_bypasses,
            bare.de.misses()
        );
        // The thrash trace bypasses: DE must report some excluded loads.
        assert!(observed.de_events.exclusion_bypasses > 0);
        // A conventional cache makes no exclusion decisions.
        assert_eq!(observed.dm_events.exclusion_loads, 0);
        assert_eq!(observed.dm_events.exclusion_bypasses, 0);
    }

    #[test]
    fn jsonl_is_one_object_per_row_in_order() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let addrs = thrash();
        let t = triple(config, &addrs);
        let jsonl = triples_to_jsonl([("first", &t), ("with \"quotes\"", &t)]);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"label":"first","dm":{"accesses":40"#));
        assert!(lines[1].starts_with(r#"{"label":"with \"quotes\"","#));
        assert!(lines[0].contains(r#""de_reduction":"#));
        assert_eq!(jsonl, format!("{}\n{}\n", lines[0], lines[1]));
    }

    #[test]
    fn reduction_math() {
        assert_eq!(reduction(10.0, 5.0), 50.0);
        assert_eq!(reduction(0.0, 5.0), 0.0);
        assert!(reduction(5.0, 10.0) < 0.0);
    }
}
