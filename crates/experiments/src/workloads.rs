//! The shared workload bundle: one generated trace per SPEC'89 profile.

use dynex_trace::{Trace, TraceStats};
use dynex_workload::spec::{self, Profile};

/// The ten benchmark traces, generated once and shared by every experiment
/// (the paper simulates many cache configurations over the same reference
/// streams).
#[derive(Debug)]
pub struct Workloads {
    refs: usize,
    entries: Vec<(Profile, Trace)>,
}

impl Workloads {
    /// Generates the first `refs` references of every profile.
    pub fn generate(refs: usize) -> Workloads {
        let entries = spec::all()
            .into_iter()
            .map(|p| {
                let trace = p.trace(refs);
                (p, trace)
            })
            .collect();
        Workloads { refs, entries }
    }

    /// The reference budget per benchmark.
    pub fn refs(&self) -> usize {
        self.refs
    }

    /// Number of benchmarks (always 10).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the bundle is empty (never, for generated bundles).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, trace)` pairs in the paper's benchmark order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Trace)> {
        self.entries.iter().map(|(p, t)| (p.name(), t))
    }

    /// The profile objects (for descriptions).
    pub fn profiles(&self) -> impl Iterator<Item = &Profile> {
        self.entries.iter().map(|(p, _)| p)
    }

    /// Instruction-fetch byte addresses of benchmark `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the ten profiles.
    pub fn instr_addrs(&self, name: &str) -> Vec<u32> {
        dynex_trace::filter::instructions(self.trace(name).iter())
            .map(|a| a.addr())
            .collect()
    }

    /// Data-reference byte addresses of benchmark `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the ten profiles.
    pub fn data_addrs(&self, name: &str) -> Vec<u32> {
        dynex_trace::filter::data(self.trace(name).iter())
            .map(|a| a.addr())
            .collect()
    }

    /// All reference byte addresses (instruction + data) of benchmark `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the ten profiles.
    pub fn all_addrs(&self, name: &str) -> Vec<u32> {
        self.trace(name).iter().map(|a| a.addr()).collect()
    }

    /// Stream statistics of benchmark `name` (for the Figure 2 table).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the ten profiles.
    pub fn stats(&self, name: &str) -> TraceStats {
        TraceStats::from_accesses(self.trace(name).iter())
    }

    fn trace(&self, name: &str) -> &Trace {
        &self
            .entries
            .iter()
            .find(|(p, _)| p.name() == name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_ten() {
        let w = Workloads::generate(2_000);
        assert_eq!(w.len(), 10);
        assert!(!w.is_empty());
        assert_eq!(w.refs(), 2_000);
        assert_eq!(w.iter().count(), 10);
    }

    #[test]
    fn slices_partition() {
        let w = Workloads::generate(5_000);
        for (name, _) in w.iter().collect::<Vec<_>>() {
            let i = w.instr_addrs(name).len();
            let d = w.data_addrs(name).len();
            let all = w.all_addrs(name).len();
            assert_eq!(i + d, all, "{name}");
            assert_eq!(all, 5_000, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        Workloads::generate(100).instr_addrs("quake");
    }
}
