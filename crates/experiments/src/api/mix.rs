//! Seeded request-mix generation for load testing.
//!
//! A [`RequestMix`] turns a [`MixConfig`] into a deterministic stream of
//! validated [`SimulationRequest`]s: a fixed pool of distinct
//! configurations (the geometry spread: profile × size × line × org),
//! revisited with a configurable duplicate ratio so the server's result
//! cache sees a controllable hit rate, and with an optional deadline
//! attached to a configurable fraction of requests. The same seed always
//! produces the same request sequence — a load run is reproducible down to
//! the individual request.
//!
//! The duplicate ratio is the load model's first-class knob: serving
//! traffic from "millions of users" is duplicate-heavy (most requests
//! repeat a configuration someone already asked for), and the cache-hit
//! ratio it induces dominates both throughput and tail latency.

use dynex_cache::SplitMix64;

use super::{ApiError, SimulationRequest};

/// Configuration for a [`RequestMix`].
#[derive(Debug, Clone, PartialEq)]
pub struct MixConfig {
    /// PRNG seed; equal seeds generate equal request sequences.
    pub seed: u64,
    /// Probability in `[0, 1]` that a request repeats one already issued
    /// (a server-side cache hit once that shard has seen it).
    pub duplicate_ratio: f64,
    /// Number of distinct configurations to draw from. Clamped to the size
    /// of the geometry spread (`orgs × sizes × lines × profiles`).
    pub pool: usize,
    /// Reference budget per generated request.
    pub refs: usize,
    /// Probability in `[0, 1]` that a request carries a deadline.
    pub deadline_fraction: f64,
    /// The deadline attached to that fraction, in milliseconds.
    pub deadline_ms: u64,
    /// Organizations to spread over (`--org` strings).
    pub orgs: Vec<String>,
    /// Cache sizes to spread over (`--size` strings such as `"8K"`).
    pub sizes: Vec<String>,
    /// Line sizes in bytes to spread over.
    pub lines: Vec<u32>,
    /// Synthetic workload profiles to spread over.
    pub profiles: Vec<String>,
}

impl Default for MixConfig {
    /// A duplicate-heavy mix over a moderate geometry spread: three
    /// organizations, five sizes, two line sizes, and all ten SPEC'89
    /// profiles, revisited at a 50% duplicate ratio with no deadlines.
    fn default() -> MixConfig {
        MixConfig {
            seed: 42,
            duplicate_ratio: 0.5,
            pool: 64,
            refs: 100_000,
            deadline_fraction: 0.0,
            deadline_ms: 2_000,
            orgs: vec!["dm".to_owned(), "de".to_owned(), "opt".to_owned()],
            sizes: ["2K", "4K", "8K", "16K", "32K"].map(str::to_owned).to_vec(),
            lines: vec![4, 16],
            profiles: dynex_workload::spec::NAMES.map(str::to_owned).to_vec(),
        }
    }
}

/// A deterministic stream of [`SimulationRequest`]s drawn from a
/// [`MixConfig`].
///
/// # Examples
///
/// ```
/// use dynex_experiments::api::mix::{MixConfig, RequestMix};
///
/// let mut mix = RequestMix::new(MixConfig::default()).unwrap();
/// let first = mix.next_request();
/// let again = RequestMix::new(MixConfig::default()).unwrap().next_request();
/// assert_eq!(first, again); // same seed, same sequence
/// ```
#[derive(Debug, Clone)]
pub struct RequestMix {
    config: MixConfig,
    rng: SplitMix64,
    pool: Vec<SimulationRequest>,
    /// How many distinct pool entries have been issued at least once;
    /// duplicates are only drawn from this prefix so every duplicate is a
    /// request some earlier client actually sent.
    issued: usize,
}

impl RequestMix {
    /// Validates the config, builds the distinct request pool, and seeds
    /// the generator.
    ///
    /// The pool is a seeded shuffle of the full geometry spread truncated
    /// to `pool` entries, so its members are distinct by construction.
    /// Every pool entry passes the [`SimulationRequest`] builder's full
    /// validation here, before any load is generated.
    pub fn new(config: MixConfig) -> Result<RequestMix, ApiError> {
        let invalid = |field: &'static str, message: String| ApiError::Invalid { field, message };
        if config.orgs.is_empty()
            || config.sizes.is_empty()
            || config.lines.is_empty()
            || config.profiles.is_empty()
        {
            return Err(invalid(
                "mix",
                "orgs, sizes, lines, and profiles must each be non-empty".to_owned(),
            ));
        }
        if config.pool == 0 {
            return Err(invalid("mix.pool", "pool must be at least 1".to_owned()));
        }
        for (name, value) in [
            ("duplicate_ratio", config.duplicate_ratio),
            ("deadline_fraction", config.deadline_fraction),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(invalid(
                    "mix.ratio",
                    format!("{name} must be within [0, 1], got {value}"),
                ));
            }
        }

        // Enumerate the full spread in a fixed order, then shuffle with the
        // seed so which configurations make a small pool is itself seeded.
        let mut spread = Vec::new();
        for profile in &config.profiles {
            for size in &config.sizes {
                for &line in &config.lines {
                    for org in &config.orgs {
                        let request = SimulationRequest::builder()
                            .org(org)
                            .size(size)
                            .line(line)
                            .profile(profile)
                            .refs(config.refs)
                            .jobs(1)
                            .build()?;
                        spread.push(request);
                    }
                }
            }
        }
        let mut rng = SplitMix64::new(config.seed);
        // Fisher–Yates with the mix's own PRNG.
        for i in (1..spread.len()).rev() {
            spread.swap(i, rng.below_usize(i + 1));
        }
        spread.truncate(config.pool);

        Ok(RequestMix {
            config,
            rng,
            pool: spread,
            issued: 0,
        })
    }

    /// The distinct request pool (without per-request deadlines).
    pub fn pool(&self) -> &[SimulationRequest] {
        &self.pool
    }

    /// Draws the next request.
    ///
    /// With probability `duplicate_ratio` the request repeats a
    /// configuration already issued; otherwise it issues the next unissued
    /// pool entry (cycling through the pool once it is exhausted). The
    /// deadline mix is applied independently, so a duplicate can carry a
    /// different deadline — deadlines are excluded from the content key, so
    /// it still hits the same server-side cache entry.
    pub fn next_request(&mut self) -> SimulationRequest {
        let fresh_available = self.issued < self.pool.len();
        let duplicate =
            self.issued > 0 && (self.rng.chance(self.config.duplicate_ratio) || !fresh_available);
        let index = if duplicate {
            self.rng.below_usize(self.issued)
        } else {
            self.issued += 1;
            self.issued - 1
        };
        let mut request = self.pool[index].clone();
        if self.rng.chance(self.config.deadline_fraction) {
            request.deadline_ms = Some(self.config.deadline_ms);
        }
        request
    }

    /// The configuration this mix was built from.
    pub fn config(&self) -> &MixConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RequestMix::new(MixConfig::default()).unwrap();
        let mut b = RequestMix::new(MixConfig::default()).unwrap();
        for _ in 0..200 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RequestMix::new(MixConfig::default()).unwrap();
        let mut b = RequestMix::new(MixConfig {
            seed: 43,
            ..MixConfig::default()
        })
        .unwrap();
        let differs = (0..50).any(|_| a.next_request() != b.next_request());
        assert!(differs, "seeds 42 and 43 generated identical streams");
    }

    #[test]
    fn pool_members_are_distinct_and_validated() {
        let mix = RequestMix::new(MixConfig::default()).unwrap();
        assert_eq!(mix.pool().len(), 64);
        let keys: HashSet<String> = mix
            .pool()
            .iter()
            .map(|r| r.routing_key().unwrap())
            .collect();
        assert_eq!(keys.len(), 64, "pool entries must be distinct");
    }

    #[test]
    fn pool_clamps_to_spread_size() {
        let config = MixConfig {
            pool: 10_000,
            orgs: vec!["dm".to_owned()],
            sizes: vec!["8K".to_owned()],
            lines: vec![4],
            profiles: vec!["gcc".to_owned(), "li".to_owned()],
            ..MixConfig::default()
        };
        assert_eq!(RequestMix::new(config).unwrap().pool().len(), 2);
    }

    #[test]
    fn duplicate_ratio_zero_issues_the_whole_pool_before_repeating() {
        let config = MixConfig {
            duplicate_ratio: 0.0,
            pool: 16,
            ..MixConfig::default()
        };
        let mut mix = RequestMix::new(config).unwrap();
        let mut seen = HashSet::new();
        for _ in 0..16 {
            assert!(
                seen.insert(mix.next_request().routing_key().unwrap()),
                "repeat before the pool was exhausted"
            );
        }
        // Pool exhausted: the stream keeps serving (now necessarily
        // duplicate) requests instead of panicking.
        assert!(!seen.insert(mix.next_request().routing_key().unwrap()));
    }

    #[test]
    fn duplicate_ratio_one_issues_a_single_configuration() {
        let config = MixConfig {
            duplicate_ratio: 1.0,
            ..MixConfig::default()
        };
        let mut mix = RequestMix::new(config).unwrap();
        let keys: HashSet<String> = (0..50)
            .map(|_| mix.next_request().routing_key().unwrap())
            .collect();
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn deadline_fraction_controls_deadline_presence() {
        let mut never = RequestMix::new(MixConfig {
            deadline_fraction: 0.0,
            ..MixConfig::default()
        })
        .unwrap();
        assert!((0..100).all(|_| never.next_request().deadline_ms.is_none()));

        let mut always = RequestMix::new(MixConfig {
            deadline_fraction: 1.0,
            deadline_ms: 750,
            ..MixConfig::default()
        })
        .unwrap();
        assert!((0..100).all(|_| always.next_request().deadline_ms == Some(750)));
    }

    #[test]
    fn bad_configs_fail_loudly() {
        for config in [
            MixConfig {
                pool: 0,
                ..MixConfig::default()
            },
            MixConfig {
                duplicate_ratio: 1.5,
                ..MixConfig::default()
            },
            MixConfig {
                deadline_fraction: -0.1,
                ..MixConfig::default()
            },
            MixConfig {
                orgs: Vec::new(),
                ..MixConfig::default()
            },
            MixConfig {
                profiles: vec!["no-such-profile".to_owned()],
                ..MixConfig::default()
            },
        ] {
            assert!(RequestMix::new(config.clone()).is_err(), "{config:?}");
        }
    }
}
