//! Result tables: aligned text rendering and CSV output.

use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// A titled table of string cells — the output unit of every experiment.
///
/// # Examples
///
/// ```
/// use dynex_experiments::Table;
///
/// let mut t = Table::new("demo", vec!["benchmark", "miss rate"]);
/// t.push_row(vec!["gcc".to_owned(), "4.95%".to_owned()]);
/// assert_eq!(t.n_rows(), 1);
/// println!("{t}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: Vec<&str>) -> Table {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Cell at (`row`, `col`), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    /// Finds the first row whose first cell equals `key`.
    pub fn row_by_key(&self, key: &str) -> Option<&[String]> {
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(key))
            .map(Vec::as_slice)
    }

    /// Writes the table as CSV (headers first).
    ///
    /// # Errors
    ///
    /// Any IO failure from the underlying writer.
    pub fn write_csv<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(writer, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(writer, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Writes the table as a CSV file.
    ///
    /// # Errors
    ///
    /// Any IO failure creating or writing the file.
    pub fn save_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_csv(io::BufWriter::new(file))
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .enumerate()
                .map(|(i, (c, w))| {
                    if i == 0 {
                        format!("{c:<w$}")
                    } else {
                        format!("{c:>w$}")
                    }
                })
                .collect();
            writeln!(f, "{}", line.join("  "))
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", vec!["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["bb".into(), "22".into()]);
        t
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.title(), "t");
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 1), Some("22"));
        assert_eq!(t.cell(5, 0), None);
        assert_eq!(t.row_by_key("bb").unwrap()[1], "22");
        assert!(t.row_by_key("zz").is_none());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn bad_row_width() {
        sample().push_row(vec!["only-one".into()]);
    }

    #[test]
    fn display_aligns() {
        let text = sample().to_string();
        assert!(text.contains("== t =="));
        assert!(text.contains("name"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut buf = Vec::new();
        sample().write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "name,value\na,1\nbb,22\n");
    }
}
