//! Ablations and related-work comparisons the paper discusses in prose.

use dynex::{DeCache, HashedStore, MultiStickyDeCache};
use dynex_cache::{run, run_addrs, CacheConfig, DirectMapped, StreamBuffer, VictimCache};
use dynex_workload::patterns as pat;

use crate::runner::reduction;
use crate::{Table, Workloads, HEADLINE_SIZE};

/// Multi-level sticky counters (Section 4 / \[McF91a\]).
///
/// Reports the `(a b c)^n` pattern (which defeats a single bit) and the
/// average SPEC instruction miss rate at 32KB for sticky depths 1–4 — the
/// paper's "mixed results": deeper counters fix three-way loops but slow
/// adaptation everywhere else.
pub fn ablate_sticky(workloads: &Workloads) -> Table {
    let config = CacheConfig::direct_mapped(HEADLINE_SIZE, 4).expect("valid config");
    let small = CacheConfig::direct_mapped(64, 4).expect("valid config");
    let (a, b) = pat::conflicting_pair(64);
    let abc = pat::three_way_loop(a, b, b + 64, 200);

    let mut table = Table::new(
        "Ablation: sticky counter depth (b=4B)",
        vec![
            "sticky levels",
            "(abc)^200 miss %",
            "avg SPEC I-miss % @32KB",
        ],
    );
    for depth in 1u8..=4 {
        let mut pattern_cache = MultiStickyDeCache::new(small, depth);
        let pattern_stats = run(&mut pattern_cache, abc.iter());

        let mut avg = 0.0;
        for (name, _) in workloads.iter() {
            let mut cache = MultiStickyDeCache::new(config, depth);
            avg += run_addrs(&mut cache, workloads.instr_addrs(name)).miss_rate_percent();
        }
        avg /= workloads.len() as f64;

        table.push_row(vec![
            depth.to_string(),
            format!("{:.1}", pattern_stats.miss_rate_percent()),
            format!("{avg:.3}"),
        ]);
    }
    table
}

/// Hashed hit-last table width (Section 5): the paper finds four bits per
/// cache line recover nearly all of the unbounded store's benefit.
pub fn ablate_hashwidth(workloads: &Workloads) -> Table {
    let config = CacheConfig::direct_mapped(HEADLINE_SIZE, 4).expect("valid config");
    let mut table = Table::new(
        "Ablation: hashed hit-last bits per line (S=32KB, b=4B)",
        vec!["bits/line", "avg I-miss %", "vs perfect store %"],
    );
    let mut perfect_avg = 0.0;
    for (name, _) in workloads.iter() {
        let mut cache = DeCache::new(config);
        perfect_avg += run_addrs(&mut cache, workloads.instr_addrs(name)).miss_rate_percent();
    }
    perfect_avg /= workloads.len() as f64;

    for bits in [1u32, 2, 4, 8] {
        let mut avg = 0.0;
        for (name, _) in workloads.iter() {
            let mut cache = DeCache::with_store(config, HashedStore::new(config, bits));
            avg += run_addrs(&mut cache, workloads.instr_addrs(name)).miss_rate_percent();
        }
        avg /= workloads.len() as f64;
        table.push_row(vec![
            bits.to_string(),
            format!("{avg:.3}"),
            format!("{:+.1}", reduction(avg, perfect_avg)),
        ]);
    }
    table.push_row(vec![
        "perfect".to_owned(),
        format!("{perfect_avg:.3}"),
        "+0.0".to_owned(),
    ]);
    table
}

/// Victim cache comparison (Section 2, \[Jou90\]): a small fully-associative
/// victim buffer handles data-style pathological pairs but is overwhelmed by
/// the many conflicting blocks of instruction streams, where dynamic
/// exclusion is most effective.
pub fn victim(workloads: &Workloads) -> Table {
    let config = CacheConfig::direct_mapped(HEADLINE_SIZE, 4).expect("valid config");
    let mut table = Table::new(
        "Related work: victim cache vs dynamic exclusion (I-cache, S=32KB, b=4B)",
        vec![
            "benchmark",
            "DM %",
            "DM+victim(4) %",
            "DE %",
            "victim red. %",
            "DE red. %",
        ],
    );
    for (name, _) in workloads.iter() {
        let addrs = workloads.instr_addrs(name);
        let mut dm = DirectMapped::new(config);
        let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
        let mut vc = VictimCache::new(config, 4);
        let vc_stats = run_addrs(&mut vc, addrs.iter().copied());
        let mut de = DeCache::new(config);
        let de_stats = run_addrs(&mut de, addrs.iter().copied());
        table.push_row(vec![
            name.to_owned(),
            format!("{:.3}", dm_stats.miss_rate_percent()),
            format!("{:.3}", vc_stats.miss_rate_percent()),
            format!("{:.3}", de_stats.miss_rate_percent()),
            format!("{:.1}", vc_stats.percent_reduction_vs(&dm_stats)),
            format!("{:.1}", de_stats.percent_reduction_vs(&dm_stats)),
        ]);
    }
    table
}

/// Stream-buffer complementarity (Section 2, \[Jou90\]): stream buffers cut
/// sequential memory fetches, dynamic exclusion cuts conflict misses; they
/// attack different misses.
pub fn streambuf(workloads: &Workloads) -> Table {
    let config = CacheConfig::direct_mapped(HEADLINE_SIZE, 4).expect("valid config");
    let mut table = Table::new(
        "Related work: stream buffer vs dynamic exclusion (I-cache, S=32KB, b=4B)",
        vec![
            "benchmark",
            "DM %",
            "DM+stream(4) %",
            "DE %",
            "stream hits",
            "DE bypasses",
        ],
    );
    for (name, _) in workloads.iter() {
        let addrs = workloads.instr_addrs(name);
        let mut dm = DirectMapped::new(config);
        let dm_stats = run_addrs(&mut dm, addrs.iter().copied());
        let mut sb = StreamBuffer::new(config, 4);
        let sb_stats = run_addrs(&mut sb, addrs.iter().copied());
        let mut de = DeCache::new(config);
        let de_stats = run_addrs(&mut de, addrs.iter().copied());
        table.push_row(vec![
            name.to_owned(),
            format!("{:.3}", dm_stats.miss_rate_percent()),
            format!("{:.3}", sb_stats.miss_rate_percent()),
            format!("{:.3}", de_stats.miss_rate_percent()),
            sb.stream_stats().stream_hits.to_string(),
            de.de_stats().bypasses.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sticky_depth_two_fixes_three_way_loop() {
        let w = Workloads::generate(500);
        let t = ablate_sticky(&w);
        assert_eq!(t.n_rows(), 4);
        let depth1: f64 = t.cell(0, 1).unwrap().parse().unwrap();
        let depth2: f64 = t.cell(1, 1).unwrap().parse().unwrap();
        assert!(depth1 > 99.0, "single bit misses everything: {depth1}");
        assert!(depth2 < 70.0, "two levels lock the loop: {depth2}");
    }

    #[test]
    fn hashwidth_table_has_perfect_row() {
        let w = Workloads::generate(500);
        let t = ablate_hashwidth(&w);
        assert_eq!(t.n_rows(), 5);
        assert!(t.row_by_key("perfect").is_some());
    }

    #[test]
    fn comparison_tables_cover_benchmarks() {
        let w = Workloads::generate(500);
        assert_eq!(victim(&w).n_rows(), 10);
        assert_eq!(streambuf(&w).n_rows(), 10);
    }
}
