//! Figures 7–9: the two-level organization and the three hit-last storage
//! strategies.

use dynex::{DeHierarchy, HitLastStrategy};
use dynex_cache::{run_addrs, CacheConfig, DirectMapped, TwoLevel};

use crate::runner::reduction;
use crate::{Table, Workloads, HEADLINE_SIZE, L2_RATIO_SWEEP};

/// Average L1/L2 miss-rate percentages across benchmarks for one
/// configuration of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2Point {
    /// L2:L1 size ratio.
    pub ratio: u32,
    /// Conventional DM L1 over DM L2: L1 miss rate (%).
    pub dm_l1: f64,
    /// Conventional hierarchy: global L2 miss rate (%).
    pub dm_l2: f64,
    /// Per DE strategy (hashed, assume-hit, assume-miss): L1 and global L2
    /// miss rates (%).
    pub de: [(f64, f64); 3],
}

/// The strategies in report order.
pub const STRATEGIES: [HitLastStrategy; 3] = [
    HitLastStrategy::Hashed { bits_per_line: 4 },
    HitLastStrategy::AssumeHit,
    HitLastStrategy::AssumeMiss,
];

/// Runs the L1=32KB, b=4B instruction-cache hierarchy sweep over the L2:L1
/// ratios of Figures 7–9. Shared by [`fig7`], [`fig8`], and [`fig9`].
pub fn l2_sweep(workloads: &Workloads) -> Vec<L2Point> {
    let l1 = CacheConfig::direct_mapped(HEADLINE_SIZE, 4).expect("valid config");
    L2_RATIO_SWEEP
        .iter()
        .map(|&ratio| {
            let l2 = CacheConfig::direct_mapped(HEADLINE_SIZE * ratio, 4).expect("valid config");
            let n = workloads.len() as f64;
            let mut dm_l1 = 0.0;
            let mut dm_l2 = 0.0;
            let mut de = [(0.0, 0.0); 3];
            for (name, _) in workloads.iter() {
                let addrs = workloads.instr_addrs(name);
                let mut baseline = TwoLevel::new(DirectMapped::new(l1), DirectMapped::new(l2));
                run_addrs(&mut baseline, addrs.iter().copied());
                let b = baseline.hierarchy_stats();
                dm_l1 += b.l1.miss_rate_percent();
                dm_l2 += b.global_l2_miss_rate() * 100.0;
                for (k, &strategy) in STRATEGIES.iter().enumerate() {
                    let mut h = DeHierarchy::new(l1, l2, strategy).expect("valid hierarchy");
                    run_addrs(&mut h, addrs.iter().copied());
                    let s = h.hierarchy_stats();
                    de[k].0 += s.l1.miss_rate_percent();
                    de[k].1 += s.l2.misses() as f64 / s.l1.accesses().max(1) as f64 * 100.0;
                }
            }
            dm_l1 /= n;
            dm_l2 /= n;
            for entry in &mut de {
                entry.0 /= n;
                entry.1 /= n;
            }
            L2Point {
                ratio,
                dm_l1,
                dm_l2,
                de,
            }
        })
        .collect()
}

/// Figure 7: DE L1 miss rate (and reduction vs conventional) as the L2 grows
/// from 1x to 64x the L1, per hit-last strategy. The paper's finding: most
/// of the benefit arrives once L2 >= 4x L1; assume-hit at 1x degenerates to
/// conventional behavior.
pub fn fig7(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 7: DE L1 miss rate vs relative L2 size (L1=32KB, b=4B)",
        vec![
            "L2/L1 ratio",
            "DM L1 %",
            "hashed L1 %",
            "assume-hit L1 %",
            "assume-miss L1 %",
            "hashed red. %",
            "assume-hit red. %",
            "assume-miss red. %",
        ],
    );
    for point in l2_sweep(workloads) {
        table.push_row(vec![
            point.ratio.to_string(),
            format!("{:.3}", point.dm_l1),
            format!("{:.3}", point.de[0].0),
            format!("{:.3}", point.de[1].0),
            format!("{:.3}", point.de[2].0),
            format!("{:.1}", reduction(point.dm_l1, point.de[0].0)),
            format!("{:.1}", reduction(point.dm_l1, point.de[1].0)),
            format!("{:.1}", reduction(point.dm_l1, point.de[2].0)),
        ]);
    }
    table
}

/// Figure 8: global L2 miss rate vs L2 size. The conventional hierarchy and
/// assume-hit coincide (inclusive contents); assume-miss and hashed benefit
/// from L1/L2 exclusion.
pub fn fig8(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 8: global L2 miss rate vs L2 size (L1=32KB, b=4B)",
        vec![
            "L2 size KB",
            "DM / assume-hit %",
            "assume-hit %",
            "assume-miss %",
            "hashed %",
        ],
    );
    for point in l2_sweep(workloads) {
        table.push_row(vec![
            (point.ratio * HEADLINE_SIZE / 1024).to_string(),
            format!("{:.3}", point.dm_l2),
            format!("{:.3}", point.de[1].1),
            format!("{:.3}", point.de[2].1),
            format!("{:.3}", point.de[0].1),
        ]);
    }
    table
}

/// Figure 9: percentage reduction of the global L2 miss rate vs the
/// conventional hierarchy, per strategy. Assume-miss improves the L2 most —
/// it maximizes the content difference between the levels.
pub fn fig9(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 9: L2 miss-rate reduction vs L2 size (L1=32KB, b=4B)",
        vec!["L2 size KB", "assume-hit %", "assume-miss %", "hashed %"],
    );
    for point in l2_sweep(workloads) {
        table.push_row(vec![
            (point.ratio * HEADLINE_SIZE / 1024).to_string(),
            format!("{:.1}", reduction(point.dm_l2, point.de[1].1)),
            format!("{:.1}", reduction(point.dm_l2, point.de[2].1)),
            format!("{:.1}", reduction(point.dm_l2, point.de[0].1)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_ratios() {
        let w = Workloads::generate(2_000);
        let sweep = l2_sweep(&w);
        assert_eq!(sweep.len(), L2_RATIO_SWEEP.len());
        assert_eq!(sweep[0].ratio, 1);
        assert_eq!(sweep.last().unwrap().ratio, 64);
    }

    #[test]
    fn tables_have_ratio_rows() {
        let w = Workloads::generate(1_000);
        assert_eq!(fig7(&w).n_rows(), L2_RATIO_SWEEP.len());
        assert_eq!(fig8(&w).n_rows(), L2_RATIO_SWEEP.len());
        assert_eq!(fig9(&w).n_rows(), L2_RATIO_SWEEP.len());
    }
}
