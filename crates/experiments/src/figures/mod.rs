//! One function per paper artifact.
//!
//! | function | paper artifact |
//! |----------|----------------|
//! | [`patterns`] | Section 3 analytic pattern table |
//! | [`fig2`] | Figure 2 benchmark characterization |
//! | [`fig3`] | Figure 3 per-benchmark I-cache miss rates (32KB, 4B) |
//! | [`fig4`] | Figure 4 average I-cache miss rate vs size (4B lines) |
//! | [`fig5`] | Figure 5 % miss reduction vs size (4B lines) |
//! | [`fig7`] | Figure 7 DE L1 miss rate vs relative L2 size |
//! | [`fig8`] | Figure 8 L2 miss rate vs L2 size, per hit-last strategy |
//! | [`fig9`] | Figure 9 L2 miss reduction vs L2 size |
//! | [`fig11`] | Figure 11 I-cache DE performance vs line size (32KB) |
//! | [`fig12`] | Figure 12 DE improvement vs cache size (16B lines) |
//! | [`fig13`] | Figure 13 efficiency: DE bits vs doubling capacity |
//! | [`fig14`] | Figure 14 data-cache DE vs size (4B lines) |
//! | [`fig15`] | Figure 15 combined I+D cache DE vs size (4B lines) |
//! | [`ablate_sticky`] | Section 4 / \[McF91a\] multi-sticky discussion |
//! | [`ablate_hashwidth`] | Section 5 hashed hit-last width ("4 bits suffice") |
//! | [`victim`] | Section 2 victim-cache comparison \[Jou90\] |
//! | [`streambuf`] | Section 2 stream-buffer complementarity \[Jou90\] |
//! | [`ablate_linebuf`] | Section 6's three line-buffer structures |
//! | [`conflicts`] | 3C miss anatomy (extension) |
//! | [`ehc`] | Expected-Hit-Count headline comparison (arXiv 1808.05024) |
//! | [`bwcost`] | bandwidth-cost headline comparison (arXiv 1907.02167) |
//! | [`assoc`] | DE vs set-associativity (extension) |
//! | [`coldstart`] | DE training-cost split (extension) |

mod ablations;
mod data;
mod extensions;
mod hierarchy;
mod instr;
mod lines;
mod patterns;
mod zoo;

pub use ablations::{ablate_hashwidth, ablate_sticky, streambuf, victim};
pub use data::{fig14, fig15};
pub use extensions::{ablate_linebuf, assoc, coldstart, conflicts};
pub use hierarchy::{fig7, fig8, fig9, l2_sweep};
pub use instr::{fig3, fig4, fig5, size_sweep};
pub use lines::{fig11, fig12, fig13};
pub use patterns::{fig2, patterns};
pub use zoo::{bwcost, ehc};

/// Every experiment id accepted by the `experiments` binary, in run order.
pub const ALL_IDS: [&str; 23] = [
    "patterns",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablate-sticky",
    "ablate-hashwidth",
    "ablate-linebuf",
    "victim",
    "streambuf",
    "conflicts",
    "assoc",
    "coldstart",
    "ehc",
    "bwcost",
];

/// Runs one experiment by id.
///
/// Returns `None` for unknown ids.
pub fn run(id: &str, workloads: &crate::Workloads) -> Option<crate::Table> {
    Some(match id {
        "patterns" => patterns(),
        "fig2" => fig2(workloads),
        "fig3" => fig3(workloads),
        "fig4" => fig4(workloads),
        "fig5" => fig5(workloads),
        "fig7" => fig7(workloads),
        "fig8" => fig8(workloads),
        "fig9" => fig9(workloads),
        "fig11" => fig11(workloads),
        "fig12" => fig12(workloads),
        "fig13" => fig13(workloads),
        "fig14" => fig14(workloads),
        "fig15" => fig15(workloads),
        "ablate-sticky" => ablate_sticky(workloads),
        "ablate-hashwidth" => ablate_hashwidth(workloads),
        "ablate-linebuf" => ablate_linebuf(workloads),
        "conflicts" => conflicts(workloads),
        "assoc" => assoc(workloads),
        "coldstart" => coldstart(workloads),
        "ehc" => ehc(workloads),
        "bwcost" => bwcost(workloads),
        "victim" => victim(workloads),
        "streambuf" => streambuf(workloads),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        let w = crate::Workloads::generate(200);
        assert!(run("fig99", &w).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Tiny budget: exercises routing, not numbers.
        let w = crate::Workloads::generate(500);
        for id in ALL_IDS {
            assert!(run(id, &w).is_some(), "{id}");
        }
    }
}
