//! Figures 14–15: data and combined caches.

use dynex_cache::CacheConfig;

use crate::api::sweep_triples;
use crate::runner::{average_rates, reduction};
use crate::{Table, Workloads, SIZE_SWEEP_KB};

fn sweep(
    workloads: &Workloads,
    select: impl Fn(&Workloads, &str) -> Vec<u32>,
) -> Vec<(u32, f64, f64, f64)> {
    // Materialize each benchmark's stream once, then run every
    // (size, benchmark) point on the engine's worker pool.
    let traces: Vec<Vec<u32>> = workloads
        .iter()
        .map(|(name, _)| select(workloads, name))
        .collect();
    let mut points: Vec<(CacheConfig, &[u32])> = Vec::new();
    for &kb in &SIZE_SWEEP_KB {
        let config = CacheConfig::direct_mapped(kb * 1024, 4).expect("valid config");
        points.extend(traces.iter().map(|t| (config, t.as_slice())));
    }
    let results = sweep_triples(&points);
    SIZE_SWEEP_KB
        .iter()
        .zip(results.chunks(traces.len()))
        .map(|(&kb, per_bench)| {
            let (dm, de, opt) = average_rates(per_bench);
            (kb, dm, de, opt)
        })
        .collect()
}

fn render(title: &str, points: Vec<(u32, f64, f64, f64)>) -> Table {
    let mut table = Table::new(
        title,
        vec![
            "size KB",
            "direct-mapped %",
            "dynamic exclusion %",
            "optimal DM %",
            "DE red. %",
        ],
    );
    for (kb, dm, de, opt) in points {
        table.push_row(vec![
            kb.to_string(),
            format!("{dm:.3}"),
            format!("{de:.3}"),
            format!("{opt:.3}"),
            format!("{:.1}", reduction(dm, de)),
        ]);
    }
    table
}

/// Figure 14: data-cache dynamic exclusion vs cache size (4B lines).
///
/// The paper's finding: data reference patterns differ from instruction
/// patterns and a conventional direct-mapped cache is already close to
/// optimal for them, so DE's improvement is much smaller than on instruction
/// streams (and can go slightly negative at large sizes from cold-start
/// training).
pub fn fig14(workloads: &Workloads) -> Table {
    render(
        "Figure 14: average DATA-cache miss rate vs size, b=4B",
        sweep(workloads, |w, name| w.data_addrs(name)),
    )
}

/// Figure 15: combined I+D cache dynamic exclusion vs cache size (4B lines).
///
/// Instruction references dominate misses at small sizes (DE helps nearly as
/// much as on pure instruction caches); data dominates at large sizes (the
/// improvement shrinks).
pub fn fig15(workloads: &Workloads) -> Table {
    render(
        "Figure 15: average COMBINED I+D cache miss rate vs size, b=4B",
        sweep(workloads, |w, name| w.all_addrs(name)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_figures_cover_sizes() {
        let w = Workloads::generate(2_000);
        assert_eq!(fig14(&w).n_rows(), SIZE_SWEEP_KB.len());
        assert_eq!(fig15(&w).n_rows(), SIZE_SWEEP_KB.len());
    }

    #[test]
    fn opt_is_lower_bound_in_both() {
        let w = Workloads::generate(2_000);
        for t in [fig14(&w), fig15(&w)] {
            for row in 0..t.n_rows() {
                let dm: f64 = t.cell(row, 1).unwrap().parse().unwrap();
                let opt: f64 = t.cell(row, 3).unwrap().parse().unwrap();
                assert!(opt <= dm + 1e-9, "{}", t.title());
            }
        }
    }
}
