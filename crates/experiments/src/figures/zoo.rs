//! Policy-zoo figures: the headline comparisons of the two papers shipped
//! through the PR-10 policy API.
//!
//! * [`ehc`] — the Expected-Hit-Count comparison (arXiv 1808.05024): EHC
//!   scores a line by how many hits it is expected to deliver within a
//!   capacity-scaled window and declines to install lines that would
//!   deliver fewer hits than the incumbent. The paper's headline is that
//!   hit-count-aware replacement recovers a large share of the conflict
//!   misses a naive policy leaves on the table; here it lands between DM
//!   and the OPT oracle at every sweep size.
//! * [`bwcost`] — the bandwidth-cost comparison ("To Update or Not To
//!   Update?", arXiv 1907.02167): replacement decisions priced in
//!   line-sized transfers (probes + fills + writebacks) rather than misses
//!   alone. The headline is that bypassing low-value fills cuts cache-side
//!   traffic even where it barely moves the miss rate — exactly the regime
//!   where DE's exclusion bypass wins.
//!
//! Both figures dispatch through [`PolicyKind`], so they exercise the same
//! capability-checked path the serve tier uses; the goldens under
//! `results/golden/` pin the bytes under the differential wall.

use dynex_cache::{simulate_policy, CacheConfig, CacheStats, DePolicy, DmPolicy};
use dynex_engine::{default_kernel, Kernel, KernelSupport, PolicyKind};

use crate::runner::reduction;
use crate::{Table, Workloads};

/// Cache sizes the zoo figures sweep: small enough that conflict misses
/// dominate and the policies separate, up to the paper's headline 32KB.
const ZOO_SIZES_KB: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Runs one zoo policy on the session's default kernel, falling back to the
/// reference kernel for declared-unsupported combinations (the sweep kernel
/// has no EHC/bwcost fast path). Never a silent gap: anything else is a bug
/// in the capability matrix and panics loudly.
fn zoo_stats(kind: PolicyKind, config: CacheConfig, addrs: &[u32]) -> CacheStats {
    let kernel = match kind.kernel_support(default_kernel()) {
        KernelSupport::Unsupported => Kernel::Reference,
        _ => default_kernel(),
    };
    kind.simulate_kernel(kernel, config, addrs)
        .expect("capability-checked kernel selection cannot fail")
}

/// Expected-Hit-Count comparison (b=4B lines): average I-stream miss rates
/// for DM, DE, EHC, and OPT across the benchmark suite at each cache size,
/// with each policy's reduction vs the conventional cache — the EHC paper's
/// headline "hit-count-aware bypass tracks the oracle" curve.
pub fn ehc(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Zoo: expected-hit-count bypass vs size, b=4B (EHC, arXiv 1808.05024)",
        vec![
            "size KB",
            "DM miss %",
            "DE miss %",
            "EHC miss %",
            "OPT miss %",
            "DE red %",
            "EHC red %",
        ],
    );
    for kb in ZOO_SIZES_KB {
        let config = CacheConfig::direct_mapped(kb * 1024, 4).expect("valid config");
        let n = workloads.len() as f64;
        let (mut dm_a, mut de_a, mut ehc_a, mut opt_a) = (0.0, 0.0, 0.0, 0.0);
        for (name, _) in workloads.iter() {
            let addrs = workloads.instr_addrs(name);
            dm_a += zoo_stats(PolicyKind::DirectMapped, config, &addrs).miss_rate_percent();
            de_a += zoo_stats(PolicyKind::DynamicExclusion, config, &addrs).miss_rate_percent();
            ehc_a += zoo_stats(PolicyKind::ExpectedHitCount, config, &addrs).miss_rate_percent();
            opt_a += zoo_stats(PolicyKind::OptimalDm, config, &addrs).miss_rate_percent();
        }
        let (dm_a, de_a, ehc_a, opt_a) = (dm_a / n, de_a / n, ehc_a / n, opt_a / n);
        table.push_row(vec![
            kb.to_string(),
            format!("{dm_a:.3}"),
            format!("{de_a:.3}"),
            format!("{ehc_a:.3}"),
            format!("{opt_a:.3}"),
            format!("{:.1}", reduction(dm_a, de_a)),
            format!("{:.1}", reduction(dm_a, ehc_a)),
        ]);
    }
    table
}

/// Bandwidth-cost comparison (b=4B lines): cache-side traffic in transfers
/// per kiloref, averaged across the benchmark suite at each cache size, for
/// a conventional fill-always cache, DE's exclusion bypass, and the
/// explicitly bandwidth-priced policy — next to the miss rates the traffic
/// buys. The bandwidth-aware paper's headline is the "saved %" columns:
/// bypass cuts traffic hardest exactly where conflict pressure is worst.
///
/// The DM and DE columns run through the traffic-accounting policy driver
/// (the legacy hit/miss kernels deliberately report zero traffic so old
/// journals replay byte-identically), so every column prices probes, fills,
/// and writebacks the same way.
pub fn bwcost(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Zoo: bandwidth cost vs size, b=4B (transfers/kiloref, arXiv 1907.02167)",
        vec![
            "size KB",
            "DM bw",
            "DE bw",
            "BW bw",
            "DM miss %",
            "BW miss %",
            "DE bw saved %",
            "BW bw saved %",
        ],
    );
    for kb in ZOO_SIZES_KB {
        let config = CacheConfig::direct_mapped(kb * 1024, 4).expect("valid config");
        let n = workloads.len() as f64;
        let (mut dm_bw, mut de_bw, mut bw_bw) = (0.0, 0.0, 0.0);
        let (mut dm_miss, mut bw_miss) = (0.0, 0.0);
        for (name, _) in workloads.iter() {
            let addrs = workloads.instr_addrs(name);
            let dm = simulate_policy(config, &addrs, &mut DmPolicy);
            let de = simulate_policy(config, &addrs, &mut DePolicy::new(config, &addrs));
            let bw = zoo_stats(PolicyKind::BandwidthCost, config, &addrs);
            dm_bw += dm.bandwidth_per_kiloref();
            de_bw += de.bandwidth_per_kiloref();
            bw_bw += bw.bandwidth_per_kiloref();
            dm_miss += dm.miss_rate_percent();
            bw_miss += bw.miss_rate_percent();
        }
        let (dm_bw, de_bw, bw_bw) = (dm_bw / n, de_bw / n, bw_bw / n);
        table.push_row(vec![
            kb.to_string(),
            format!("{dm_bw:.1}"),
            format!("{de_bw:.1}"),
            format!("{bw_bw:.1}"),
            format!("{:.3}", dm_miss / n),
            format!("{:.3}", bw_miss / n),
            format!("{:.1}", reduction(dm_bw, de_bw)),
            format!("{:.1}", reduction(dm_bw, bw_bw)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ehc_lands_between_dm_and_opt() {
        let w = Workloads::generate(2_000);
        let config = CacheConfig::direct_mapped(1024, 4).unwrap();
        let (name, _) = w.iter().next().unwrap();
        let addrs = w.instr_addrs(name);
        let dm = zoo_stats(PolicyKind::DirectMapped, config, &addrs);
        let ehc = zoo_stats(PolicyKind::ExpectedHitCount, config, &addrs);
        let opt = zoo_stats(PolicyKind::OptimalDm, config, &addrs);
        assert!(ehc.misses() <= dm.misses());
        assert!(opt.misses() <= ehc.misses());
    }

    #[test]
    fn zoo_figures_render() {
        let w = Workloads::generate(500);
        let e = ehc(&w);
        let b = bwcost(&w);
        assert_eq!(e.n_rows(), ZOO_SIZES_KB.len());
        assert_eq!(b.n_rows(), ZOO_SIZES_KB.len());
    }

    #[test]
    fn bandwidth_policy_never_costs_more_than_fill_always() {
        let w = Workloads::generate(2_000);
        let config = CacheConfig::direct_mapped(1024, 4).unwrap();
        for (name, _) in w.iter() {
            let addrs = w.instr_addrs(name);
            let dm = simulate_policy(config, &addrs, &mut DmPolicy);
            let bw = zoo_stats(PolicyKind::BandwidthCost, config, &addrs);
            assert!(
                bw.bandwidth_transfers() <= dm.bandwidth_transfers(),
                "{name}: bw policy must not spend more transfers than fill-always"
            );
        }
    }
}
