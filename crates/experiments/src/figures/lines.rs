//! Figures 11–13: line sizes above one word.

use dynex::{HashedStore, LastLineDeCache};
use dynex_cache::{run_addrs, CacheConfig, DirectMapped};
use dynex_engine::{default_jobs, execute};

use crate::api::sweep_triples_lastline;
use crate::runner::{average_rates, reduction};
use crate::{Table, Workloads, HEADLINE_SIZE, LINE_SWEEP_BYTES, SIZE_SWEEP_KB};

/// The lastline sweep shared by Figures 11 and 12: every (config, benchmark)
/// point on the engine's pool, averaged per config in plan order.
fn lastline_sweep(workloads: &Workloads, configs: &[CacheConfig]) -> Vec<(f64, f64, f64)> {
    let traces: Vec<Vec<u32>> = workloads
        .iter()
        .map(|(name, _)| workloads.instr_addrs(name))
        .collect();
    let mut points: Vec<(CacheConfig, &[u32])> = Vec::new();
    for &config in configs {
        points.extend(traces.iter().map(|t| (config, t.as_slice())));
    }
    let results = sweep_triples_lastline(&points);
    results.chunks(traces.len()).map(average_rates).collect()
}

/// Figure 11: average I-cache performance vs line size at 32KB. DE and OPT
/// carry the Section 6 last-line buffer. The paper's improvement declines
/// from 37% at 4B lines to ~25% at 64B (internal fragmentation creates
/// unfixable conflicts).
pub fn fig11(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 11: average I-cache miss rate vs line size, S=32KB",
        vec![
            "line B",
            "direct-mapped %",
            "dynamic exclusion %",
            "optimal DM %",
            "DE red. %",
        ],
    );
    let configs: Vec<CacheConfig> = LINE_SWEEP_BYTES
        .iter()
        .map(|&line| CacheConfig::direct_mapped(HEADLINE_SIZE, line).expect("valid config"))
        .collect();
    for (&line, (dm, de, opt)) in LINE_SWEEP_BYTES
        .iter()
        .zip(lastline_sweep(workloads, &configs))
    {
        table.push_row(vec![
            line.to_string(),
            format!("{dm:.3}"),
            format!("{de:.3}"),
            format!("{opt:.3}"),
            format!("{:.1}", reduction(dm, de)),
        ]);
    }
    table
}

/// Figure 12: average I-cache miss rate and DE improvement vs cache size at
/// 16-byte lines (the paper's headline claim: ~33% average reduction for a
/// 32KB cache with 16B lines).
pub fn fig12(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 12: average I-cache miss rate vs size, b=16B",
        vec![
            "size KB",
            "direct-mapped %",
            "dynamic exclusion %",
            "optimal DM %",
            "DE red. %",
        ],
    );
    let configs: Vec<CacheConfig> = SIZE_SWEEP_KB
        .iter()
        .map(|&kb| CacheConfig::direct_mapped(kb * 1024, 16).expect("valid config"))
        .collect();
    for (&kb, (dm, de, opt)) in SIZE_SWEEP_KB
        .iter()
        .zip(lastline_sweep(workloads, &configs))
    {
        table.push_row(vec![
            kb.to_string(),
            format!("{dm:.3}"),
            format!("{de:.3}"),
            format!("{opt:.3}"),
            format!("{:.1}", reduction(dm, de)),
        ]);
    }
    table
}

/// Figure 13: efficiency of adding dynamic exclusion vs doubling capacity.
///
/// Baseline: 8KB direct-mapped, 16B lines. Alternatives: 8KB DE (last-line
/// buffer + 4 hashed hit-last bits per line, the paper's assumed hardware)
/// and a 16KB direct-mapped cache. Reports the size increase, the miss-rate
/// change, and their ratio — the paper finds DE roughly 15x more
/// size-efficient than doubling capacity.
pub fn fig13(workloads: &Workloads) -> Table {
    let base8 = CacheConfig::direct_mapped(8 * 1024, 16).expect("valid config");
    let dm16 = CacheConfig::direct_mapped(16 * 1024, 16).expect("valid config");

    let n = workloads.len() as f64;
    let traces: Vec<Vec<u32>> = workloads
        .iter()
        .map(|(name, _)| workloads.instr_addrs(name))
        .collect();
    // One pool job per benchmark; summing in plan order keeps the float
    // accumulation identical to the serial loop.
    let per_bench = execute(&traces, default_jobs(), |addrs| {
        let mut dm8 = DirectMapped::new(base8);
        let dm8_rate = run_addrs(&mut dm8, addrs.iter().copied()).miss_rate_percent();
        let mut de8 = LastLineDeCache::with_store(base8, HashedStore::new(base8, 4));
        let de8_rate = run_addrs(&mut de8, addrs.iter().copied()).miss_rate_percent();
        let mut dm16_cache = DirectMapped::new(dm16);
        let dm16_rate = run_addrs(&mut dm16_cache, addrs.iter().copied()).miss_rate_percent();
        (dm8_rate, de8_rate, dm16_rate)
    });
    let (mut dm8_rate, mut de8_rate, mut dm16_rate) = (0.0, 0.0, 0.0);
    for (a, b, c) in per_bench {
        dm8_rate += a;
        de8_rate += b;
        dm16_rate += c;
    }
    dm8_rate /= n;
    de8_rate /= n;
    dm16_rate /= n;

    // Storage accounting: the baseline cache's data + tag + valid bits vs the
    // DE additions (last-line buffer, sticky, hashed hit-last bits).
    let base_bits = cache_bits(base8);
    let de_extra = LastLineDeCache::new(base8).overhead_bits(4);
    let de_delta_size = de_extra as f64 / base_bits as f64 * 100.0;
    let double_delta_size = 100.0;

    let de_delta_miss = reduction(dm8_rate, de8_rate);
    let double_delta_miss = reduction(dm8_rate, dm16_rate);

    let mut table = Table::new(
        "Figure 13: dynamic exclusion efficiency (b=16B)",
        vec![
            "design",
            "miss rate %",
            "dSize %",
            "dMissRate %",
            "dMiss/dSize",
        ],
    );
    table.push_row(vec![
        "8KB DM (baseline)".to_owned(),
        format!("{dm8_rate:.3}"),
        "0.0".to_owned(),
        "0.0".to_owned(),
        "-".to_owned(),
    ]);
    table.push_row(vec![
        "8KB DE".to_owned(),
        format!("{de8_rate:.3}"),
        format!("{de_delta_size:.1}"),
        format!("{de_delta_miss:.1}"),
        format!("{:.1}", de_delta_miss / de_delta_size),
    ]);
    table.push_row(vec![
        "16KB DM".to_owned(),
        format!("{dm16_rate:.3}"),
        format!("{double_delta_size:.1}"),
        format!("{double_delta_miss:.1}"),
        format!("{:.2}", double_delta_miss / double_delta_size),
    ]);
    table
}

/// Total storage bits of a conventional cache: data + tag + valid per line.
fn cache_bits(config: CacheConfig) -> u64 {
    let geometry = config.geometry();
    let tag_bits = 32 - geometry.offset_bits() as u64 - geometry.index_bits() as u64;
    let per_line = config.line_bytes() as u64 * 8 + tag_bits + 1;
    per_line * config.n_lines() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_rows() {
        let w = Workloads::generate(2_000);
        let t = fig11(&w);
        assert_eq!(t.n_rows(), LINE_SWEEP_BYTES.len());
        assert_eq!(t.cell(0, 0), Some("4"));
    }

    #[test]
    fn fig12_rows() {
        let w = Workloads::generate(1_000);
        assert_eq!(fig12(&w).n_rows(), SIZE_SWEEP_KB.len());
    }

    #[test]
    fn fig13_size_overhead_is_small() {
        let w = Workloads::generate(1_000);
        let t = fig13(&w);
        assert_eq!(t.n_rows(), 3);
        let de_size: f64 = t.cell(1, 2).unwrap().parse().unwrap();
        assert!(
            de_size < 10.0,
            "DE overhead should be a few percent, got {de_size}"
        );
        let dbl: f64 = t.cell(2, 2).unwrap().parse().unwrap();
        assert_eq!(dbl, 100.0);
    }

    #[test]
    fn cache_bits_accounting() {
        // 8KB, 16B lines: 512 lines x (128 data + 19 tag + 1 valid).
        let c = CacheConfig::direct_mapped(8 * 1024, 16).unwrap();
        assert_eq!(cache_bits(c), 512 * (128 + 19 + 1));
    }
}
