//! Extension experiments beyond the paper's figures: miss-class anatomy,
//! associativity comparison, cold-start accounting, and the Section 6
//! line-buffer alternatives.

use dynex::{DeCache, DeStreamBuffer, InstrRegisterDeCache, LastLineDeCache, OptimalDirectMapped};
use dynex_cache::{
    classify_direct_mapped, run_addrs, CacheConfig, CacheSim, DirectMapped, Replacement,
    SetAssociative,
};

use crate::runner::reduction;
use crate::{Table, Workloads, HEADLINE_SIZE};

/// Miss anatomy: the 3C classification of every benchmark's direct-mapped
/// misses at 32KB, next to the share DE and OPT actually remove.
///
/// Dynamic exclusion can only attack conflict misses; this table shows how
/// much of each benchmark's miss rate is conflict in the first place, and
/// what fraction of it the FSM recovers.
pub fn conflicts(workloads: &Workloads) -> Table {
    let config = CacheConfig::direct_mapped(HEADLINE_SIZE, 4).expect("valid config");
    let mut table = Table::new(
        "Extension: 3C miss anatomy at S=32KB, b=4B (I-streams)",
        vec![
            "benchmark",
            "DM miss %",
            "compulsory %",
            "capacity %",
            "conflict %",
            "DE removes %",
            "OPT removes %",
        ],
    );
    for (name, _) in workloads.iter() {
        let addrs = workloads.instr_addrs(name);
        let classes = classify_direct_mapped(config, addrs.iter().copied());
        let total = classes.total_misses().max(1) as f64;
        let mut de = DeCache::new(config);
        let de_stats = run_addrs(&mut de, addrs.iter().copied());
        let opt = OptimalDirectMapped::simulate(config, addrs.iter().copied());
        let removed = |m: u64| (classes.total_misses() as f64 - m as f64) / total * 100.0;
        table.push_row(vec![
            name.to_owned(),
            format!("{:.3}", classes.miss_rate_percent()),
            format!("{:.1}", classes.compulsory as f64 / total * 100.0),
            format!("{:.1}", classes.capacity as f64 / total * 100.0),
            format!("{:.1}", classes.conflict as f64 / total * 100.0),
            format!("{:.1}", removed(de_stats.misses())),
            format!("{:.1}", removed(opt.misses())),
        ]);
    }
    table
}

/// Associativity comparison: the paper's framing is that direct-mapped
/// caches win on access time but lose misses to set-associative designs;
/// dynamic exclusion recovers part of that gap without the slower hit path.
pub fn assoc(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Extension: DE vs set-associativity (avg I-miss %, b=4B)",
        vec![
            "size KB",
            "DM",
            "DM+DE",
            "2-way LRU",
            "4-way LRU",
            "DE closes gap %",
        ],
    );
    for kb in [8u32, 16, 32, 64] {
        let dm_cfg = CacheConfig::direct_mapped(kb * 1024, 4).expect("valid config");
        let w2 = CacheConfig::new(kb * 1024, 4, 2).expect("valid config");
        let w4 = CacheConfig::new(kb * 1024, 4, 4).expect("valid config");
        let n = workloads.len() as f64;
        let (mut dm_a, mut de_a, mut a2, mut a4) = (0.0, 0.0, 0.0, 0.0);
        for (name, _) in workloads.iter() {
            let addrs = workloads.instr_addrs(name);
            let mut dm = DirectMapped::new(dm_cfg);
            dm_a += run_addrs(&mut dm, addrs.iter().copied()).miss_rate_percent();
            let mut de = DeCache::new(dm_cfg);
            de_a += run_addrs(&mut de, addrs.iter().copied()).miss_rate_percent();
            let mut c2 = SetAssociative::new(w2, Replacement::Lru);
            a2 += run_addrs(&mut c2, addrs.iter().copied()).miss_rate_percent();
            let mut c4 = SetAssociative::new(w4, Replacement::Lru);
            a4 += run_addrs(&mut c4, addrs.iter().copied()).miss_rate_percent();
        }
        let (dm_a, de_a, a2, a4) = (dm_a / n, de_a / n, a2 / n, a4 / n);
        // How much of the DM -> 2-way gap DE closes (can exceed 100% if DE
        // beats 2-way).
        let gap = dm_a - a2;
        let closed = if gap.abs() < 1e-12 {
            0.0
        } else {
            (dm_a - de_a) / gap * 100.0
        };
        table.push_row(vec![
            kb.to_string(),
            format!("{dm_a:.3}"),
            format!("{de_a:.3}"),
            format!("{a2:.3}"),
            format!("{a4:.3}"),
            format!("{closed:.0}"),
        ]);
    }
    table
}

/// Cold-start accounting: the paper attributes nasa7/tomcatv's slight DE
/// regression to extra misses while the state bits initialize. This splits
/// each benchmark's DE-vs-DM delta into the first tenth of the stream
/// (training) and the rest (steady state).
pub fn coldstart(workloads: &Workloads) -> Table {
    let config = CacheConfig::direct_mapped(HEADLINE_SIZE, 4).expect("valid config");
    let mut table = Table::new(
        "Extension: DE training cost at S=32KB, b=4B (misses, DE - DM)",
        vec![
            "benchmark",
            "delta first 10%",
            "delta rest",
            "steady-state red. %",
        ],
    );
    for (name, _) in workloads.iter() {
        let addrs = workloads.instr_addrs(name);
        let split = addrs.len() / 10;
        let mut dm = DirectMapped::new(config);
        let mut de = DeCache::new(config);
        let (mut dm_head, mut de_head) = (0i64, 0i64);
        let (mut dm_tail, mut de_tail) = (0i64, 0i64);
        for (i, &a) in addrs.iter().enumerate() {
            let dm_miss = dm.access(a).is_miss() as i64;
            let de_miss = de.access(a).is_miss() as i64;
            if i < split {
                dm_head += dm_miss;
                de_head += de_miss;
            } else {
                dm_tail += dm_miss;
                de_tail += de_miss;
            }
        }
        let steady_red = if dm_tail > 0 {
            (dm_tail - de_tail) as f64 / dm_tail as f64 * 100.0
        } else {
            0.0
        };
        table.push_row(vec![
            name.to_owned(),
            (de_head - dm_head).to_string(),
            (de_tail - dm_tail).to_string(),
            format!("{steady_red:.1}"),
        ]);
    }
    table
}

/// The three Section 6 structures for multi-word lines, compared at 16B
/// lines across sizes: instruction register (== last-line by construction),
/// last-line buffer (the paper's evaluated variant), and the stream-buffer
/// variant (strictly stronger: prefetch for free).
pub fn ablate_linebuf(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Ablation: Section 6 line-buffer alternatives (avg I-miss %, b=16B)",
        vec![
            "size KB",
            "DM",
            "instr register",
            "last-line",
            "DE+stream(4)",
            "stream red. %",
        ],
    );
    for kb in [8u32, 16, 32, 64] {
        let config = CacheConfig::direct_mapped(kb * 1024, 16).expect("valid config");
        let n = workloads.len() as f64;
        let (mut dm_a, mut reg_a, mut ll_a, mut sb_a) = (0.0, 0.0, 0.0, 0.0);
        for (name, _) in workloads.iter() {
            let addrs = workloads.instr_addrs(name);
            let mut dm = DirectMapped::new(config);
            dm_a += run_addrs(&mut dm, addrs.iter().copied()).miss_rate_percent();
            let mut reg = InstrRegisterDeCache::new(config);
            reg_a += run_addrs(&mut reg, addrs.iter().copied()).miss_rate_percent();
            let mut ll = LastLineDeCache::new(config);
            ll_a += run_addrs(&mut ll, addrs.iter().copied()).miss_rate_percent();
            let mut sb = DeStreamBuffer::new(config, 4);
            sb_a += run_addrs(&mut sb, addrs.iter().copied()).miss_rate_percent();
        }
        let (dm_a, reg_a, ll_a, sb_a) = (dm_a / n, reg_a / n, ll_a / n, sb_a / n);
        table.push_row(vec![
            kb.to_string(),
            format!("{dm_a:.3}"),
            format!("{reg_a:.3}"),
            format!("{ll_a:.3}"),
            format!("{sb_a:.3}"),
            format!("{:.1}", reduction(dm_a, sb_a)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workloads {
        Workloads::generate(2_000)
    }

    #[test]
    fn conflicts_table_shape() {
        let t = conflicts(&tiny());
        assert_eq!(t.n_rows(), 10);
        // Per-row: compulsory + capacity + conflict == 100 (of DM misses).
        for row in 0..t.n_rows() {
            let parts: f64 = (2..5)
                .map(|c| t.cell(row, c).unwrap().parse::<f64>().unwrap())
                .sum();
            let dm: f64 = t.cell(row, 1).unwrap().parse().unwrap();
            if dm > 0.0 {
                assert!((parts - 100.0).abs() < 0.5, "row {row}: {parts}");
            }
        }
    }

    #[test]
    fn assoc_table_shape() {
        let t = assoc(&tiny());
        assert_eq!(t.n_rows(), 4);
    }

    #[test]
    fn coldstart_reports_each_benchmark() {
        let t = coldstart(&tiny());
        assert_eq!(t.n_rows(), 10);
    }

    #[test]
    fn linebuf_register_column_equals_lastline() {
        let t = ablate_linebuf(&tiny());
        for row in 0..t.n_rows() {
            assert_eq!(t.cell(row, 2), t.cell(row, 3), "register == last-line");
        }
    }
}
