//! Figures 3–5: single-level instruction caches with one-word lines.

use dynex_cache::CacheConfig;

use crate::api::sweep_triples;
use crate::runner::{average_rates, reduction};
use crate::{Table, Workloads, HEADLINE_SIZE, SIZE_SWEEP_KB};

fn pct(v: f64) -> String {
    format!("{v:.3}")
}

fn pct1(v: f64) -> String {
    format!("{v:.1}")
}

/// Figure 3: per-benchmark instruction-cache miss rates at 32KB with 4-byte
/// lines, for conventional DM, dynamic exclusion, and optimal DM.
pub fn fig3(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 3: I-cache miss rates, S=32KB, b=4B (%)",
        vec![
            "benchmark",
            "direct-mapped",
            "dynamic exclusion",
            "optimal DM",
            "DE reduction %",
        ],
    );
    let config = CacheConfig::direct_mapped(HEADLINE_SIZE, 4).expect("valid config");
    let names: Vec<&str> = workloads.iter().map(|(name, _)| name).collect();
    let traces: Vec<Vec<u32>> = names.iter().map(|n| workloads.instr_addrs(n)).collect();
    let points: Vec<(CacheConfig, &[u32])> =
        traces.iter().map(|t| (config, t.as_slice())).collect();
    for (name, t) in names.iter().zip(sweep_triples(&points)) {
        table.push_row(vec![
            (*name).to_owned(),
            pct(t.dm.miss_rate_percent()),
            pct(t.de.miss_rate_percent()),
            pct(t.opt.miss_rate_percent()),
            pct1(t.de_reduction()),
        ]);
    }
    table
}

/// The size sweep shared by Figures 4 and 5: average miss-rate percentages
/// `(size KB, dm, de, opt)` across the ten benchmarks, 4-byte lines.
pub fn size_sweep(workloads: &Workloads) -> Vec<(u32, f64, f64, f64)> {
    // Materialize each benchmark's instruction stream once, then fan every
    // (size, benchmark) point out over the engine's worker pool.
    let traces: Vec<Vec<u32>> = workloads
        .iter()
        .map(|(name, _)| workloads.instr_addrs(name))
        .collect();
    let mut points: Vec<(CacheConfig, &[u32])> = Vec::new();
    for &kb in &SIZE_SWEEP_KB {
        let config = CacheConfig::direct_mapped(kb * 1024, 4).expect("valid config");
        points.extend(traces.iter().map(|t| (config, t.as_slice())));
    }
    let results = sweep_triples(&points);
    SIZE_SWEEP_KB
        .iter()
        .zip(results.chunks(traces.len()))
        .map(|(&kb, per_bench)| {
            let (dm, de, opt) = average_rates(per_bench);
            (kb, dm, de, opt)
        })
        .collect()
}

/// Figure 4: average instruction-cache miss rate vs cache size (4B lines).
pub fn fig4(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 4: average I-cache miss rate vs size, b=4B (%)",
        vec![
            "size KB",
            "direct-mapped",
            "dynamic exclusion",
            "optimal DM",
        ],
    );
    for (kb, dm, de, opt) in size_sweep(workloads) {
        table.push_row(vec![kb.to_string(), pct(dm), pct(de), pct(opt)]);
    }
    table
}

/// Figure 5: percentage reduction in average miss rate vs cache size
/// (4B lines). The paper's DE curve peaks at ~37% around 32KB.
pub fn fig5(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 5: % reduction of average I-cache miss rate vs size, b=4B",
        vec!["size KB", "dynamic exclusion %", "optimal DM %"],
    );
    for (kb, dm, de, opt) in size_sweep(workloads) {
        table.push_row(vec![
            kb.to_string(),
            pct1(reduction(dm, de)),
            pct1(reduction(dm, opt)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workloads {
        Workloads::generate(3_000)
    }

    #[test]
    fn fig3_has_all_benchmarks() {
        let t = fig3(&tiny());
        assert_eq!(t.n_rows(), 10);
        assert!(t.row_by_key("gcc").is_some());
        assert!(t.row_by_key("tomcatv").is_some());
    }

    #[test]
    fn fig4_covers_all_sizes() {
        let t = fig4(&tiny());
        assert_eq!(t.n_rows(), SIZE_SWEEP_KB.len());
        assert_eq!(t.cell(0, 0), Some("1"));
        assert_eq!(t.cell(7, 0), Some("128"));
    }

    #[test]
    fn fig5_reductions_bounded() {
        let t = fig5(&tiny());
        for row in 0..t.n_rows() {
            let de: f64 = t.cell(row, 1).unwrap().parse().unwrap();
            assert!(de <= 100.0);
        }
    }

    #[test]
    fn opt_never_above_dm_in_sweep() {
        for (_, dm, _, opt) in size_sweep(&tiny()) {
            assert!(opt <= dm + 1e-9);
        }
    }
}
