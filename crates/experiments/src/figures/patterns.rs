//! The Section 3 analytic pattern table and the Figure 2 benchmark table.

use dynex::{DeCache, OptimalDirectMapped};
use dynex_cache::{run, CacheConfig};
use dynex_trace::Trace;
use dynex_workload::patterns as pat;

use crate::{Table, Workloads};

/// Section 3: the three common reference patterns, analytic miss rates from
/// the paper vs the simulators.
///
/// | pattern            | conventional DM | optimal DM |
/// |--------------------|-----------------|-----------|
/// | `(a^10 b^10)^10`   | 10%             | 10%       |
/// | `(a^10 b)^10`      | 18%             | 10%       |
/// | `(a b)^10`         | 100%            | 55%       |
///
/// Dynamic exclusion lands within two misses of optimal on each.
pub fn patterns() -> Table {
    let config = CacheConfig::direct_mapped(64, 4).expect("valid config");
    let (a, b) = pat::conflicting_pair(64);
    let cases: [(&str, Trace, f64, f64); 3] = [
        (
            "(a^10 b^10)^10",
            pat::conflict_between_loops(a, b, 10, 10),
            10.0,
            10.0,
        ),
        (
            "(a^10 b)^10",
            pat::conflict_between_loop_levels(a, b, 10, 10),
            18.0,
            10.0,
        ),
        ("(a b)^10", pat::conflict_within_loop(a, b, 10), 100.0, 55.0),
    ];
    let mut table = Table::new(
        "Section 3: common reference patterns (miss rates, %)",
        vec![
            "pattern",
            "paper DM",
            "measured DM",
            "paper OPT",
            "measured OPT",
            "measured DE",
        ],
    );
    for (name, trace, paper_dm, paper_opt) in cases {
        let mut dm = dynex_cache::DirectMapped::new(config);
        let dm_stats = run(&mut dm, trace.iter());
        let mut de = DeCache::new(config);
        let de_stats = run(&mut de, trace.iter());
        let opt = OptimalDirectMapped::simulate(config, trace.iter().map(|x| x.addr()));
        table.push_row(vec![
            name.to_owned(),
            format!("{paper_dm:.0}"),
            format!("{:.1}", dm_stats.miss_rate_percent()),
            format!("{paper_opt:.0}"),
            format!("{:.1}", opt.miss_rate_percent()),
            format!("{:.1}", de_stats.miss_rate_percent()),
        ]);
    }
    table
}

/// Figure 2: the benchmark table, extended with measured stream statistics
/// of the synthetic profiles.
pub fn fig2(workloads: &Workloads) -> Table {
    let mut table = Table::new(
        "Figure 2: SPEC benchmarks used for evaluation (synthetic profiles)",
        vec![
            "benchmark",
            "description",
            "refs",
            "instr %",
            "I-footprint KB",
            "D-footprint KB",
        ],
    );
    for profile in workloads.profiles() {
        let stats = workloads.stats(profile.name());
        table.push_row(vec![
            profile.name().to_owned(),
            profile.description().to_owned(),
            stats.total().to_string(),
            format!("{:.1}", stats.instruction_fraction() * 100.0),
            (stats.instruction_footprint_bytes() / 1024).to_string(),
            (stats.data_footprint_bytes() / 1024).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_match_paper_analytics() {
        let t = patterns();
        assert_eq!(t.n_rows(), 3);
        // Measured DM must equal the paper's analytic numbers exactly.
        for row in 0..3 {
            let paper: f64 = t.cell(row, 1).unwrap().parse().unwrap();
            let measured: f64 = t.cell(row, 2).unwrap().parse().unwrap();
            assert!(
                (paper - measured).abs() < 0.51,
                "row {row}: {paper} vs {measured}"
            );
            let paper_opt: f64 = t.cell(row, 3).unwrap().parse().unwrap();
            let measured_opt: f64 = t.cell(row, 4).unwrap().parse().unwrap();
            assert!((paper_opt - measured_opt).abs() < 0.51, "row {row} opt");
        }
    }

    #[test]
    fn de_close_to_optimal_on_patterns() {
        let t = patterns();
        for row in 0..3 {
            let opt: f64 = t.cell(row, 4).unwrap().parse().unwrap();
            let de: f64 = t.cell(row, 5).unwrap().parse().unwrap();
            // Within 2 misses of optimal; the longest pattern has 200 refs,
            // so 2 misses <= 10 percentage points at 20 refs.
            assert!(de - opt <= 10.0 + 1e-9, "row {row}: de {de} opt {opt}");
        }
    }

    #[test]
    fn fig2_lists_all_profiles() {
        let w = Workloads::generate(1_000);
        let t = fig2(&w);
        assert_eq!(t.n_rows(), 10);
        assert!(t.row_by_key("doduc").is_some());
    }
}
