//! The unified request API: one typed [`SimulationRequest`] /
//! [`SimulationResponse`] pair that every entry point — the `experiments`
//! driver, `simcache`, the examples, and the `dynex-serve` service —
//! constructs instead of threading a dozen loose flags through separate
//! code paths.
//!
//! The module owns four concerns that used to be duplicated per binary:
//!
//! * **Construction + validation** — [`RequestBuilder`] accepts the raw CLI
//!   strings (`"32K"`, `"de-lastline"`, `"batch"`) and validates everything
//!   in one place, including the cache geometry itself. Environment
//!   overrides (`DYNEX_JOBS`, `DYNEX_REFS`) are resolved here — once,
//!   loudly: a malformed variable fails the build even when a flag
//!   overrides it.
//! * **Wire format** — [`SimulationRequest::to_json`] /
//!   [`SimulationRequest::from_json`] round-trip the request through the
//!   workspace's hand-rolled JSON layer (hermetic builds cannot reach
//!   serde). Unknown fields are rejected, so a typo'd request fails loudly
//!   instead of silently simulating the defaults.
//! * **Content keys** — [`SimulationRequest::content_key`] derives the
//!   journal/cache key for a request, byte-compatible with the PR 3
//!   `simcache --resume` keys. A versioned key-schema guard
//!   ([`verify_key_schema`]) classifies *every* request field as
//!   key-covered, covered-via-trace-digest, or intentionally excluded, and
//!   fails loudly when a field is not classified — so a field added later
//!   can never silently collide two distinct configurations under one key.
//! * **Execution** — [`load`] / [`execute`] / [`run`] turn a request into a
//!   [`SimulationResponse`] (journal-aware through the engine's global
//!   journal), and [`install_session`] applies the session-wide knobs
//!   (worker count, kernel, resume journal) exactly once.
//!
//! The sweep entry points [`sweep_triples`] / [`sweep_triples_lastline`] /
//! [`run_triple`] are the non-deprecated homes of the old
//! `runner::{triples, triples_lastline, triple_kernel}` free functions.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use dynex::DeStats;
use dynex::{DeCache, LastLineDeCache, OptimalDirectMapped};
use dynex_cache::{
    batch_de, batch_dm, batch_opt, batch_sweep, batch_triple, decode_addrs, run as sim_run,
    CacheConfig, CacheSim, CacheStats, DirectMapped, Kernel, KindFilter, Replacement,
    SetAssociative, StreamBuffer, SweepPoint, SweepPolicy, VictimCache,
};
use dynex_engine::{
    default_jobs, default_kernel, execute as pool_execute, job_key, trace_digest,
    with_global_journal, Journal, PolicyError, PolicyKind,
};
use dynex_obs::json::{self, Json};
use dynex_obs::NoopProbe;
use dynex_trace::{io as trace_io, Access, ReadPolicy, Trace};

use crate::runner::{triple_lastline, Triple};

pub mod mix;

/// Version of the content-key schema. Bump this (and re-classify the
/// fields) whenever a field moves between the covered and excluded sets —
/// the old journal records then simply miss instead of colliding.
///
/// v2 (PR 10): the wire field `org` became `policy` when the closed
/// organization enum grew into the policy zoo. The *hash inputs* are
/// unchanged — the policy name occupies the same key slot the organization
/// name did — so every v1 journal record still replays under its original
/// key; only the schema's field classification was renamed.
pub const KEY_SCHEMA_VERSION: u32 = 2;

/// Fields hashed directly into the content key.
const KEY_COVERED: &[&str] = &["policy", "kinds", "size_bytes", "line_bytes"];

/// Fields covered *indirectly*: they determine which references are
/// simulated, so they are captured by the trace digest inside the key.
const KEY_VIA_DIGEST: &[&str] = &["trace", "refs", "max_skipped"];

/// Fields intentionally excluded from the key because they cannot change
/// the result: both kernels are bit-identical, the engine is deterministic
/// for every worker count, and deadlines/resume only decide whether a
/// result is produced, never its value.
const KEY_EXCLUDED: &[&str] = &["kernel", "jobs", "deadline_ms", "resume"];

/// A request-API failure: invalid field, bad environment, trace I/O, or a
/// key-schema violation.
#[derive(Debug)]
pub enum ApiError {
    /// A request field failed validation.
    Invalid {
        /// The offending field (CLI flag or JSON key).
        field: &'static str,
        /// Why it was rejected.
        message: String,
    },
    /// A `DYNEX_*` environment override is malformed.
    Env(String),
    /// The trace could not be loaded.
    Trace(String),
    /// The resume journal could not be opened.
    Journal(String),
    /// A request field is not covered by the key-derivation schema (see
    /// [`verify_key_schema`]).
    KeySchema(String),
    /// A policy-surface failure from the engine: an unknown policy name or
    /// a (policy, kernel) combination without declared kernel support.
    Policy(PolicyError),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Invalid { field, message } => write!(f, "bad {field} value: {message}"),
            ApiError::Env(message) => write!(f, "{message}"),
            ApiError::Trace(message) => write!(f, "{message}"),
            ApiError::Journal(message) => write!(f, "{message}"),
            ApiError::KeySchema(message) => write!(f, "key schema violation: {message}"),
            ApiError::Policy(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<PolicyError> for ApiError {
    fn from(error: PolicyError) -> ApiError {
        ApiError::Policy(error)
    }
}

/// The cache policy/organization a request simulates — the `--policy`
/// vocabulary (`--org` is the legacy alias).
///
/// Direct-mapped members delegate to the engine's [`PolicyKind`] zoo (see
/// [`Org::policy_kind`]); the set-associative and buffered organizations
/// (`2way`, `4way`, `victim`, `stream`) are request-API comparisons that
/// run their reference simulators directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Org {
    /// Conventional direct-mapped (the paper's baseline).
    #[default]
    Dm,
    /// Dynamic exclusion with the perfect hit-last store.
    De,
    /// Dynamic exclusion with the Section 6 last-line buffer.
    DeLastLine,
    /// Optimal direct-mapped with bypass (the oracle bound).
    Opt,
    /// Expected-Hit-Count replacement (arXiv 1808.05024).
    Ehc,
    /// Bandwidth-aware selective fill (arXiv 1907.02167).
    BwCost,
    /// Two-way set-associative, LRU.
    TwoWay,
    /// Four-way set-associative, LRU.
    FourWay,
    /// Direct-mapped + 4-entry victim cache.
    Victim,
    /// Direct-mapped + 4-entry stream buffer.
    Stream,
}

/// The supported `--policy` values, for error messages and usage text.
pub const POLICY_CHOICES: &str = "dm|de|de-lastline|opt|ehc|bwcost|2way|4way|victim|stream";

impl Org {
    /// The engine [`PolicyKind`] this request policy delegates to, or
    /// `None` for the set-associative/buffered organizations that live
    /// only in the request API's reference arms.
    pub fn policy_kind(self) -> Option<PolicyKind> {
        match self {
            Org::Dm => Some(PolicyKind::DirectMapped),
            Org::De => Some(PolicyKind::DynamicExclusion),
            Org::DeLastLine => Some(PolicyKind::DeLastLine),
            Org::Opt => Some(PolicyKind::OptimalDm),
            Org::Ehc => Some(PolicyKind::ExpectedHitCount),
            Org::BwCost => Some(PolicyKind::BandwidthCost),
            Org::TwoWay | Org::FourWay | Org::Victim | Org::Stream => None,
        }
    }

    /// The sweep-kernel policy this organization maps to, if the one-pass
    /// multi-configuration kernel specializes it ([`execute_many`] coalesces
    /// only these).
    pub fn sweep_policy(self) -> Option<SweepPolicy> {
        self.policy_kind().and_then(PolicyKind::sweep_policy)
    }

    /// Stable lowercase name, exactly the `--policy` argument value.
    pub fn name(self) -> &'static str {
        match self {
            Org::Dm => "dm",
            Org::De => "de",
            Org::DeLastLine => "de-lastline",
            Org::Opt => "opt",
            Org::Ehc => "ehc",
            Org::BwCost => "bwcost",
            Org::TwoWay => "2way",
            Org::FourWay => "4way",
            Org::Victim => "victim",
            Org::Stream => "stream",
        }
    }

    /// Parses a `--policy` (or legacy `--org`) argument.
    pub fn parse(s: &str) -> Option<Org> {
        Some(match s {
            "dm" => Org::Dm,
            "de" => Org::De,
            "de-lastline" => Org::DeLastLine,
            "opt" => Org::Opt,
            "ehc" => Org::Ehc,
            "bwcost" => Org::BwCost,
            "2way" => Org::TwoWay,
            "4way" => Org::FourWay,
            "victim" => Org::Victim,
            "stream" => Org::Stream,
            _ => return None,
        })
    }
}

/// Where a request's reference stream comes from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceSource {
    /// The full ten-benchmark workload bundle (the `experiments` driver's
    /// figure sweeps). Not loadable as a single stream — [`load`] rejects
    /// it — but valid for session-only requests.
    #[default]
    Workloads,
    /// A `dynex-trace` file on disk (binary `.dxt` or text, by magic).
    Path(PathBuf),
    /// A synthetic SPEC'89 profile by name, generated at the request's
    /// `refs` budget.
    Profile(String),
}

/// Parses a `--kinds` argument.
pub fn parse_kinds(s: &str) -> Option<KindFilter> {
    Some(match s {
        "all" => KindFilter::All,
        "instr" => KindFilter::Instructions,
        "data" => KindFilter::Data,
        _ => return None,
    })
}

/// Stable name of a [`KindFilter`], exactly the `--kinds` argument value.
pub fn kinds_name(kinds: KindFilter) -> &'static str {
    match kinds {
        KindFilter::All => "all",
        KindFilter::Instructions => "instr",
        KindFilter::Data => "data",
    }
}

/// Parses a byte size with optional `K`/`M` suffix (`"32K"` → 32768).
pub fn parse_size(text: &str) -> Option<u32> {
    let text = text.trim();
    let value = if let Some(kb) = text.strip_suffix(['K', 'k']) {
        kb.parse::<u32>().ok().and_then(|v| v.checked_mul(1024))
    } else if let Some(mb) = text.strip_suffix(['M', 'm']) {
        mb.parse::<u32>()
            .ok()
            .and_then(|v| v.checked_mul(1024 * 1024))
    } else {
        text.parse().ok()
    };
    value.filter(|&v| v > 0)
}

/// One fully validated simulation request.
///
/// Construct through [`SimulationRequest::builder`] (CLI strings, loud env
/// overrides) or [`SimulationRequest::from_json`] (the wire format); both
/// run the same validation. Field additions must be classified in the
/// key schema (see [`verify_key_schema`]) — the exhaustive destructuring in
/// [`SimulationRequest::to_json`] makes forgetting a compile error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationRequest {
    /// The cache organization to simulate.
    pub org: Org,
    /// Cache capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Which reference kinds to simulate.
    pub kinds: KindFilter,
    /// Simulation kernel (bit-identical either way; a performance choice).
    pub kernel: Kernel,
    /// Resolved engine worker count (≥ 1; results are worker-count
    /// invariant).
    pub jobs: usize,
    /// Reference budget for generated workloads ([`TraceSource::Profile`] /
    /// [`TraceSource::Workloads`]); ignored for file traces.
    pub refs: usize,
    /// The reference stream.
    pub trace: TraceSource,
    /// Lenient-read budget: tolerate up to this many corrupt trace records
    /// (`None` = strict).
    pub max_skipped: Option<u64>,
    /// Soft per-request deadline in milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Checkpoint journal path for resumable runs (`None` = no journal).
    pub resume: Option<PathBuf>,
}

impl Default for SimulationRequest {
    fn default() -> SimulationRequest {
        SimulationRequest {
            org: Org::Dm,
            size_bytes: crate::HEADLINE_SIZE,
            line_bytes: 4,
            kinds: KindFilter::All,
            kernel: Kernel::default(),
            jobs: 1,
            refs: 4_000_000,
            trace: TraceSource::Workloads,
            max_skipped: None,
            deadline_ms: None,
            resume: None,
        }
    }
}

impl SimulationRequest {
    /// Starts a builder with every field at its default.
    pub fn builder() -> RequestBuilder {
        RequestBuilder::default()
    }

    /// The validated cache configuration this request simulates
    /// (associativity follows the organization).
    pub fn cache_config(&self) -> Result<CacheConfig, ApiError> {
        let ways = match self.org {
            Org::TwoWay => 2,
            Org::FourWay => 4,
            _ => 1,
        };
        CacheConfig::new(self.size_bytes, self.line_bytes, ways).map_err(|e| ApiError::Invalid {
            field: "size/line",
            message: e.to_string(),
        })
    }

    /// The content key for this request over the decoded reference stream,
    /// byte-compatible with the PR 3 `simcache --resume` journal keys.
    ///
    /// Fails loudly ([`ApiError::KeySchema`]) if any request field is not
    /// classified by the key schema — see [`verify_key_schema`].
    pub fn content_key(&self, addrs: &[u32]) -> Result<String, ApiError> {
        verify_key_schema(self)?;
        Ok(job_key(&[
            "simcache/v1",
            self.org.name(),
            kinds_name(self.kinds),
            &format!("size={} line={}", self.size_bytes, self.line_bytes),
            &format!("{:016x}", trace_digest(addrs)),
        ]))
    }

    /// A cheap shard-routing key over the request *description*, for
    /// placing requests onto serve shards without decoding the trace.
    ///
    /// [`SimulationRequest::content_key`] is exact but needs the decoded
    /// reference stream (the expensive part of a request); a router that
    /// computed it would have to load every trace itself. The routing key
    /// instead hashes the request fields that *determine* the content key —
    /// the KEY_COVERED fields plus the inputs to the trace digest (trace
    /// source, and refs / max_skipped where they can change the decoded
    /// stream) — so two requests that are field-identical always share a
    /// routing key and land on the same shard's result cache. Two requests
    /// that *describe* the same content differently (say, a profile trace
    /// and a file containing the identical stream) may route to different
    /// shards; that costs one duplicate cache entry, never correctness.
    ///
    /// Fails loudly ([`ApiError::KeySchema`]) on an unclassified field,
    /// exactly like [`SimulationRequest::content_key`], so a field added to
    /// the request can never silently split or collide routing.
    pub fn routing_key(&self) -> Result<String, ApiError> {
        verify_key_schema(self)?;
        // Normalize the digest-determining fields per trace source: refs is
        // ignored when the stream comes from a file, and a lenient-read
        // budget can only change the decoded stream of a file trace.
        let (trace_part, refs_part, skipped_part) = match &self.trace {
            TraceSource::Workloads => (
                "trace=workloads".to_owned(),
                format!("refs={}", self.refs),
                "max_skipped=-".to_owned(),
            ),
            TraceSource::Profile(name) => (
                format!("trace=profile:{name}"),
                format!("refs={}", self.refs),
                "max_skipped=-".to_owned(),
            ),
            TraceSource::Path(path) => (
                format!("trace=path:{}", path.display()),
                "refs=file".to_owned(),
                match self.max_skipped {
                    Some(n) => format!("max_skipped={n}"),
                    None => "max_skipped=-".to_owned(),
                },
            ),
        };
        Ok(job_key(&[
            "route/v1",
            self.org.name(),
            kinds_name(self.kinds),
            &format!("size={} line={}", self.size_bytes, self.line_bytes),
            &trace_part,
            &refs_part,
            &skipped_part,
        ]))
    }

    /// Serializes the request as one canonical JSON object. Every field is
    /// always present (absent options serialize as `null`), so the key
    /// order and field set are stable — [`verify_key_schema`] relies on
    /// this to enumerate the fields at runtime.
    pub fn to_json(&self) -> String {
        // Exhaustive destructuring, deliberately without `..`: adding a
        // field to SimulationRequest fails to compile here until the field
        // is serialized below AND classified in the key schema.
        let SimulationRequest {
            org,
            size_bytes,
            line_bytes,
            kinds,
            kernel,
            jobs,
            refs,
            trace,
            max_skipped,
            deadline_ms,
            resume,
        } = self;
        let trace_json = match trace {
            TraceSource::Workloads => r#"{"source":"workloads"}"#.to_owned(),
            TraceSource::Path(p) => format!(
                r#"{{"source":"path","path":"{}"}}"#,
                json::escape(&p.display().to_string())
            ),
            TraceSource::Profile(name) => {
                format!(
                    r#"{{"source":"profile","profile":"{}"}}"#,
                    json::escape(name)
                )
            }
        };
        let opt_u64 = |v: &Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "null".to_owned(),
        };
        let resume_json = match resume {
            Some(p) => format!(r#""{}""#, json::escape(&p.display().to_string())),
            None => "null".to_owned(),
        };
        format!(
            concat!(
                r#"{{"policy":"{}","size_bytes":{},"line_bytes":{},"kinds":"{}","#,
                r#""kernel":"{}","jobs":{},"refs":{},"trace":{},"#,
                r#""max_skipped":{},"deadline_ms":{},"resume":{}}}"#
            ),
            org.name(),
            size_bytes,
            line_bytes,
            kinds_name(*kinds),
            kernel.name(),
            jobs,
            refs,
            trace_json,
            opt_u64(max_skipped),
            opt_u64(deadline_ms),
            resume_json,
        )
    }

    /// Parses a request from its JSON wire format, running the full builder
    /// validation. Unknown fields are rejected loudly.
    pub fn from_json(text: &str) -> Result<SimulationRequest, ApiError> {
        let value = json::parse(text).map_err(|e| ApiError::Invalid {
            field: "request",
            message: format!("not valid JSON: {e}"),
        })?;
        let Json::Obj(map) = &value else {
            return Err(ApiError::Invalid {
                field: "request",
                message: "the request body must be a JSON object".to_owned(),
            });
        };
        const KNOWN: &[&str] = &[
            "policy",
            "org",
            "size",
            "size_bytes",
            "line_bytes",
            "line",
            "kinds",
            "kernel",
            "jobs",
            "refs",
            "trace",
            "max_skipped",
            "deadline_ms",
            "resume",
        ];
        for key in map.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(ApiError::Invalid {
                    field: "request",
                    message: format!("unknown field {key:?} (known: {KNOWN:?})"),
                });
            }
        }

        let mut builder = SimulationRequest::builder();
        let str_field = |name: &'static str| -> Result<Option<String>, ApiError> {
            match value.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => {
                    v.as_str()
                        .map(|s| Some(s.to_owned()))
                        .ok_or_else(|| ApiError::Invalid {
                            field: name,
                            message: "expected a string".to_owned(),
                        })
                }
            }
        };
        let u64_field = |name: &'static str| -> Result<Option<u64>, ApiError> {
            match value.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v.as_u64().map(Some).ok_or_else(|| ApiError::Invalid {
                    field: name,
                    message: "expected a non-negative integer".to_owned(),
                }),
            }
        };

        // `policy` is the canonical field to_json emits; `org` is the
        // pre-PR-10 wire name, still accepted so recorded requests replay.
        if let Some(policy) = str_field("policy")?.or(str_field("org")?) {
            builder.policy(&policy);
        }
        // `size` accepts either a number of bytes or a "32K"-style string;
        // `size_bytes` is the canonical numeric form to_json emits.
        match value.get("size").or_else(|| value.get("size_bytes")) {
            None | Some(Json::Null) => {}
            Some(Json::Str(s)) => {
                builder.size(s);
            }
            Some(v) => {
                let bytes = v.as_u64().ok_or_else(|| ApiError::Invalid {
                    field: "size",
                    message: "expected bytes or a \"32K\"-style string".to_owned(),
                })?;
                builder.size(&bytes.to_string());
            }
        }
        if let Some(line) = u64_field("line")?.or(u64_field("line_bytes")?) {
            let line = u32::try_from(line).map_err(|_| ApiError::Invalid {
                field: "line",
                message: format!("{line} does not fit in 32 bits"),
            })?;
            builder.line(line);
        }
        if let Some(kinds) = str_field("kinds")? {
            builder.kinds(&kinds);
        }
        if let Some(kernel) = str_field("kernel")? {
            builder.kernel(&kernel);
        }
        if let Some(jobs) = u64_field("jobs")? {
            let jobs = usize::try_from(jobs).map_err(|_| ApiError::Invalid {
                field: "jobs",
                message: format!("{jobs} does not fit in usize"),
            })?;
            builder.jobs(jobs);
        }
        if let Some(refs) = u64_field("refs")? {
            let refs = usize::try_from(refs).map_err(|_| ApiError::Invalid {
                field: "refs",
                message: format!("{refs} does not fit in usize"),
            })?;
            builder.refs(refs);
        }
        match value.get("trace") {
            None | Some(Json::Null) => {}
            Some(t) => {
                let source = t.get("source").and_then(Json::as_str).unwrap_or("");
                match source {
                    "workloads" => {
                        builder.workloads();
                    }
                    "path" => {
                        let path = t.get("path").and_then(Json::as_str).ok_or_else(|| {
                            ApiError::Invalid {
                                field: "trace",
                                message: "\"path\" source needs a \"path\" field".to_owned(),
                            }
                        })?;
                        builder.trace_path(path);
                    }
                    "profile" => {
                        let name = t.get("profile").and_then(Json::as_str).ok_or_else(|| {
                            ApiError::Invalid {
                                field: "trace",
                                message: "\"profile\" source needs a \"profile\" field".to_owned(),
                            }
                        })?;
                        builder.profile(name);
                    }
                    other => {
                        return Err(ApiError::Invalid {
                            field: "trace",
                            message: format!("unknown source {other:?} (workloads|path|profile)"),
                        })
                    }
                }
            }
        }
        if let Some(max_skipped) = u64_field("max_skipped")? {
            builder.lenient(max_skipped);
        }
        if let Some(deadline) = u64_field("deadline_ms")? {
            builder.deadline_ms(deadline);
        }
        if let Some(resume) = str_field("resume")? {
            builder.resume(resume);
        }
        builder.build()
    }
}

/// Verifies that every [`SimulationRequest`] field is classified by the
/// key-derivation schema (version [`KEY_SCHEMA_VERSION`]): hashed directly,
/// covered via the trace digest, or intentionally excluded.
///
/// The field set is enumerated at runtime from the request's own canonical
/// JSON serialization, so a field that reaches the wire format without a
/// classification fails loudly here — the guard against silent key
/// collisions from fields added after the schema was defined.
pub fn verify_key_schema(request: &SimulationRequest) -> Result<(), ApiError> {
    let mut classified: BTreeSet<&str> = BTreeSet::new();
    for &field in KEY_COVERED.iter().chain(KEY_VIA_DIGEST).chain(KEY_EXCLUDED) {
        if !classified.insert(field) {
            return Err(ApiError::KeySchema(format!(
                "field {field:?} is classified twice (schema v{KEY_SCHEMA_VERSION})"
            )));
        }
    }
    let serialized = json::parse(&request.to_json()).map_err(|e| {
        ApiError::KeySchema(format!("request serialization is not valid JSON: {e}"))
    })?;
    let Json::Obj(map) = serialized else {
        return Err(ApiError::KeySchema(
            "request serialization is not a JSON object".to_owned(),
        ));
    };
    for field in map.keys() {
        if !classified.remove(field.as_str()) {
            return Err(ApiError::KeySchema(format!(
                "request field {field:?} is not covered by key schema v{KEY_SCHEMA_VERSION}: \
                 classify it in KEY_COVERED, KEY_VIA_DIGEST, or KEY_EXCLUDED \
                 (and bump KEY_SCHEMA_VERSION if it affects results)"
            )));
        }
    }
    if let Some(stale) = classified.iter().next() {
        return Err(ApiError::KeySchema(format!(
            "key schema v{KEY_SCHEMA_VERSION} classifies {stale:?}, which is not a request field"
        )));
    }
    Ok(())
}

/// Builder for [`SimulationRequest`]: accepts raw CLI strings, validates
/// everything at [`RequestBuilder::build`], and resolves the `DYNEX_JOBS` /
/// `DYNEX_REFS` environment overrides exactly once — loudly.
#[derive(Debug, Default, Clone)]
pub struct RequestBuilder {
    org: Option<String>,
    size: Option<String>,
    line: Option<u32>,
    kinds: Option<String>,
    kernel: Option<String>,
    jobs: Option<usize>,
    refs: Option<usize>,
    trace: Option<TraceSource>,
    max_skipped: Option<u64>,
    deadline_ms: Option<u64>,
    resume: Option<PathBuf>,
}

impl RequestBuilder {
    /// Sets the policy from its `--policy` string.
    pub fn policy(&mut self, policy: &str) -> &mut Self {
        self.org = Some(policy.to_owned());
        self
    }

    /// Sets the organization from its `--org` string (the pre-PR-10 name
    /// of [`RequestBuilder::policy`], kept for CLI and wire compatibility).
    pub fn org(&mut self, org: &str) -> &mut Self {
        self.policy(org)
    }

    /// Sets the cache size from a `--size` string (`"32K"`, `"1M"`, bytes).
    pub fn size(&mut self, size: &str) -> &mut Self {
        self.size = Some(size.to_owned());
        self
    }

    /// Sets the line size in bytes.
    pub fn line(&mut self, line: u32) -> &mut Self {
        self.line = Some(line);
        self
    }

    /// Sets the reference-kind filter from its `--kinds` string.
    pub fn kinds(&mut self, kinds: &str) -> &mut Self {
        self.kinds = Some(kinds.to_owned());
        self
    }

    /// Sets the kernel from its `--kernel` string.
    pub fn kernel(&mut self, kernel: &str) -> &mut Self {
        self.kernel = Some(kernel.to_owned());
        self
    }

    /// Sets an explicit worker count (overrides `DYNEX_JOBS`).
    pub fn jobs(&mut self, jobs: usize) -> &mut Self {
        self.jobs = Some(jobs);
        self
    }

    /// Sets an explicit reference budget (overrides `DYNEX_REFS`).
    pub fn refs(&mut self, refs: usize) -> &mut Self {
        self.refs = Some(refs);
        self
    }

    /// Sources references from a trace file.
    pub fn trace_path(&mut self, path: impl AsRef<Path>) -> &mut Self {
        self.trace = Some(TraceSource::Path(path.as_ref().to_path_buf()));
        self
    }

    /// Sources references from a named synthetic SPEC'89 profile.
    pub fn profile(&mut self, name: &str) -> &mut Self {
        self.trace = Some(TraceSource::Profile(name.to_owned()));
        self
    }

    /// Sources references from the full workload bundle (figure sweeps).
    pub fn workloads(&mut self) -> &mut Self {
        self.trace = Some(TraceSource::Workloads);
        self
    }

    /// Tolerates up to `max_skipped` corrupt trace records.
    pub fn lenient(&mut self, max_skipped: u64) -> &mut Self {
        self.max_skipped = Some(max_skipped);
        self
    }

    /// Sets a soft per-request deadline in milliseconds.
    pub fn deadline_ms(&mut self, deadline_ms: u64) -> &mut Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Checkpoints results into (and replays them from) a journal file.
    pub fn resume(&mut self, path: impl AsRef<Path>) -> &mut Self {
        self.resume = Some(path.as_ref().to_path_buf());
        self
    }

    /// Validates every field and resolves the environment overrides.
    ///
    /// This is the workspace's **single** env-override path: `DYNEX_JOBS`
    /// and `DYNEX_REFS` are validated here even when an explicit flag
    /// overrides them, so a typo'd variable always fails loudly instead of
    /// silently running a default.
    pub fn build(&self) -> Result<SimulationRequest, ApiError> {
        // Environment overrides: validated unconditionally, used only when
        // no explicit value was set.
        let env_jobs = dynex_engine::env_jobs().map_err(ApiError::Env)?;
        let env_refs = env_refs().map_err(ApiError::Env)?;

        let org = match &self.org {
            None => Org::default(),
            Some(raw) => Org::parse(raw).ok_or_else(|| ApiError::Invalid {
                field: "--policy",
                message: format!("unknown policy {raw:?} ({POLICY_CHOICES})"),
            })?,
        };
        let size_bytes = match &self.size {
            None => crate::HEADLINE_SIZE,
            Some(raw) => parse_size(raw).ok_or_else(|| ApiError::Invalid {
                field: "--size",
                message: format!("{raw:?} (positive bytes, NK, or NM)"),
            })?,
        };
        let line_bytes = match self.line {
            None => 4,
            Some(0) => {
                return Err(ApiError::Invalid {
                    field: "--line",
                    message: "line size must be positive".to_owned(),
                })
            }
            Some(line) => line,
        };
        let kinds = match &self.kinds {
            None => KindFilter::All,
            Some(raw) => parse_kinds(raw).ok_or_else(|| ApiError::Invalid {
                field: "--kinds",
                message: format!("{raw:?} (all|instr|data)"),
            })?,
        };
        let kernel = match &self.kernel {
            None => Kernel::default(),
            Some(raw) => Kernel::parse(raw).ok_or_else(|| ApiError::Invalid {
                field: "--kernel",
                message: format!("{raw:?} (reference|batch|sweep)"),
            })?,
        };
        let jobs = match self.jobs {
            Some(0) => {
                return Err(ApiError::Invalid {
                    field: "--jobs",
                    message: "worker count must be positive".to_owned(),
                })
            }
            Some(jobs) => jobs,
            None => env_jobs.unwrap_or_else(dynex_engine::available_jobs),
        };
        let refs = match self.refs {
            Some(0) => {
                return Err(ApiError::Invalid {
                    field: "--refs",
                    message: "reference budget must be positive".to_owned(),
                })
            }
            Some(refs) => refs,
            None => env_refs.unwrap_or(4_000_000),
        };
        let trace = self.trace.clone().unwrap_or_default();
        if let TraceSource::Profile(name) = &trace {
            if dynex_workload::spec::profile(name).is_none() {
                return Err(ApiError::Invalid {
                    field: "trace",
                    message: format!(
                        "unknown workload profile {name:?} (see dynex_workload::spec::all)"
                    ),
                });
            }
        }

        let request = SimulationRequest {
            org,
            size_bytes,
            line_bytes,
            kinds,
            kernel,
            jobs,
            refs,
            trace,
            max_skipped: self.max_skipped,
            deadline_ms: self.deadline_ms,
            resume: self.resume.clone(),
        };
        // Geometry validation (power-of-two sizes, line|size divisibility).
        request.cache_config()?;
        // Fail at construction, not first use, if the key schema is stale.
        verify_key_schema(&request)?;
        Ok(request)
    }
}

/// Parses `DYNEX_REFS`: `Ok(None)` when unset, `Err` on anything that is
/// not a positive integer — a typo'd budget must fail loudly, not silently
/// run the default.
fn env_refs() -> Result<Option<usize>, String> {
    match std::env::var("DYNEX_REFS") {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err("DYNEX_REFS is not valid unicode".to_owned()),
        Ok(raw) => match raw.parse::<usize>() {
            Ok(0) => Err("DYNEX_REFS must be a positive integer, got 0".to_owned()),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(format!(
                "DYNEX_REFS must be a positive integer, got {raw:?}"
            )),
        },
    }
}

/// The result of one simulation request.
///
/// `render_text` reproduces the `simcache` CLI's output for the same
/// request byte-for-byte; `to_json` is the `dynex-serve` wire format. Both
/// are pure functions of the fields, so a served response and an offline
/// run are byte-identical whenever the statistics are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationResponse {
    /// Human-readable organization label (e.g. `"direct-mapped 32KB ..."`).
    pub label: String,
    /// Hit/miss statistics.
    pub stats: CacheStats,
    /// Exclusion counters, for dynamic-exclusion runs only.
    pub de: Option<DeStats>,
    /// The request's content key (journal/cache key).
    pub key: String,
    /// `true` when the result was served from a journal or result cache
    /// without re-simulation.
    pub cached: bool,
}

impl SimulationResponse {
    /// Renders the response exactly as the `simcache` CLI prints it.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}: {} accesses, {} misses, miss rate {:.4}%\n",
            self.label,
            self.stats.accesses(),
            self.stats.misses(),
            self.stats.miss_rate_percent()
        );
        if let Some(de) = self.de {
            out.push_str(&format!("  loads {} bypasses {}\n", de.loads, de.bypasses));
        }
        if self.stats.probes() != 0 {
            out.push_str(&format!(
                "  fills {} writebacks {} bandwidth {:.1} transfers/kiloref\n",
                self.stats.fills(),
                self.stats.writebacks(),
                self.stats.bandwidth_per_kiloref()
            ));
        }
        out
    }

    /// Serializes the response as one JSON object (the service wire
    /// format). Deterministic: the bytes are a pure function of the fields.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            r#"{{"label":"{}","accesses":{},"misses":{},"miss_rate":{}"#,
            json::escape(&self.label),
            self.stats.accesses(),
            self.stats.misses(),
            self.stats.miss_rate_percent()
        );
        if let Some(de) = self.de {
            out.push_str(&format!(
                r#","loads":{},"bypasses":{}"#,
                de.loads, de.bypasses
            ));
        }
        // Traffic counters appear only for traffic-accounting policies, so
        // legacy responses stay byte-identical to the pre-PR-10 format.
        if self.stats.probes() != 0 {
            out.push_str(&format!(
                r#","fills":{},"writebacks":{},"probes":{}"#,
                self.stats.fills(),
                self.stats.writebacks(),
                self.stats.probes()
            ));
        }
        out.push_str(&format!(
            r#","key":"{}","cached":{}}}"#,
            json::escape(&self.key),
            self.cached
        ));
        out
    }

    /// Parses [`SimulationResponse::to_json`] back; `None` on any shape
    /// mismatch.
    pub fn from_json(text: &str) -> Option<SimulationResponse> {
        let v = json::parse(text).ok()?;
        let accesses = v.get("accesses")?.as_u64()?;
        let misses = v.get("misses")?.as_u64()?;
        if misses > accesses {
            return None;
        }
        let de = match (v.get("loads"), v.get("bypasses")) {
            (Some(l), Some(b)) => Some(DeStats {
                loads: l.as_u64()?,
                bypasses: b.as_u64()?,
            }),
            _ => None,
        };
        Some(SimulationResponse {
            label: v.get("label")?.as_str()?.to_owned(),
            stats: stats_from_json(&v, accesses, misses)?,
            de,
            key: v.get("key")?.as_str()?.to_owned(),
            cached: v.get("cached")?.as_bool()?,
        })
    }
}

/// Rebuilds [`CacheStats`] from a JSON object holding the mandatory hit/miss
/// counters plus the optional traffic counters (absent on legacy records,
/// which is exactly the all-zero traffic state they were produced with).
fn stats_from_json(v: &Json, accesses: u64, misses: u64) -> Option<CacheStats> {
    match (v.get("fills"), v.get("writebacks"), v.get("probes")) {
        (None, None, None) => Some(CacheStats::from_counts(accesses, misses)),
        (Some(f), Some(w), Some(p)) => Some(CacheStats::from_traffic_counts(
            accesses,
            misses,
            f.as_u64()?,
            w.as_u64()?,
            p.as_u64()?,
        )),
        _ => None,
    }
}

/// Journal value for one simulation result (label + raw counters; every
/// derived number is a pure function of these). Byte-compatible with the
/// PR 3 `simcache --resume` journal records, so existing journals replay
/// and warm-start the service.
pub fn result_to_journal(label: &str, stats: CacheStats, de: Option<DeStats>) -> String {
    let mut out = format!(
        r#"{{"label":"{}","accesses":{},"misses":{}"#,
        json::escape(label),
        stats.accesses(),
        stats.misses(),
    );
    if let Some(de) = de {
        out.push_str(&format!(
            r#","loads":{},"bypasses":{}"#,
            de.loads, de.bypasses
        ));
    }
    if stats.probes() != 0 {
        out.push_str(&format!(
            r#","fills":{},"writebacks":{},"probes":{}"#,
            stats.fills(),
            stats.writebacks(),
            stats.probes()
        ));
    }
    out.push('}');
    out
}

/// Decodes [`result_to_journal`]; `None` on any shape mismatch (the caller
/// then re-simulates, so a stale or foreign record is harmless).
pub fn result_from_journal(v: &Json) -> Option<(String, CacheStats, Option<DeStats>)> {
    let label = v.get("label")?.as_str()?.to_owned();
    let accesses = v.get("accesses")?.as_u64()?;
    let misses = v.get("misses")?.as_u64()?;
    if misses > accesses {
        return None;
    }
    let de = match (v.get("loads"), v.get("bypasses")) {
        (Some(l), Some(b)) => Some(DeStats {
            loads: l.as_u64()?,
            bypasses: b.as_u64()?,
        }),
        _ => None,
    };
    Some((label, stats_from_json(v, accesses, misses)?, de))
}

/// A loaded, filtered, decoded reference stream.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// The filtered accesses (reference simulators replay these).
    pub accesses: Vec<Access>,
    /// The decoded byte-address stream (batch kernels and digests use it).
    pub addrs: Vec<u32>,
    /// Corrupt records skipped during a lenient read (0 under strict).
    pub skipped: u64,
}

/// Loads, filters, and decodes the request's reference stream.
///
/// [`TraceSource::Workloads`] is rejected — it describes the full figure
/// bundle, not a single loadable stream.
pub fn load(request: &SimulationRequest) -> Result<LoadedTrace, ApiError> {
    let policy = match request.max_skipped {
        Some(max_skipped) => ReadPolicy::Lenient { max_skipped },
        None => ReadPolicy::Strict,
    };
    let (trace, skipped) = match &request.trace {
        TraceSource::Workloads => {
            return Err(ApiError::Trace(
                "the workloads source is the figure bundle; single-stream \
                 execution needs a path or profile trace source"
                    .to_owned(),
            ))
        }
        TraceSource::Path(path) => {
            let bytes = std::fs::read(path)
                .map_err(|e| ApiError::Trace(format!("cannot read {}: {e}", path.display())))?;
            let result = if bytes.starts_with(&trace_io::BINARY_MAGIC) {
                trace_io::read_binary_with(&bytes[..], policy, NoopProbe)
            } else {
                trace_io::read_text_with(&bytes[..], policy, NoopProbe)
            };
            let (trace, report) =
                result.map_err(|e| ApiError::Trace(format!("{}: {e}", path.display())))?;
            (trace, report.skipped)
        }
        TraceSource::Profile(name) => {
            let profile = dynex_workload::spec::profile(name)
                .ok_or_else(|| ApiError::Trace(format!("unknown workload profile {name:?}")))?;
            (profile.trace(request.refs), 0)
        }
    };
    Ok(filter_trace(&trace, request.kinds, skipped))
}

/// Applies the kind filter to a loaded trace and decodes the byte-address
/// stream (shared with callers that load traces themselves).
pub fn filter_trace(trace: &Trace, kinds: KindFilter, skipped: u64) -> LoadedTrace {
    let accesses: Vec<Access> = match kinds {
        KindFilter::All => trace.iter().collect(),
        KindFilter::Instructions => dynex_trace::filter::instructions(trace.iter()).collect(),
        KindFilter::Data => dynex_trace::filter::data(trace.iter()).collect(),
    };
    let addrs = decode_addrs(trace.as_packed(), kinds);
    debug_assert_eq!(addrs.len(), accesses.len());
    LoadedTrace {
        accesses,
        addrs,
        skipped,
    }
}

/// Simulates the request over an already-loaded trace. Pure execution: no
/// journal consultation, `cached` is always `false`.
pub fn execute(
    request: &SimulationRequest,
    trace: &LoadedTrace,
) -> Result<SimulationResponse, ApiError> {
    let key = request.content_key(&trace.addrs)?;
    execute_with_key(request, trace, key)
}

fn execute_with_key(
    request: &SimulationRequest,
    trace: &LoadedTrace,
    key: String,
) -> Result<SimulationResponse, ApiError> {
    let config = request.cache_config()?;
    let kernel = request.kernel;
    let accesses = &trace.accesses;
    let addrs = &trace.addrs;
    let (label, stats, de) = match request.org {
        Org::Dm => {
            let mut cache = DirectMapped::new(config);
            let stats = match kernel {
                Kernel::Batch => batch_dm(config, addrs),
                Kernel::Sweep => {
                    let point = SweepPoint::new(config, SweepPolicy::DirectMapped);
                    batch_sweep(&[point], addrs)[0].stats()
                }
                Kernel::Reference => sim_run(&mut cache, accesses.iter().copied()),
            };
            (cache.label(), stats, None)
        }
        Org::De => {
            let mut cache = DeCache::new(config);
            let (stats, de) = match kernel {
                Kernel::Batch | Kernel::Sweep => {
                    let result = if kernel == Kernel::Batch {
                        batch_de(config, addrs)
                    } else {
                        let point = SweepPoint::new(config, SweepPolicy::DynamicExclusion);
                        batch_sweep(&[point], addrs)[0]
                            .de()
                            .expect("a DE sweep point yields DE counters")
                    };
                    (
                        result.stats,
                        DeStats {
                            loads: result.loads,
                            bypasses: result.bypasses,
                        },
                    )
                }
                Kernel::Reference => {
                    let stats = sim_run(&mut cache, accesses.iter().copied());
                    (stats, cache.de_stats())
                }
            };
            (cache.label(), stats, Some(de))
        }
        Org::DeLastLine => {
            let mut cache = LastLineDeCache::new(config);
            let stats = sim_run(&mut cache, accesses.iter().copied());
            (cache.label(), stats, None)
        }
        Org::Opt => {
            let stats = match kernel {
                Kernel::Batch => batch_opt(config, addrs),
                Kernel::Sweep => {
                    let point = SweepPoint::new(config, SweepPolicy::Optimal);
                    batch_sweep(&[point], addrs)[0].stats()
                }
                Kernel::Reference => {
                    OptimalDirectMapped::simulate(config, accesses.iter().map(|a| a.addr()))
                }
            };
            ("optimal direct-mapped".to_owned(), stats, None)
        }
        Org::Ehc => {
            let stats = PolicyKind::ExpectedHitCount.simulate_kernel(kernel, config, addrs)?;
            ("expected-hit-count direct-mapped".to_owned(), stats, None)
        }
        Org::BwCost => {
            let stats = PolicyKind::BandwidthCost.simulate_kernel(kernel, config, addrs)?;
            ("bandwidth-aware direct-mapped".to_owned(), stats, None)
        }
        Org::TwoWay | Org::FourWay => {
            let mut cache = SetAssociative::new(config, Replacement::Lru);
            let stats = sim_run(&mut cache, accesses.iter().copied());
            (cache.label(), stats, None)
        }
        Org::Victim => {
            let mut cache = VictimCache::new(config, 4);
            let stats = sim_run(&mut cache, accesses.iter().copied());
            (cache.label(), stats, None)
        }
        Org::Stream => {
            let mut cache = StreamBuffer::new(config, 4);
            let stats = sim_run(&mut cache, accesses.iter().copied());
            (cache.label(), stats, None)
        }
    };
    Ok(SimulationResponse {
        label,
        stats,
        de,
        key,
        cached: false,
    })
}

/// Answers a coalesced batch of same-trace requests from one sweep
/// traversal: every request's point runs through a single
/// [`dynex_cache::batch_sweep`] pass over `trace`, and each response is
/// byte-identical to what [`execute`] would have produced for that request
/// alone (same label, statistics, DE counters, and content key).
///
/// The caller (the `dynex-serve` dispatcher) is responsible for grouping:
/// every request in the batch must decode to the same reference stream —
/// `trace` is simulated once for all of them. Requests whose organization
/// has no sweep specialization ([`Org::sweep_policy`] is `None`) are
/// rejected with [`ApiError::Invalid`]; the caller falls back to per-request
/// execution for those.
pub fn execute_many(
    requests: &[&SimulationRequest],
    trace: &LoadedTrace,
) -> Result<Vec<SimulationResponse>, ApiError> {
    let mut points = Vec::with_capacity(requests.len());
    let mut keys = Vec::with_capacity(requests.len());
    for request in requests {
        let config = request.cache_config()?;
        let policy = request
            .org
            .sweep_policy()
            .ok_or_else(|| ApiError::Invalid {
                field: "--policy",
                message: format!("{:?} has no sweep specialization", request.org.name()),
            })?;
        keys.push(request.content_key(&trace.addrs)?);
        points.push(SweepPoint::new(config, policy));
    }
    let results = batch_sweep(&points, &trace.addrs);
    Ok(requests
        .iter()
        .zip(points)
        .zip(results)
        .zip(keys)
        .map(|(((request, point), result), key)| {
            // Labels come from the same constructors `execute` uses, so the
            // coalesced and per-request paths stay byte-identical.
            let (label, de) = match request.org {
                Org::Dm => (DirectMapped::new(point.config).label(), None),
                Org::De => {
                    let counters = result.de().expect("a DE sweep point yields DE counters");
                    (
                        DeCache::new(point.config).label(),
                        Some(DeStats {
                            loads: counters.loads,
                            bypasses: counters.bypasses,
                        }),
                    )
                }
                _ => ("optimal direct-mapped".to_owned(), None),
            };
            SimulationResponse {
                label,
                stats: result.stats(),
                de,
                key,
                cached: false,
            }
        })
        .collect())
}

/// Runs the request over an already-loaded trace, consulting the engine's
/// global journal: a checkpointed result replays (`cached: true`) and a
/// fresh one is recorded before returning.
pub fn run_loaded(
    request: &SimulationRequest,
    trace: &LoadedTrace,
) -> Result<SimulationResponse, ApiError> {
    let key = request.content_key(&trace.addrs)?;
    let replayed = with_global_journal(|journal| journal.lookup(&key)).flatten();
    if let Some(value) = &replayed {
        if let Some((label, stats, de)) = result_from_journal(value) {
            return Ok(SimulationResponse {
                label,
                stats,
                de,
                key,
                cached: true,
            });
        }
        eprintln!("warning: journal record for this request is malformed; re-simulating");
    }
    let response = execute_with_key(request, trace, key)?;
    with_global_journal(|journal| {
        if let Err(e) = journal.record(
            &response.key,
            &result_to_journal(&response.label, response.stats, response.de),
        ) {
            eprintln!("warning: {e}");
        }
    });
    Ok(response)
}

/// Loads the trace and runs the request ([`load`] + [`run_loaded`]).
pub fn run(request: &SimulationRequest) -> Result<SimulationResponse, ApiError> {
    let trace = load(request)?;
    run_loaded(request, &trace)
}

/// What [`install_session`] applied, for driver log lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// The installed worker count.
    pub jobs: usize,
    /// The installed kernel.
    pub kernel: Kernel,
    /// Resume journal details, when one was opened.
    pub journal: Option<JournalInfo>,
}

/// Details of an opened resume journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalInfo {
    /// The journal file.
    pub path: PathBuf,
    /// Checkpointed points loaded at open.
    pub len: usize,
    /// Torn lines dropped while loading.
    pub dropped_lines: u64,
}

/// Applies the request's session-wide knobs exactly once: the engine
/// worker count, the kernel, and (when `resume` is set) the process-wide
/// journal. Drivers call this after building their request instead of
/// spreading `set_default_*` calls through their argument parsing.
pub fn install_session(request: &SimulationRequest) -> Result<SessionReport, ApiError> {
    dynex_engine::set_default_jobs(request.jobs);
    dynex_engine::set_default_kernel(request.kernel);
    let journal = match &request.resume {
        None => None,
        Some(path) => {
            let journal = Journal::open(path).map_err(|e| ApiError::Journal(e.to_string()))?;
            let info = JournalInfo {
                path: path.clone(),
                len: journal.len(),
                dropped_lines: journal.dropped_lines(),
            };
            dynex_engine::set_global_journal(Some(journal));
            Some(info)
        }
    };
    Ok(SessionReport {
        jobs: request.jobs,
        kernel: request.kernel,
        journal,
    })
}

/// Runs the three-way DM/DE/OPT comparison with an explicit kernel — the
/// request-API home of the deprecated `runner::triple_kernel`.
///
/// Under [`Kernel::Batch`] the three policies run through
/// [`dynex_cache::batch_triple`]: one fused pass over one decoded stream.
/// Under [`Kernel::Sweep`] the point runs as a degenerate one-config sweep
/// through [`dynex_cache::batch_sweep`]. Under [`Kernel::Reference`] each
/// policy runs its spec simulator. All produce bit-identical [`Triple`]s,
/// so journal keys and resumed sweeps are kernel-agnostic.
pub fn run_triple(kernel: Kernel, config: CacheConfig, addrs: &[u32]) -> Triple {
    match kernel {
        Kernel::Batch => {
            let fused = batch_triple(config, addrs);
            Triple {
                dm: fused.dm,
                de: fused.de.stats,
                opt: fused.opt,
            }
        }
        Kernel::Sweep => run_triples_sweep(&[config], addrs)
            .pop()
            .expect("one config in, one triple out"),
        Kernel::Reference => {
            let simulate = |policy: PolicyKind| {
                policy
                    .simulate_kernel(kernel, config, addrs)
                    .expect("dm/de/opt run on every kernel")
            };
            Triple {
                dm: simulate(PolicyKind::DirectMapped),
                de: simulate(PolicyKind::DynamicExclusion),
                opt: simulate(PolicyKind::OptimalDm),
            }
        }
    }
}

/// Runs the DM/DE/OPT triple for *many* configurations over one shared
/// trace in a single [`dynex_cache::batch_sweep`] traversal: the sweep
/// kernel's plan-level entry point.
///
/// Bit-identical per configuration to [`run_triple`] with any kernel; the
/// whole vector costs one decode per distinct line size, one next-use
/// oracle per distinct line size, and one trace walk.
pub fn run_triples_sweep(configs: &[CacheConfig], addrs: &[u32]) -> Vec<Triple> {
    let mut points = Vec::with_capacity(configs.len() * 3);
    for &config in configs {
        points.push(SweepPoint::new(config, SweepPolicy::DirectMapped));
        points.push(SweepPoint::new(config, SweepPolicy::DynamicExclusion));
        points.push(SweepPoint::new(config, SweepPolicy::Optimal));
    }
    let results = batch_sweep(&points, addrs);
    results
        .chunks_exact(3)
        .map(|chunk| Triple {
            dm: chunk[0].stats(),
            de: chunk[1].stats(),
            opt: chunk[2].stats(),
        })
        .collect()
}

/// Runs [`crate::triple`] over many `(config, trace)` sweep points on the
/// engine's worker pool — the request-API home of the deprecated
/// `runner::triples`.
///
/// Results are in point order and bit-identical for every worker count.
/// When a sweep journal is installed ([`install_session`] with `resume`),
/// previously completed points are replayed from the checkpoint instead of
/// re-simulated.
pub fn sweep_triples(points: &[(CacheConfig, &[u32])]) -> Vec<Triple> {
    journaled_triples(points, "triple/v1", crate::runner::triple)
}

/// Runs [`triple_lastline`] over many sweep points on the engine's worker
/// pool, like [`sweep_triples`] (journal-aware in the same way).
pub fn sweep_triples_lastline(points: &[(CacheConfig, &[u32])]) -> Vec<Triple> {
    journaled_triples(points, "triple-lastline/v1", triple_lastline)
}

/// The journal-aware sweep shared by [`sweep_triples`] and
/// [`sweep_triples_lastline`]: replay checkpointed points, run only the
/// missing ones on the pool, and append the fresh results.
fn journaled_triples(
    points: &[(CacheConfig, &[u32])],
    tag: &str,
    f: fn(CacheConfig, &[u32]) -> Triple,
) -> Vec<Triple> {
    let keys: Vec<String> = points
        .iter()
        .map(|(config, addrs)| {
            // Exact fields, not the Display label (which rounds the size to
            // whole KB and would collide sub-KB configurations).
            job_key(&[
                tag,
                &format!(
                    "size={} line={} ways={}",
                    config.size_bytes(),
                    config.line_bytes(),
                    config.associativity()
                ),
                &format!("{:016x}", trace_digest(addrs)),
            ])
        })
        .collect();
    let mut slots: Vec<Option<Triple>> = with_global_journal(|journal| {
        keys.iter()
            .map(|k| journal.lookup(k).and_then(|v| triple_from_journal(&v)))
            .collect()
    })
    .unwrap_or_else(|| vec![None; points.len()]);

    let missing: Vec<usize> = (0..points.len()).filter(|&i| slots[i].is_none()).collect();
    let todo: Vec<(CacheConfig, &[u32])> = missing.iter().map(|&i| points[i]).collect();
    // Under `--kernel sweep` the plain-triple sweep takes the one-pass fast
    // path: every missing point sharing a trace runs in a single
    // `batch_sweep` traversal. The journal keys above are computed per point
    // and are kernel-agnostic, so `--resume` replays byte-identically no
    // matter which kernel recorded a point. (The last-line tag has no sweep
    // specialization and always runs per point.)
    let fresh = if tag == "triple/v1" && default_kernel() == Kernel::Sweep {
        sweep_grouped(&todo)
    } else {
        pool_execute(&todo, default_jobs(), |&(config, addrs)| f(config, addrs))
    };

    with_global_journal(|journal| {
        for (&i, t) in missing.iter().zip(&fresh) {
            if let Err(e) = journal.record(&keys[i], &triple_to_journal(t)) {
                // A checkpoint append failure must not abort the sweep; the
                // point simply will not be resumable.
                eprintln!("warning: {e}");
            }
        }
    });
    for (i, t) in missing.into_iter().zip(fresh) {
        slots[i] = Some(t);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot replayed or simulated"))
        .collect()
}

/// One-pass execution of missing sweep points under [`Kernel::Sweep`]:
/// points sharing a trace are grouped and each group runs as one
/// [`dynex_cache::batch_sweep`] traversal on the pool. Point order is
/// preserved, so the output is bit-identical to per-point execution for
/// every worker count.
fn sweep_grouped(todo: &[(CacheConfig, &[u32])]) -> Vec<Triple> {
    // Group by trace slice identity (pointer + length): the figure sweeps
    // fan one slice per benchmark across many geometries, so identity
    // captures exactly the sharing available. Equal-content slices at
    // different addresses merely land in different groups, which costs
    // speed, never correctness.
    let mut groups: Vec<(&[u32], Vec<usize>)> = Vec::new();
    for (i, &(_, addrs)) in todo.iter().enumerate() {
        match groups
            .iter_mut()
            .find(|(t, _)| t.as_ptr() == addrs.as_ptr() && t.len() == addrs.len())
        {
            Some((_, members)) => members.push(i),
            None => groups.push((addrs, vec![i])),
        }
    }
    let per_group = pool_execute(&groups, default_jobs(), |(addrs, members)| {
        let configs: Vec<CacheConfig> = members.iter().map(|&i| todo[i].0).collect();
        run_triples_sweep(&configs, addrs)
    });
    let mut slots: Vec<Option<Triple>> = vec![None; todo.len()];
    for ((_, members), triples) in groups.iter().zip(per_group) {
        for (&i, t) in members.iter().zip(triples) {
            slots[i] = Some(t);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every point belongs to exactly one group"))
        .collect()
}

/// Journal value for one [`Triple`]: `{"dm":[acc,miss],...}` — counters
/// only, since every derived rate is a pure function of them.
fn triple_to_journal(t: &Triple) -> String {
    format!(
        r#"{{"dm":[{},{}],"de":[{},{}],"opt":[{},{}]}}"#,
        t.dm.accesses(),
        t.dm.misses(),
        t.de.accesses(),
        t.de.misses(),
        t.opt.accesses(),
        t.opt.misses(),
    )
}

/// Decodes [`triple_to_journal`]; `None` on any shape mismatch (the caller
/// then re-simulates the point, so a stale or foreign record is harmless).
fn triple_from_journal(v: &Json) -> Option<Triple> {
    let pair = |field: &str| {
        let arr = v.get(field)?.as_array()?;
        match arr {
            [a, m] => {
                let (accesses, misses) = (a.as_u64()?, m.as_u64()?);
                (misses <= accesses).then(|| CacheStats::from_counts(accesses, misses))
            }
            _ => None,
        }
    };
    Some(Triple {
        dm: pair("dm")?,
        de: pair("de")?,
        opt: pair("opt")?,
    })
}

/// Serializes tests that install the process-global journal (shared with
/// `runner`'s tests — the journal is one per process, so concurrent
/// installs would race under the default parallel test harness).
#[cfg(test)]
pub(crate) static JOURNAL_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::triple;

    fn thrash() -> Vec<u32> {
        (0..40).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect()
    }

    fn thrash_request(dir: &std::path::Path) -> (SimulationRequest, PathBuf) {
        let trace: Trace = thrash().into_iter().map(Access::read).collect();
        let path = dir.join("thrash.dxt");
        let mut bytes = Vec::new();
        trace_io::write_binary(&mut bytes, &trace).unwrap();
        std::fs::write(&path, bytes).unwrap();
        let mut b = SimulationRequest::builder();
        b.org("de").size("64").line(4).trace_path(&path).jobs(1);
        (b.build().unwrap(), path)
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dynex-api-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn builder_defaults_and_validation() {
        let request = SimulationRequest::builder().build().unwrap();
        assert_eq!(request.org, Org::Dm);
        assert_eq!(request.size_bytes, crate::HEADLINE_SIZE);
        assert_eq!(request.line_bytes, 4);
        assert_eq!(request.kernel, Kernel::Batch);
        assert!(request.jobs >= 1);
        assert_eq!(request.trace, TraceSource::Workloads);

        let err = SimulationRequest::builder()
            .org("plaid")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("plaid"));
        let err = SimulationRequest::builder()
            .size("zero")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("--size"));
        // Non-power-of-two geometry is caught at build, not first use.
        let err = SimulationRequest::builder()
            .size("100")
            .build()
            .unwrap_err();
        assert!(matches!(err, ApiError::Invalid { .. }), "{err}");
        let err = SimulationRequest::builder()
            .profile("not-a-benchmark")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("not-a-benchmark"));
    }

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size("64"), Some(64));
        assert_eq!(parse_size("32K"), Some(32 * 1024));
        assert_eq!(parse_size("2m"), Some(2 * 1024 * 1024));
        assert_eq!(parse_size("0"), None);
        assert_eq!(parse_size("porridge"), None);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut b = SimulationRequest::builder();
        b.org("de")
            .size("32K")
            .line(16)
            .kinds("instr")
            .kernel("reference")
            .jobs(3)
            .refs(123_456)
            .profile("gcc")
            .lenient(7)
            .deadline_ms(2500)
            .resume("/tmp/j.jsonl");
        let request = b.build().unwrap();
        let back = SimulationRequest::from_json(&request.to_json()).unwrap();
        assert_eq!(back, request);
        // And the canonical serialization is stable.
        assert_eq!(back.to_json(), request.to_json());
    }

    #[test]
    fn from_json_rejects_unknown_fields_and_bad_shapes() {
        let err = SimulationRequest::from_json(r#"{"orgg":"de"}"#).unwrap_err();
        assert!(err.to_string().contains("orgg"), "{err}");
        let err = SimulationRequest::from_json("[]").unwrap_err();
        assert!(err.to_string().contains("object"));
        let err = SimulationRequest::from_json(r#"{"size":true}"#).unwrap_err();
        assert!(err.to_string().contains("size"));
        let err =
            SimulationRequest::from_json(r#"{"trace":{"source":"carrier-pigeon"}}"#).unwrap_err();
        assert!(err.to_string().contains("carrier-pigeon"));
        // Accepts both the "32K" shorthand and numeric bytes.
        let a = SimulationRequest::from_json(r#"{"size":"32K"}"#).unwrap();
        let b = SimulationRequest::from_json(r#"{"size_bytes":32768}"#).unwrap();
        assert_eq!(a.size_bytes, b.size_bytes);
    }

    #[test]
    fn from_json_rejects_integer_overflow_instead_of_truncating() {
        // 2^32 + 4 would truncate to line=4 with a bare `as u32` cast and
        // silently simulate the wrong geometry.
        let err = SimulationRequest::from_json(r#"{"line":4294967300}"#).unwrap_err();
        assert!(err.to_string().contains("4294967300"), "{err}");
        let err = SimulationRequest::from_json(r#"{"line_bytes":4294967300}"#).unwrap_err();
        assert!(err.to_string().contains("4294967300"), "{err}");
        // In-range values still parse.
        let ok = SimulationRequest::from_json(r#"{"line":64}"#).unwrap();
        assert_eq!(ok.line_bytes, 64);
    }

    #[test]
    fn key_schema_covers_every_field() {
        let request = SimulationRequest::builder().build().unwrap();
        verify_key_schema(&request).unwrap();
        // The classification lists and the serialized field set agree.
        let n = KEY_COVERED.len() + KEY_VIA_DIGEST.len() + KEY_EXCLUDED.len();
        let Json::Obj(map) = json::parse(&request.to_json()).unwrap() else {
            panic!("request serializes as an object");
        };
        assert_eq!(map.len(), n, "every field classified exactly once");
    }

    #[test]
    fn routing_key_tracks_content_determinants_only() {
        let build = |f: &dyn Fn(&mut RequestBuilder)| {
            let mut b = SimulationRequest::builder();
            b.org("de")
                .size("64")
                .line(4)
                .jobs(1)
                .profile("gcc")
                .refs(50_000);
            f(&mut b);
            b.build().unwrap().routing_key().unwrap()
        };
        let base = build(&|_| {});
        // Deterministic, and insensitive to every key-excluded field: the
        // same content always routes to the same shard regardless of
        // kernel choice, worker count, or deadline.
        assert_eq!(base, build(&|_| {}));
        assert_eq!(
            base,
            build(&|b| {
                b.kernel("reference").jobs(4).deadline_ms(99);
            })
        );
        // Sensitive to every content determinant.
        assert_ne!(
            base,
            build(&|b| {
                b.size("128");
            })
        );
        assert_ne!(
            base,
            build(&|b| {
                b.org("dm");
            })
        );
        assert_ne!(
            base,
            build(&|b| {
                b.kinds("instr");
            })
        );
        assert_ne!(
            base,
            build(&|b| {
                b.line(16);
            })
        );
        assert_ne!(
            base,
            build(&|b| {
                b.profile("li");
            })
        );
        assert_ne!(
            base,
            build(&|b| {
                b.refs(60_000);
            })
        );
        // File traces: refs is ignored (the file fixes the stream) but the
        // lenient-read budget is not (skips change the decoded stream).
        let file = |f: &dyn Fn(&mut RequestBuilder)| {
            let mut b = SimulationRequest::builder();
            b.org("de")
                .size("64")
                .line(4)
                .jobs(1)
                .trace_path("/tmp/t.dxt");
            f(&mut b);
            b.build().unwrap().routing_key().unwrap()
        };
        let file_base = file(&|_| {});
        assert_eq!(
            file_base,
            file(&|b| {
                b.refs(123);
            })
        );
        assert_ne!(
            file_base,
            file(&|b| {
                b.lenient(5);
            })
        );
    }

    #[test]
    fn content_key_matches_pr3_simcache_keys() {
        let addrs = thrash();
        let mut b = SimulationRequest::builder();
        b.org("de").size("64").line(4).jobs(1).profile("gcc");
        let request = b.build().unwrap();
        // The PR 3 derivation, verbatim.
        let legacy = job_key(&[
            "simcache/v1",
            "de",
            "all",
            "size=64 line=4",
            &format!("{:016x}", trace_digest(&addrs)),
        ]);
        assert_eq!(request.content_key(&addrs).unwrap(), legacy);
    }

    #[test]
    fn key_excludes_kernel_jobs_deadline_but_not_geometry() {
        let addrs = thrash();
        let build = |f: &dyn Fn(&mut RequestBuilder)| {
            let mut b = SimulationRequest::builder();
            b.org("de").size("64").line(4).jobs(1).profile("gcc");
            f(&mut b);
            b.build().unwrap().content_key(&addrs).unwrap()
        };
        let base = build(&|_| {});
        assert_eq!(
            base,
            build(&|b| {
                b.kernel("reference").jobs(4).deadline_ms(99);
            })
        );
        assert_ne!(
            base,
            build(&|b| {
                b.size("128");
            })
        );
        assert_ne!(
            base,
            build(&|b| {
                b.org("dm");
            })
        );
        assert_ne!(
            base,
            build(&|b| {
                b.kinds("instr");
            })
        );
    }

    #[test]
    fn execute_matches_reference_simulators_for_both_kernels() {
        let dir = scratch("execute");
        let (request, _path) = thrash_request(&dir);
        let trace = load(&request).unwrap();
        assert_eq!(trace.accesses.len(), 40);
        assert_eq!(trace.skipped, 0);

        let batch = execute(&request, &trace).unwrap();
        let mut reference_request = request.clone();
        reference_request.kernel = Kernel::Reference;
        let reference = execute(&reference_request, &trace).unwrap();
        assert_eq!(batch, reference, "kernels are bit-identical");
        let mut sweep_request = request.clone();
        sweep_request.kernel = Kernel::Sweep;
        let sweep = execute(&sweep_request, &trace).unwrap();
        assert_eq!(batch, sweep, "sweep kernel is bit-identical too");
        assert!(batch.de.is_some());
        assert!(!batch.cached);
        assert!(batch.render_text().contains("accesses"));

        // Response JSON round-trips.
        let back = SimulationResponse::from_json(&batch.to_json()).unwrap();
        assert_eq!(back, batch);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_replays_from_the_installed_journal() {
        let _guard = JOURNAL_TEST_LOCK.lock().unwrap();
        let dir = scratch("run-journal");
        let (mut request, _path) = thrash_request(&dir);
        request.resume = Some(dir.join("journal.jsonl"));
        install_session(&request).unwrap();
        let first = run(&request).unwrap();
        assert!(!first.cached);
        let second = run(&request).unwrap();
        assert!(second.cached);
        assert_eq!(second.stats, first.stats);
        assert_eq!(second.label, first.label);
        assert_eq!(second.de, first.de);
        dynex_engine::set_global_journal(None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_codec_round_trips() {
        let stats = CacheStats::from_counts(100, 7);
        let de = Some(DeStats {
            loads: 5,
            bypasses: 2,
        });
        let v = json::parse(&result_to_journal("de 64B", stats, de)).unwrap();
        assert_eq!(
            result_from_journal(&v),
            Some(("de 64B".to_owned(), stats, de))
        );
        let impossible = json::parse(r#"{"label":"x","accesses":1,"misses":2}"#).unwrap();
        assert_eq!(result_from_journal(&impossible), None);
    }

    #[test]
    fn run_triple_agrees_across_kernels() {
        let mut rng = dynex_cache::SplitMix64::new(57);
        let addrs: Vec<u32> = (0..10_000).map(|_| (rng.below(4096) as u32) * 4).collect();
        for config in [
            CacheConfig::direct_mapped(64, 4).unwrap(),
            CacheConfig::direct_mapped(1024, 4).unwrap(),
            CacheConfig::direct_mapped(8192, 16).unwrap(),
        ] {
            assert_eq!(
                run_triple(Kernel::Batch, config, &addrs),
                run_triple(Kernel::Reference, config, &addrs),
                "{config}"
            );
            assert_eq!(
                run_triple(Kernel::Batch, config, &addrs),
                run_triple(Kernel::Sweep, config, &addrs),
                "{config} (sweep)"
            );
        }
    }

    #[test]
    fn run_triples_sweep_matches_per_point_triples() {
        let mut rng = dynex_cache::SplitMix64::new(91);
        let addrs: Vec<u32> = (0..12_000).map(|_| (rng.below(8192) as u32) * 4).collect();
        let configs = [
            CacheConfig::direct_mapped(64, 4).unwrap(),
            CacheConfig::direct_mapped(1024, 4).unwrap(),
            CacheConfig::direct_mapped(1024, 4).unwrap(), // duplicate point
            CacheConfig::direct_mapped(8192, 16).unwrap(),
        ];
        let swept = run_triples_sweep(&configs, &addrs);
        assert_eq!(swept.len(), configs.len());
        for (config, got) in configs.iter().zip(&swept) {
            assert_eq!(*got, run_triple(Kernel::Batch, *config, &addrs), "{config}");
        }
        assert_eq!(run_triples_sweep(&[], &addrs), Vec::new());
    }

    #[test]
    fn execute_many_matches_pointwise_execute() {
        let dir = scratch("execute-many");
        let (base, _path) = thrash_request(&dir);
        let trace = load(&base).unwrap();

        let mut requests = Vec::new();
        for (org, size) in [(Org::Dm, 64), (Org::De, 64), (Org::De, 256), (Org::Opt, 64)] {
            let mut r = base.clone();
            r.org = org;
            r.size_bytes = size;
            requests.push(r);
        }
        let refs: Vec<&SimulationRequest> = requests.iter().collect();
        let fused = execute_many(&refs, &trace).unwrap();
        assert_eq!(fused.len(), requests.len());
        for (request, got) in requests.iter().zip(&fused) {
            let single = execute(request, &trace).unwrap();
            assert_eq!(got.stats, single.stats, "{}", request.org.name());
            assert_eq!(got.label, single.label);
            assert_eq!(got.de, single.de);
            assert!(!got.cached);
        }

        // Unsweepable organizations are rejected up front, not silently run.
        let mut lastline = base.clone();
        lastline.org = Org::DeLastLine;
        let err = execute_many(&[&lastline], &trace).unwrap_err();
        assert!(matches!(err, ApiError::Invalid { field, .. } if field == "--policy"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journaled_sweeps_group_by_trace_under_sweep_kernel() {
        let _guard = JOURNAL_TEST_LOCK.lock().unwrap();
        let small = CacheConfig::direct_mapped(64, 4).unwrap();
        let large = CacheConfig::direct_mapped(256, 4).unwrap();
        let addrs = thrash();
        let other: Vec<u32> = (0..60).map(|i| (i % 7) * 64).collect();
        // Two distinct traces interleaved: the sweep fast path must group by
        // trace identity and scatter results back in plan order.
        let points: Vec<(CacheConfig, &[u32])> = vec![
            (small, &addrs),
            (small, &other),
            (large, &addrs),
            (large, &other),
        ];
        let batch = sweep_triples(&points);
        dynex_engine::set_default_kernel(Kernel::Sweep);
        let swept = sweep_triples(&points);
        dynex_engine::set_default_kernel(Kernel::Batch);
        assert_eq!(swept, batch, "grouped sweep is bit-identical to batch");
    }

    #[test]
    fn sweep_triples_match_pointwise_runs() {
        let small = CacheConfig::direct_mapped(64, 4).unwrap();
        let large = CacheConfig::direct_mapped(256, 4).unwrap();
        let addrs = thrash();
        let points: Vec<(CacheConfig, &[u32])> = vec![(small, &addrs), (large, &addrs)];
        let parallel = sweep_triples(&points);
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0], triple(small, &addrs));
        assert_eq!(parallel[1], triple(large, &addrs));
        let lastline = sweep_triples_lastline(&points);
        assert_eq!(lastline[0], triple_lastline(small, &addrs));
        assert_eq!(lastline[1], triple_lastline(large, &addrs));
    }

    #[test]
    fn journaled_sweep_replays_bit_identically() {
        let _guard = JOURNAL_TEST_LOCK.lock().unwrap();
        let path =
            std::env::temp_dir().join(format!("dynex-api-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let small = CacheConfig::direct_mapped(64, 4).unwrap();
        let large = CacheConfig::direct_mapped(256, 4).unwrap();
        let addrs = thrash();
        let points: Vec<(CacheConfig, &[u32])> = vec![(small, &addrs), (large, &addrs)];
        let bare = sweep_triples(&points); // no journal installed
        dynex_engine::set_global_journal(Some(Journal::open(&path).unwrap()));
        let recorded = sweep_triples(&points); // cold journal: simulates + records
        let replayed_triples = sweep_triples(&points); // warm journal: pure replay
        let replayed = with_global_journal(|j| j.replayed()).unwrap();
        dynex_engine::set_global_journal(None);
        assert_eq!(recorded, bare);
        assert_eq!(replayed_triples, bare);
        assert!(replayed >= points.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn triple_journal_encoding_round_trips() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let t = triple(config, &thrash());
        let v = json::parse(&triple_to_journal(&t)).unwrap();
        assert_eq!(triple_from_journal(&v), Some(t));
        assert_eq!(triple_from_journal(&Json::Null), None);
        let truncated = json::parse(r#"{"dm":[1,0],"de":[1,0]}"#).unwrap();
        assert_eq!(triple_from_journal(&truncated), None);
        let impossible = json::parse(r#"{"dm":[1,2],"de":[1,0],"opt":[1,0]}"#).unwrap();
        assert_eq!(triple_from_journal(&impossible), None);
    }
}
