//! `tracegen` — dump synthetic SPEC'89 traces to files.
//!
//! ```text
//! tracegen <profile> [--refs N] [--format binary|text] [--kinds all|instr|data] <output>
//! tracegen list
//! ```
//!
//! Binary output is the `dynex-trace` `.dxt` format (`DXT1` magic, packed
//! 4-byte references); text is one `<F|R|W> 0x<addr>` per line.

use std::process::ExitCode;

use dynex_trace::{io as trace_io, Trace};
use dynex_workload::spec;

enum Format {
    Binary,
    Text,
}

enum Kinds {
    All,
    Instr,
    Data,
}

fn usage() {
    eprintln!(
        "usage: tracegen <profile> [--refs N] [--format binary|text] \
         [--kinds all|instr|data] <output>\n       tracegen list"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "list") {
        for name in spec::NAMES {
            let p = spec::profile(name).expect("built-in");
            println!("{name:<10} {}", p.description());
        }
        return ExitCode::SUCCESS;
    }
    let mut profile_name = None;
    let mut output = None;
    let mut refs = 1_000_000usize;
    let mut format = Format::Binary;
    let mut kinds = Kinds::All;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--refs" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --refs needs a number");
                    return ExitCode::FAILURE;
                };
                refs = v;
            }
            "--format" => match it.next().as_deref() {
                Some("binary") => format = Format::Binary,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!("error: bad --format {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--kinds" => match it.next().as_deref() {
                Some("all") => kinds = Kinds::All,
                Some("instr") => kinds = Kinds::Instr,
                Some("data") => kinds = Kinds::Data,
                other => {
                    eprintln!("error: bad --kinds {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if profile_name.is_none() => profile_name = Some(other.to_owned()),
            other if output.is_none() => output = Some(other.to_owned()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (Some(profile_name), Some(output)) = (profile_name, output) else {
        usage();
        return ExitCode::FAILURE;
    };
    let Some(profile) = spec::profile(&profile_name) else {
        eprintln!("error: unknown profile {profile_name:?} (try `tracegen list`)");
        return ExitCode::FAILURE;
    };

    eprintln!("generating {refs} references of {profile_name}...");
    let full = profile.trace(refs);
    let trace: Trace = match kinds {
        Kinds::All => full,
        Kinds::Instr => dynex_trace::filter::instructions(full.iter()).collect(),
        Kinds::Data => dynex_trace::filter::data(full.iter()).collect(),
    };

    let file = match std::fs::File::create(&output) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot create {output}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let writer = std::io::BufWriter::new(file);
    let result = match format {
        Format::Binary => trace_io::write_binary(writer, &trace),
        Format::Text => trace_io::write_text(writer, &trace),
    };
    if let Err(e) = result {
        eprintln!("error: writing {output}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} references to {output}", trace.len());
    ExitCode::SUCCESS
}
