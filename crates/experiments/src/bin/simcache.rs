//! `simcache` — run any cache organization over a trace file.
//!
//! ```text
//! simcache <trace.dxt|trace.txt> --size 32K --line 4 \
//!          [--org dm|de|de-lastline|opt|2way|4way|victim|stream] [--kinds all|instr|data] \
//!          [--kernel reference|batch] \
//!          [--jobs N] [--shard-sets] [--job-retries N] [--job-timeout-ms N] \
//!          [--lenient N] [--resume journal.jsonl] \
//!          [--events-out e.jsonl] [--metrics-out m.json] \
//!          [--intervals-out i.csv] [--interval N]
//! ```
//!
//! Reads a `dynex-trace` file (binary `.dxt` or the text format, detected by
//! the magic), simulates, and prints hit/miss statistics.
//!
//! `--kernel` selects between the reference simulators and the batch kernels
//! for the `dm`, `de`, and `opt` organizations (default `batch`; every other
//! organization always runs its reference simulator). The two kernels
//! produce bit-identical statistics, exclusion counters, and observability
//! output — including under `--shard-sets` and `--resume` (journal keys do
//! not encode the kernel, so a run checkpointed under one kernel replays
//! under the other).
//!
//! `--lenient N` tolerates up to `N` corrupt records in the trace: bad
//! packed words / malformed text lines are skipped and counted (reported via
//! trace statistics and the observability `trace-skip` event) instead of
//! aborting the run; the read still fails fast once the budget is exceeded.
//!
//! `--resume journal.jsonl` checkpoints the run's final statistics into an
//! append-only journal keyed by a content hash of the organization,
//! configuration, and trace; re-running with the same journal replays the
//! result without simulating, byte-identical. Plain runs only (it combines
//! with neither `--shard-sets` nor the observability outputs).
//!
//! `--shard-sets` splits the trace by cache-set index and simulates the
//! shards concurrently on `--jobs` workers (default: `DYNEX_JOBS` or all
//! cores). This is exact — per-set state is independent — and therefore only
//! supported for `--org dm|de|opt`; the other organizations have cross-set
//! state (last-line buffers, victim/stream buffers, hashed stores) that
//! sharding would perturb. Statistics and observability outputs are merged
//! deterministically: counters and histograms sum, and the events JSONL is
//! the concatenation of the shard logs in shard order (not interleaved by
//! global access order).
//!
//! Uninstrumented sharded runs are *fault-isolated*: each shard job runs
//! under panic containment with a bounded retry budget (`--job-retries`) and
//! an optional soft deadline (`--job-timeout-ms`). A panicking or hung shard
//! fails alone — the remaining shards complete, a per-cell summary table is
//! printed, and the exit status is nonzero only when failures remain.
//!
//! Any of the `--*-out` flags attaches a probe to the simulated cache:
//! `--events-out` streams every [`dynex_obs::Event`] as JSONL,
//! `--metrics-out` writes the aggregated counter/histogram registry (plus
//! the interval series) as JSON, and `--intervals-out` writes the per-window
//! miss rates as CSV. `--interval` sets the window size in accesses
//! (default 1000). Without these flags the run is completely
//! uninstrumented — the probe type monomorphizes to a no-op.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dynex::DeStats;
use dynex::{DeCache, LastLineDeCache, OptimalDirectMapped, PerfectStore};
use dynex_cache::{
    batch_de, batch_de_probed, batch_dm, batch_dm_probed, batch_opt, decode_addrs, run, run_addrs,
    CacheConfig, CacheSim, CacheStats, DirectMapped, Kernel, KindFilter, Replacement,
    SetAssociative, StreamBuffer, VictimCache,
};
use dynex_engine::{
    default_kernel, execute, execute_resilient, job_key, shard_by_set, trace_digest, Journal,
    Policy, Resilience,
};
use dynex_obs::json::Json;
use dynex_obs::{export, Collector, CountingProbe, Event, EventLog};
use dynex_trace::{io as trace_io, ReadPolicy, Trace, TraceStats};

fn parse_size(text: &str) -> Option<u32> {
    let text = text.trim();
    let value = if let Some(kb) = text.strip_suffix(['K', 'k']) {
        kb.parse::<u32>().ok().map(|v| v * 1024)
    } else if let Some(mb) = text.strip_suffix(['M', 'm']) {
        mb.parse::<u32>().ok().map(|v| v * 1024 * 1024)
    } else {
        text.parse().ok()
    };
    value.filter(|&v| v > 0)
}

/// Loads a trace under the given read policy, returning the number of
/// corrupt records skipped (always 0 under [`ReadPolicy::Strict`]).
fn load_trace(path: &str, policy: ReadPolicy) -> Result<(Trace, u64), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let probe = CountingProbe::new();
    let result = if bytes.starts_with(&trace_io::BINARY_MAGIC) {
        trace_io::read_binary_with(&bytes[..], policy, probe)
    } else {
        trace_io::read_text_with(&bytes[..], policy, probe)
    };
    let (trace, report) = result.map_err(|e| format!("{path}: {e}"))?;
    Ok((trace, report.skipped))
}

fn usage() {
    eprintln!(
        "usage: simcache <trace-file> --size <bytes|NK|NM> [--line N] \
         [--org dm|de|de-lastline|opt|2way|4way|victim|stream] [--kinds all|instr|data] \
         [--kernel reference|batch] \
         [--jobs N] [--shard-sets] [--job-retries N] [--job-timeout-ms N] \
         [--lenient <max-skipped>] [--resume <journal.jsonl>] \
         [--events-out <file.jsonl>] [--metrics-out <file.json>] \
         [--intervals-out <file.csv>] [--interval <N>]"
    );
}

/// Where (and whether) to write observability outputs.
struct ObsConfig {
    events_out: Option<String>,
    metrics_out: Option<String>,
    intervals_out: Option<String>,
    window: u64,
}

impl ObsConfig {
    fn active(&self) -> bool {
        self.events_out.is_some() || self.metrics_out.is_some() || self.intervals_out.is_some()
    }

    fn probe(&self) -> (Collector, EventLog) {
        (Collector::new(self.window), EventLog::new())
    }

    fn write(&self, collector: &Collector, events: &[Event]) -> Result<(), String> {
        if let Some(path) = &self.events_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_events_jsonl(std::io::BufWriter::new(file), events)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} events to {path}", events.len());
        }
        if let Some(path) = &self.metrics_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_metrics_json(file, &collector.registry(), Some(collector.intervals()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        if let Some(path) = &self.intervals_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_intervals_csv(file, collector.intervals())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote intervals to {path}");
        }
        Ok(())
    }
}

/// Reports merged statistics for a set-sharded run.
fn report_sharded(policy: Policy, config: CacheConfig, n_shards: usize, stats: CacheStats) {
    println!(
        "{} [set-sharded x{n_shards}] {config}: {} accesses, {} misses, miss rate {:.4}%",
        policy.name(),
        stats.accesses(),
        stats.misses(),
        stats.miss_rate_percent()
    );
}

/// Fault-injection hooks for the resilient sharded path, driven by the
/// `DYNEX_INJECT_PANIC_SHARD` / `DYNEX_INJECT_HANG_SHARD` environment
/// variables (shard index each). Test-only: they exist so the CLI-level
/// resilience tests can exercise real panics and hangs end to end.
fn injected_fault(env: &str) -> Option<usize> {
    std::env::var(env).ok().and_then(|v| v.parse().ok())
}

/// `--shard-sets`: split the trace by set index, simulate the shards on the
/// engine's worker pool, and merge statistics (and probes) exactly.
///
/// Only `dm`, `de`, and `opt` are accepted — every other organization has
/// cross-set state that set partitioning would perturb.
fn run_sharded(
    org: &str,
    config: CacheConfig,
    addrs: &[u32],
    jobs: usize,
    obs: &ObsConfig,
    resilience: Resilience,
) -> ExitCode {
    let policy = match org {
        "dm" => Policy::DirectMapped,
        "de" => Policy::DynamicExclusion,
        "opt" => Policy::OptimalDm,
        other => {
            eprintln!(
                "error: --shard-sets supports --org dm|de|opt only (got {other:?}; \
                 its cross-set state cannot be partitioned exactly)"
            );
            return ExitCode::FAILURE;
        }
    };
    let n_shards = jobs;
    eprintln!("set-sharded run: {n_shards} shard(s) on {jobs} worker(s)");

    // OPT is a two-pass oracle without a probed hot path (same as serially).
    if policy == Policy::OptimalDm && obs.active() {
        eprintln!(
            "note: --org opt is a two-pass oracle without a probed hot path; \
             observability outputs are not written"
        );
    }

    if !obs.active() || policy == Policy::OptimalDm {
        return run_sharded_resilient(policy, config, addrs, n_shards, jobs, resilience);
    }

    // Probed shards: one collector + event log per shard, merged in shard
    // order (counters and histograms sum; the event stream is the
    // concatenation of the shard logs, not a global-order interleave).
    let shards = shard_by_set(config.geometry(), addrs, n_shards);
    let outputs = execute(&shards, jobs, |shard| match (default_kernel(), policy) {
        (Kernel::Batch, Policy::DirectMapped) => {
            let mut probe = obs.probe();
            let stats = batch_dm_probed(config, shard, &mut probe);
            let (collector, log) = probe;
            (stats, None, collector, log)
        }
        (Kernel::Batch, _) => {
            let mut probe = obs.probe();
            let result = batch_de_probed(config, shard, &mut probe);
            let (collector, log) = probe;
            let de_stats = DeStats {
                loads: result.loads,
                bypasses: result.bypasses,
            };
            (result.stats, Some(de_stats), collector, log)
        }
        (Kernel::Reference, Policy::DirectMapped) => {
            let mut cache = DirectMapped::with_probe(config, obs.probe());
            let stats = run_addrs(&mut cache, shard.iter().copied());
            let (collector, log) = cache.into_probe();
            (stats, None, collector, log)
        }
        (Kernel::Reference, _) => {
            let mut cache = DeCache::with_probe(config, obs.probe());
            let stats = run_addrs(&mut cache, shard.iter().copied());
            let de_stats = cache.de_stats();
            let (collector, log) = cache.into_probe();
            (stats, Some(de_stats), collector, log)
        }
    });

    let mut outputs = outputs.into_iter();
    let Some((mut stats, mut de_stats, mut collector, first_log)) = outputs.next() else {
        // shard_by_set always returns n_shards >= 1 shards; reaching this
        // means the sharding layer broke its contract — fail cleanly rather
        // than panicking in a release binary.
        eprintln!(
            "error: set-sharded run produced no shard outputs \
             (internal error: n_shards={n_shards})"
        );
        return ExitCode::FAILURE;
    };
    let mut events: Vec<Event> = first_log.into_events();
    for (s, d, c, log) in outputs {
        stats.merge(&s);
        if let (Some(acc), Some(d)) = (de_stats.as_mut(), d) {
            acc.loads += d.loads;
            acc.bypasses += d.bypasses;
        }
        collector.merge(&c);
        events.extend(log.into_events());
    }
    debug_assert_eq!(
        stats,
        policy.simulate(config, addrs),
        "set-sharded statistics diverged from the serial run"
    );

    report_sharded(policy, config, n_shards, stats);
    if let Some(de_stats) = de_stats {
        println!("  loads {} bypasses {}", de_stats.loads, de_stats.bypasses);
    }
    if let Err(e) = obs.write(&collector, &events) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The fault-isolated sharded path (uninstrumented runs): shards execute
/// under panic containment / retry / soft deadline; a failing shard fails
/// alone and the run reports partial statistics plus a per-cell table.
fn run_sharded_resilient(
    policy: Policy,
    config: CacheConfig,
    addrs: &[u32],
    n_shards: usize,
    jobs: usize,
    resilience: Resilience,
) -> ExitCode {
    let inject_panic = injected_fault("DYNEX_INJECT_PANIC_SHARD");
    let inject_hang = injected_fault("DYNEX_INJECT_HANG_SHARD");
    let items: Arc<Vec<(usize, Vec<u32>)>> = Arc::new(
        shard_by_set(config.geometry(), addrs, n_shards)
            .into_iter()
            .enumerate()
            .collect(),
    );
    let outcome = execute_resilient(items, jobs, resilience, move |(index, shard)| {
        if Some(*index) == inject_panic {
            panic!("injected fault: panic in shard {index}");
        }
        if Some(*index) == inject_hang {
            std::thread::sleep(Duration::from_secs(3600));
        }
        match (default_kernel(), policy) {
            (Kernel::Batch, Policy::DynamicExclusion) => {
                let result = batch_de(config, shard);
                let de_stats = DeStats {
                    loads: result.loads,
                    bypasses: result.bypasses,
                };
                (result.stats, Some(de_stats))
            }
            (Kernel::Reference, Policy::DynamicExclusion) => {
                let mut cache = DeCache::new(config);
                let stats = run_addrs(&mut cache, shard.iter().copied());
                (stats, Some(cache.de_stats()))
            }
            // Policy::simulate is itself kernel-aware for dm and opt.
            _ => (policy.simulate(config, shard), None),
        }
    });

    let mut merged = CacheStats::new();
    let mut de_merged: Option<DeStats> = None;
    for (stats, de) in outcome.results().iter().flatten() {
        merged.merge(stats);
        if let Some(de) = de {
            let acc = de_merged.get_or_insert_with(DeStats::default);
            acc.loads += de.loads;
            acc.bypasses += de.bypasses;
        }
    }

    if !outcome.has_failures() {
        debug_assert_eq!(
            merged,
            policy.simulate(config, addrs),
            "set-sharded statistics diverged from the serial run"
        );
        report_sharded(policy, config, n_shards, merged);
        if let Some(de) = de_merged {
            println!("  loads {} bypasses {}", de.loads, de.bypasses);
        }
        return ExitCode::SUCCESS;
    }

    // Partial results: the merged statistics cover only the surviving
    // shards, so they are labelled as such rather than passed off as the
    // full-trace numbers.
    let counts = outcome.counts();
    eprintln!("sweep summary: {}", outcome.summary());
    if let Some(table) = outcome.failure_table(|i| format!("shard {i}")) {
        eprint!("{table}");
    }
    println!(
        "{} [set-sharded, PARTIAL {}/{} shards] {config}: {} accesses, {} misses, \
         miss rate {:.4}%",
        policy.name(),
        counts.ok,
        n_shards,
        merged.accesses(),
        merged.misses(),
        merged.miss_rate_percent()
    );
    if let Some(de) = de_merged {
        println!("  loads {} bypasses {} (partial)", de.loads, de.bypasses);
    }
    ExitCode::FAILURE
}

/// Simulates one uninstrumented run, returning its label, statistics, and
/// (for `de`) the exclusion counters. This is the unit `--resume`
/// checkpoints.
///
/// `addrs` is the decoded byte-address stream of `accesses` (the batch
/// kernels for `dm`, `de`, and `opt` consume it; the other organizations
/// replay `accesses` through their reference simulators). Both kernels
/// return identical results, so the journal needs no kernel field.
fn plain_stats(
    org: &str,
    size: u32,
    line: u32,
    accesses: &[dynex_trace::Access],
    addrs: &[u32],
) -> Result<(String, CacheStats, Option<DeStats>), String> {
    let dm_config = CacheConfig::direct_mapped(size, line).map_err(|e| e.to_string())?;
    let kernel = default_kernel();
    match org {
        "dm" => {
            let mut cache = DirectMapped::new(dm_config);
            let stats = match kernel {
                Kernel::Batch => batch_dm(dm_config, addrs),
                Kernel::Reference => run(&mut cache, accesses.iter().copied()),
            };
            Ok((cache.label(), stats, None))
        }
        "de" => {
            let mut cache = DeCache::new(dm_config);
            let (stats, de) = match kernel {
                Kernel::Batch => {
                    let result = batch_de(dm_config, addrs);
                    (
                        result.stats,
                        DeStats {
                            loads: result.loads,
                            bypasses: result.bypasses,
                        },
                    )
                }
                Kernel::Reference => {
                    let stats = run(&mut cache, accesses.iter().copied());
                    (stats, cache.de_stats())
                }
            };
            Ok((cache.label(), stats, Some(de)))
        }
        "de-lastline" => {
            let mut cache = LastLineDeCache::new(dm_config);
            let stats = run(&mut cache, accesses.iter().copied());
            Ok((cache.label(), stats, None))
        }
        "opt" => {
            let stats = match kernel {
                Kernel::Batch => batch_opt(dm_config, addrs),
                Kernel::Reference => {
                    OptimalDirectMapped::simulate(dm_config, accesses.iter().map(|a| a.addr()))
                }
            };
            Ok(("optimal direct-mapped".to_owned(), stats, None))
        }
        "2way" | "4way" => {
            let ways = if org == "2way" { 2 } else { 4 };
            let config = CacheConfig::new(size, line, ways).map_err(|e| e.to_string())?;
            let mut cache = SetAssociative::new(config, Replacement::Lru);
            let stats = run(&mut cache, accesses.iter().copied());
            Ok((cache.label(), stats, None))
        }
        "victim" => {
            let mut cache = VictimCache::new(dm_config, 4);
            let stats = run(&mut cache, accesses.iter().copied());
            Ok((cache.label(), stats, None))
        }
        "stream" => {
            let mut cache = StreamBuffer::new(dm_config, 4);
            let stats = run(&mut cache, accesses.iter().copied());
            Ok((cache.label(), stats, None))
        }
        other => Err(format!("unknown --org {other:?}")),
    }
}

fn print_plain(label: &str, stats: CacheStats, de: Option<DeStats>) {
    println!(
        "{label}: {} accesses, {} misses, miss rate {:.4}%",
        stats.accesses(),
        stats.misses(),
        stats.miss_rate_percent()
    );
    if let Some(de) = de {
        println!("  loads {} bypasses {}", de.loads, de.bypasses);
    }
}

/// Journal value for one plain run (label + raw counters; every derived
/// number is a pure function of these).
fn plain_to_journal(label: &str, stats: CacheStats, de: Option<DeStats>) -> String {
    let mut out = format!(
        r#"{{"label":"{}","accesses":{},"misses":{}"#,
        dynex_obs::json::escape(label),
        stats.accesses(),
        stats.misses(),
    );
    if let Some(de) = de {
        out.push_str(&format!(
            r#","loads":{},"bypasses":{}"#,
            de.loads, de.bypasses
        ));
    }
    out.push('}');
    out
}

/// Decodes [`plain_to_journal`]; `None` re-simulates (stale/foreign record).
fn plain_from_journal(v: &Json) -> Option<(String, CacheStats, Option<DeStats>)> {
    let label = v.get("label")?.as_str()?.to_owned();
    let accesses = v.get("accesses")?.as_u64()?;
    let misses = v.get("misses")?.as_u64()?;
    if misses > accesses {
        return None;
    }
    let de = match (v.get("loads"), v.get("bypasses")) {
        (Some(l), Some(b)) => Some(DeStats {
            loads: l.as_u64()?,
            bypasses: b.as_u64()?,
        }),
        _ => None,
    };
    Some((label, CacheStats::from_counts(accesses, misses), de))
}

/// The `--resume` path for plain runs: replay the checkpointed result if
/// present, otherwise simulate and record it.
fn run_resumable(
    journal_path: &str,
    org: &str,
    kinds: &str,
    size: u32,
    line: u32,
    accesses: &[dynex_trace::Access],
    addrs: &[u32],
) -> ExitCode {
    let mut journal = match Journal::open(journal_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let key = job_key(&[
        "simcache/v1",
        org,
        kinds,
        &format!("size={size} line={line}"),
        &format!("{:016x}", trace_digest(addrs)),
    ]);

    if let Some(value) = journal.lookup(&key) {
        if let Some((label, stats, de)) = plain_from_journal(&value) {
            eprintln!("replayed from journal {journal_path} (1 point)");
            print_plain(&label, stats, de);
            return ExitCode::SUCCESS;
        }
        eprintln!("warning: journal record for this run is malformed; re-simulating");
    }

    let (label, stats, de) = match plain_stats(org, size, line, accesses, addrs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_plain(&label, stats, de);
    if let Err(e) = journal.record(&key, &plain_to_journal(&label, stats, de)) {
        eprintln!("warning: {e}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Fail loudly on a malformed DYNEX_JOBS before anything else runs
    // (default_jobs() reads it later but cannot surface errors).
    if let Err(e) = dynex_engine::env_jobs() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let mut path = None;
    let mut size = None;
    let mut line = 4u32;
    let mut org = "dm".to_owned();
    let mut kinds = "all".to_owned();
    let mut jobs = 0usize; // 0 = auto (DYNEX_JOBS or available cores)
    let mut shard_sets = false;
    let mut read_policy = ReadPolicy::Strict;
    let mut resume: Option<String> = None;
    let mut resilience = Resilience::default();
    let mut obs = ObsConfig {
        events_out: None,
        metrics_out: None,
        intervals_out: None,
        window: 1000,
    };

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                let Some(value) = it.next() else {
                    eprintln!("error: --size needs a value (e.g. --size 32K)");
                    return ExitCode::FAILURE;
                };
                size = match parse_size(&value) {
                    Some(v) => Some(v),
                    None => {
                        eprintln!("error: bad --size value {value:?} (positive bytes, NK, or NM)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--line" => {
                line = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --line needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--org" => org = it.next().unwrap_or_default(),
            "--kinds" => kinds = it.next().unwrap_or_default(),
            "--kernel" => {
                let value = it.next().unwrap_or_default();
                match Kernel::parse(&value) {
                    Some(k) => dynex_engine::set_default_kernel(k),
                    None => {
                        eprintln!("error: bad --kernel value {value:?} (reference|batch)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                jobs = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => {
                        eprintln!("error: --jobs needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--shard-sets" => shard_sets = true,
            "--job-retries" => {
                resilience.max_retries = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --job-retries needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--job-timeout-ms" => {
                resilience.deadline = match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) if v > 0 => Some(Duration::from_millis(v)),
                    _ => {
                        eprintln!("error: --job-timeout-ms needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--lenient" => {
                read_policy = match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(max_skipped) => ReadPolicy::Lenient { max_skipped },
                    None => {
                        eprintln!("error: --lenient needs a max-skipped count");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--resume" => {
                resume = match it.next() {
                    Some(v) => Some(v),
                    None => {
                        eprintln!("error: --resume needs a journal file");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--events-out" | "--metrics-out" | "--intervals-out" => {
                let Some(value) = it.next() else {
                    eprintln!("error: {arg} needs a file path");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--events-out" => obs.events_out = Some(value),
                    "--metrics-out" => obs.metrics_out = Some(value),
                    _ => obs.intervals_out = Some(value),
                }
            }
            "--interval" => {
                obs.window = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => {
                        eprintln!("error: --interval needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        usage();
        return ExitCode::FAILURE;
    };
    let Some(size) = size else {
        eprintln!("error: --size is required (e.g. --size 32K)");
        return ExitCode::FAILURE;
    };
    if resume.is_some() && (shard_sets || obs.active()) {
        eprintln!(
            "error: --resume checkpoints plain runs only; it combines with \
             neither --shard-sets nor the observability outputs"
        );
        return ExitCode::FAILURE;
    }

    let (trace, skipped) = match load_trace(&path, read_policy) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (accesses, filter): (Vec<dynex_trace::Access>, KindFilter) = match kinds.as_str() {
        "all" => (trace.iter().collect(), KindFilter::All),
        "instr" => (
            dynex_trace::filter::instructions(trace.iter()).collect(),
            KindFilter::Instructions,
        ),
        "data" => (
            dynex_trace::filter::data(trace.iter()).collect(),
            KindFilter::Data,
        ),
        other => {
            eprintln!("error: bad --kinds {other:?}");
            return ExitCode::FAILURE;
        }
    };
    // The decoded byte-address stream, shared by the batch kernels, the
    // set-sharded paths, and the resume digest (chunked decode straight from
    // the packed words — no per-reference Access round trip).
    let addrs: Vec<u32> = decode_addrs(trace.as_packed(), filter);
    debug_assert_eq!(addrs.len(), accesses.len());
    if skipped > 0 {
        let mut stats = TraceStats::from_accesses(trace.iter());
        stats.record_skipped(skipped);
        eprintln!("lenient read: {skipped} corrupt record(s) skipped");
        eprintln!("trace: {stats}");
    }
    eprintln!("{} references selected from {}", accesses.len(), path);

    if let Some(journal_path) = &resume {
        return run_resumable(journal_path, &org, &kinds, size, line, &accesses, &addrs);
    }

    let report = |label: String, stats: CacheStats| {
        println!(
            "{label}: {} accesses, {} misses, miss rate {:.4}%",
            stats.accesses(),
            stats.misses(),
            stats.miss_rate_percent()
        );
    };

    let dm_config = match CacheConfig::direct_mapped(size, line) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let jobs = if jobs > 0 {
        jobs
    } else {
        dynex_engine::default_jobs()
    };
    if shard_sets {
        return run_sharded(&org, dm_config, &addrs, jobs, &obs, resilience);
    }

    if !obs.active() {
        // The uninstrumented single run shares its driver with --resume.
        let started = std::time::Instant::now();
        let (label, stats, de) = match plain_stats(&org, size, line, &accesses, &addrs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Simulation-only throughput (trace load/decode excluded), on stderr
        // so stdout stays byte-identical across kernels and machines;
        // scripts/bench.sh parses this line.
        let seconds = started.elapsed().as_secs_f64();
        eprintln!(
            "sim: {} references in {seconds:.3}s ({:.0} refs/s)",
            stats.accesses(),
            stats.accesses() as f64 / seconds.max(1e-9)
        );
        print_plain(&label, stats, de);
        return ExitCode::SUCCESS;
    }

    // Runs a probed cache, reports its stats, then extracts the
    // `(Collector, EventLog)` probe via `into_probe` and writes the
    // requested output files.
    macro_rules! simulate_observed {
        ($cache:expr) => {{
            let mut cache = $cache;
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
            let (collector, log) = cache.into_probe();
            if let Err(e) = obs.write(&collector, log.events()) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }};
    }

    match org.as_str() {
        "dm" => match default_kernel() {
            Kernel::Batch => {
                let mut probe = obs.probe();
                let stats = batch_dm_probed(dm_config, &addrs, &mut probe);
                report(DirectMapped::new(dm_config).label(), stats);
                let (collector, log) = probe;
                if let Err(e) = obs.write(&collector, log.events()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Kernel::Reference => {
                simulate_observed!(DirectMapped::with_probe(dm_config, obs.probe()));
            }
        },
        "de" => {
            let (label, stats, de_stats, collector, log) = match default_kernel() {
                Kernel::Batch => {
                    let mut probe = obs.probe();
                    let result = batch_de_probed(dm_config, &addrs, &mut probe);
                    let (collector, log) = probe;
                    let de_stats = DeStats {
                        loads: result.loads,
                        bypasses: result.bypasses,
                    };
                    let label = DeCache::new(dm_config).label();
                    (label, result.stats, de_stats, collector, log)
                }
                Kernel::Reference => {
                    let mut cache = DeCache::with_probe(dm_config, obs.probe());
                    let stats = run(&mut cache, accesses.iter().copied());
                    let label = cache.label();
                    let de_stats = cache.de_stats();
                    let (collector, log) = cache.into_probe();
                    (label, stats, de_stats, collector, log)
                }
            };
            report(label, stats);
            if let Err(e) = obs.write(&collector, log.events()) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!("  loads {} bypasses {}", de_stats.loads, de_stats.bypasses);
        }
        "de-lastline" => {
            simulate_observed!(LastLineDeCache::with_store_and_probe(
                dm_config,
                PerfectStore::new(),
                obs.probe()
            ));
        }
        "opt" => {
            eprintln!(
                "note: --org opt is a two-pass oracle without a probed hot path; \
                 observability outputs are not written"
            );
            let stats = match default_kernel() {
                Kernel::Batch => batch_opt(dm_config, &addrs),
                Kernel::Reference => {
                    OptimalDirectMapped::simulate(dm_config, accesses.iter().map(|a| a.addr()))
                }
            };
            report("optimal direct-mapped".to_owned(), stats);
        }
        "2way" | "4way" => {
            let ways = if org == "2way" { 2 } else { 4 };
            let config = match CacheConfig::new(size, line, ways) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            simulate_observed!(SetAssociative::with_probe(
                config,
                Replacement::Lru,
                obs.probe()
            ));
        }
        "victim" => {
            simulate_observed!(VictimCache::with_probe(dm_config, 4, obs.probe()));
        }
        "stream" => {
            simulate_observed!(StreamBuffer::with_probe(dm_config, 4, obs.probe()));
        }
        other => {
            eprintln!("error: unknown --org {other:?}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
