//! `simcache` — run any cache organization over a trace file.
//!
//! ```text
//! simcache <trace.dxt|trace.txt> --size 32K --line 4 \
//!          [--org dm|de|de-lastline|opt|2way|4way|victim|stream] [--kinds all|instr|data] \
//!          [--jobs N] [--shard-sets] \
//!          [--events-out e.jsonl] [--metrics-out m.json] \
//!          [--intervals-out i.csv] [--interval N]
//! ```
//!
//! Reads a `dynex-trace` file (binary `.dxt` or the text format, detected by
//! the magic), simulates, and prints hit/miss statistics.
//!
//! `--shard-sets` splits the trace by cache-set index and simulates the
//! shards concurrently on `--jobs` workers (default: `DYNEX_JOBS` or all
//! cores). This is exact — per-set state is independent — and therefore only
//! supported for `--org dm|de|opt`; the other organizations have cross-set
//! state (last-line buffers, victim/stream buffers, hashed stores) that
//! sharding would perturb. Statistics and observability outputs are merged
//! deterministically: counters and histograms sum, and the events JSONL is
//! the concatenation of the shard logs in shard order (not interleaved by
//! global access order).
//!
//! Any of the `--*-out` flags attaches a probe to the simulated cache:
//! `--events-out` streams every [`dynex_obs::Event`] as JSONL,
//! `--metrics-out` writes the aggregated counter/histogram registry (plus
//! the interval series) as JSON, and `--intervals-out` writes the per-window
//! miss rates as CSV. `--interval` sets the window size in accesses
//! (default 1000). Without these flags the run is completely
//! uninstrumented — the probe type monomorphizes to a no-op.

use std::process::ExitCode;

use dynex::{DeCache, LastLineDeCache, OptimalDirectMapped, PerfectStore};
use dynex_cache::{
    run, run_addrs, CacheConfig, CacheSim, CacheStats, DirectMapped, Replacement, SetAssociative,
    StreamBuffer, VictimCache,
};
use dynex_engine::{execute, shard_by_set, sharded_policy_stats, Policy};
use dynex_obs::{export, Collector, Event, EventLog};
use dynex_trace::{io as trace_io, Trace};

fn parse_size(text: &str) -> Option<u32> {
    let text = text.trim();
    if let Some(kb) = text.strip_suffix(['K', 'k']) {
        kb.parse::<u32>().ok().map(|v| v * 1024)
    } else if let Some(mb) = text.strip_suffix(['M', 'm']) {
        mb.parse::<u32>().ok().map(|v| v * 1024 * 1024)
    } else {
        text.parse().ok()
    }
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(&trace_io::BINARY_MAGIC) {
        trace_io::read_binary(&bytes[..]).map_err(|e| e.to_string())
    } else {
        trace_io::read_text(&bytes[..]).map_err(|e| e.to_string())
    }
}

fn usage() {
    eprintln!(
        "usage: simcache <trace-file> --size <bytes|NK|NM> [--line N] \
         [--org dm|de|de-lastline|opt|2way|4way|victim|stream] [--kinds all|instr|data] \
         [--jobs N] [--shard-sets] \
         [--events-out <file.jsonl>] [--metrics-out <file.json>] \
         [--intervals-out <file.csv>] [--interval <N>]"
    );
}

/// Where (and whether) to write observability outputs.
struct ObsConfig {
    events_out: Option<String>,
    metrics_out: Option<String>,
    intervals_out: Option<String>,
    window: u64,
}

impl ObsConfig {
    fn active(&self) -> bool {
        self.events_out.is_some() || self.metrics_out.is_some() || self.intervals_out.is_some()
    }

    fn probe(&self) -> (Collector, EventLog) {
        (Collector::new(self.window), EventLog::new())
    }

    fn write(&self, collector: &Collector, events: &[Event]) -> Result<(), String> {
        if let Some(path) = &self.events_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_events_jsonl(std::io::BufWriter::new(file), events)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} events to {path}", events.len());
        }
        if let Some(path) = &self.metrics_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_metrics_json(file, &collector.registry(), Some(collector.intervals()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        if let Some(path) = &self.intervals_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_intervals_csv(file, collector.intervals())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote intervals to {path}");
        }
        Ok(())
    }
}

/// Reports merged statistics for a set-sharded run.
fn report_sharded(policy: Policy, config: CacheConfig, n_shards: usize, stats: CacheStats) {
    println!(
        "{} [set-sharded x{n_shards}] {config}: {} accesses, {} misses, miss rate {:.4}%",
        policy.name(),
        stats.accesses(),
        stats.misses(),
        stats.miss_rate_percent()
    );
}

/// `--shard-sets`: split the trace by set index, simulate the shards on the
/// engine's worker pool, and merge statistics (and probes) exactly.
///
/// Only `dm`, `de`, and `opt` are accepted — every other organization has
/// cross-set state that set partitioning would perturb.
fn run_sharded(
    org: &str,
    config: CacheConfig,
    addrs: &[u32],
    jobs: usize,
    obs: &ObsConfig,
) -> ExitCode {
    let policy = match org {
        "dm" => Policy::DirectMapped,
        "de" => Policy::DynamicExclusion,
        "opt" => Policy::OptimalDm,
        other => {
            eprintln!(
                "error: --shard-sets supports --org dm|de|opt only (got {other:?}; \
                 its cross-set state cannot be partitioned exactly)"
            );
            return ExitCode::FAILURE;
        }
    };
    let n_shards = jobs;
    eprintln!("set-sharded run: {n_shards} shard(s) on {jobs} worker(s)");

    // OPT is a two-pass oracle without a probed hot path (same as serially).
    if policy == Policy::OptimalDm {
        if obs.active() {
            eprintln!(
                "note: --org opt is a two-pass oracle without a probed hot path; \
                 observability outputs are not written"
            );
        }
        let stats = sharded_policy_stats(config, policy, addrs, n_shards, jobs);
        report_sharded(policy, config, n_shards, stats);
        return ExitCode::SUCCESS;
    }

    if !obs.active() {
        let stats = sharded_policy_stats(config, policy, addrs, n_shards, jobs);
        report_sharded(policy, config, n_shards, stats);
        if policy == Policy::DynamicExclusion {
            let shards = shard_by_set(config.geometry(), addrs, n_shards);
            let per_shard = execute(&shards, jobs, |shard| {
                let mut cache = DeCache::new(config);
                run_addrs(&mut cache, shard.iter().copied());
                cache.de_stats()
            });
            let (loads, bypasses) = per_shard
                .iter()
                .fold((0, 0), |(l, b), s| (l + s.loads, b + s.bypasses));
            println!("  loads {loads} bypasses {bypasses}");
        }
        return ExitCode::SUCCESS;
    }

    // Probed shards: one collector + event log per shard, merged in shard
    // order (counters and histograms sum; the event stream is the
    // concatenation of the shard logs, not a global-order interleave).
    let shards = shard_by_set(config.geometry(), addrs, n_shards);
    let outputs = execute(&shards, jobs, |shard| match policy {
        Policy::DirectMapped => {
            let mut cache = DirectMapped::with_probe(config, obs.probe());
            let stats = run_addrs(&mut cache, shard.iter().copied());
            let (collector, log) = cache.into_probe();
            (stats, None, collector, log)
        }
        _ => {
            let mut cache = DeCache::with_probe(config, obs.probe());
            let stats = run_addrs(&mut cache, shard.iter().copied());
            let de_stats = cache.de_stats();
            let (collector, log) = cache.into_probe();
            (stats, Some(de_stats), collector, log)
        }
    });

    let mut outputs = outputs.into_iter();
    let (mut stats, mut de_stats, mut collector, first_log) =
        outputs.next().expect("at least one shard");
    let mut events: Vec<Event> = first_log.into_events();
    for (s, d, c, log) in outputs {
        stats.merge(&s);
        if let (Some(acc), Some(d)) = (de_stats.as_mut(), d) {
            acc.loads += d.loads;
            acc.bypasses += d.bypasses;
        }
        collector.merge(&c);
        events.extend(log.into_events());
    }
    debug_assert_eq!(
        stats,
        policy.simulate(config, addrs),
        "set-sharded statistics diverged from the serial run"
    );

    report_sharded(policy, config, n_shards, stats);
    if let Some(de_stats) = de_stats {
        println!("  loads {} bypasses {}", de_stats.loads, de_stats.bypasses);
    }
    if let Err(e) = obs.write(&collector, &events) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut path = None;
    let mut size = None;
    let mut line = 4u32;
    let mut org = "dm".to_owned();
    let mut kinds = "all".to_owned();
    let mut jobs = 0usize; // 0 = auto (DYNEX_JOBS or available cores)
    let mut shard_sets = false;
    let mut obs = ObsConfig {
        events_out: None,
        metrics_out: None,
        intervals_out: None,
        window: 1000,
    };

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => size = it.next().as_deref().and_then(parse_size),
            "--line" => {
                line = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --line needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--org" => org = it.next().unwrap_or_default(),
            "--kinds" => kinds = it.next().unwrap_or_default(),
            "--jobs" => {
                jobs = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => {
                        eprintln!("error: --jobs needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--shard-sets" => shard_sets = true,
            "--events-out" | "--metrics-out" | "--intervals-out" => {
                let Some(value) = it.next() else {
                    eprintln!("error: {arg} needs a file path");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--events-out" => obs.events_out = Some(value),
                    "--metrics-out" => obs.metrics_out = Some(value),
                    _ => obs.intervals_out = Some(value),
                }
            }
            "--interval" => {
                obs.window = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => {
                        eprintln!("error: --interval needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        usage();
        return ExitCode::FAILURE;
    };
    let Some(size) = size else {
        eprintln!("error: --size is required (e.g. --size 32K)");
        return ExitCode::FAILURE;
    };

    let trace = match load_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accesses: Vec<dynex_trace::Access> = match kinds.as_str() {
        "all" => trace.iter().collect(),
        "instr" => dynex_trace::filter::instructions(trace.iter()).collect(),
        "data" => dynex_trace::filter::data(trace.iter()).collect(),
        other => {
            eprintln!("error: bad --kinds {other:?}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{} references selected from {}", accesses.len(), path);

    let report = |label: String, stats: dynex_cache::CacheStats| {
        println!(
            "{label}: {} accesses, {} misses, miss rate {:.4}%",
            stats.accesses(),
            stats.misses(),
            stats.miss_rate_percent()
        );
    };

    let dm_config = match CacheConfig::direct_mapped(size, line) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let jobs = if jobs > 0 {
        jobs
    } else {
        dynex_engine::default_jobs()
    };
    if shard_sets {
        let addrs: Vec<u32> = accesses.iter().map(|a| a.addr()).collect();
        return run_sharded(&org, dm_config, &addrs, jobs, &obs);
    }

    // Runs a probed cache, reports its stats, then extracts the
    // `(Collector, EventLog)` probe via `into_probe` and writes the
    // requested output files.
    macro_rules! simulate_observed {
        ($cache:expr) => {{
            let mut cache = $cache;
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
            let (collector, log) = cache.into_probe();
            if let Err(e) = obs.write(&collector, log.events()) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }};
    }

    match org.as_str() {
        "dm" => {
            if obs.active() {
                simulate_observed!(DirectMapped::with_probe(dm_config, obs.probe()));
            } else {
                let mut cache = DirectMapped::new(dm_config);
                let stats = run(&mut cache, accesses.iter().copied());
                report(cache.label(), stats);
            }
        }
        "de" => {
            let de_stats = if obs.active() {
                let mut cache = DeCache::with_probe(dm_config, obs.probe());
                let stats = run(&mut cache, accesses.iter().copied());
                report(cache.label(), stats);
                let de_stats = cache.de_stats();
                let (collector, log) = cache.into_probe();
                if let Err(e) = obs.write(&collector, log.events()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                de_stats
            } else {
                let mut cache = DeCache::new(dm_config);
                let stats = run(&mut cache, accesses.iter().copied());
                report(cache.label(), stats);
                cache.de_stats()
            };
            println!("  loads {} bypasses {}", de_stats.loads, de_stats.bypasses);
        }
        "de-lastline" => {
            if obs.active() {
                simulate_observed!(LastLineDeCache::with_store_and_probe(
                    dm_config,
                    PerfectStore::new(),
                    obs.probe()
                ));
            } else {
                let mut cache = LastLineDeCache::new(dm_config);
                let stats = run(&mut cache, accesses.iter().copied());
                report(cache.label(), stats);
            }
        }
        "opt" => {
            if obs.active() {
                eprintln!(
                    "note: --org opt is a two-pass oracle without a probed hot path; \
                     observability outputs are not written"
                );
            }
            let stats = OptimalDirectMapped::simulate(dm_config, accesses.iter().map(|a| a.addr()));
            report("optimal direct-mapped".to_owned(), stats);
        }
        "2way" | "4way" => {
            let ways = if org == "2way" { 2 } else { 4 };
            let config = match CacheConfig::new(size, line, ways) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if obs.active() {
                simulate_observed!(SetAssociative::with_probe(
                    config,
                    Replacement::Lru,
                    obs.probe()
                ));
            } else {
                let mut cache = SetAssociative::new(config, Replacement::Lru);
                let stats = run(&mut cache, accesses.iter().copied());
                report(cache.label(), stats);
            }
        }
        "victim" => {
            if obs.active() {
                simulate_observed!(VictimCache::with_probe(dm_config, 4, obs.probe()));
            } else {
                let mut cache = VictimCache::new(dm_config, 4);
                let stats = run(&mut cache, accesses.iter().copied());
                report(cache.label(), stats);
            }
        }
        "stream" => {
            if obs.active() {
                simulate_observed!(StreamBuffer::with_probe(dm_config, 4, obs.probe()));
            } else {
                let mut cache = StreamBuffer::new(dm_config, 4);
                let stats = run(&mut cache, accesses.iter().copied());
                report(cache.label(), stats);
            }
        }
        other => {
            eprintln!("error: unknown --org {other:?}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
