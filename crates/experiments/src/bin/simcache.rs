//! `simcache` — run any cache organization over a trace file.
//!
//! ```text
//! simcache <trace.dxt|trace.txt> --size 32K --line 4 \
//!          [--org dm|de|de-lastline|opt|2way|4way|victim|stream] [--kinds all|instr|data]
//! ```
//!
//! Reads a `dynex-trace` file (binary `.dxt` or the text format, detected by
//! the magic), simulates, and prints hit/miss statistics.

use std::process::ExitCode;

use dynex::{DeCache, LastLineDeCache, OptimalDirectMapped};
use dynex_cache::{
    run, CacheConfig, CacheSim, DirectMapped, Replacement, SetAssociative, StreamBuffer,
    VictimCache,
};
use dynex_trace::{io as trace_io, Trace};

fn parse_size(text: &str) -> Option<u32> {
    let text = text.trim();
    if let Some(kb) = text.strip_suffix(['K', 'k']) {
        kb.parse::<u32>().ok().map(|v| v * 1024)
    } else if let Some(mb) = text.strip_suffix(['M', 'm']) {
        mb.parse::<u32>().ok().map(|v| v * 1024 * 1024)
    } else {
        text.parse().ok()
    }
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(&trace_io::BINARY_MAGIC) {
        trace_io::read_binary(&bytes[..]).map_err(|e| e.to_string())
    } else {
        trace_io::read_text(&bytes[..]).map_err(|e| e.to_string())
    }
}

fn usage() {
    eprintln!(
        "usage: simcache <trace-file> --size <bytes|NK|NM> [--line N] \
         [--org dm|de|de-lastline|opt|2way|4way|victim|stream] [--kinds all|instr|data]"
    );
}

fn main() -> ExitCode {
    let mut path = None;
    let mut size = None;
    let mut line = 4u32;
    let mut org = "dm".to_owned();
    let mut kinds = "all".to_owned();

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => size = it.next().as_deref().and_then(parse_size),
            "--line" => {
                line = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --line needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--org" => org = it.next().unwrap_or_default(),
            "--kinds" => kinds = it.next().unwrap_or_default(),
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        usage();
        return ExitCode::FAILURE;
    };
    let Some(size) = size else {
        eprintln!("error: --size is required (e.g. --size 32K)");
        return ExitCode::FAILURE;
    };

    let trace = match load_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let accesses: Vec<dynex_trace::Access> = match kinds.as_str() {
        "all" => trace.iter().collect(),
        "instr" => dynex_trace::filter::instructions(trace.iter()).collect(),
        "data" => dynex_trace::filter::data(trace.iter()).collect(),
        other => {
            eprintln!("error: bad --kinds {other:?}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{} references selected from {}", accesses.len(), path);

    let report = |label: String, stats: dynex_cache::CacheStats| {
        println!(
            "{label}: {} accesses, {} misses, miss rate {:.4}%",
            stats.accesses(),
            stats.misses(),
            stats.miss_rate_percent()
        );
    };

    let dm_config = match CacheConfig::direct_mapped(size, line) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match org.as_str() {
        "dm" => {
            let mut cache = DirectMapped::new(dm_config);
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
        }
        "de" => {
            let mut cache = DeCache::new(dm_config);
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
            println!(
                "  loads {} bypasses {}",
                cache.de_stats().loads,
                cache.de_stats().bypasses
            );
        }
        "de-lastline" => {
            let mut cache = LastLineDeCache::new(dm_config);
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
        }
        "opt" => {
            let stats =
                OptimalDirectMapped::simulate(dm_config, accesses.iter().map(|a| a.addr()));
            report("optimal direct-mapped".to_owned(), stats);
        }
        "2way" | "4way" => {
            let ways = if org == "2way" { 2 } else { 4 };
            let config = match CacheConfig::new(size, line, ways) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut cache = SetAssociative::new(config, Replacement::Lru);
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
        }
        "victim" => {
            let mut cache = VictimCache::new(dm_config, 4);
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
        }
        "stream" => {
            let mut cache = StreamBuffer::new(dm_config, 4);
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
        }
        other => {
            eprintln!("error: unknown --org {other:?}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
