//! `simcache` — run any cache organization over a trace file.
//!
//! ```text
//! simcache <trace.dxt|trace.txt> --size 32K --line 4 \
//!          [--policy dm|de|de-lastline|opt|ehc|bwcost|2way|4way|victim|stream] \
//!          [--kinds all|instr|data] \
//!          [--kernel reference|batch|sweep] [--sweep 1K,2K,4K,...] \
//!          [--jobs N] [--shard-sets] [--job-retries N] [--job-timeout-ms N] \
//!          [--lenient N] [--resume journal.jsonl] \
//!          [--events-out e.jsonl] [--metrics-out m.json] \
//!          [--intervals-out i.csv] [--interval N]
//! ```
//!
//! Reads a `dynex-trace` file (binary `.dxt` or the text format, detected by
//! the magic), simulates, and prints hit/miss statistics.
//!
//! `--policy` selects a member of the replacement-policy zoo (`--org` is
//! the legacy alias). `--kernel` selects between the reference simulators,
//! the batch kernels, and the one-pass multi-configuration sweep kernel for
//! the `dm`, `de`, and `opt` policies (default `batch`). Each policy
//! declares its per-kernel support: `ehc` and `bwcost` run under
//! `reference` and `batch` but reject `sweep` with a structured error, and
//! the last-line variants always run their reference simulators.
//! All supported combinations produce bit-identical
//! statistics, exclusion counters, and observability output — including
//! under `--shard-sets` and `--resume` (journal keys do not encode the
//! kernel, so a run checkpointed under one kernel replays under any other).
//!
//! `--sweep 1K,2K,4K,...` simulates the full dm/de/opt triple at *every*
//! listed size in one session (duplicate sizes are allowed and keep
//! independent state). Under `--kernel sweep` the whole list rides a single
//! trace traversal via `batch_sweep`; under `reference`/`batch` each size
//! runs point-by-point. Stdout (one line per size, in list order) is
//! byte-identical across kernels; stderr reports aggregate throughput where
//! one "reference" is one trace reference carried through one size's triple
//! — this is the N-configuration scaling probe `scripts/bench.sh` uses.
//! Plain runs only: `--sweep` combines with neither `--shard-sets`,
//! `--resume`, nor the observability outputs.
//!
//! `--lenient N` tolerates up to `N` corrupt records in the trace: bad
//! packed words / malformed text lines are skipped and counted (reported via
//! trace statistics and the observability `trace-skip` event) instead of
//! aborting the run; the read still fails fast once the budget is exceeded.
//!
//! `--resume journal.jsonl` checkpoints the run's final statistics into an
//! append-only journal keyed by a content hash of the organization,
//! configuration, and trace; re-running with the same journal replays the
//! result without simulating, byte-identical. Plain runs only (it combines
//! with neither `--shard-sets` nor the observability outputs).
//!
//! `--shard-sets` splits the trace by cache-set index and simulates the
//! shards concurrently on `--jobs` workers (default: `DYNEX_JOBS` or all
//! cores). This is exact — per-set state is independent — and therefore only
//! supported for `--org dm|de|opt`; the other organizations have cross-set
//! state (last-line buffers, victim/stream buffers, hashed stores) that
//! sharding would perturb. Statistics and observability outputs are merged
//! deterministically: counters and histograms sum, and the events JSONL is
//! the concatenation of the shard logs in shard order (not interleaved by
//! global access order).
//!
//! Uninstrumented sharded runs are *fault-isolated*: each shard job runs
//! under panic containment with a bounded retry budget (`--job-retries`) and
//! an optional soft deadline (`--job-timeout-ms`). A panicking or hung shard
//! fails alone — the remaining shards complete, a per-cell summary table is
//! printed, and the exit status is nonzero only when failures remain.
//!
//! Any of the `--*-out` flags attaches a probe to the simulated cache:
//! `--events-out` streams every [`dynex_obs::Event`] as JSONL,
//! `--metrics-out` writes the aggregated counter/histogram registry (plus
//! the interval series) as JSON, and `--intervals-out` writes the per-window
//! miss rates as CSV. `--interval` sets the window size in accesses
//! (default 1000). Without these flags the run is completely
//! uninstrumented — the probe type monomorphizes to a no-op.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dynex::DeStats;
use dynex::{DeCache, LastLineDeCache, OptimalDirectMapped, PerfectStore};
use dynex_cache::{
    batch_de, batch_de_probed, batch_dm_probed, batch_opt, batch_sweep, batch_sweep_probed, run,
    run_addrs, CacheConfig, CacheSim, CacheStats, DirectMapped, Kernel, Replacement,
    SetAssociative, StreamBuffer, SweepPoint, SweepPolicy, VictimCache,
};
use dynex_engine::{
    default_kernel, execute, execute_resilient, shard_by_set, PolicyKind, Resilience,
};
use dynex_experiments::api::{self, parse_size, Org, SimulationRequest};
use dynex_experiments::Triple;
use dynex_obs::{export, Collector, CountingProbe, Event, EventLog};
use dynex_trace::{io as trace_io, ReadPolicy, Trace, TraceStats};

/// Loads a trace under the given read policy, returning the number of
/// corrupt records skipped (always 0 under [`ReadPolicy::Strict`]).
fn load_trace(path: &str, policy: ReadPolicy) -> Result<(Trace, u64), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let probe = CountingProbe::new();
    let result = if bytes.starts_with(&trace_io::BINARY_MAGIC) {
        trace_io::read_binary_with(&bytes[..], policy, probe)
    } else {
        trace_io::read_text_with(&bytes[..], policy, probe)
    };
    let (trace, report) = result.map_err(|e| format!("{path}: {e}"))?;
    Ok((trace, report.skipped))
}

fn usage() {
    eprintln!(
        "usage: simcache <trace-file> --size <bytes|NK|NM> [--line N] \
         [--policy dm|de|de-lastline|opt|ehc|bwcost|2way|4way|victim|stream] \
         [--org <policy>  (legacy alias)] [--kinds all|instr|data] \
         [--kernel reference|batch|sweep] [--sweep <size,size,...>] \
         [--jobs N] [--shard-sets] [--job-retries N] [--job-timeout-ms N] \
         [--lenient <max-skipped>] [--resume <journal.jsonl>] \
         [--events-out <file.jsonl>] [--metrics-out <file.json>] \
         [--intervals-out <file.csv>] [--interval <N>] [--trace-out <file.jsonl>]"
    );
}

/// Where (and whether) to write observability outputs.
struct ObsConfig {
    events_out: Option<String>,
    metrics_out: Option<String>,
    intervals_out: Option<String>,
    window: u64,
}

impl ObsConfig {
    fn active(&self) -> bool {
        self.events_out.is_some() || self.metrics_out.is_some() || self.intervals_out.is_some()
    }

    fn probe(&self) -> (Collector, EventLog) {
        (Collector::new(self.window), EventLog::new())
    }

    fn write(&self, collector: &Collector, events: &[Event]) -> Result<(), String> {
        if let Some(path) = &self.events_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_events_jsonl(std::io::BufWriter::new(file), events)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} events to {path}", events.len());
        }
        if let Some(path) = &self.metrics_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_metrics_json(file, &collector.registry(), Some(collector.intervals()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        if let Some(path) = &self.intervals_out {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            export::write_intervals_csv(file, collector.intervals())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote intervals to {path}");
        }
        Ok(())
    }
}

/// Reports merged statistics for a set-sharded run.
fn report_sharded(policy: PolicyKind, config: CacheConfig, n_shards: usize, stats: CacheStats) {
    println!(
        "{} [set-sharded x{n_shards}] {config}: {} accesses, {} misses, miss rate {:.4}%",
        policy.name(),
        stats.accesses(),
        stats.misses(),
        stats.miss_rate_percent()
    );
}

/// Fault-injection hooks for the resilient sharded path, driven by the
/// `DYNEX_INJECT_PANIC_SHARD` / `DYNEX_INJECT_HANG_SHARD` environment
/// variables (shard index each). Test-only: they exist so the CLI-level
/// resilience tests can exercise real panics and hangs end to end.
fn injected_fault(env: &str) -> Option<usize> {
    std::env::var(env).ok().and_then(|v| v.parse().ok())
}

/// `--shard-sets`: split the trace by set index, simulate the shards on the
/// engine's worker pool, and merge statistics (and probes) exactly.
///
/// Only `dm`, `de`, and `opt` are accepted — every other organization has
/// cross-set state that set partitioning would perturb.
fn run_sharded(
    org: &str,
    config: CacheConfig,
    addrs: &[u32],
    jobs: usize,
    obs: &ObsConfig,
    resilience: Resilience,
) -> ExitCode {
    let policy = match org {
        "dm" => PolicyKind::DirectMapped,
        "de" => PolicyKind::DynamicExclusion,
        "opt" => PolicyKind::OptimalDm,
        other => {
            eprintln!(
                "error: --shard-sets supports --policy dm|de|opt only (got {other:?}; \
                 its cross-set state cannot be partitioned exactly)"
            );
            return ExitCode::FAILURE;
        }
    };
    let n_shards = jobs;
    eprintln!("set-sharded run: {n_shards} shard(s) on {jobs} worker(s)");

    // OPT is a two-pass oracle without a probed hot path (same as serially).
    if policy == PolicyKind::OptimalDm && obs.active() {
        eprintln!(
            "note: --policy opt is a two-pass oracle without a probed hot path; \
             observability outputs are not written"
        );
    }

    if !obs.active() || policy == PolicyKind::OptimalDm {
        return run_sharded_resilient(policy, config, addrs, n_shards, jobs, resilience);
    }

    // Probed shards: one collector + event log per shard, merged in shard
    // order (counters and histograms sum; the event stream is the
    // concatenation of the shard logs, not a global-order interleave).
    let shards = shard_by_set(config.geometry(), addrs, n_shards);
    let outputs = execute(&shards, jobs, |shard| {
        let _shard_span = dynex_obs::span::span("engine.shard-simulate");
        match (default_kernel(), policy) {
            (Kernel::Batch, PolicyKind::DirectMapped) => {
                let mut probe = obs.probe();
                let stats = batch_dm_probed(config, shard, &mut probe);
                let (collector, log) = probe;
                (stats, None, collector, log)
            }
            (Kernel::Batch, _) => {
                let mut probe = obs.probe();
                let result = batch_de_probed(config, shard, &mut probe);
                let (collector, log) = probe;
                let de_stats = DeStats {
                    loads: result.loads,
                    bypasses: result.bypasses,
                };
                (result.stats, Some(de_stats), collector, log)
            }
            (Kernel::Sweep, PolicyKind::DirectMapped) => {
                let mut probes = [obs.probe()];
                let point = SweepPoint::new(config, SweepPolicy::DirectMapped);
                let results = batch_sweep_probed(&[point], shard, &mut probes);
                let [(collector, log)] = probes;
                (results[0].stats(), None, collector, log)
            }
            (Kernel::Sweep, _) => {
                let mut probes = [obs.probe()];
                let point = SweepPoint::new(config, SweepPolicy::DynamicExclusion);
                let results = batch_sweep_probed(&[point], shard, &mut probes);
                let [(collector, log)] = probes;
                let result = results[0].de().expect("DE sweep point yields DE result");
                let de_stats = DeStats {
                    loads: result.loads,
                    bypasses: result.bypasses,
                };
                (result.stats, Some(de_stats), collector, log)
            }
            (Kernel::Reference, PolicyKind::DirectMapped) => {
                let mut cache = DirectMapped::with_probe(config, obs.probe());
                let stats = run_addrs(&mut cache, shard.iter().copied());
                let (collector, log) = cache.into_probe();
                (stats, None, collector, log)
            }
            (Kernel::Reference, _) => {
                let mut cache = DeCache::with_probe(config, obs.probe());
                let stats = run_addrs(&mut cache, shard.iter().copied());
                let de_stats = cache.de_stats();
                let (collector, log) = cache.into_probe();
                (stats, Some(de_stats), collector, log)
            }
        }
    });

    let mut outputs = outputs.into_iter();
    let Some((mut stats, mut de_stats, mut collector, first_log)) = outputs.next() else {
        // shard_by_set always returns n_shards >= 1 shards; reaching this
        // means the sharding layer broke its contract — fail cleanly rather
        // than panicking in a release binary.
        eprintln!(
            "error: set-sharded run produced no shard outputs \
             (internal error: n_shards={n_shards})"
        );
        return ExitCode::FAILURE;
    };
    let merge_span = dynex_obs::span::span("engine.merge");
    let mut events: Vec<Event> = first_log.into_events();
    for (s, d, c, log) in outputs {
        stats.merge(&s);
        if let (Some(acc), Some(d)) = (de_stats.as_mut(), d) {
            acc.loads += d.loads;
            acc.bypasses += d.bypasses;
        }
        collector.merge(&c);
        events.extend(log.into_events());
    }
    drop(merge_span);
    debug_assert_eq!(
        stats,
        policy
            .simulate(config, addrs)
            .expect("dm/de/opt run on every kernel"),
        "set-sharded statistics diverged from the serial run"
    );

    report_sharded(policy, config, n_shards, stats);
    if let Some(de_stats) = de_stats {
        println!("  loads {} bypasses {}", de_stats.loads, de_stats.bypasses);
    }
    if let Err(e) = obs.write(&collector, &events) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The fault-isolated sharded path (uninstrumented runs): shards execute
/// under panic containment / retry / soft deadline; a failing shard fails
/// alone and the run reports partial statistics plus a per-cell table.
fn run_sharded_resilient(
    policy: PolicyKind,
    config: CacheConfig,
    addrs: &[u32],
    n_shards: usize,
    jobs: usize,
    resilience: Resilience,
) -> ExitCode {
    let inject_panic = injected_fault("DYNEX_INJECT_PANIC_SHARD");
    let inject_hang = injected_fault("DYNEX_INJECT_HANG_SHARD");
    let items: Arc<Vec<(usize, Vec<u32>)>> = Arc::new(
        shard_by_set(config.geometry(), addrs, n_shards)
            .into_iter()
            .enumerate()
            .collect(),
    );
    let outcome = execute_resilient(items, jobs, resilience, move |(index, shard)| {
        let _shard_span = dynex_obs::span::span("engine.shard-simulate");
        if Some(*index) == inject_panic {
            panic!("injected fault: panic in shard {index}");
        }
        if Some(*index) == inject_hang {
            std::thread::sleep(Duration::from_secs(3600));
        }
        match (default_kernel(), policy) {
            (Kernel::Batch, PolicyKind::DynamicExclusion) => {
                let result = batch_de(config, shard);
                let de_stats = DeStats {
                    loads: result.loads,
                    bypasses: result.bypasses,
                };
                (result.stats, Some(de_stats))
            }
            (Kernel::Sweep, PolicyKind::DynamicExclusion) => {
                let point = SweepPoint::new(config, SweepPolicy::DynamicExclusion);
                let results = batch_sweep(&[point], shard);
                let result = results[0].de().expect("DE sweep point yields DE result");
                let de_stats = DeStats {
                    loads: result.loads,
                    bypasses: result.bypasses,
                };
                (result.stats, Some(de_stats))
            }
            (Kernel::Reference, PolicyKind::DynamicExclusion) => {
                let mut cache = DeCache::new(config);
                let stats = run_addrs(&mut cache, shard.iter().copied());
                (stats, Some(cache.de_stats()))
            }
            // PolicyKind::simulate is itself kernel-aware for dm and opt.
            _ => (
                policy
                    .simulate(config, shard)
                    .expect("dm/de/opt run on every kernel"),
                None,
            ),
        }
    });

    let mut merged = CacheStats::new();
    let mut de_merged: Option<DeStats> = None;
    {
        let _merge_span = dynex_obs::span::span("engine.merge");
        for (stats, de) in outcome.results().iter().flatten() {
            merged.merge(stats);
            if let Some(de) = de {
                let acc = de_merged.get_or_insert_with(DeStats::default);
                acc.loads += de.loads;
                acc.bypasses += de.bypasses;
            }
        }
    }

    if !outcome.has_failures() {
        debug_assert_eq!(
            merged,
            policy
                .simulate(config, addrs)
                .expect("dm/de/opt run on every kernel"),
            "set-sharded statistics diverged from the serial run"
        );
        report_sharded(policy, config, n_shards, merged);
        if let Some(de) = de_merged {
            println!("  loads {} bypasses {}", de.loads, de.bypasses);
        }
        return ExitCode::SUCCESS;
    }

    // Partial results: the merged statistics cover only the surviving
    // shards, so they are labelled as such rather than passed off as the
    // full-trace numbers.
    let counts = outcome.counts();
    eprintln!("sweep summary: {}", outcome.summary());
    if let Some(table) = outcome.failure_table(|i| format!("shard {i}")) {
        eprint!("{table}");
    }
    println!(
        "{} [set-sharded, PARTIAL {}/{} shards] {config}: {} accesses, {} misses, \
         miss rate {:.4}%",
        policy.name(),
        counts.ok,
        n_shards,
        merged.accesses(),
        merged.misses(),
        merged.miss_rate_percent()
    );
    if let Some(de) = de_merged {
        println!("  loads {} bypasses {} (partial)", de.loads, de.bypasses);
    }
    ExitCode::FAILURE
}

/// `--sweep`: simulate the dm/de/opt triple at every listed size in one
/// session. Under [`Kernel::Sweep`] the whole list shares a single trace
/// traversal ([`api::run_triples_sweep`]); under the other kernels each size
/// runs point-by-point. Stdout is byte-identical across kernels; the stderr
/// `sim:` line counts one reference per trace reference per size, so its
/// refs/s figure measures N-configuration throughput (`scripts/bench.sh`
/// parses it).
fn run_size_sweep(
    request: &SimulationRequest,
    loaded: &api::LoadedTrace,
    sizes: &[u32],
) -> ExitCode {
    let mut configs = Vec::with_capacity(sizes.len());
    for &size in sizes {
        match CacheConfig::direct_mapped(size, request.line_bytes) {
            Ok(c) => configs.push(c),
            Err(e) => {
                eprintln!("error: --sweep size {size}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let started = std::time::Instant::now();
    let triples: Vec<Triple> = match default_kernel() {
        Kernel::Sweep => api::run_triples_sweep(&configs, &loaded.addrs),
        kernel => configs
            .iter()
            .map(|&config| api::run_triple(kernel, config, &loaded.addrs))
            .collect(),
    };
    let seconds = started.elapsed().as_secs_f64();
    let refs = loaded.addrs.len() as u64 * configs.len() as u64;
    eprintln!(
        "sim: {refs} references in {seconds:.3}s ({:.0} refs/s)",
        refs as f64 / seconds.max(1e-9)
    );
    for (config, triple) in configs.iter().zip(&triples) {
        println!(
            "{config}: {} refs, dm {} de {} opt {} misses, de reduction {:.2}%",
            triple.dm.accesses(),
            triple.dm.misses(),
            triple.de.misses(),
            triple.opt.misses(),
            triple.de_reduction()
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Every session flag funnels into one SimulationRequest: validation and
    // the DYNEX_JOBS/DYNEX_REFS environment overrides live in the request
    // builder, not here. Mode flags (sharding, resilience, observability)
    // stay local — they select *how* the request runs, not *what* it means.
    let mut builder = SimulationRequest::builder();
    let mut path = None;
    let mut saw_size = false;
    let mut shard_sets = false;
    let mut sweep_sizes: Option<Vec<u32>> = None;
    let mut resilience = Resilience::default();
    let mut obs = ObsConfig {
        events_out: None,
        metrics_out: None,
        intervals_out: None,
        window: 1000,
    };

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                let Some(value) = it.next() else {
                    eprintln!("error: --size needs a value (e.g. --size 32K)");
                    return ExitCode::FAILURE;
                };
                builder.size(&value);
                saw_size = true;
            }
            "--line" => {
                let line: u32 = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --line needs a number");
                        return ExitCode::FAILURE;
                    }
                };
                builder.line(line);
            }
            "--policy" | "--org" => {
                builder.policy(&it.next().unwrap_or_default());
            }
            "--kinds" => {
                builder.kinds(&it.next().unwrap_or_default());
            }
            "--kernel" => {
                builder.kernel(&it.next().unwrap_or_default());
            }
            "--sweep" => {
                let Some(value) = it.next() else {
                    eprintln!("error: --sweep needs a size list (e.g. --sweep 1K,2K,4K)");
                    return ExitCode::FAILURE;
                };
                let mut sizes = Vec::new();
                for part in value.split(',') {
                    match parse_size(part) {
                        Some(size) => sizes.push(size),
                        None => {
                            eprintln!("error: --sweep: bad size {part:?} (use bytes, NK, or NM)");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                sweep_sizes = Some(sizes);
            }
            "--jobs" => {
                let jobs: usize = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => {
                        eprintln!("error: --jobs needs a positive number");
                        return ExitCode::FAILURE;
                    }
                };
                builder.jobs(jobs);
            }
            "--shard-sets" => shard_sets = true,
            "--job-retries" => {
                resilience.max_retries = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --job-retries needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--job-timeout-ms" => {
                resilience.deadline = match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) if v > 0 => Some(Duration::from_millis(v)),
                    _ => {
                        eprintln!("error: --job-timeout-ms needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--lenient" => {
                let max_skipped: u64 = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("error: --lenient needs a max-skipped count");
                        return ExitCode::FAILURE;
                    }
                };
                builder.lenient(max_skipped);
            }
            "--resume" => {
                let Some(value) = it.next() else {
                    eprintln!("error: --resume needs a journal file");
                    return ExitCode::FAILURE;
                };
                builder.resume(value);
            }
            "--events-out" | "--metrics-out" | "--intervals-out" => {
                let Some(value) = it.next() else {
                    eprintln!("error: {arg} needs a file path");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--events-out" => obs.events_out = Some(value),
                    "--metrics-out" => obs.metrics_out = Some(value),
                    _ => obs.intervals_out = Some(value),
                }
            }
            "--interval" => {
                obs.window = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => {
                        eprintln!("error: --interval needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--trace-out" => {
                let Some(value) = it.next() else {
                    eprintln!("error: --trace-out needs a file path");
                    return ExitCode::FAILURE;
                };
                if let Err(e) = dynex_obs::span::install_jsonl_path(&value) {
                    eprintln!("error: cannot open --trace-out {value:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        usage();
        return ExitCode::FAILURE;
    };
    if !saw_size {
        eprintln!("error: --size is required (e.g. --size 32K)");
        return ExitCode::FAILURE;
    }
    builder.trace_path(&path);
    let request = match builder.build() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if request.resume.is_some() && (shard_sets || obs.active()) {
        eprintln!(
            "error: --resume checkpoints plain runs only; it combines with \
             neither --shard-sets nor the observability outputs"
        );
        return ExitCode::FAILURE;
    }
    if sweep_sizes.is_some() && (shard_sets || obs.active() || request.resume.is_some()) {
        eprintln!(
            "error: --sweep runs plain multi-size sweeps only; it combines with \
             none of --shard-sets, --resume, or the observability outputs"
        );
        return ExitCode::FAILURE;
    }

    let read_policy = match request.max_skipped {
        Some(max_skipped) => ReadPolicy::Lenient { max_skipped },
        None => ReadPolicy::Strict,
    };
    let (trace, skipped) = match load_trace(&path, read_policy) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let loaded = api::filter_trace(&trace, request.kinds, skipped);
    if skipped > 0 {
        let mut stats = TraceStats::from_accesses(trace.iter());
        stats.record_skipped(skipped);
        eprintln!("lenient read: {skipped} corrupt record(s) skipped");
        eprintln!("trace: {stats}");
    }
    eprintln!(
        "{} references selected from {}",
        loaded.accesses.len(),
        path
    );

    // Apply the session knobs (worker count, kernel, resume journal) from
    // the request in one place.
    if let Err(e) = api::install_session(&request) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(sizes) = &sweep_sizes {
        return run_size_sweep(&request, &loaded, sizes);
    }

    if let Some(journal_path) = &request.resume {
        // The --resume path: replay the checkpointed result if present,
        // otherwise simulate and record it (all inside api::run_loaded).
        let response = match api::run_loaded(&request, &loaded) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                dynex_engine::set_global_journal(None);
                return ExitCode::FAILURE;
            }
        };
        if response.cached {
            eprintln!("replayed from journal {} (1 point)", journal_path.display());
        }
        print!("{}", response.render_text());
        dynex_engine::set_global_journal(None); // close before exit
        return ExitCode::SUCCESS;
    }

    let dm_config = match CacheConfig::direct_mapped(request.size_bytes, request.line_bytes) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if shard_sets {
        // --jobs (or the resolved session default) doubles as the shard count.
        return run_sharded(
            request.org.name(),
            dm_config,
            &loaded.addrs,
            request.jobs,
            &obs,
            resilience,
        );
    }

    if !obs.active() {
        // The uninstrumented single run shares api::execute with --resume
        // and the dynex-serve service.
        let started = std::time::Instant::now();
        let response = match api::execute(&request, &loaded) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Simulation-only throughput (trace load/decode excluded), on stderr
        // so stdout stays byte-identical across kernels and machines;
        // scripts/bench.sh parses this line.
        let seconds = started.elapsed().as_secs_f64();
        eprintln!(
            "sim: {} references in {seconds:.3}s ({:.0} refs/s)",
            response.stats.accesses(),
            response.stats.accesses() as f64 / seconds.max(1e-9)
        );
        print!("{}", response.render_text());
        return ExitCode::SUCCESS;
    }

    let accesses = &loaded.accesses;
    let addrs = &loaded.addrs;
    let report = |label: String, stats: CacheStats| {
        println!(
            "{label}: {} accesses, {} misses, miss rate {:.4}%",
            stats.accesses(),
            stats.misses(),
            stats.miss_rate_percent()
        );
    };

    // Runs a probed cache, reports its stats, then extracts the
    // `(Collector, EventLog)` probe via `into_probe` and writes the
    // requested output files.
    macro_rules! simulate_observed {
        ($cache:expr) => {{
            let mut cache = $cache;
            let stats = run(&mut cache, accesses.iter().copied());
            report(cache.label(), stats);
            let (collector, log) = cache.into_probe();
            if let Err(e) = obs.write(&collector, log.events()) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }};
    }

    match request.org {
        Org::Dm => match default_kernel() {
            Kernel::Batch => {
                let mut probe = obs.probe();
                let stats = batch_dm_probed(dm_config, addrs, &mut probe);
                report(DirectMapped::new(dm_config).label(), stats);
                let (collector, log) = probe;
                if let Err(e) = obs.write(&collector, log.events()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Kernel::Sweep => {
                let mut probes = [obs.probe()];
                let point = SweepPoint::new(dm_config, SweepPolicy::DirectMapped);
                let results = batch_sweep_probed(&[point], addrs, &mut probes);
                report(DirectMapped::new(dm_config).label(), results[0].stats());
                let [(collector, log)] = probes;
                if let Err(e) = obs.write(&collector, log.events()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Kernel::Reference => {
                simulate_observed!(DirectMapped::with_probe(dm_config, obs.probe()));
            }
        },
        Org::De => {
            let (label, stats, de_stats, collector, log) = match default_kernel() {
                Kernel::Batch => {
                    let mut probe = obs.probe();
                    let result = batch_de_probed(dm_config, addrs, &mut probe);
                    let (collector, log) = probe;
                    let de_stats = DeStats {
                        loads: result.loads,
                        bypasses: result.bypasses,
                    };
                    let label = DeCache::new(dm_config).label();
                    (label, result.stats, de_stats, collector, log)
                }
                Kernel::Sweep => {
                    let mut probes = [obs.probe()];
                    let point = SweepPoint::new(dm_config, SweepPolicy::DynamicExclusion);
                    let results = batch_sweep_probed(&[point], addrs, &mut probes);
                    let [(collector, log)] = probes;
                    let result = results[0].de().expect("DE sweep point yields DE result");
                    let de_stats = DeStats {
                        loads: result.loads,
                        bypasses: result.bypasses,
                    };
                    let label = DeCache::new(dm_config).label();
                    (label, result.stats, de_stats, collector, log)
                }
                Kernel::Reference => {
                    let mut cache = DeCache::with_probe(dm_config, obs.probe());
                    let stats = run(&mut cache, accesses.iter().copied());
                    let label = cache.label();
                    let de_stats = cache.de_stats();
                    let (collector, log) = cache.into_probe();
                    (label, stats, de_stats, collector, log)
                }
            };
            report(label, stats);
            if let Err(e) = obs.write(&collector, log.events()) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!("  loads {} bypasses {}", de_stats.loads, de_stats.bypasses);
        }
        Org::DeLastLine => {
            simulate_observed!(LastLineDeCache::with_store_and_probe(
                dm_config,
                PerfectStore::new(),
                obs.probe()
            ));
        }
        Org::Opt => {
            eprintln!(
                "note: --policy opt is a two-pass oracle without a probed hot path; \
                 observability outputs are not written"
            );
            let stats = match default_kernel() {
                Kernel::Batch => batch_opt(dm_config, addrs),
                Kernel::Sweep => {
                    let point = SweepPoint::new(dm_config, SweepPolicy::Optimal);
                    batch_sweep(&[point], addrs)[0].stats()
                }
                Kernel::Reference => {
                    OptimalDirectMapped::simulate(dm_config, accesses.iter().map(|a| a.addr()))
                }
            };
            report("optimal direct-mapped".to_owned(), stats);
        }
        Org::Ehc | Org::BwCost => {
            eprintln!(
                "note: --policy {} runs the policy-zoo driver without a probed hot \
                 path; observability outputs are not written",
                request.org.name()
            );
            let kind = request
                .org
                .policy_kind()
                .expect("ehc/bwcost are zoo policies");
            let label = if request.org == Org::Ehc {
                "expected-hit-count direct-mapped"
            } else {
                "bandwidth-aware direct-mapped"
            };
            match kind.simulate_kernel(default_kernel(), dm_config, addrs) {
                Ok(stats) => {
                    report(label.to_owned(), stats);
                    println!(
                        "  fills {} writebacks {} bandwidth {:.1} transfers/kiloref",
                        stats.fills(),
                        stats.writebacks(),
                        stats.bandwidth_per_kiloref()
                    );
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Org::TwoWay | Org::FourWay => {
            let config = match request.cache_config() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            simulate_observed!(SetAssociative::with_probe(
                config,
                Replacement::Lru,
                obs.probe()
            ));
        }
        Org::Victim => {
            simulate_observed!(VictimCache::with_probe(dm_config, 4, obs.probe()));
        }
        Org::Stream => {
            simulate_observed!(StreamBuffer::with_probe(dm_config, 4, obs.probe()));
        }
    }
    ExitCode::SUCCESS
}
