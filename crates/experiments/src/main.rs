//! `experiments` — regenerate the tables and figures of McFarling's ISCA '92
//! dynamic-exclusion paper.
//!
//! ```text
//! experiments [--refs N] [--jobs N] [--out DIR] <id>... | all | list
//! ```
//!
//! `--refs` sets the per-benchmark reference budget (default 4,000,000, or
//! the `DYNEX_REFS` environment variable); `--jobs` sets the worker count
//! for the sweep engine (default: the `DYNEX_JOBS` environment variable, or
//! all available cores — results are bit-identical for any value); `--out`
//! writes one CSV per experiment into the directory. Ids: see
//! `experiments list`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dynex_experiments::{figures, Workloads};

struct Options {
    refs: usize,
    jobs: usize,
    out: Option<PathBuf>,
    ids: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut refs = std::env::var("DYNEX_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000_000usize);
    let mut jobs = 0; // 0 = auto (DYNEX_JOBS or available cores)
    let mut out = None;
    let mut ids = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--refs" => {
                let value = args.next().ok_or("--refs needs a value")?;
                refs = value
                    .parse()
                    .map_err(|_| format!("bad --refs value {value:?}"))?;
            }
            "--jobs" => {
                let value = args.next().ok_or("--jobs needs a value")?;
                jobs = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --jobs value {value:?}"))?;
            }
            "--out" => {
                let value = args.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                ids.push("help".to_owned());
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        ids.push("help".to_owned());
    }
    Ok(Options {
        refs,
        jobs,
        out,
        ids,
    })
}

fn print_help() {
    println!("usage: experiments [--refs N] [--jobs N] [--out DIR] <id>... | all | list");
    println!();
    println!("experiment ids:");
    for id in figures::ALL_IDS {
        println!("  {id}");
    }
    println!();
    println!("see DESIGN.md for the paper artifact each id reproduces.");
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if options.ids.iter().any(|i| i == "help") {
        print_help();
        return ExitCode::SUCCESS;
    }
    if options.ids.iter().any(|i| i == "list") {
        for id in figures::ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if options.ids.iter().any(|i| i == "all") {
        figures::ALL_IDS.iter().map(|&s| s.to_owned()).collect()
    } else {
        options.ids.clone()
    };

    for id in &ids {
        if !figures::ALL_IDS.contains(&id.as_str()) {
            eprintln!("error: unknown experiment {id:?} (try `experiments list`)");
            return ExitCode::FAILURE;
        }
    }

    // 0 keeps auto-detection (DYNEX_JOBS or available cores); the sweep
    // engine's results are bit-identical for every worker count.
    dynex_engine::set_default_jobs(options.jobs);
    eprintln!("sweep engine: {} worker(s)", dynex_engine::default_jobs());

    eprintln!("generating {} references per benchmark...", options.refs);
    let started = Instant::now();
    let workloads = Workloads::generate(options.refs);
    eprintln!(
        "workloads ready in {:.1}s\n",
        started.elapsed().as_secs_f64()
    );

    if let Some(dir) = &options.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for id in &ids {
        let started = Instant::now();
        let table = figures::run(id, &workloads).expect("ids validated above");
        println!("{table}");
        eprintln!("[{id} in {:.1}s]\n", started.elapsed().as_secs_f64());
        if let Some(dir) = &options.out {
            let path = dir.join(format!("{id}.csv"));
            if let Err(e) = table.save_csv(&path) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
