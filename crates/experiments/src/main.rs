//! `experiments` — regenerate the tables and figures of McFarling's ISCA '92
//! dynamic-exclusion paper.
//!
//! ```text
//! experiments [--refs N] [--jobs N] [--kernel reference|batch|sweep] [--out DIR]
//!             [--resume FILE] [--trace-out FILE] <id>... | all | list
//! ```
//!
//! `--refs` sets the per-benchmark reference budget (default 4,000,000, or
//! the `DYNEX_REFS` environment variable); `--jobs` sets the worker count
//! for the sweep engine (default: the `DYNEX_JOBS` environment variable, or
//! all available cores — results are bit-identical for any value);
//! `--kernel` selects the reference simulators, the fused batch kernel, or
//! the one-pass multi-configuration sweep kernel — under `sweep`, every
//! journaled figure sweep groups its points by trace and carries each group
//! through a single traversal (default `batch`; output is bit-identical for
//! any choice); `--out`
//! writes one CSV per experiment into the directory; `--resume` checkpoints
//! every completed sweep point into an append-only journal and replays it on
//! the next run, so an interrupted sweep picks up where it left off and
//! produces byte-identical output. Ids: see `experiments list`.
//!
//! All session flags build one [`dynex_experiments::api::SimulationRequest`]
//! — validation, environment overrides, and journal installation live in
//! the request API, not here.
//!
//! Experiments are fault-isolated: a panic inside one id fails that id only;
//! the remaining ids still run and the exit status is nonzero only when
//! failures remain.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dynex_experiments::api::{self, SimulationRequest};
use dynex_experiments::{figures, Workloads};

struct Options {
    request: SimulationRequest,
    out: Option<PathBuf>,
    ids: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut builder = SimulationRequest::builder();
    let mut out = None;
    let mut ids = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--refs" => {
                let value = args.next().ok_or("--refs needs a value")?;
                let refs: usize = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --refs value {value:?} (positive integer)"))?;
                builder.refs(refs);
            }
            "--jobs" => {
                let value = args.next().ok_or("--jobs needs a value")?;
                let jobs: usize = value
                    .parse()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or(format!("bad --jobs value {value:?}"))?;
                builder.jobs(jobs);
            }
            "--kernel" => {
                let value = args.next().ok_or("--kernel needs a value")?;
                builder.kernel(&value);
            }
            "--out" => {
                let value = args.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(value));
            }
            "--resume" => {
                let value = args.next().ok_or("--resume needs a journal file")?;
                builder.resume(value);
            }
            "--trace-out" => {
                let value = args.next().ok_or("--trace-out needs a file path")?;
                dynex_obs::span::install_jsonl_path(&value)
                    .map_err(|e| format!("cannot open --trace-out {value:?}: {e}"))?;
            }
            "--help" | "-h" => {
                ids.push("help".to_owned());
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        ids.push("help".to_owned());
    }
    // One validation pass for everything, including DYNEX_JOBS/DYNEX_REFS —
    // the builder is the workspace's single env-override path, and a typo'd
    // variable fails loudly even for `list`.
    let request = builder.build().map_err(|e| e.to_string())?;
    Ok(Options { request, out, ids })
}

fn print_help() {
    println!(
        "usage: experiments [--refs N] [--jobs N] [--kernel reference|batch|sweep] [--out DIR] \
         [--resume FILE] [--trace-out FILE] <id>... | all | list"
    );
    println!();
    println!("  --kernel K     simulation kernel (default batch); both kernels produce");
    println!("                 bit-identical results, batch is the fast fused path");
    println!("  --resume FILE  checkpoint completed sweep points into FILE (JSONL)");
    println!("                 and replay them on the next run with the same FILE");
    println!("  --trace-out FILE  stream closed tracing spans into FILE (JSONL)");
    println!();
    println!("experiment ids:");
    for id in figures::ALL_IDS {
        println!("  {id}");
    }
    println!();
    println!("see DESIGN.md for the paper artifact each id reproduces.");
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if options.ids.iter().any(|i| i == "help") {
        print_help();
        return ExitCode::SUCCESS;
    }
    if options.ids.iter().any(|i| i == "list") {
        for id in figures::ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if options.ids.iter().any(|i| i == "all") {
        figures::ALL_IDS.iter().map(|&s| s.to_owned()).collect()
    } else {
        options.ids.clone()
    };

    for id in &ids {
        if !figures::ALL_IDS.contains(&id.as_str()) {
            eprintln!("error: unknown experiment {id:?} (try `experiments list`)");
            return ExitCode::FAILURE;
        }
    }

    // Install the session-wide knobs (worker count, kernel, resume journal)
    // from the request in one place.
    let session = match api::install_session(&options.request) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "sweep engine: {} worker(s), {} kernel",
        session.jobs, session.kernel
    );
    if let Some(journal) = &session.journal {
        eprintln!(
            "resume journal {}: {} checkpointed point(s) loaded{}",
            journal.path.display(),
            journal.len,
            if journal.dropped_lines > 0 {
                format!(" ({} torn line(s) dropped)", journal.dropped_lines)
            } else {
                String::new()
            }
        );
    }

    eprintln!(
        "generating {} references per benchmark...",
        options.request.refs
    );
    let started = Instant::now();
    let workloads = Workloads::generate(options.request.refs);
    eprintln!(
        "workloads ready in {:.1}s\n",
        started.elapsed().as_secs_f64()
    );

    if let Some(dir) = &options.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    // Fault isolation: one experiment panicking must not take down the ids
    // after it. Failures are collected and summarized; partial results
    // (every id that did complete) are still printed and saved.
    let mut failed: Vec<(String, String)> = Vec::new();
    let mut completed = 0usize;
    for id in &ids {
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            figures::run(id, &workloads).expect("ids validated above")
        }));
        let table = match outcome {
            Ok(table) => table,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_owned());
                eprintln!("[{id} FAILED: {message}]\n");
                failed.push((id.clone(), message));
                continue;
            }
        };
        println!("{table}");
        eprintln!("[{id} in {:.1}s]\n", started.elapsed().as_secs_f64());
        completed += 1;
        if let Some(dir) = &options.out {
            let path = dir.join(format!("{id}.csv"));
            if let Err(e) = table.save_csv(&path) {
                eprintln!("error: cannot write {}: {e}", path.display());
                failed.push((id.clone(), format!("save_csv: {e}")));
            }
        }
    }

    if options.request.resume.is_some() {
        let replayed = dynex_engine::with_global_journal(|j| (j.replayed(), j.len()));
        if let Some((replayed, total)) = replayed {
            eprintln!("resume journal: {replayed} point(s) replayed, {total} checkpointed");
        }
        dynex_engine::set_global_journal(None); // close before exit
    }

    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("summary: {} ok | {} failed", completed, failed.len());
        for (id, message) in &failed {
            eprintln!("  {id}: {message}");
        }
        ExitCode::FAILURE
    }
}
