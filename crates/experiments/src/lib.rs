//! Experiment harness regenerating every table and figure of McFarling's
//! ISCA '92 dynamic-exclusion paper.
//!
//! Each experiment is a function from a shared [`Workloads`] bundle (the ten
//! synthetic SPEC'89 traces) to a [`Table`] of results; the `experiments`
//! binary prints the tables and optionally writes CSVs. The per-experiment
//! index — which paper artifact each function reproduces, with which
//! parameters — lives in `DESIGN.md`; measured-vs-paper numbers live in
//! `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use dynex_experiments::{figures, Workloads};
//!
//! // A tiny budget keeps doctests fast; real runs use millions.
//! let workloads = Workloads::generate(20_000);
//! let table = figures::fig3(&workloads);
//! assert_eq!(table.n_rows(), 10); // one row per benchmark
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod figures;
mod runner;
mod table;
mod workloads;

#[allow(deprecated)]
pub use runner::{
    triple, triple_kernel, triple_lastline, triple_observed, triple_to_json, triples,
    triples_lastline, triples_to_jsonl, ObservedTriple, Triple,
};
pub use table::Table;
pub use workloads::Workloads;

/// The cache sizes (KB) swept by the size-axis figures (4, 5, 12, 14, 15).
pub const SIZE_SWEEP_KB: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The line sizes (bytes) swept by Figure 11.
pub const LINE_SWEEP_BYTES: [u32; 5] = [4, 8, 16, 32, 64];

/// The L2:L1 size ratios swept by Figures 7–9.
pub const L2_RATIO_SWEEP: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The paper's headline instruction cache size: 32KB.
pub const HEADLINE_SIZE: u32 = 32 * 1024;
