//! Memory reference traces for the `dynex` cache simulator.
//!
//! This crate defines the trace model shared by every other crate in the
//! workspace: a reference is an [`Access`] (a byte address plus an
//! [`AccessKind`]), traces are stored compactly as [`PackedAccess`] words
//! inside a [`Trace`], and streams can be summarized with [`TraceStats`],
//! filtered with the adapters in [`filter`], and round-tripped through the
//! binary/text formats in [`io`].
//!
//! The model matches the tracing setup of McFarling's ISCA '92 dynamic
//! exclusion paper: word-granular (4-byte) references from a 32-bit address
//! space, tagged as instruction fetches, data reads, or data writes.
//!
//! # Examples
//!
//! ```
//! use dynex_trace::{Access, Trace, TraceStats};
//!
//! let trace: Trace = [Access::fetch(0x1000), Access::read(0x8000), Access::fetch(0x1004)]
//!     .into_iter()
//!     .collect();
//! let stats = TraceStats::from_accesses(trace.iter());
//! assert_eq!(stats.total(), 3);
//! assert_eq!(stats.fetches(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod filter;
pub mod io;
mod packed;
mod stats;
mod trace;

pub use access::{Access, AccessKind};
pub use io::{ReadPolicy, ReadReport};
pub use packed::{AddressRangeError, PackedAccess, MAX_ADDR};
pub use stats::TraceStats;
pub use trace::Trace;
