//! Summary statistics over a reference stream.

use std::collections::HashSet;
use std::fmt;

use crate::{Access, AccessKind};

/// Aggregate statistics of a reference stream: counts per kind, footprint
/// (distinct words touched), and address range.
///
/// Used by the `fig2` experiment to report the benchmark characterization
/// table and by tests to validate generated workloads.
///
/// # Examples
///
/// ```
/// use dynex_trace::{Access, TraceStats};
///
/// let stats = TraceStats::from_accesses(
///     [Access::fetch(0x100), Access::fetch(0x100), Access::read(0x900)].into_iter(),
/// );
/// assert_eq!(stats.total(), 3);
/// assert_eq!(stats.footprint_words(), 2);
/// assert_eq!(stats.instruction_footprint_words(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    fetches: u64,
    reads: u64,
    writes: u64,
    instr_words: u64,
    data_words: u64,
    min_addr: Option<u32>,
    max_addr: Option<u32>,
    skipped: u64,
}

impl TraceStats {
    /// Computes statistics by consuming a stream of accesses.
    pub fn from_accesses<I: IntoIterator<Item = Access>>(accesses: I) -> TraceStats {
        let mut stats = TraceStats::default();
        let mut instr_words: HashSet<u32> = HashSet::new();
        let mut data_words: HashSet<u32> = HashSet::new();
        for a in accesses {
            match a.kind() {
                AccessKind::Fetch => {
                    stats.fetches += 1;
                    instr_words.insert(a.word_addr());
                }
                AccessKind::Read => {
                    stats.reads += 1;
                    data_words.insert(a.word_addr());
                }
                AccessKind::Write => {
                    stats.writes += 1;
                    data_words.insert(a.word_addr());
                }
            }
            stats.min_addr = Some(stats.min_addr.map_or(a.addr(), |m| m.min(a.addr())));
            stats.max_addr = Some(stats.max_addr.map_or(a.addr(), |m| m.max(a.addr())));
        }
        stats.instr_words = instr_words.len() as u64;
        // A word can be both fetched and read (constants in code); count data
        // footprint as distinct data words regardless of overlap.
        stats.data_words = data_words.len() as u64;
        stats
    }

    /// Total number of references.
    pub fn total(&self) -> u64 {
        self.fetches + self.reads + self.writes
    }

    /// Adds `n` skipped records to the tally (corrupt words/lines dropped by
    /// a lenient read — see [`crate::io::ReadPolicy::Lenient`]). Skips are
    /// not references: they never contribute to [`TraceStats::total`] or the
    /// footprints.
    pub fn record_skipped(&mut self, n: u64) {
        self.skipped += n;
    }

    /// Records skipped during ingestion (0 unless fed by a lenient read).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Number of instruction fetches.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Number of data reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of data writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of data references (reads + writes).
    pub fn data_refs(&self) -> u64 {
        self.reads + self.writes
    }

    /// Distinct words fetched as instructions.
    pub fn instruction_footprint_words(&self) -> u64 {
        self.instr_words
    }

    /// Distinct words referenced as data.
    pub fn data_footprint_words(&self) -> u64 {
        self.data_words
    }

    /// Distinct words touched by any reference kind.
    ///
    /// Instruction and data footprints rarely overlap in generated workloads,
    /// so this is reported as their sum; it is an upper bound when they do.
    pub fn footprint_words(&self) -> u64 {
        self.instr_words + self.data_words
    }

    /// Instruction footprint in bytes.
    pub fn instruction_footprint_bytes(&self) -> u64 {
        self.instr_words * 4
    }

    /// Data footprint in bytes.
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_words * 4
    }

    /// Fraction of references that are instruction fetches, in [0, 1].
    ///
    /// Returns 0 for an empty stream.
    pub fn instruction_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.fetches as f64 / self.total() as f64
        }
    }

    /// Lowest byte address referenced, if the stream was non-empty.
    pub fn min_addr(&self) -> Option<u32> {
        self.min_addr
    }

    /// Highest byte address referenced, if the stream was non-empty.
    pub fn max_addr(&self) -> Option<u32> {
        self.max_addr
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refs ({} fetch / {} read / {} write), I-footprint {} KB, D-footprint {} KB",
            self.total(),
            self.fetches,
            self.reads,
            self.writes,
            self.instruction_footprint_bytes() / 1024,
            self.data_footprint_bytes() / 1024,
        )?;
        if self.skipped > 0 {
            write!(f, ", {} skipped", self.skipped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream() {
        let s = TraceStats::from_accesses(std::iter::empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.footprint_words(), 0);
        assert_eq!(s.min_addr(), None);
        assert_eq!(s.max_addr(), None);
        assert_eq!(s.instruction_fraction(), 0.0);
    }

    #[test]
    fn counts_and_footprints() {
        let s = TraceStats::from_accesses([
            Access::fetch(0x100),
            Access::fetch(0x104),
            Access::fetch(0x100),
            Access::read(0x2000),
            Access::write(0x2000),
            Access::write(0x2004),
        ]);
        assert_eq!(s.total(), 6);
        assert_eq!(s.fetches(), 3);
        assert_eq!(s.reads(), 1);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.data_refs(), 3);
        assert_eq!(s.instruction_footprint_words(), 2);
        assert_eq!(s.data_footprint_words(), 2);
        assert_eq!(s.footprint_words(), 4);
        assert_eq!(s.instruction_footprint_bytes(), 8);
    }

    #[test]
    fn address_range() {
        let s = TraceStats::from_accesses([Access::read(0x40), Access::fetch(0x9000)]);
        assert_eq!(s.min_addr(), Some(0x40));
        assert_eq!(s.max_addr(), Some(0x9000));
    }

    #[test]
    fn instruction_fraction() {
        let s = TraceStats::from_accesses([
            Access::fetch(0),
            Access::fetch(4),
            Access::fetch(8),
            Access::read(0x100),
        ]);
        assert!((s.instruction_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s = TraceStats::from_accesses([Access::fetch(0)]);
        assert!(s.to_string().contains("1 refs"));
        assert!(!s.to_string().contains("skipped"));
    }

    #[test]
    fn skipped_records_are_counted_but_are_not_references() {
        let mut s = TraceStats::from_accesses([Access::fetch(0), Access::read(8)]);
        assert_eq!(s.skipped(), 0);
        s.record_skipped(3);
        s.record_skipped(1);
        assert_eq!(s.skipped(), 4);
        assert_eq!(s.total(), 2);
        assert!(s.to_string().contains("4 skipped"));
    }
}
