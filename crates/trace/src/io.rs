//! Reading and writing traces.
//!
//! Two formats are supported:
//!
//! * **Binary** (`.dxt`): a 4-byte magic `DXT1`, a little-endian `u64`
//!   reference count, then one little-endian `u32` [`PackedAccess`] per
//!   reference. Compact and fast; the native interchange format.
//! * **Text**: one reference per line, `<mnemonic> <hex addr>` (e.g.
//!   `F 0x00401000`), `#`-prefixed comment lines ignored. Human-readable,
//!   handy for fixtures and debugging.
//!
//! Readers and writers are generic over [`std::io::Read`] / [`std::io::Write`]
//! by value; pass `&mut reader` to keep using the underlying stream afterward.
//!
//! # Lenient ingestion
//!
//! Production traces are imperfect: a flipped bit in a packed word or a
//! mangled text line should not make a multi-gigabyte trace unreadable. The
//! `*_with` readers take a [`ReadPolicy`]: [`ReadPolicy::Strict`] (the
//! default, what [`read_binary`] / [`read_text`] use) fails on the first
//! corrupt record, while [`ReadPolicy::Lenient`] skips corrupt words/lines,
//! counts them in a [`ReadReport`], emits a [`dynex_obs::Event::TraceSkip`]
//! per skip through the supplied probe, and still fails fast with
//! [`TraceIoError::SkipBudgetExceeded`] once the skip count passes
//! `max_skipped`.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use dynex_obs::{Event, NoopProbe, Probe};

use crate::{Access, AccessKind, PackedAccess, Trace};

/// How a reader treats corrupt records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Fail on the first corrupt word / unparsable line (the historical
    /// behaviour of [`read_binary`] / [`read_text`]).
    #[default]
    Strict,
    /// Skip corrupt records, counting them in the [`ReadReport`] and
    /// emitting one [`Event::TraceSkip`] per skip, until more than
    /// `max_skipped` records have been dropped — then fail with
    /// [`TraceIoError::SkipBudgetExceeded`].
    Lenient {
        /// Largest tolerated number of skipped records.
        max_skipped: u64,
    },
}

/// What a lenient read skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadReport {
    /// Records dropped (corrupt packed words, unparsable lines, and — for
    /// binary traces — references lost to mid-stream truncation).
    pub skipped: u64,
    /// Offset of the first skip (reference index for binary traces, 1-based
    /// line number for text), if anything was skipped.
    pub first_skip: Option<u64>,
}

impl ReadReport {
    fn note<P: Probe>(
        &mut self,
        policy: ReadPolicy,
        offset: u64,
        count: u64,
        probe: &mut P,
    ) -> Result<(), TraceIoError> {
        self.skipped += count;
        self.first_skip.get_or_insert(offset);
        probe.emit(Event::TraceSkip { offset });
        match policy {
            ReadPolicy::Lenient { max_skipped } if self.skipped > max_skipped => {
                Err(TraceIoError::SkipBudgetExceeded {
                    skipped: self.skipped,
                    max_skipped,
                    offset,
                })
            }
            _ => Ok(()),
        }
    }
}

/// Magic bytes identifying the binary trace format, version 1.
pub const BINARY_MAGIC: [u8; 4] = *b"DXT1";

/// Error produced while reading or writing a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// An underlying IO failure.
    Io(io::Error),
    /// The binary magic did not match [`BINARY_MAGIC`].
    BadMagic([u8; 4]),
    /// The stream ended before the declared reference count was read.
    Truncated {
        /// References the header promised.
        expected: u64,
        /// References actually present.
        actual: u64,
    },
    /// A packed word used the reserved kind encoding.
    CorruptAccess {
        /// Position (in references) of the corrupt word.
        index: u64,
    },
    /// A text line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: u64,
        /// The offending line content.
        content: String,
    },
    /// A lenient read skipped more records than its budget allows.
    SkipBudgetExceeded {
        /// Records skipped so far (including the one that broke the budget).
        skipped: u64,
        /// The configured [`ReadPolicy::Lenient`] budget.
        max_skipped: u64,
        /// Offset of the skip that broke the budget (reference index for
        /// binary traces, 1-based line number for text).
        offset: u64,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io failure: {e}"),
            TraceIoError::BadMagic(m) => {
                let printable: String = m
                    .iter()
                    .map(|&b| if b.is_ascii_graphic() { b as char } else { '.' })
                    .collect();
                write!(
                    f,
                    "bad trace magic {m:?} ({printable:?}), expected \"DXT1\""
                )
            }
            TraceIoError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated trace: header declared {expected} references, found {actual}"
                )
            }
            TraceIoError::CorruptAccess { index } => {
                write!(f, "corrupt packed access at reference {index}")
            }
            TraceIoError::BadLine { line, content } => {
                write!(f, "unparsable trace line {line}: {content:?}")
            }
            TraceIoError::SkipBudgetExceeded {
                skipped,
                max_skipped,
                offset,
            } => {
                write!(
                    f,
                    "lenient read gave up at offset {offset}: {skipped} records \
                     skipped, budget {max_skipped}"
                )
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> TraceIoError {
        TraceIoError::Io(e)
    }
}

/// Writes `trace` in the binary format.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on any underlying write failure.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use dynex_trace::{io::{read_binary, write_binary}, Access, Trace};
///
/// let trace: Trace = [Access::fetch(0x40)].into_iter().collect();
/// let mut buf = Vec::new();
/// write_binary(&mut buf, &trace)?;
/// let back = read_binary(&buf[..])?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_binary<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    writer.write_all(&BINARY_MAGIC)?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(4 * 1024);
    for chunk in trace.as_packed().chunks(1024) {
        buf.clear();
        for p in chunk {
            buf.extend_from_slice(&p.to_raw().to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Reads a trace in the binary format.
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] for foreign data,
/// [`TraceIoError::Truncated`] if the stream ends early,
/// [`TraceIoError::CorruptAccess`] for reserved kind bits, and
/// [`TraceIoError::Io`] for underlying failures.
pub fn read_binary<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    read_binary_with(reader, ReadPolicy::Strict, NoopProbe).map(|(trace, _)| trace)
}

/// Reads a binary trace under a [`ReadPolicy`], emitting one
/// [`Event::TraceSkip`] per skipped record through `probe`.
///
/// The magic and the 12-byte header are always strict — a wrong magic or a
/// header the stream cannot even supply is a format error, not noise. Under
/// [`ReadPolicy::Lenient`], corrupt packed words are skipped one by one and
/// a mid-stream truncation ends the read with the missing tail counted as
/// skipped (one `TraceSkip` event at the truncation point).
///
/// # Errors
///
/// As [`read_binary`], plus [`TraceIoError::SkipBudgetExceeded`] when a
/// lenient read drops more than `max_skipped` records.
///
/// # Examples
///
/// ```
/// use dynex_obs::NoopProbe;
/// use dynex_trace::io::{read_binary_with, write_binary, ReadPolicy};
/// use dynex_trace::{Access, Trace};
///
/// let trace: Trace = [Access::fetch(0x40), Access::read(0x80)].into_iter().collect();
/// let mut buf = Vec::new();
/// write_binary(&mut buf, &trace).unwrap();
/// buf[12..16].copy_from_slice(&(3u32 << 30).to_le_bytes()); // corrupt word 0
/// let (back, report) =
///     read_binary_with(&buf[..], ReadPolicy::Lenient { max_skipped: 4 }, NoopProbe).unwrap();
/// assert_eq!(back.len(), 1);
/// assert_eq!(report.skipped, 1);
/// assert_eq!(report.first_skip, Some(0));
/// ```
pub fn read_binary_with<R: Read, P: Probe>(
    mut reader: R,
    policy: ReadPolicy,
    mut probe: P,
) -> Result<(Trace, ReadReport), TraceIoError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != BINARY_MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    let mut count_bytes = [0u8; 8];
    reader.read_exact(&mut count_bytes)?;
    let expected = u64::from_le_bytes(count_bytes);

    let mut trace = Trace::with_capacity(expected.min(1 << 28) as usize);
    let mut report = ReadReport::default();
    let mut word = [0u8; 4];
    for index in 0..expected {
        if let Err(e) = reader.read_exact(&mut word) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                if let ReadPolicy::Lenient { .. } = policy {
                    // The rest of the trace is gone; count the missing tail
                    // as one truncation skip and stop cleanly if the budget
                    // still covers it.
                    report.note(policy, index, expected - index, &mut probe)?;
                    break;
                }
                return Err(TraceIoError::Truncated {
                    expected,
                    actual: index,
                });
            }
            return Err(e.into());
        }
        let raw = u32::from_le_bytes(word);
        match PackedAccess::from_raw(raw) {
            Some(packed) => trace.push(packed.unpack()),
            None => match policy {
                ReadPolicy::Strict => return Err(TraceIoError::CorruptAccess { index }),
                ReadPolicy::Lenient { .. } => report.note(policy, index, 1, &mut probe)?,
            },
        }
    }
    Ok((trace, report))
}

/// Writes `trace` in the one-reference-per-line text format.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on any underlying write failure.
pub fn write_text<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    for access in trace.iter() {
        writeln!(
            writer,
            "{} {:#010x}",
            access.kind().mnemonic(),
            access.addr()
        )?;
    }
    Ok(())
}

/// Reads a trace in the text format. Blank lines and lines starting with `#`
/// are ignored.
///
/// # Errors
///
/// Returns [`TraceIoError::BadLine`] with the offending line number for any
/// line that is not `<F|R|W> <address>` (address decimal or `0x`-hex), and
/// [`TraceIoError::Io`] for underlying failures.
pub fn read_text<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    read_text_with(reader, ReadPolicy::Strict, NoopProbe).map(|(trace, _)| trace)
}

/// Reads a text trace under a [`ReadPolicy`], emitting one
/// [`Event::TraceSkip`] per skipped line through `probe`.
///
/// Under [`ReadPolicy::Lenient`], unparsable lines are skipped (blank and
/// `#` comment lines are never counted as skips).
///
/// # Errors
///
/// As [`read_text`], plus [`TraceIoError::SkipBudgetExceeded`] when a
/// lenient read drops more than `max_skipped` lines.
pub fn read_text_with<R: Read, P: Probe>(
    reader: R,
    policy: ReadPolicy,
    mut probe: P,
) -> Result<(Trace, ReadReport), TraceIoError> {
    let mut trace = Trace::new();
    let mut report = ReadReport::default();
    let buffered = BufReader::new(reader);
    for (i, line) in buffered.lines().enumerate() {
        let line = line?;
        let lineno = i as u64 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_text_line(trimmed) {
            Some(access) => trace.push(access),
            None => match policy {
                ReadPolicy::Strict => {
                    return Err(TraceIoError::BadLine {
                        line: lineno,
                        content: trimmed.to_owned(),
                    })
                }
                ReadPolicy::Lenient { .. } => report.note(policy, lineno, 1, &mut probe)?,
            },
        }
    }
    Ok((trace, report))
}

fn parse_text_line(line: &str) -> Option<Access> {
    let mut parts = line.split_whitespace();
    let kind_token = parts.next()?;
    let addr_token = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let mut kind_chars = kind_token.chars();
    let kind = AccessKind::from_mnemonic(kind_chars.next()?)?;
    if kind_chars.next().is_some() {
        return None;
    }
    let addr = if let Some(hex) = addr_token
        .strip_prefix("0x")
        .or_else(|| addr_token.strip_prefix("0X"))
    {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        addr_token.parse().ok()?
    };
    Some(Access::new(addr, kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        [
            Access::fetch(0x1000),
            Access::read(0x8000),
            Access::write(0x8004),
            Access::fetch(0x1004),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), t);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic(_)));
    }

    #[test]
    fn binary_detects_truncation() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(&buf[..]).unwrap_err();
        match err {
            TraceIoError::Truncated {
                expected: 4,
                actual: 3,
            } => {}
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn binary_detects_corrupt_kind() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        // Overwrite the first access with reserved kind bits.
        let bad = (3u32 << 30).to_le_bytes();
        buf[12..16].copy_from_slice(&bad);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::CorruptAccess { index: 0 }));
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        assert_eq!(read_text(&buf[..]).unwrap(), t);
    }

    #[test]
    fn text_accepts_comments_blanks_and_decimal() {
        let src = "# a comment\n\nF 0x100\nR 256\n";
        let t = read_text(src.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), Some(Access::fetch(0x100)));
        assert_eq!(t.get(1), Some(Access::read(256)));
    }

    #[test]
    fn text_rejects_garbage_with_line_number() {
        let err = read_text("F 0x100\nnot a line\n".as_bytes()).unwrap_err();
        match err {
            TraceIoError::BadLine { line: 2, content } => assert_eq!(content, "not a line"),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn text_rejects_extra_tokens_and_bad_kind() {
        assert!(read_text("F 0x100 extra\n".as_bytes()).is_err());
        assert!(read_text("Q 0x100\n".as_bytes()).is_err());
        assert!(read_text("FF 0x100\n".as_bytes()).is_err());
    }

    #[test]
    fn lenient_binary_skips_corrupt_words_and_counts_them() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        // Corrupt words 1 and 3 (reserved kind bits).
        for index in [1usize, 3] {
            buf[12 + 4 * index..16 + 4 * index].copy_from_slice(&(3u32 << 30).to_le_bytes());
        }
        let mut log = dynex_obs::EventLog::new();
        let (trace, report) =
            read_binary_with(&buf[..], ReadPolicy::Lenient { max_skipped: 2 }, &mut log).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.first_skip, Some(1));
        let offsets: Vec<u64> = log
            .events()
            .iter()
            .map(|e| match e {
                dynex_obs::Event::TraceSkip { offset } => *offset,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(offsets, vec![1, 3]);
    }

    #[test]
    fn lenient_budget_is_a_hard_ceiling() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        for index in [0usize, 1] {
            buf[12 + 4 * index..16 + 4 * index].copy_from_slice(&(3u32 << 30).to_le_bytes());
        }
        let err = read_binary_with(&buf[..], ReadPolicy::Lenient { max_skipped: 1 }, NoopProbe)
            .unwrap_err();
        match err {
            TraceIoError::SkipBudgetExceeded {
                skipped: 2,
                max_skipped: 1,
                offset: 1,
            } => {}
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn lenient_binary_tolerates_truncation_within_budget() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 6); // loses the last two references
        let (trace, report) =
            read_binary_with(&buf[..], ReadPolicy::Lenient { max_skipped: 2 }, NoopProbe).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.first_skip, Some(2));
        // A strict read of the same bytes still fails.
        assert!(matches!(
            read_binary(&buf[..]).unwrap_err(),
            TraceIoError::Truncated { .. }
        ));
    }

    #[test]
    fn lenient_text_skips_bad_lines_by_line_number() {
        let src = "F 0x100\nnot a line\nR 256\nQ 1\n";
        let mut counting = dynex_obs::CountingProbe::new();
        let (trace, report) = read_text_with(
            src.as_bytes(),
            ReadPolicy::Lenient { max_skipped: 5 },
            &mut counting,
        )
        .unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.first_skip, Some(2));
        assert_eq!(counting.counts().trace_skips, 2);
    }

    #[test]
    fn strict_policy_matches_plain_readers() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        let (trace, report) = read_binary_with(&buf[..], ReadPolicy::default(), NoopProbe).unwrap();
        assert_eq!(trace, t);
        assert_eq!(report, ReadReport::default());
    }

    #[test]
    fn error_display_and_source() {
        let io_err: TraceIoError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
        assert!(io_err.source().is_some());
        assert!(TraceIoError::BadMagic(*b"ABCD").source().is_none());
    }
}
