//! Reading and writing traces.
//!
//! Two formats are supported:
//!
//! * **Binary** (`.dxt`): a 4-byte magic `DXT1`, a little-endian `u64`
//!   reference count, then one little-endian `u32` [`PackedAccess`] per
//!   reference. Compact and fast; the native interchange format.
//! * **Text**: one reference per line, `<mnemonic> <hex addr>` (e.g.
//!   `F 0x00401000`), `#`-prefixed comment lines ignored. Human-readable,
//!   handy for fixtures and debugging.
//!
//! Readers and writers are generic over [`std::io::Read`] / [`std::io::Write`]
//! by value; pass `&mut reader` to keep using the underlying stream afterward.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::{Access, AccessKind, PackedAccess, Trace};

/// Magic bytes identifying the binary trace format, version 1.
pub const BINARY_MAGIC: [u8; 4] = *b"DXT1";

/// Error produced while reading or writing a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// An underlying IO failure.
    Io(io::Error),
    /// The binary magic did not match [`BINARY_MAGIC`].
    BadMagic([u8; 4]),
    /// The stream ended before the declared reference count was read.
    Truncated {
        /// References the header promised.
        expected: u64,
        /// References actually present.
        actual: u64,
    },
    /// A packed word used the reserved kind encoding.
    CorruptAccess {
        /// Position (in references) of the corrupt word.
        index: u64,
    },
    /// A text line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: u64,
        /// The offending line content.
        content: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io failure: {e}"),
            TraceIoError::BadMagic(m) => write!(f, "bad trace magic {m:?}, expected \"DXT1\""),
            TraceIoError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated trace: header declared {expected} references, found {actual}"
                )
            }
            TraceIoError::CorruptAccess { index } => {
                write!(f, "corrupt packed access at reference {index}")
            }
            TraceIoError::BadLine { line, content } => {
                write!(f, "unparsable trace line {line}: {content:?}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> TraceIoError {
        TraceIoError::Io(e)
    }
}

/// Writes `trace` in the binary format.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on any underlying write failure.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use dynex_trace::{io::{read_binary, write_binary}, Access, Trace};
///
/// let trace: Trace = [Access::fetch(0x40)].into_iter().collect();
/// let mut buf = Vec::new();
/// write_binary(&mut buf, &trace)?;
/// let back = read_binary(&buf[..])?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_binary<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    writer.write_all(&BINARY_MAGIC)?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(4 * 1024);
    for chunk in trace.as_packed().chunks(1024) {
        buf.clear();
        for p in chunk {
            buf.extend_from_slice(&p.to_raw().to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Reads a trace in the binary format.
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] for foreign data,
/// [`TraceIoError::Truncated`] if the stream ends early,
/// [`TraceIoError::CorruptAccess`] for reserved kind bits, and
/// [`TraceIoError::Io`] for underlying failures.
pub fn read_binary<R: Read>(mut reader: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != BINARY_MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    let mut count_bytes = [0u8; 8];
    reader.read_exact(&mut count_bytes)?;
    let expected = u64::from_le_bytes(count_bytes);

    let mut trace = Trace::with_capacity(expected.min(1 << 28) as usize);
    let mut word = [0u8; 4];
    for index in 0..expected {
        if let Err(e) = reader.read_exact(&mut word) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                return Err(TraceIoError::Truncated {
                    expected,
                    actual: index,
                });
            }
            return Err(e.into());
        }
        let raw = u32::from_le_bytes(word);
        let packed = PackedAccess::from_raw(raw).ok_or(TraceIoError::CorruptAccess { index })?;
        trace.push(packed.unpack());
    }
    Ok(trace)
}

/// Writes `trace` in the one-reference-per-line text format.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on any underlying write failure.
pub fn write_text<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    for access in trace.iter() {
        writeln!(
            writer,
            "{} {:#010x}",
            access.kind().mnemonic(),
            access.addr()
        )?;
    }
    Ok(())
}

/// Reads a trace in the text format. Blank lines and lines starting with `#`
/// are ignored.
///
/// # Errors
///
/// Returns [`TraceIoError::BadLine`] with the offending line number for any
/// line that is not `<F|R|W> <address>` (address decimal or `0x`-hex), and
/// [`TraceIoError::Io`] for underlying failures.
pub fn read_text<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    let mut trace = Trace::new();
    let buffered = BufReader::new(reader);
    for (i, line) in buffered.lines().enumerate() {
        let line = line?;
        let lineno = i as u64 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let access = parse_text_line(trimmed).ok_or_else(|| TraceIoError::BadLine {
            line: lineno,
            content: trimmed.to_owned(),
        })?;
        trace.push(access);
    }
    Ok(trace)
}

fn parse_text_line(line: &str) -> Option<Access> {
    let mut parts = line.split_whitespace();
    let kind_token = parts.next()?;
    let addr_token = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let mut kind_chars = kind_token.chars();
    let kind = AccessKind::from_mnemonic(kind_chars.next()?)?;
    if kind_chars.next().is_some() {
        return None;
    }
    let addr = if let Some(hex) = addr_token
        .strip_prefix("0x")
        .or_else(|| addr_token.strip_prefix("0X"))
    {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        addr_token.parse().ok()?
    };
    Some(Access::new(addr, kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        [
            Access::fetch(0x1000),
            Access::read(0x8000),
            Access::write(0x8004),
            Access::fetch(0x1004),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), t);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic(_)));
    }

    #[test]
    fn binary_detects_truncation() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(&buf[..]).unwrap_err();
        match err {
            TraceIoError::Truncated {
                expected: 4,
                actual: 3,
            } => {}
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn binary_detects_corrupt_kind() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        // Overwrite the first access with reserved kind bits.
        let bad = (3u32 << 30).to_le_bytes();
        buf[12..16].copy_from_slice(&bad);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::CorruptAccess { index: 0 }));
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &t).unwrap();
        assert_eq!(read_text(&buf[..]).unwrap(), t);
    }

    #[test]
    fn text_accepts_comments_blanks_and_decimal() {
        let src = "# a comment\n\nF 0x100\nR 256\n";
        let t = read_text(src.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), Some(Access::fetch(0x100)));
        assert_eq!(t.get(1), Some(Access::read(256)));
    }

    #[test]
    fn text_rejects_garbage_with_line_number() {
        let err = read_text("F 0x100\nnot a line\n".as_bytes()).unwrap_err();
        match err {
            TraceIoError::BadLine { line: 2, content } => assert_eq!(content, "not a line"),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn text_rejects_extra_tokens_and_bad_kind() {
        assert!(read_text("F 0x100 extra\n".as_bytes()).is_err());
        assert!(read_text("Q 0x100\n".as_bytes()).is_err());
        assert!(read_text("FF 0x100\n".as_bytes()).is_err());
    }

    #[test]
    fn error_display_and_source() {
        let io_err: TraceIoError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
        assert!(io_err.source().is_some());
        assert!(TraceIoError::BadMagic(*b"ABCD").source().is_none());
    }
}
