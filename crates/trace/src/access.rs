//! The basic unit of a trace: one memory reference.

use std::fmt;

/// The kind of memory reference.
///
/// Cache experiments in the dynamic-exclusion paper distinguish instruction
/// streams (Figures 3–13), data streams (Figure 14), and combined streams
/// (Figure 15); the kind tag is what the [`crate::filter`] adapters select on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// An instruction fetch.
    Fetch,
    /// A data load.
    Read,
    /// A data store.
    Write,
}

impl AccessKind {
    /// All kinds, in packed-encoding order.
    pub const ALL: [AccessKind; 3] = [AccessKind::Fetch, AccessKind::Read, AccessKind::Write];

    /// Returns `true` for instruction fetches.
    ///
    /// ```
    /// use dynex_trace::AccessKind;
    /// assert!(AccessKind::Fetch.is_instruction());
    /// assert!(!AccessKind::Write.is_instruction());
    /// ```
    pub fn is_instruction(self) -> bool {
        matches!(self, AccessKind::Fetch)
    }

    /// Returns `true` for data reads and writes.
    pub fn is_data(self) -> bool {
        !self.is_instruction()
    }

    /// One-letter mnemonic used by the text trace format (`F`, `R`, `W`).
    pub fn mnemonic(self) -> char {
        match self {
            AccessKind::Fetch => 'F',
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        }
    }

    /// Parses a one-letter mnemonic produced by [`AccessKind::mnemonic`].
    ///
    /// Returns `None` for any other character.
    pub fn from_mnemonic(c: char) -> Option<AccessKind> {
        match c {
            'F' => Some(AccessKind::Fetch),
            'R' => Some(AccessKind::Read),
            'W' => Some(AccessKind::Write),
            _ => None,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessKind::Fetch => "fetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(name)
    }
}

/// A single memory reference: a 32-bit byte address plus a kind.
///
/// Addresses are word-granular: the low two bits carry no information for the
/// 4-byte-instruction machines the paper models, and the packed trace format
/// ([`crate::PackedAccess`]) discards them. Constructors therefore accept any
/// byte address but simulation treats `addr & !3` as the reference.
///
/// # Examples
///
/// ```
/// use dynex_trace::{Access, AccessKind};
///
/// let a = Access::fetch(0x0040_1000);
/// assert_eq!(a.kind(), AccessKind::Fetch);
/// assert_eq!(a.addr(), 0x0040_1000);
/// assert_eq!(a.word_addr(), 0x0040_1000 >> 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    addr: u32,
    kind: AccessKind,
}

impl Access {
    /// Creates a reference of the given kind at the given byte address.
    pub fn new(addr: u32, kind: AccessKind) -> Access {
        Access { addr, kind }
    }

    /// Creates an instruction fetch at `addr`.
    pub fn fetch(addr: u32) -> Access {
        Access::new(addr, AccessKind::Fetch)
    }

    /// Creates a data read at `addr`.
    pub fn read(addr: u32) -> Access {
        Access::new(addr, AccessKind::Read)
    }

    /// Creates a data write at `addr`.
    pub fn write(addr: u32) -> Access {
        Access::new(addr, AccessKind::Write)
    }

    /// The byte address of the reference.
    pub fn addr(self) -> u32 {
        self.addr
    }

    /// The word (4-byte) address: `addr >> 2`.
    pub fn word_addr(self) -> u32 {
        self.addr >> 2
    }

    /// The kind of the reference.
    pub fn kind(self) -> AccessKind {
        self.kind
    }

    /// Returns `true` if this is an instruction fetch.
    pub fn is_instruction(self) -> bool {
        self.kind.is_instruction()
    }

    /// Returns `true` if this is a data read or write.
    pub fn is_data(self) -> bool {
        self.kind.is_data()
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#010x}", self.kind.mnemonic(), self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Fetch.is_instruction());
        assert!(!AccessKind::Fetch.is_data());
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
        assert!(!AccessKind::Read.is_instruction());
    }

    #[test]
    fn mnemonic_roundtrip() {
        for kind in AccessKind::ALL {
            assert_eq!(AccessKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(AccessKind::from_mnemonic('x'), None);
        assert_eq!(
            AccessKind::from_mnemonic('f'),
            None,
            "mnemonics are upper-case only"
        );
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Access::fetch(16).kind(), AccessKind::Fetch);
        assert_eq!(Access::read(16).kind(), AccessKind::Read);
        assert_eq!(Access::write(16).kind(), AccessKind::Write);
    }

    #[test]
    fn word_addr_drops_low_bits() {
        assert_eq!(Access::fetch(0x1003).word_addr(), 0x400);
        assert_eq!(Access::fetch(0x1004).word_addr(), 0x401);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Access::fetch(0x1000).to_string(), "F 0x00001000");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn kind_ordering_is_stable() {
        // The packed format relies on this order.
        assert!(AccessKind::Fetch < AccessKind::Read);
        assert!(AccessKind::Read < AccessKind::Write);
    }
}
