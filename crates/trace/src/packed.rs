//! Compact 4-byte encoding of a reference.

use std::error::Error;
use std::fmt;

use crate::{Access, AccessKind};

/// Largest byte address representable by [`PackedAccess`]: 30 bits of word
/// address, i.e. a 4 GiB space at word granularity.
pub const MAX_ADDR: u32 = u32::MAX;

const KIND_SHIFT: u32 = 30;
const WORD_MASK: u32 = (1 << KIND_SHIFT) - 1;

/// Error returned when an address cannot be packed.
///
/// With 30 bits of word address the packed form covers the full 32-bit byte
/// address space, so this error is currently unreachable from safe
/// constructors; it exists so the format can shrink the address field without
/// breaking the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressRangeError {
    addr: u32,
}

impl AddressRangeError {
    /// The offending byte address.
    pub fn addr(&self) -> u32 {
        self.addr
    }
}

impl fmt::Display for AddressRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "address {:#x} exceeds the packed trace address range",
            self.addr
        )
    }
}

impl Error for AddressRangeError {}

/// One reference packed into 32 bits: the top two bits encode the
/// [`AccessKind`], the low 30 bits the word address.
///
/// This is the in-memory and on-disk representation of traces. Packing is
/// lossy only in the low two (sub-word) address bits, which the simulators
/// never use.
///
/// # Examples
///
/// ```
/// use dynex_trace::{Access, PackedAccess};
///
/// let p = PackedAccess::from(Access::write(0x2000));
/// let back = Access::from(p);
/// assert_eq!(back, Access::write(0x2000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedAccess(u32);

impl PackedAccess {
    /// Packs an access. Sub-word address bits are discarded.
    pub fn pack(access: Access) -> PackedAccess {
        let kind = match access.kind() {
            AccessKind::Fetch => 0u32,
            AccessKind::Read => 1,
            AccessKind::Write => 2,
        };
        PackedAccess((kind << KIND_SHIFT) | (access.word_addr() & WORD_MASK))
    }

    /// Unpacks into a full [`Access`] (word-aligned byte address).
    pub fn unpack(self) -> Access {
        Access::new(self.word_addr() << 2, self.kind())
    }

    /// The word address stored in the low 30 bits.
    pub fn word_addr(self) -> u32 {
        self.0 & WORD_MASK
    }

    /// The kind stored in the top two bits.
    ///
    /// # Panics
    ///
    /// Panics if the raw encoding holds the reserved kind value `3`, which no
    /// constructor produces; it can only arise from [`PackedAccess::from_raw`]
    /// with corrupt input.
    pub fn kind(self) -> AccessKind {
        match self.0 >> KIND_SHIFT {
            0 => AccessKind::Fetch,
            1 => AccessKind::Read,
            2 => AccessKind::Write,
            _ => panic!("corrupt packed access: reserved kind bits"),
        }
    }

    /// The raw 32-bit encoding (for IO).
    pub fn to_raw(self) -> u32 {
        self.0
    }

    /// Reconstructs from a raw encoding, validating the kind bits.
    ///
    /// # Errors
    ///
    /// Returns `None` if the kind bits hold the reserved value `3`.
    pub fn from_raw(raw: u32) -> Option<PackedAccess> {
        if raw >> KIND_SHIFT == 3 {
            None
        } else {
            Some(PackedAccess(raw))
        }
    }
}

impl From<Access> for PackedAccess {
    fn from(access: Access) -> PackedAccess {
        PackedAccess::pack(access)
    }
}

impl From<PackedAccess> for Access {
    fn from(packed: PackedAccess) -> Access {
        packed.unpack()
    }
}

impl fmt::Display for PackedAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.unpack().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in AccessKind::ALL {
            let a = Access::new(0xdead_beec, kind);
            let p = PackedAccess::pack(a);
            assert_eq!(p.unpack(), a);
        }
    }

    #[test]
    fn subword_bits_are_dropped() {
        let p = PackedAccess::pack(Access::fetch(0x1003));
        assert_eq!(p.unpack().addr(), 0x1000);
    }

    #[test]
    fn high_addresses_roundtrip() {
        // Top of the 32-bit byte space still fits: word address uses 30 bits.
        let a = Access::read(0xffff_fffc);
        assert_eq!(PackedAccess::pack(a).unpack(), a);
    }

    #[test]
    fn raw_roundtrip_and_validation() {
        let p = PackedAccess::pack(Access::write(0x44));
        assert_eq!(PackedAccess::from_raw(p.to_raw()), Some(p));
        assert_eq!(PackedAccess::from_raw(3 << 30), None);
    }

    #[test]
    fn error_display_mentions_address() {
        let err = AddressRangeError { addr: 0x1234 };
        assert!(err.to_string().contains("0x1234"));
        assert_eq!(err.addr(), 0x1234);
    }

    #[test]
    #[should_panic(expected = "corrupt packed access")]
    fn corrupt_kind_panics() {
        // from_raw rejects it, but a transmuted value would panic on use.
        let bad = PackedAccess(3 << 30);
        let _ = bad.kind();
    }
}
