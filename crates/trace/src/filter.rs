//! Stream adapters for selecting parts of a trace.
//!
//! The paper's experiments run the same benchmark stream through an
//! instruction cache (fetches only, Figures 3–13), a data cache (reads and
//! writes only, Figure 14), or a combined cache (everything, Figure 15).
//! These free functions express those selections over any access iterator.

use crate::Access;

/// Keeps only instruction fetches.
///
/// # Examples
///
/// ```
/// use dynex_trace::{filter, Access};
///
/// let refs = [Access::fetch(0), Access::read(4), Access::fetch(8)];
/// let instrs: Vec<_> = filter::instructions(refs.into_iter()).collect();
/// assert_eq!(instrs.len(), 2);
/// ```
pub fn instructions<I>(accesses: I) -> impl Iterator<Item = Access>
where
    I: Iterator<Item = Access>,
{
    accesses.filter(|a| a.is_instruction())
}

/// Keeps only data reads and writes.
pub fn data<I>(accesses: I) -> impl Iterator<Item = Access>
where
    I: Iterator<Item = Access>,
{
    accesses.filter(|a| a.is_data())
}

/// Keeps the first `n` references — the paper's "first 10 million references"
/// budget applied to a stream.
pub fn first_n<I>(accesses: I, n: usize) -> impl Iterator<Item = Access>
where
    I: Iterator<Item = Access>,
{
    accesses.take(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;

    fn mixed() -> Vec<Access> {
        vec![
            Access::fetch(0),
            Access::read(0x100),
            Access::fetch(4),
            Access::write(0x104),
            Access::fetch(8),
        ]
    }

    #[test]
    fn instructions_only() {
        let v: Vec<_> = instructions(mixed().into_iter()).collect();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|a| a.kind() == AccessKind::Fetch));
    }

    #[test]
    fn data_only() {
        let v: Vec<_> = data(mixed().into_iter()).collect();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|a| a.is_data()));
    }

    #[test]
    fn partition_is_complete() {
        let total = mixed().len();
        let i = instructions(mixed().into_iter()).count();
        let d = data(mixed().into_iter()).count();
        assert_eq!(i + d, total);
    }

    #[test]
    fn first_n_truncates() {
        assert_eq!(first_n(mixed().into_iter(), 2).count(), 2);
        assert_eq!(first_n(mixed().into_iter(), 0).count(), 0);
        assert_eq!(first_n(mixed().into_iter(), 99).count(), 5);
    }
}
