//! An in-memory reference trace.

use std::fmt;

use crate::{Access, AccessKind, PackedAccess};

/// An in-memory sequence of memory references, stored packed (4 bytes per
/// reference).
///
/// `Trace` is the container every simulator in the workspace consumes: the
/// paper's experiments run each benchmark's reference stream through many
/// cache configurations, so traces are generated once and replayed cheaply
/// via [`Trace::iter`].
///
/// # Examples
///
/// ```
/// use dynex_trace::{Access, Trace};
///
/// let mut trace = Trace::new();
/// trace.push(Access::fetch(0x100));
/// trace.push(Access::read(0x8000));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().filter(|a| a.is_data()).count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    accesses: Vec<PackedAccess>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Creates an empty trace with room for `capacity` references.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            accesses: Vec::with_capacity(capacity),
        }
    }

    /// Appends a reference.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(PackedAccess::pack(access));
    }

    /// Number of references in the trace.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns `true` if the trace holds no references.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The reference at position `index`, if any.
    pub fn get(&self, index: usize) -> Option<Access> {
        self.accesses.get(index).map(|p| p.unpack())
    }

    /// Iterates over the references in order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            inner: self.accesses.iter(),
        }
    }

    /// The packed representation, for bulk IO.
    pub fn as_packed(&self) -> &[PackedAccess] {
        &self.accesses
    }

    /// Truncates the trace to at most `len` references.
    ///
    /// This is how experiments honour the paper's "first 10 million
    /// references" budget.
    pub fn truncate(&mut self, len: usize) {
        self.accesses.truncate(len);
    }

    /// Counts references of the given kind.
    pub fn count_kind(&self, kind: AccessKind) -> usize {
        self.iter().filter(|a| a.kind() == kind).count()
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Trace {
        Trace {
            accesses: iter.into_iter().map(PackedAccess::pack).collect(),
        }
    }
}

impl Extend<Access> for Trace {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        self.accesses
            .extend(iter.into_iter().map(PackedAccess::pack));
    }
}

impl FromIterator<PackedAccess> for Trace {
    fn from_iter<I: IntoIterator<Item = PackedAccess>>(iter: I) -> Trace {
        Trace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = Access;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace of {} references", self.len())
    }
}

/// Iterator over the references of a [`Trace`], unpacking on the fly.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    inner: std::slice::Iter<'a, PackedAccess>,
}

impl Iterator for Iter<'_> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        self.inner.next().map(|p| p.unpack())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl DoubleEndedIterator for Iter<'_> {
    fn next_back(&mut self) -> Option<Access> {
        self.inner.next_back().map(|p| p.unpack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        [
            Access::fetch(0x1000),
            Access::fetch(0x1004),
            Access::read(0x8000),
            Access::write(0x8004),
            Access::fetch(0x1000),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn push_and_len() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(Access::fetch(4));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn iteration_preserves_order_and_content() {
        let t = sample();
        let v: Vec<Access> = t.iter().collect();
        assert_eq!(v.len(), 5);
        assert_eq!(v[0], Access::fetch(0x1000));
        assert_eq!(v[3], Access::write(0x8004));
        assert_eq!(v[4], Access::fetch(0x1000));
    }

    #[test]
    fn get_and_out_of_range() {
        let t = sample();
        assert_eq!(t.get(2), Some(Access::read(0x8000)));
        assert_eq!(t.get(99), None);
    }

    #[test]
    fn count_kind_matches_filter() {
        let t = sample();
        assert_eq!(t.count_kind(AccessKind::Fetch), 3);
        assert_eq!(t.count_kind(AccessKind::Read), 1);
        assert_eq!(t.count_kind(AccessKind::Write), 1);
    }

    #[test]
    fn truncate_limits_length() {
        let mut t = sample();
        t.truncate(2);
        assert_eq!(t.len(), 2);
        t.truncate(100); // no-op beyond len
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut t = sample();
        t.extend([Access::read(0x20)]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.get(5), Some(Access::read(0x20)));
    }

    #[test]
    fn double_ended_iteration() {
        let t = sample();
        let mut it = t.iter();
        assert_eq!(it.next_back(), Some(Access::fetch(0x1000)));
        assert_eq!(it.next(), Some(Access::fetch(0x1000)));
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn display_mentions_len() {
        assert_eq!(sample().to_string(), "trace of 5 references");
    }
}
