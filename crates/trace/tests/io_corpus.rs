//! Error-surface corpus for trace ingestion: every `TraceIoError` variant is
//! provoked from realistic corrupt inputs, and the error must pinpoint the
//! damage exactly (byte-level cause, reference index, or line number) —
//! "something went wrong somewhere" errors are useless on multi-gigabyte
//! traces.

use std::error::Error as _;
use std::io::ErrorKind;

use dynex_obs::NoopProbe;
use dynex_trace::io::{
    read_binary, read_binary_with, read_text, read_text_with, write_binary, TraceIoError,
};
use dynex_trace::{Access, ReadPolicy, Trace};

fn sample() -> Trace {
    (0..8)
        .map(|i| match i % 3 {
            0 => Access::fetch(0x1000 + i * 4),
            1 => Access::read(0x8000 + i * 4),
            _ => Access::write(0x8000 + i * 4),
        })
        .collect()
}

fn sample_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    write_binary(&mut buf, &sample()).unwrap();
    buf
}

const RESERVED_KIND: u32 = 3u32 << 30;

#[test]
fn corrupt_magic_reports_the_bytes_it_saw() {
    let mut buf = sample_bytes();
    buf[..4].copy_from_slice(b"DXT2"); // wrong version
    match read_binary(&buf[..]).unwrap_err() {
        TraceIoError::BadMagic(m) => assert_eq!(&m, b"DXT2"),
        other => panic!("unexpected error: {other}"),
    }
    // Foreign file formats are bad magic too, not a parse attempt.
    match read_binary(&b"\x7fELF\x02\x01\x01\x00\x00\x00\x00\x00"[..]).unwrap_err() {
        TraceIoError::BadMagic(m) => assert_eq!(&m, b"\x7fELF"),
        other => panic!("unexpected error: {other}"),
    }
    // The magic is strict even under the most lenient policy: a wrong magic
    // is a format error, not a corrupt record.
    let err = read_binary_with(
        &b"NOPE\0\0\0\0\0\0\0\0"[..],
        ReadPolicy::Lenient {
            max_skipped: u64::MAX,
        },
        NoopProbe,
    )
    .unwrap_err();
    assert!(matches!(err, TraceIoError::BadMagic(_)));
}

#[test]
fn empty_and_partial_magic_surface_as_eof_io_errors() {
    for input in [&b""[..], &b"DX"[..], &b"DXT"[..]] {
        match read_binary(input).unwrap_err() {
            TraceIoError::Io(e) => assert_eq!(e.kind(), ErrorKind::UnexpectedEof),
            other => panic!("unexpected error for {input:?}: {other}"),
        }
    }
}

#[test]
fn truncated_header_is_an_eof_io_error_even_leniently() {
    // Magic intact, but the 8-byte reference count is cut short.
    for keep in 4..12 {
        let buf = &sample_bytes()[..keep];
        match read_binary(buf).unwrap_err() {
            TraceIoError::Io(e) => assert_eq!(e.kind(), ErrorKind::UnexpectedEof, "keep={keep}"),
            other => panic!("unexpected error at keep={keep}: {other}"),
        }
        // The header is strict under every policy: without a trustworthy
        // count there is nothing to read leniently.
        let err = read_binary_with(
            buf,
            ReadPolicy::Lenient {
                max_skipped: u64::MAX,
            },
            NoopProbe,
        )
        .unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)), "keep={keep}");
    }
}

#[test]
fn truncated_body_reports_expected_and_actual_counts() {
    let n = sample().len() as u64;
    let full = sample_bytes();
    // Cut at every word boundary and mid-word.
    for lost in 1..=3u64 {
        let buf = &full[..full.len() - (4 * lost) as usize];
        match read_binary(buf).unwrap_err() {
            TraceIoError::Truncated { expected, actual } => {
                assert_eq!(expected, n);
                assert_eq!(actual, n - lost);
            }
            other => panic!("unexpected error: {other}"),
        }
    }
    let buf = &full[..full.len() - 2]; // torn final word
    match read_binary(buf).unwrap_err() {
        TraceIoError::Truncated { expected, actual } => {
            assert_eq!(expected, n);
            assert_eq!(actual, n - 1);
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn reserved_kind_word_reports_its_exact_reference_index() {
    let n = sample().len();
    for corrupt in [0usize, 3, n - 1] {
        let mut buf = sample_bytes();
        let at = 12 + 4 * corrupt;
        buf[at..at + 4].copy_from_slice(&RESERVED_KIND.to_le_bytes());
        match read_binary(&buf[..]).unwrap_err() {
            TraceIoError::CorruptAccess { index } => assert_eq!(index, corrupt as u64),
            other => panic!("unexpected error: {other}"),
        }
    }
}

#[test]
fn strict_read_fails_on_the_first_of_several_corruptions() {
    let mut buf = sample_bytes();
    for corrupt in [2usize, 5] {
        let at = 12 + 4 * corrupt;
        buf[at..at + 4].copy_from_slice(&RESERVED_KIND.to_le_bytes());
    }
    match read_binary(&buf[..]).unwrap_err() {
        TraceIoError::CorruptAccess { index } => assert_eq!(index, 2),
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn malformed_text_lines_report_exact_line_number_and_content() {
    // Line numbers are 1-based and count blanks/comments, so the reported
    // number matches what an editor shows.
    let corpus = [
        ("F 0x100\nR\n", 2, "R"),                                // missing address
        ("# header\n\nF 0x100\nZ 0x10\n", 4, "Z 0x10"),          // unknown mnemonic
        ("F 0x100 trailing\n", 1, "F 0x100 trailing"),           // extra token
        ("W 0xZZZ\n", 1, "W 0xZZZ"),                             // unparsable hex
        ("FR 0x100\n", 1, "FR 0x100"),                           // two-char mnemonic
        ("F 0x100\nR 256\nW 99999999999\n", 3, "W 99999999999"), // overflow
    ];
    for (src, want_line, want_content) in corpus {
        match read_text(src.as_bytes()).unwrap_err() {
            TraceIoError::BadLine { line, content } => {
                assert_eq!(line, want_line, "src={src:?}");
                assert_eq!(content, want_content, "src={src:?}");
            }
            other => panic!("unexpected error for {src:?}: {other}"),
        }
    }
}

#[test]
fn lenient_text_budget_reports_the_breaking_line() {
    let src = "F 0x100\nbad one\nR 256\nbad two\nbad three\n";
    let err = read_text_with(
        src.as_bytes(),
        ReadPolicy::Lenient { max_skipped: 2 },
        NoopProbe,
    )
    .unwrap_err();
    match err {
        TraceIoError::SkipBudgetExceeded {
            skipped,
            max_skipped,
            offset,
        } => {
            assert_eq!(skipped, 3);
            assert_eq!(max_skipped, 2);
            assert_eq!(offset, 5); // "bad three" is line 5
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn every_variant_renders_its_location() {
    // Display output is what a failed CLI run shows; each variant must name
    // where the damage is.
    let cases: Vec<(TraceIoError, &str)> = vec![
        (
            read_binary(&b"NOPE\0\0\0\0\0\0\0\0"[..]).unwrap_err(),
            "NOPE",
        ),
        (
            TraceIoError::Truncated {
                expected: 10,
                actual: 7,
            },
            "10",
        ),
        (TraceIoError::CorruptAccess { index: 42 }, "42"),
        (
            TraceIoError::BadLine {
                line: 7,
                content: "junk".to_owned(),
            },
            "7",
        ),
        (
            TraceIoError::SkipBudgetExceeded {
                skipped: 3,
                max_skipped: 2,
                offset: 9,
            },
            "9",
        ),
    ];
    for (err, needle) in cases {
        let text = err.to_string();
        assert!(text.contains(needle), "{text:?} should contain {needle:?}");
    }
    // Only Io carries a source.
    let io_err: TraceIoError = std::io::Error::other("disk fell off").into();
    assert!(io_err.source().is_some());
    assert!(TraceIoError::CorruptAccess { index: 0 }.source().is_none());
}
