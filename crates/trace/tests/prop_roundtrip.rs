//! Property tests: trace packing and IO round-trips.

// Gated: requires the `proptest` feature (and the proptest dev-dependency,
// unavailable in hermetic builds) to compile.
#![cfg(feature = "proptest")]

use dynex_trace::io::{read_binary, read_text, write_binary, write_text};
use dynex_trace::{Access, AccessKind, PackedAccess, Trace, TraceStats};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Fetch),
        Just(AccessKind::Read),
        Just(AccessKind::Write),
    ]
}

fn arb_access() -> impl Strategy<Value = Access> {
    // Word-aligned addresses: packing is lossless for these.
    (0u32..=(u32::MAX >> 2), arb_kind()).prop_map(|(word, kind)| Access::new(word << 2, kind))
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(arb_access(), 0..200).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn packed_roundtrip(access in arb_access()) {
        let packed = PackedAccess::pack(access);
        prop_assert_eq!(packed.unpack(), access);
        prop_assert_eq!(PackedAccess::from_raw(packed.to_raw()), Some(packed));
    }

    #[test]
    fn packing_is_word_granular(addr in any::<u32>(), kind in arb_kind()) {
        let access = Access::new(addr, kind);
        let unpacked = PackedAccess::pack(access).unpack();
        prop_assert_eq!(unpacked.addr(), addr & !3);
        prop_assert_eq!(unpacked.kind(), kind);
    }

    #[test]
    fn binary_io_roundtrip(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        prop_assert_eq!(read_binary(&buf[..]).unwrap(), trace);
    }

    #[test]
    fn text_io_roundtrip(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_text(&mut buf, &trace).unwrap();
        prop_assert_eq!(read_text(&buf[..]).unwrap(), trace);
    }

    #[test]
    fn stats_counts_are_consistent(trace in arb_trace()) {
        let stats = TraceStats::from_accesses(trace.iter());
        prop_assert_eq!(stats.total(), trace.len() as u64);
        prop_assert_eq!(
            stats.fetches(),
            trace.count_kind(AccessKind::Fetch) as u64
        );
        prop_assert_eq!(stats.data_refs(), stats.reads() + stats.writes());
        prop_assert!(stats.instruction_footprint_words() <= stats.fetches());
        prop_assert!(stats.data_footprint_words() <= stats.data_refs());
        if !trace.is_empty() {
            prop_assert!(stats.min_addr().unwrap() <= stats.max_addr().unwrap());
        }
    }

    #[test]
    fn filters_partition_the_stream(trace in arb_trace()) {
        let i = dynex_trace::filter::instructions(trace.iter()).count();
        let d = dynex_trace::filter::data(trace.iter()).count();
        prop_assert_eq!(i + d, trace.len());
    }
}
