//! Shared fixtures for the `dynex` Criterion benchmarks.
//!
//! Benchmarks answer two kinds of question:
//!
//! * **simulator cost** — how many references per second each cache model
//!   processes (`simulator_throughput`, `hierarchy`), i.e. how expensive the
//!   reproduction infrastructure itself is;
//! * **figure configurations** — the per-figure cache setups at reduced
//!   reference budgets (`figure_configs`), so regressions in any simulated
//!   path show up as timing changes;
//! * **trace generation** (`workload_generation`).

#![forbid(unsafe_code)]

use dynex_trace::filter;
use dynex_workload::spec;

/// Instruction addresses of a profile, for bench fixtures.
pub fn instr_fixture(name: &str, refs: usize) -> Vec<u32> {
    let profile = spec::profile(name).expect("built-in profile");
    filter::instructions(profile.trace(refs).iter()).map(|a| a.addr()).collect()
}

/// Data addresses of a profile, for bench fixtures.
pub fn data_fixture(name: &str, refs: usize) -> Vec<u32> {
    let profile = spec::profile(name).expect("built-in profile");
    filter::data(profile.trace(refs).iter()).map(|a| a.addr()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_produce_addresses() {
        assert!(!instr_fixture("gcc", 1_000).is_empty());
        assert!(!data_fixture("mat300", 1_000).is_empty());
    }
}
