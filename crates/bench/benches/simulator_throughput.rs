//! Raw simulator throughput: references per second for each cache model on
//! a fixed synthetic `gcc` instruction stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dynex::{DeCache, HashedStore, LastLineDeCache, MultiStickyDeCache, OptimalDirectMapped};
use dynex_bench::instr_fixture;
use dynex_cache::{
    batch_de, batch_dm, batch_opt, batch_triple, run_addrs, CacheConfig, DirectMapped, Replacement,
    SetAssociative, StreamBuffer, VictimCache,
};

const REFS: usize = 100_000;

fn throughput(c: &mut Criterion) {
    let addrs = instr_fixture("gcc", REFS);
    let config = CacheConfig::direct_mapped(32 * 1024, 4).unwrap();
    let wide = CacheConfig::new(32 * 1024, 4, 4).unwrap();

    let mut group = c.benchmark_group("simulator_throughput");
    group.throughput(Throughput::Elements(addrs.len() as u64));

    group.bench_function("direct_mapped", |b| {
        b.iter(|| {
            let mut cache = DirectMapped::new(config);
            run_addrs(&mut cache, addrs.iter().copied())
        })
    });
    group.bench_function("dynamic_exclusion_perfect", |b| {
        b.iter(|| {
            let mut cache = DeCache::new(config);
            run_addrs(&mut cache, addrs.iter().copied())
        })
    });
    group.bench_function("dynamic_exclusion_hashed4", |b| {
        b.iter(|| {
            let mut cache = DeCache::with_store(config, HashedStore::new(config, 4));
            run_addrs(&mut cache, addrs.iter().copied())
        })
    });
    group.bench_function("dynamic_exclusion_lastline_16b", |b| {
        let cfg16 = CacheConfig::direct_mapped(32 * 1024, 16).unwrap();
        b.iter(|| {
            let mut cache = LastLineDeCache::new(cfg16);
            run_addrs(&mut cache, addrs.iter().copied())
        })
    });
    group.bench_function("multi_sticky_2", |b| {
        b.iter(|| {
            let mut cache = MultiStickyDeCache::new(config, 2);
            run_addrs(&mut cache, addrs.iter().copied())
        })
    });
    group.bench_function("optimal_direct_mapped", |b| {
        b.iter(|| OptimalDirectMapped::simulate(config, addrs.iter().copied()))
    });
    group.bench_function("set_associative_4way_lru", |b| {
        b.iter(|| {
            let mut cache = SetAssociative::new(wide, Replacement::Lru);
            run_addrs(&mut cache, addrs.iter().copied())
        })
    });
    group.bench_function("victim_cache_4", |b| {
        b.iter(|| {
            let mut cache = VictimCache::new(config, 4);
            run_addrs(&mut cache, addrs.iter().copied())
        })
    });
    group.bench_function("stream_buffer_4", |b| {
        b.iter(|| {
            let mut cache = StreamBuffer::new(config, 4);
            run_addrs(&mut cache, addrs.iter().copied())
        })
    });
    // Batch-kernel counterparts of the dm/de/opt rows above (bit-identical
    // results; see tests/kernel_differential.rs). The fused triple is one
    // pass over the decoded stream vs three separate reference runs.
    group.bench_function("batch_kernel_dm", |b| b.iter(|| batch_dm(config, &addrs)));
    group.bench_function("batch_kernel_de", |b| b.iter(|| batch_de(config, &addrs)));
    group.bench_function("batch_kernel_opt", |b| b.iter(|| batch_opt(config, &addrs)));
    group.bench_function("batch_kernel_fused_triple", |b| {
        b.iter(|| batch_triple(config, &addrs))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = throughput
}
criterion_main!(benches);
