//! Two-level hierarchy throughput: the three hit-last strategies vs the
//! conventional hierarchy (Figures 7–9 inner loop).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dynex::{DeHierarchy, HitLastStrategy};
use dynex_bench::instr_fixture;
use dynex_cache::{run_addrs, CacheConfig, DirectMapped, TwoLevel};

const REFS: usize = 100_000;

fn hierarchy(c: &mut Criterion) {
    let addrs = instr_fixture("spice", REFS);
    let l1 = CacheConfig::direct_mapped(32 * 1024, 4).unwrap();
    let l2 = CacheConfig::direct_mapped(128 * 1024, 4).unwrap();

    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("conventional_dm_dm", |b| {
        b.iter(|| {
            let mut h = TwoLevel::new(DirectMapped::new(l1), DirectMapped::new(l2));
            run_addrs(&mut h, addrs.iter().copied())
        })
    });
    for (label, strategy) in [
        ("de_hashed4", HitLastStrategy::Hashed { bits_per_line: 4 }),
        ("de_assume_hit", HitLastStrategy::AssumeHit),
        ("de_assume_miss", HitLastStrategy::AssumeMiss),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut h = DeHierarchy::new(l1, l2, strategy).expect("valid hierarchy");
                run_addrs(&mut h, addrs.iter().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, hierarchy);
criterion_main!(benches);
