//! Trace-generation throughput for each synthetic SPEC'89 profile.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dynex_workload::spec;

const REFS: usize = 100_000;

fn generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.throughput(Throughput::Elements(REFS as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for name in spec::NAMES {
        let profile = spec::profile(name).expect("built-in profile");
        group.bench_function(name, |b| b.iter(|| profile.trace(REFS)));
    }
    // Program construction alone (layout + validation).
    group.bench_function("build_all_programs", |b| b.iter(spec::all));
    group.finish();
}

criterion_group!(benches, generation);
criterion_main!(benches);
