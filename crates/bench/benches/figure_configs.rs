//! One benchmark per paper figure: each figure's cache configuration driven
//! at a reduced reference budget. Timing regressions here flag slowdowns in
//! exactly the code paths the reproduction exercises.

use criterion::{criterion_group, criterion_main, Criterion};
use dynex_experiments::{figures, Workloads};

const REFS: usize = 25_000;

fn figure_configs(c: &mut Criterion) {
    let workloads = Workloads::generate(REFS);
    let mut group = c.benchmark_group("figure_configs");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for id in figures::ALL_IDS {
        group.bench_function(id.to_string(), |b| {
            b.iter(|| figures::run(id, &workloads).expect("known id"))
        });
    }
    group.finish();
}

criterion_group!(benches, figure_configs);
criterion_main!(benches);
