//! Sweep plans: (cache config × trace × policy) points executed on the pool.

use dynex::{DeCache, LastLineDeCache, OptimalDirectMapped};
use dynex_cache::{
    batch_de, batch_dm, batch_opt, batch_sweep, run_addrs, CacheConfig, CacheStats, DirectMapped,
    Kernel, SweepPoint, SweepPolicy,
};

use crate::kernel::default_kernel;
use crate::pool::execute;

/// The replacement/bypass policy a [`Job`] simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Conventional direct-mapped (the paper's baseline).
    DirectMapped,
    /// Dynamic exclusion with a perfect hit-last store.
    DynamicExclusion,
    /// Dynamic exclusion with the Section 6 last-line buffer (multi-word
    /// lines).
    DeLastLine,
    /// The future-knowing optimal direct-mapped cache.
    OptimalDm,
    /// Optimal direct-mapped with a last-line buffer.
    OptimalDmLastLine,
}

impl Policy {
    /// Stable lowercase name (used in labels and exported reports).
    pub fn name(self) -> &'static str {
        match self {
            Policy::DirectMapped => "dm",
            Policy::DynamicExclusion => "de",
            Policy::DeLastLine => "de-lastline",
            Policy::OptimalDm => "opt",
            Policy::OptimalDmLastLine => "opt-lastline",
        }
    }

    /// Whether a single trace under this policy may be split by set index
    /// and simulated shard-by-shard with exact results (see
    /// [`crate::shard`]).
    ///
    /// True for the plain direct-mapped, DE, and optimal caches, whose
    /// per-set state is fully independent. False for the last-line variants:
    /// their buffer holds the single most recent line *globally*, so
    /// removing other sets' references from a shard changes which references
    /// the buffer absorbs.
    pub fn supports_set_sharding(self) -> bool {
        matches!(
            self,
            Policy::DirectMapped | Policy::DynamicExclusion | Policy::OptimalDm
        )
    }

    /// The sweep-kernel policy this policy maps to, if the one-pass
    /// multi-configuration kernel specializes it.
    ///
    /// `None` for the last-line variants, whose single global buffer defeats
    /// the per-set chunked loop exactly as it defeats set sharding.
    pub fn sweep_policy(self) -> Option<SweepPolicy> {
        match self {
            Policy::DirectMapped => Some(SweepPolicy::DirectMapped),
            Policy::DynamicExclusion => Some(SweepPolicy::DynamicExclusion),
            Policy::OptimalDm => Some(SweepPolicy::Optimal),
            Policy::DeLastLine | Policy::OptimalDmLastLine => None,
        }
    }

    /// Simulates this policy over a byte-address trace with the session's
    /// [`default_kernel`].
    pub fn simulate(self, config: CacheConfig, addrs: &[u32]) -> CacheStats {
        self.simulate_kernel(default_kernel(), config, addrs)
    }

    /// Simulates this policy over a byte-address trace with an explicit
    /// kernel.
    ///
    /// All kernels are bit-identical in output (the differential wall in
    /// `tests/kernel_differential.rs` enforces the three-way matrix); batch
    /// and sweep are the fast paths. A single point handed to the sweep
    /// kernel runs as a degenerate one-point sweep — the real sharing comes
    /// from plan-level entry points like [`SweepPlan::run_one_pass`]. The
    /// last-line policies have no fast-path specialization — their single
    /// global buffer defeats the chunked per-set loop, just as it defeats
    /// set sharding — so they always run the reference simulators.
    pub fn simulate_kernel(self, kernel: Kernel, config: CacheConfig, addrs: &[u32]) -> CacheStats {
        match (kernel, self) {
            (Kernel::Batch, Policy::DirectMapped) => batch_dm(config, addrs),
            (Kernel::Batch, Policy::DynamicExclusion) => batch_de(config, addrs).stats,
            (Kernel::Batch, Policy::OptimalDm) => batch_opt(config, addrs),
            (
                Kernel::Sweep,
                Policy::DirectMapped | Policy::DynamicExclusion | Policy::OptimalDm,
            ) => {
                let point = SweepPoint::new(
                    config,
                    self.sweep_policy().expect("matched sweepable policies"),
                );
                batch_sweep(&[point], addrs)[0].stats()
            }
            (_, Policy::DirectMapped) => {
                let mut sim = DirectMapped::new(config);
                run_addrs(&mut sim, addrs.iter().copied())
            }
            (_, Policy::DynamicExclusion) => {
                let mut sim = DeCache::new(config);
                run_addrs(&mut sim, addrs.iter().copied())
            }
            (_, Policy::DeLastLine) => {
                let mut sim = LastLineDeCache::new(config);
                run_addrs(&mut sim, addrs.iter().copied())
            }
            (_, Policy::OptimalDm) => OptimalDirectMapped::simulate(config, addrs.iter().copied()),
            (_, Policy::OptimalDmLastLine) => {
                OptimalDirectMapped::simulate_with_lastline(config, addrs.iter().copied())
            }
        }
    }
}

/// One sweep point: a cache configuration under a policy.
///
/// A job is pure data; running it against a trace is side-effect-free, which
/// is what lets the pool execute jobs in any order and still produce
/// plan-ordered, bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// The cache geometry to simulate.
    pub config: CacheConfig,
    /// The replacement/bypass policy.
    pub policy: Policy,
}

impl Job {
    /// Creates a job.
    pub fn new(config: CacheConfig, policy: Policy) -> Job {
        Job { config, policy }
    }

    /// Simulates the job over a byte-address trace.
    pub fn run(&self, addrs: &[u32]) -> CacheStats {
        self.policy.simulate(self.config, addrs)
    }

    /// `<policy>@<config>`, e.g. `de@32KB direct-mapped, 4B lines`.
    pub fn label(&self) -> String {
        format!("{}@{}", self.policy.name(), self.config)
    }
}

/// An ordered list of sweep points, executed deterministically on the pool.
///
/// The plan is generic over the point type: the experiment harness uses
/// `(CacheConfig, &[u32])` pairs, `simcache` uses [`Job`]s, tests use
/// whatever they need. Results always come back in push order.
///
/// # Examples
///
/// ```
/// use dynex_cache::CacheConfig;
/// use dynex_engine::{Job, Policy, SweepPlan};
///
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let trace: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
/// let mut plan = SweepPlan::new();
/// plan.push(Job::new(config, Policy::DirectMapped));
/// plan.push(Job::new(config, Policy::DynamicExclusion));
/// plan.push(Job::new(config, Policy::OptimalDm));
/// let stats = plan.run(4, |job| job.run(&trace));
/// assert_eq!(stats[0].misses(), 20); // DM thrashes
/// assert!(stats[2].misses() <= stats[1].misses()); // OPT bounds DE
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SweepPlan<T> {
    points: Vec<T>,
}

impl<T: Sync> SweepPlan<T> {
    /// An empty plan.
    pub fn new() -> SweepPlan<T> {
        SweepPlan { points: Vec::new() }
    }

    /// Builds a plan from an iterator of points.
    pub fn from_points<I: IntoIterator<Item = T>>(points: I) -> SweepPlan<T> {
        SweepPlan {
            points: points.into_iter().collect(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, point: T) {
        self.points.push(point);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the plan has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in plan order.
    pub fn points(&self) -> &[T] {
        &self.points
    }

    /// Executes `f` over every point on `jobs` workers; results are in plan
    /// order and bit-identical for every `jobs` value.
    pub fn run<R, F>(&self, jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        execute(&self.points, jobs, f)
    }
}

impl SweepPlan<Job> {
    /// The one-pass fast path: hands the whole plan to a single
    /// [`batch_sweep`] traversal of the shared trace.
    ///
    /// Returns `None` (caller falls back to per-point execution) if any
    /// point's policy has no sweep specialization
    /// ([`Policy::sweep_policy`]). Results are in plan order and
    /// bit-identical to [`SweepPlan::run`] with any kernel — the whole plan
    /// simply costs one decode, one next-use oracle per distinct line size,
    /// and one trace walk.
    ///
    /// # Examples
    ///
    /// ```
    /// use dynex_cache::CacheConfig;
    /// use dynex_engine::{Job, Policy, SweepPlan};
    ///
    /// let config = CacheConfig::direct_mapped(64, 4)?;
    /// let trace: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
    /// let plan = SweepPlan::from_points([
    ///     Job::new(config, Policy::DirectMapped),
    ///     Job::new(config, Policy::DynamicExclusion),
    /// ]);
    /// let stats = plan.run_one_pass(&trace).unwrap();
    /// assert_eq!(stats, plan.run(1, |job| job.run(&trace)));
    /// # Ok::<(), dynex_cache::ConfigError>(())
    /// ```
    pub fn run_one_pass(&self, addrs: &[u32]) -> Option<Vec<CacheStats>> {
        let points: Option<Vec<SweepPoint>> = self
            .points
            .iter()
            .map(|job| {
                job.policy
                    .sweep_policy()
                    .map(|policy| SweepPoint::new(job.config, policy))
            })
            .collect();
        let results = batch_sweep(&points?, addrs);
        Some(results.iter().map(|r| r.stats()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thrash() -> Vec<u32> {
        (0..40).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect()
    }

    #[test]
    fn policy_names_and_sharding_support() {
        assert_eq!(Policy::DirectMapped.name(), "dm");
        assert_eq!(Policy::OptimalDmLastLine.name(), "opt-lastline");
        assert!(Policy::DynamicExclusion.supports_set_sharding());
        assert!(!Policy::DeLastLine.supports_set_sharding());
        assert!(!Policy::OptimalDmLastLine.supports_set_sharding());
    }

    #[test]
    fn job_matches_direct_simulation() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let addrs = thrash();
        let mut dm = DirectMapped::new(config);
        let expected = run_addrs(&mut dm, addrs.iter().copied());
        let job = Job::new(config, Policy::DirectMapped);
        assert_eq!(job.run(&addrs), expected);
        assert!(job.label().starts_with("dm@"));
    }

    #[test]
    fn plan_results_are_plan_ordered_for_any_job_count() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let addrs = thrash();
        let plan = SweepPlan::from_points([
            Job::new(config, Policy::DirectMapped),
            Job::new(config, Policy::DynamicExclusion),
            Job::new(config, Policy::OptimalDm),
        ]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let serial = plan.run(1, |job| job.run(&addrs));
        for jobs in [2, 4, 8] {
            assert_eq!(plan.run(jobs, |job| job.run(&addrs)), serial);
        }
        // The familiar ordering: OPT <= DE < DM on a thrash trace.
        assert!(serial[2].misses() <= serial[1].misses());
        assert!(serial[1].misses() < serial[0].misses());
    }

    #[test]
    fn kernels_agree_for_every_policy() {
        let mut rng = dynex_cache::SplitMix64::new(41);
        let addrs: Vec<u32> = (0..8000).map(|_| (rng.below(2048) as u32) * 4).collect();
        for policy in [
            Policy::DirectMapped,
            Policy::DynamicExclusion,
            Policy::DeLastLine,
            Policy::OptimalDm,
            Policy::OptimalDmLastLine,
        ] {
            for config in [
                CacheConfig::direct_mapped(256, 4).unwrap(),
                CacheConfig::direct_mapped(1024, 16).unwrap(),
            ] {
                let reference = policy.simulate_kernel(Kernel::Reference, config, &addrs);
                for kernel in [Kernel::Batch, Kernel::Sweep] {
                    assert_eq!(
                        policy.simulate_kernel(kernel, config, &addrs),
                        reference,
                        "{} @ {config} under {kernel}",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn one_pass_plan_matches_per_point_execution() {
        let mut rng = dynex_cache::SplitMix64::new(43);
        let addrs: Vec<u32> = (0..12_000)
            .map(|_| (rng.below(16_384) as u32) * 4)
            .collect();
        let mut plan = SweepPlan::new();
        for size in [256u32, 1024, 8192] {
            for line in [4u32, 16] {
                let config = CacheConfig::direct_mapped(size, line).unwrap();
                plan.push(Job::new(config, Policy::DirectMapped));
                plan.push(Job::new(config, Policy::DynamicExclusion));
                plan.push(Job::new(config, Policy::OptimalDm));
            }
        }
        let one_pass = plan.run_one_pass(&addrs).unwrap();
        assert_eq!(one_pass, plan.run(1, |job| job.run(&addrs)));
        assert_eq!(one_pass, plan.run(4, |job| job.run(&addrs)));
    }

    #[test]
    fn one_pass_plan_declines_lastline_policies() {
        let config = CacheConfig::direct_mapped(64, 16).unwrap();
        let plan = SweepPlan::from_points([
            Job::new(config, Policy::DirectMapped),
            Job::new(config, Policy::DeLastLine),
        ]);
        assert!(plan.run_one_pass(&[0, 4, 8]).is_none());
        assert!(Policy::DeLastLine.sweep_policy().is_none());
        assert!(Policy::OptimalDmLastLine.sweep_policy().is_none());
    }

    #[test]
    fn lastline_policies_simulate() {
        let config = CacheConfig::direct_mapped(64, 16).unwrap();
        let addrs: Vec<u32> = (0..200).map(|i| (i % 32) * 4).collect();
        let de = Policy::DeLastLine.simulate(config, &addrs);
        let opt = Policy::OptimalDmLastLine.simulate(config, &addrs);
        assert_eq!(de.accesses(), 200);
        assert!(opt.misses() <= de.misses());
    }
}
