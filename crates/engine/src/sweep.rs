//! Sweep plans: (cache config × trace × policy) points executed on the pool.
//!
//! Since PR 10 the policy vocabulary is the open [`PolicyKind`] descriptor
//! instead of a closed dm/de/opt enum: each kind names a member of the
//! replacement-policy zoo in `dynex-cache` (the paper's three policies, the
//! Section 6 last-line variants, and the EHC / bandwidth-cost additions)
//! and *declares* how each kernel runs it via [`KernelSupport`]. A kernel
//! either has a specialized fast path, falls back to the reference
//! simulator by declaration, or is unsupported — in which case simulation
//! returns a structured [`PolicyError`] naming the supported set, never a
//! silent gap.

use dynex::{DeCache, LastLineDeCache, OptimalDirectMapped};
use dynex_cache::{
    batch_bwcost, batch_de, batch_dm, batch_ehc, batch_opt, batch_sweep, run_addrs,
    simulate_policy, BwCostPolicy, CacheConfig, CacheStats, DirectMapped, EhcPolicy, Kernel,
    SweepPoint, SweepPolicy,
};

use crate::kernel::default_kernel;
use crate::pool::execute;

/// The replacement/bypass policy a [`Job`] simulates: the descriptor half
/// of the policy zoo (the stateful halves live in `dynex-cache` behind
/// [`dynex_cache::ReplacementPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Conventional direct-mapped (the paper's baseline).
    DirectMapped,
    /// Dynamic exclusion with a perfect hit-last store.
    DynamicExclusion,
    /// Dynamic exclusion with the Section 6 last-line buffer (multi-word
    /// lines).
    DeLastLine,
    /// The future-knowing optimal direct-mapped cache.
    OptimalDm,
    /// Optimal direct-mapped with a last-line buffer.
    OptimalDmLastLine,
    /// Expected-Hit-Count replacement (arXiv 1808.05024): rank blocks by
    /// hit count within a capacity-scaled window instead of
    /// time-to-next-use.
    ExpectedHitCount,
    /// Bandwidth-aware selective fill (arXiv 1907.02167): install only
    /// blocks that proved reuse; measured in bandwidth transfers.
    BandwidthCost,
}

/// How a kernel runs one [`PolicyKind`] — the capability a policy declares
/// per kernel so that gaps are loud contracts instead of silent fallbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelSupport {
    /// The kernel has a dedicated implementation of this policy
    /// (bit-identical to the reference simulator; the differential wall
    /// enforces it).
    Specialized,
    /// The kernel has no dedicated implementation and — by declaration —
    /// runs the reference simulator instead. Output is identical; only
    /// throughput differs.
    ReferenceFallback,
    /// The combination is not available; simulation returns a
    /// [`PolicyError`] naming the kernels that do support the policy.
    Unsupported,
}

/// A structured policy-surface error: an unknown policy name, or a
/// (policy, kernel) combination without [`KernelSupport`]. Every variant
/// names the supported set, so CLI and service callers can surface an
/// actionable message without pattern-matching internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The name matched no member of the policy zoo.
    UnknownPolicy {
        /// The offending name, verbatim.
        name: String,
    },
    /// The policy exists but declares [`KernelSupport::Unsupported`] for
    /// the requested kernel.
    UnsupportedKernel {
        /// The policy's stable name.
        policy: &'static str,
        /// The kernel that was requested.
        kernel: Kernel,
        /// The kernels that do support the policy.
        supported: Vec<Kernel>,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::UnknownPolicy { name } => {
                let supported: Vec<&str> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
                write!(
                    f,
                    "unknown policy {name:?} (supported: {})",
                    supported.join("|")
                )
            }
            PolicyError::UnsupportedKernel {
                policy,
                kernel,
                supported,
            } => {
                let names: Vec<String> = supported.iter().map(|k| k.to_string()).collect();
                write!(
                    f,
                    "policy {policy:?} has no {kernel} kernel support \
                     (supported kernels: {})",
                    names.join("|")
                )
            }
        }
    }
}

impl std::error::Error for PolicyError {}

impl PolicyKind {
    /// Every member of the policy zoo, in presentation order.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::DirectMapped,
        PolicyKind::DynamicExclusion,
        PolicyKind::DeLastLine,
        PolicyKind::OptimalDm,
        PolicyKind::OptimalDmLastLine,
        PolicyKind::ExpectedHitCount,
        PolicyKind::BandwidthCost,
    ];

    /// Stable lowercase name (used in labels, wire requests, journal keys,
    /// and exported reports).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::DirectMapped => "dm",
            PolicyKind::DynamicExclusion => "de",
            PolicyKind::DeLastLine => "de-lastline",
            PolicyKind::OptimalDm => "opt",
            PolicyKind::OptimalDmLastLine => "opt-lastline",
            PolicyKind::ExpectedHitCount => "ehc",
            PolicyKind::BandwidthCost => "bwcost",
        }
    }

    /// Parses a stable name back to its kind.
    ///
    /// # Errors
    ///
    /// [`PolicyError::UnknownPolicy`] (listing the supported set) when the
    /// name matches no zoo member.
    pub fn parse(name: &str) -> Result<PolicyKind, PolicyError> {
        PolicyKind::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| PolicyError::UnknownPolicy {
                name: name.to_owned(),
            })
    }

    /// Whether a single trace under this policy may be split by set index
    /// and simulated shard-by-shard with exact results (see
    /// [`crate::shard`]).
    ///
    /// True for the plain direct-mapped, DE, and optimal caches, whose
    /// per-set state is fully independent. False for the last-line
    /// variants (their buffer holds the single most recent line
    /// *globally*) and for the bandwidth-cost policy (its starvation
    /// counter is global). The EHC oracle is per-set in principle but is
    /// not wired into the sharded path, so it stays declared unshardable
    /// rather than silently diverging.
    pub fn supports_set_sharding(self) -> bool {
        matches!(
            self,
            PolicyKind::DirectMapped | PolicyKind::DynamicExclusion | PolicyKind::OptimalDm
        )
    }

    /// The sweep-kernel policy this policy maps to, if the one-pass
    /// multi-configuration kernel specializes it.
    ///
    /// `None` for the last-line variants (single global buffer) and for
    /// the EHC / bandwidth-cost members (their oracles and counters are
    /// not fused into the multi-configuration walk yet — the capability
    /// matrix declares the gap loudly instead).
    pub fn sweep_policy(self) -> Option<SweepPolicy> {
        match self {
            PolicyKind::DirectMapped => Some(SweepPolicy::DirectMapped),
            PolicyKind::DynamicExclusion => Some(SweepPolicy::DynamicExclusion),
            PolicyKind::OptimalDm => Some(SweepPolicy::Optimal),
            PolicyKind::DeLastLine
            | PolicyKind::OptimalDmLastLine
            | PolicyKind::ExpectedHitCount
            | PolicyKind::BandwidthCost => None,
        }
    }

    /// The declared capability of `kernel` for this policy — the whole
    /// capability matrix in one place.
    ///
    /// | policy        | reference   | batch             | sweep             |
    /// |---------------|-------------|-------------------|-------------------|
    /// | dm, de, opt   | specialized | specialized       | specialized       |
    /// | *-lastline    | specialized | reference fallback| reference fallback|
    /// | ehc, bwcost   | specialized | specialized       | unsupported       |
    pub fn kernel_support(self, kernel: Kernel) -> KernelSupport {
        match (self, kernel) {
            // The reference simulators are the spec: every policy has one.
            (_, Kernel::Reference) => KernelSupport::Specialized,
            (
                PolicyKind::DirectMapped | PolicyKind::DynamicExclusion | PolicyKind::OptimalDm,
                Kernel::Batch | Kernel::Sweep,
            ) => KernelSupport::Specialized,
            // The last-line buffer is global state: the chunked per-set
            // loops cannot specialize it, so both fast kernels declare the
            // reference fallback (identical output, reference throughput).
            (PolicyKind::DeLastLine | PolicyKind::OptimalDmLastLine, _) => {
                KernelSupport::ReferenceFallback
            }
            (
                PolicyKind::ExpectedHitCount | PolicyKind::BandwidthCost,
                Kernel::Batch,
            ) => KernelSupport::Specialized,
            // The one-pass sweep kernel does not fuse the EHC oracle or
            // the bandwidth counters; declared unsupported, not silently
            // approximated.
            (PolicyKind::ExpectedHitCount | PolicyKind::BandwidthCost, Kernel::Sweep) => {
                KernelSupport::Unsupported
            }
        }
    }

    /// The kernels that can run this policy (capability not
    /// [`KernelSupport::Unsupported`]), in the canonical
    /// reference/batch/sweep order.
    pub fn supported_kernels(self) -> Vec<Kernel> {
        [Kernel::Reference, Kernel::Batch, Kernel::Sweep]
            .into_iter()
            .filter(|&k| self.kernel_support(k) != KernelSupport::Unsupported)
            .collect()
    }

    /// Simulates this policy over a byte-address trace with the session's
    /// [`default_kernel`].
    ///
    /// # Errors
    ///
    /// [`PolicyError::UnsupportedKernel`] when the session kernel declares
    /// no support for this policy.
    pub fn simulate(self, config: CacheConfig, addrs: &[u32]) -> Result<CacheStats, PolicyError> {
        self.simulate_kernel(default_kernel(), config, addrs)
    }

    /// Simulates this policy over a byte-address trace with an explicit
    /// kernel.
    ///
    /// All supporting kernels are bit-identical in output (the
    /// differential wall in `tests/kernel_differential.rs` enforces the
    /// policy × kernel matrix); batch and sweep are the fast paths. A
    /// single point handed to the sweep kernel runs as a degenerate
    /// one-point sweep — the real sharing comes from plan-level entry
    /// points like [`SweepPlan::run_one_pass`]. Policies declaring
    /// [`KernelSupport::ReferenceFallback`] run the reference simulator.
    ///
    /// # Errors
    ///
    /// [`PolicyError::UnsupportedKernel`] when the policy declares
    /// [`KernelSupport::Unsupported`] for `kernel`; the error lists the
    /// kernels that do support it.
    pub fn simulate_kernel(
        self,
        kernel: Kernel,
        config: CacheConfig,
        addrs: &[u32],
    ) -> Result<CacheStats, PolicyError> {
        match self.kernel_support(kernel) {
            KernelSupport::Unsupported => {
                return Err(PolicyError::UnsupportedKernel {
                    policy: self.name(),
                    kernel,
                    supported: self.supported_kernels(),
                })
            }
            KernelSupport::ReferenceFallback => return Ok(self.reference_simulate(config, addrs)),
            KernelSupport::Specialized => {}
        }
        Ok(match (kernel, self) {
            (Kernel::Batch, PolicyKind::DirectMapped) => batch_dm(config, addrs),
            (Kernel::Batch, PolicyKind::DynamicExclusion) => batch_de(config, addrs).stats,
            (Kernel::Batch, PolicyKind::OptimalDm) => batch_opt(config, addrs),
            (Kernel::Batch, PolicyKind::ExpectedHitCount) => batch_ehc(config, addrs),
            (Kernel::Batch, PolicyKind::BandwidthCost) => batch_bwcost(config, addrs),
            (Kernel::Sweep, _) => {
                let point = SweepPoint::new(
                    config,
                    self.sweep_policy()
                        .expect("sweep is specialized only for sweepable policies"),
                );
                batch_sweep(&[point], addrs)[0].stats()
            }
            (Kernel::Reference, _) | (Kernel::Batch, _) => self.reference_simulate(config, addrs),
        })
    }

    /// The spec simulator for this policy — the bit-exactness baseline
    /// every specialized kernel is measured against.
    fn reference_simulate(self, config: CacheConfig, addrs: &[u32]) -> CacheStats {
        match self {
            PolicyKind::DirectMapped => {
                let mut sim = DirectMapped::new(config);
                run_addrs(&mut sim, addrs.iter().copied())
            }
            PolicyKind::DynamicExclusion => {
                let mut sim = DeCache::new(config);
                run_addrs(&mut sim, addrs.iter().copied())
            }
            PolicyKind::DeLastLine => {
                let mut sim = LastLineDeCache::new(config);
                run_addrs(&mut sim, addrs.iter().copied())
            }
            PolicyKind::OptimalDm => {
                OptimalDirectMapped::simulate(config, addrs.iter().copied())
            }
            PolicyKind::OptimalDmLastLine => {
                OptimalDirectMapped::simulate_with_lastline(config, addrs.iter().copied())
            }
            PolicyKind::ExpectedHitCount => {
                let mut policy = EhcPolicy::new(config, addrs);
                simulate_policy(config, addrs, &mut policy)
            }
            PolicyKind::BandwidthCost => {
                let mut policy = BwCostPolicy::new(config, addrs);
                simulate_policy(config, addrs, &mut policy)
            }
        }
    }
}

/// One sweep point: a cache configuration under a policy.
///
/// A job is pure data; running it against a trace is side-effect-free, which
/// is what lets the pool execute jobs in any order and still produce
/// plan-ordered, bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// The cache geometry to simulate.
    pub config: CacheConfig,
    /// The replacement/bypass policy.
    pub policy: PolicyKind,
}

impl Job {
    /// Creates a job.
    pub fn new(config: CacheConfig, policy: PolicyKind) -> Job {
        Job { config, policy }
    }

    /// Simulates the job over a byte-address trace with the session's
    /// [`default_kernel`].
    ///
    /// # Errors
    ///
    /// [`PolicyError::UnsupportedKernel`] when the session kernel declares
    /// no support for the job's policy.
    pub fn run(&self, addrs: &[u32]) -> Result<CacheStats, PolicyError> {
        self.policy.simulate(self.config, addrs)
    }

    /// `<policy>@<config>`, e.g. `de@32KB direct-mapped, 4B lines`.
    pub fn label(&self) -> String {
        format!("{}@{}", self.policy.name(), self.config)
    }
}

/// An ordered list of sweep points, executed deterministically on the pool.
///
/// The plan is generic over the point type: the experiment harness uses
/// `(CacheConfig, &[u32])` pairs, `simcache` uses [`Job`]s, tests use
/// whatever they need. Results always come back in push order.
///
/// # Examples
///
/// ```
/// use dynex_cache::CacheConfig;
/// use dynex_engine::{Job, PolicyKind, SweepPlan};
///
/// let config = CacheConfig::direct_mapped(64, 4)?;
/// let trace: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
/// let mut plan = SweepPlan::new();
/// plan.push(Job::new(config, PolicyKind::DirectMapped));
/// plan.push(Job::new(config, PolicyKind::DynamicExclusion));
/// plan.push(Job::new(config, PolicyKind::OptimalDm));
/// let stats = plan.run(4, |job| job.run(&trace).expect("supported on every kernel"));
/// assert_eq!(stats[0].misses(), 20); // DM thrashes
/// assert!(stats[2].misses() <= stats[1].misses()); // OPT bounds DE
/// # Ok::<(), dynex_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SweepPlan<T> {
    points: Vec<T>,
}

impl<T: Sync> SweepPlan<T> {
    /// An empty plan.
    pub fn new() -> SweepPlan<T> {
        SweepPlan { points: Vec::new() }
    }

    /// Builds a plan from an iterator of points.
    pub fn from_points<I: IntoIterator<Item = T>>(points: I) -> SweepPlan<T> {
        SweepPlan {
            points: points.into_iter().collect(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, point: T) {
        self.points.push(point);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the plan has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in plan order.
    pub fn points(&self) -> &[T] {
        &self.points
    }

    /// Executes `f` over every point on `jobs` workers; results are in plan
    /// order and bit-identical for every `jobs` value.
    pub fn run<R, F>(&self, jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        execute(&self.points, jobs, f)
    }
}

impl SweepPlan<Job> {
    /// The one-pass fast path: hands the whole plan to a single
    /// [`batch_sweep`] traversal of the shared trace.
    ///
    /// Returns `None` (caller falls back to per-point execution) if any
    /// point's policy has no sweep specialization
    /// ([`PolicyKind::sweep_policy`]). Results are in plan order and
    /// bit-identical to [`SweepPlan::run`] with any kernel — the whole plan
    /// simply costs one decode, one next-use oracle per distinct line size,
    /// and one trace walk.
    ///
    /// # Examples
    ///
    /// ```
    /// use dynex_cache::CacheConfig;
    /// use dynex_engine::{Job, PolicyKind, SweepPlan};
    ///
    /// let config = CacheConfig::direct_mapped(64, 4)?;
    /// let trace: Vec<u32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect();
    /// let plan = SweepPlan::from_points([
    ///     Job::new(config, PolicyKind::DirectMapped),
    ///     Job::new(config, PolicyKind::DynamicExclusion),
    /// ]);
    /// let stats = plan.run_one_pass(&trace).unwrap();
    /// assert_eq!(stats, plan.run(1, |job| job.run(&trace).unwrap()));
    /// # Ok::<(), dynex_cache::ConfigError>(())
    /// ```
    pub fn run_one_pass(&self, addrs: &[u32]) -> Option<Vec<CacheStats>> {
        let points: Option<Vec<SweepPoint>> = self
            .points
            .iter()
            .map(|job| {
                job.policy
                    .sweep_policy()
                    .map(|policy| SweepPoint::new(job.config, policy))
            })
            .collect();
        let results = batch_sweep(&points?, addrs);
        Some(results.iter().map(|r| r.stats()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thrash() -> Vec<u32> {
        (0..40).map(|i| if i % 2 == 0 { 0 } else { 64 }).collect()
    }

    #[test]
    fn policy_names_and_sharding_support() {
        assert_eq!(PolicyKind::DirectMapped.name(), "dm");
        assert_eq!(PolicyKind::OptimalDmLastLine.name(), "opt-lastline");
        assert_eq!(PolicyKind::ExpectedHitCount.name(), "ehc");
        assert_eq!(PolicyKind::BandwidthCost.name(), "bwcost");
        assert!(PolicyKind::DynamicExclusion.supports_set_sharding());
        assert!(!PolicyKind::DeLastLine.supports_set_sharding());
        assert!(!PolicyKind::OptimalDmLastLine.supports_set_sharding());
        assert!(!PolicyKind::BandwidthCost.supports_set_sharding());
    }

    #[test]
    fn names_parse_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Ok(kind));
        }
    }

    #[test]
    fn unknown_policy_error_lists_the_supported_set() {
        let err = PolicyKind::parse("lru").unwrap_err();
        assert_eq!(
            err,
            PolicyError::UnknownPolicy {
                name: "lru".to_owned()
            }
        );
        let message = err.to_string();
        assert!(message.contains("\"lru\""), "{message}");
        for kind in PolicyKind::ALL {
            assert!(message.contains(kind.name()), "{message} missing {kind:?}");
        }
    }

    #[test]
    fn unsupported_kernel_error_lists_the_supported_kernels() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let err = PolicyKind::ExpectedHitCount
            .simulate_kernel(Kernel::Sweep, config, &[0, 4])
            .unwrap_err();
        match &err {
            PolicyError::UnsupportedKernel {
                policy,
                kernel,
                supported,
            } => {
                assert_eq!(*policy, "ehc");
                assert_eq!(*kernel, Kernel::Sweep);
                assert_eq!(supported, &[Kernel::Reference, Kernel::Batch]);
            }
            other => panic!("wrong error shape: {other:?}"),
        }
        let message = err.to_string();
        assert!(message.contains("ehc"), "{message}");
        assert!(message.contains("reference"), "{message}");
        assert!(message.contains("batch"), "{message}");
    }

    #[test]
    fn capability_matrix_has_no_silent_gaps() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let addrs = thrash();
        for kind in PolicyKind::ALL {
            for kernel in [Kernel::Reference, Kernel::Batch, Kernel::Sweep] {
                let result = kind.simulate_kernel(kernel, config, &addrs);
                match kind.kernel_support(kernel) {
                    KernelSupport::Unsupported => {
                        assert!(result.is_err(), "{kind:?} under {kernel} must error loudly")
                    }
                    _ => assert!(result.is_ok(), "{kind:?} under {kernel} must simulate"),
                }
            }
            // Every policy runs somewhere, and reference is always there.
            assert!(kind.supported_kernels().contains(&Kernel::Reference));
        }
    }

    #[test]
    fn job_matches_direct_simulation() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let addrs = thrash();
        let mut dm = DirectMapped::new(config);
        let expected = run_addrs(&mut dm, addrs.iter().copied());
        let job = Job::new(config, PolicyKind::DirectMapped);
        assert_eq!(job.run(&addrs).unwrap(), expected);
        assert!(job.label().starts_with("dm@"));
    }

    #[test]
    fn plan_results_are_plan_ordered_for_any_job_count() {
        let config = CacheConfig::direct_mapped(64, 4).unwrap();
        let addrs = thrash();
        let plan = SweepPlan::from_points([
            Job::new(config, PolicyKind::DirectMapped),
            Job::new(config, PolicyKind::DynamicExclusion),
            Job::new(config, PolicyKind::OptimalDm),
        ]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let serial = plan.run(1, |job| job.run(&addrs).unwrap());
        for jobs in [2, 4, 8] {
            assert_eq!(plan.run(jobs, |job| job.run(&addrs).unwrap()), serial);
        }
        // The familiar ordering: OPT <= DE < DM on a thrash trace.
        assert!(serial[2].misses() <= serial[1].misses());
        assert!(serial[1].misses() < serial[0].misses());
    }

    #[test]
    fn kernels_agree_for_every_policy() {
        let mut rng = dynex_cache::SplitMix64::new(41);
        let addrs: Vec<u32> = (0..8000).map(|_| (rng.below(2048) as u32) * 4).collect();
        for policy in PolicyKind::ALL {
            for config in [
                CacheConfig::direct_mapped(256, 4).unwrap(),
                CacheConfig::direct_mapped(1024, 16).unwrap(),
            ] {
                let reference = policy
                    .simulate_kernel(Kernel::Reference, config, &addrs)
                    .unwrap();
                for kernel in policy.supported_kernels() {
                    assert_eq!(
                        policy.simulate_kernel(kernel, config, &addrs).unwrap(),
                        reference,
                        "{} @ {config} under {kernel}",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn one_pass_plan_matches_per_point_execution() {
        let mut rng = dynex_cache::SplitMix64::new(43);
        let addrs: Vec<u32> = (0..12_000)
            .map(|_| (rng.below(16_384) as u32) * 4)
            .collect();
        let mut plan = SweepPlan::new();
        for size in [256u32, 1024, 8192] {
            for line in [4u32, 16] {
                let config = CacheConfig::direct_mapped(size, line).unwrap();
                plan.push(Job::new(config, PolicyKind::DirectMapped));
                plan.push(Job::new(config, PolicyKind::DynamicExclusion));
                plan.push(Job::new(config, PolicyKind::OptimalDm));
            }
        }
        let one_pass = plan.run_one_pass(&addrs).unwrap();
        assert_eq!(one_pass, plan.run(1, |job| job.run(&addrs).unwrap()));
        assert_eq!(one_pass, plan.run(4, |job| job.run(&addrs).unwrap()));
    }

    #[test]
    fn one_pass_plan_declines_unfused_policies() {
        let config = CacheConfig::direct_mapped(64, 16).unwrap();
        let plan = SweepPlan::from_points([
            Job::new(config, PolicyKind::DirectMapped),
            Job::new(config, PolicyKind::DeLastLine),
        ]);
        assert!(plan.run_one_pass(&[0, 4, 8]).is_none());
        assert!(PolicyKind::DeLastLine.sweep_policy().is_none());
        assert!(PolicyKind::OptimalDmLastLine.sweep_policy().is_none());
        assert!(PolicyKind::ExpectedHitCount.sweep_policy().is_none());
        assert!(PolicyKind::BandwidthCost.sweep_policy().is_none());
    }

    #[test]
    fn lastline_policies_simulate() {
        let config = CacheConfig::direct_mapped(64, 16).unwrap();
        let addrs: Vec<u32> = (0..200).map(|i| (i % 32) * 4).collect();
        let de = PolicyKind::DeLastLine.simulate(config, &addrs).unwrap();
        let opt = PolicyKind::OptimalDmLastLine.simulate(config, &addrs).unwrap();
        assert_eq!(de.accesses(), 200);
        assert!(opt.misses() <= de.misses());
    }
}
