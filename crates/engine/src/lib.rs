//! Deterministic parallel sweep engine for the `dynex` workspace.
//!
//! The experiment harness evaluates many (cache config × trace × policy)
//! points; each point is an independent pure function of its inputs. This
//! crate turns those serial loops into a parallel engine without giving up
//! reproducibility:
//!
//! * [`execute`] / [`SweepPlan`] — a worker pool over scoped `std::thread`s
//!   with a channel-based work queue. Results are tagged with their plan
//!   index and reassembled in plan order, so the output is **bit-identical
//!   regardless of the worker count** — `--jobs 8` and `--jobs 1` produce
//!   the same bytes.
//! * [`Job`] / [`PolicyKind`] — the sweep-point vocabulary: a cache
//!   configuration under one member of the replacement-policy zoo (the
//!   paper's direct-mapped / dynamic-exclusion / optimal policies and
//!   their last-line variants, plus the Expected-Hit-Count and
//!   bandwidth-cost additions). Each policy declares per-kernel
//!   [`KernelSupport`]; unsupported combinations return a structured
//!   [`PolicyError`] instead of silently falling back.
//! * [`shard_by_set`] / [`sharded_policy_stats`] — set-partitioned
//!   parallelism *within* one long trace: for policies whose per-set state
//!   is independent (DM, DE, OPT) the trace is split by set index, shards
//!   are simulated concurrently, and their [`CacheStats`] merged exactly
//!   (debug builds assert equality with the serial run).
//! * [`default_kernel`] / [`set_default_kernel`] — session-wide selection
//!   between the reference simulators and the bit-identical batch kernels
//!   from `dynex-cache` (the `--kernel` flag; batch is the default).
//! * [`execute_resilient`] — the fault-isolated sibling of [`execute`]:
//!   panics are contained to their slot ([`JobError`]), panicked jobs get a
//!   bounded retry budget, and a soft per-job deadline marks hung jobs
//!   [`JobFailure::TimedOut`] while the rest of the sweep completes.
//! * [`Journal`] — an append-only JSONL checkpoint of completed job
//!   results, keyed by content hash ([`job_key`] / [`trace_digest`]), so an
//!   interrupted sweep resumed with `--resume` replays finished points and
//!   produces byte-identical output.
//! * [`EngineError`] — the unified error taxonomy drivers report through.
//!
//! Like the rest of the workspace the crate has no third-party
//! dependencies: the pool is `std::thread::scope` + `std::sync::mpsc`, so
//! hermetic builds never touch the registry.
//!
//! # Examples
//!
//! ```
//! use dynex_cache::CacheConfig;
//! use dynex_engine::{Job, PolicyKind, SweepPlan};
//!
//! let trace: Vec<u32> = (0..100).map(|i| (i % 40) * 4).collect();
//! let mut plan = SweepPlan::new();
//! for size in [64, 128, 256] {
//!     let config = CacheConfig::direct_mapped(size, 4)?;
//!     plan.push(Job::new(config, PolicyKind::DynamicExclusion));
//! }
//! let stats = plan.run(4, |job| job.run(&trace).expect("de runs on every kernel"));
//! assert_eq!(stats.len(), 3);
//! assert!(stats[2].misses() <= stats[0].misses(), "bigger cache, fewer misses");
//! # Ok::<(), dynex_cache::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod journal;
mod kernel;
mod pool;
mod resilience;
mod shard;
mod sweep;

pub use dynex_cache::{CacheStats, Kernel};
pub use error::EngineError;
pub use journal::{
    fnv1a, job_key, set_global_journal, trace_digest, with_global_journal, Journal, JournalError,
    SyncPolicy,
};
pub use kernel::{default_kernel, set_default_kernel};
pub use pool::{available_jobs, default_jobs, env_jobs, execute, set_default_jobs};
pub use resilience::{
    execute_resilient, JobError, JobFailure, Resilience, SweepCounts, SweepOutcome,
};
pub use shard::{shard_by_set, sharded_policy_stats, simulate_sharded};
pub use sweep::{Job, KernelSupport, PolicyError, PolicyKind, SweepPlan};

/// Pre-PR-10 name of [`PolicyKind`], kept so downstream code compiles while
/// it migrates to the policy-zoo vocabulary.
#[deprecated(note = "renamed to `PolicyKind`; use the policy-zoo descriptor API")]
pub type Policy = PolicyKind;
